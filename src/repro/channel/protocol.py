"""Sender/receiver protocol for message channels over non-coherent CXL.

Each channel has exactly one sender and one receiver (§3.2.2).  The sender
writes fixed-size messages into the ring through its own (non-coherent) cache
and makes them visible with CLWB when a cache line fills or on an explicit
:meth:`ChannelSender.flush`.  Backpressure uses the 8 B consumed counter:

* the receiver bumps the counter only after consuming a large batch
  (``capacity / counter_batch_divisor`` messages, §4) and CLWBs it;
* the sender caches the counter value and re-reads it -- paying
  CLFLUSHOPT + MFENCE + a CXL miss -- only when the cached value says the
  ring is full.

Every method returns its CPU cost in nanoseconds.  Receiver poll behaviour is
design-specific and lives in :mod:`repro.channel.designs`; the common slot
load / epoch check / counter machinery is here.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Optional, Tuple

from ..config import CACHE_LINE
from ..errors import ChannelError
from ..mem.cache import HostCache
from .ring import RingLayout, decode_slot, encode_slot

__all__ = ["ChannelSender", "ChannelReceiver", "TimingHooks", "ChannelCounters"]

_COUNTER = struct.Struct("<Q")


class TimingHooks:
    """Callbacks that let a timing harness model memory-level parallelism.

    The functional protocol is timing-agnostic; the Figure 6 microbench
    injects a subclass that tracks when prefetched lines actually arrive so
    that a "hit" on a line still in flight stalls the receiver.
    """

    def on_prefetch_issued(self, line_index: int) -> None:
        """A PREFETCHT0 actually went out to CXL for ``line_index``."""

    def on_demand_fill(self, line_index: int) -> None:
        """A demand load missed and fetched ``line_index`` synchronously."""

    def on_invalidate(self, line_index: int) -> None:
        """The receiver dropped ``line_index`` from its cache."""

    def hit_stall_ns(self, line_index: int) -> float:
        """Extra stall when touching a cached line that is still in flight."""
        return 0.0


@dataclass
class ChannelCounters:
    """Operation counts, for tests and bandwidth accounting."""

    sent: int = 0
    received: int = 0
    empty_polls: int = 0
    counter_refreshes: int = 0
    counter_updates: int = 0
    full_stalls: int = 0


class ChannelSender:
    """The producing endpoint of a one-way channel."""

    def __init__(self, layout: RingLayout, cache: HostCache, category: str = "message"):
        self.layout = layout
        self.cache = cache
        self.category = category
        self.next_seq = 0
        self._cached_consumed = 0
        self._dirty_line_addr: Optional[int] = None
        self.counters = ChannelCounters()

    # -- capacity ------------------------------------------------------------

    @property
    def free_slots_cached(self) -> int:
        """Free slots according to the locally cached consumed counter."""
        return self.layout.slots - (self.next_seq - self._cached_consumed)

    def refresh_consumed(self) -> float:
        """Re-read the consumed counter from CXL (invalidate + fence + load)."""
        cost = self.cache.clflush(self.layout.counter_addr, fenced=True, category="counter")
        cost += self.cache.mfence()
        raw, load_cost = self.cache.load(self.layout.counter_addr, 8, category="counter")
        cost += load_cost
        value = _COUNTER.unpack(raw)[0]
        if value > self.next_seq:
            raise ChannelError(
                f"consumed counter {value} ahead of send sequence {self.next_seq}"
            )
        self._cached_consumed = max(self._cached_consumed, value)
        self.counters.counter_refreshes += 1
        return cost

    # -- sending ---------------------------------------------------------------

    def try_send(self, payload: bytes) -> Tuple[bool, float]:
        """Write one message if a slot is free.  Returns ``(sent, cost_ns)``.

        On False the caller should retry later (the ring is full even after a
        counter refresh).
        """
        if len(payload) != self.layout.message_size:
            raise ChannelError(
                f"payload must be exactly {self.layout.message_size} B, got {len(payload)}"
            )
        cost = 0.0
        if self.free_slots_cached <= 0:
            cost += self.refresh_consumed()
            if self.free_slots_cached <= 0:
                self.counters.full_stalls += 1
                return False, cost

        seq = self.next_seq
        slot = encode_slot(payload, self.layout.expected_epoch(seq))
        addr = self.layout.slot_addr(seq)
        cost += self.cache.store(addr, slot, category=self.category)
        self.next_seq = seq + 1
        self.counters.sent += 1

        line_addr = addr & ~(CACHE_LINE - 1)
        if self.layout.is_line_end(seq):
            cost += self.cache.clwb(line_addr, category=self.category)
            self._dirty_line_addr = None
        else:
            self._dirty_line_addr = line_addr
        return True, cost

    def flush(self) -> float:
        """CLWB a partially filled line so receivers can see it (low rate)."""
        if self._dirty_line_addr is None:
            return 0.0
        cost = self.cache.clwb(self._dirty_line_addr, category=self.category)
        self._dirty_line_addr = None
        return cost

    def send(self, payload: bytes) -> float:
        """Send and flush immediately; raises if the ring is full."""
        ok, cost = self.try_send(payload)
        if not ok:
            from ..errors import ChannelFullError

            raise ChannelFullError("message ring full")
        return cost + self.flush()


class ChannelReceiver:
    """Base class for the consuming endpoint; designs override :meth:`poll`."""

    #: human-readable design name (Figure 6 legend)
    design = "abstract"

    def __init__(
        self,
        layout: RingLayout,
        cache: HostCache,
        counter_batch: Optional[int] = None,
        timing: Optional[TimingHooks] = None,
    ):
        self.layout = layout
        self.cache = cache
        self.timing = timing or TimingHooks()
        # §4: update the counter only after consuming half the ring by default.
        self.counter_batch = counter_batch if counter_batch is not None else max(
            1, layout.slots // 2
        )
        self.next_seq = 0
        self._consumed_since_update = 0
        # Highest line-sequence number (seq // messages_per_line, monotonic
        # across ring wraps) for which a prefetch has been issued.  Real
        # receivers track their position the same way instead of re-issuing
        # PREFETCHT0 for the whole window on every poll.
        self._prefetch_horizon = -1
        self.counters = ChannelCounters()

    # -- common machinery -------------------------------------------------------

    def _line_index(self, seq: int) -> int:
        return self.layout.slot_line_addr(seq) // CACHE_LINE

    def _check_slot(self, seq: int) -> Tuple[Optional[bytes], float]:
        """Load the slot for ``seq``; return (payload, cost) or (None, cost)."""
        addr = self.layout.slot_addr(seq)
        line_idx = self._line_index(seq)
        cost = 0.0
        was_cached = self.cache.contains(addr)
        if was_cached:
            cost += self.timing.hit_stall_ns(line_idx)
        raw, load_cost = self.cache.load(addr, self.layout.message_size, category="message")
        cost += load_cost
        if not was_cached:
            self.timing.on_demand_fill(line_idx)
        payload, epoch = decode_slot(raw)
        if epoch != self.layout.expected_epoch(seq):
            self.counters.empty_polls += 1
            cost += self.cache.timings.empty_poll_ns
            return None, cost
        return payload, cost

    def _consume(self, seq: int) -> float:
        """Bookkeeping after a message is accepted."""
        self.next_seq = seq + 1
        self.counters.received += 1
        self._consumed_since_update += 1
        cost = self.cache.timings.message_cpu_ns
        if self._consumed_since_update >= self.counter_batch:
            cost += self._publish_counter()
        return cost

    def _publish_counter(self) -> float:
        """Store + CLWB the consumed counter so the sender can reuse slots."""
        cost = self.cache.store(
            self.layout.counter_addr, _COUNTER.pack(self.next_seq), category="counter"
        )
        cost += self.cache.clwb(self.layout.counter_addr, category="counter")
        self._consumed_since_update = 0
        self.counters.counter_updates += 1
        return cost

    def force_publish_counter(self) -> float:
        """Publish unconditionally (used when a driver goes idle)."""
        if self._consumed_since_update == 0:
            return 0.0
        return self._publish_counter()

    def _invalidate_line_of(self, seq: int, fenced: bool) -> float:
        line_addr = self.layout.slot_line_addr(seq)
        cost = self.cache.clflush(line_addr, fenced=fenced, category="message")
        self.timing.on_invalidate(line_addr // CACHE_LINE)
        return cost

    def _prefetch_ahead(self, depth_lines: int) -> float:
        """Issue PREFETCHT0 up to ``depth_lines`` ring lines ahead.

        Lines already covered by a previous issue (the *prefetch horizon*)
        are skipped; a prefetch of a line still cached (possibly stale) is a
        hardware no-op, which is the pathology Figure 6's design ② hits.
        """
        per_line = self.layout.messages_per_line
        depth_lines = min(depth_lines, self.layout.lines - 1)
        cur_lseq = self.next_seq // per_line
        start = max(self._prefetch_horizon + 1, cur_lseq + 1)
        end = cur_lseq + depth_lines
        cost = 0.0
        for lseq in range(start, end + 1):
            addr = self.layout.slot_line_addr(lseq * per_line)
            issued, c = self.cache.prefetch(addr, category="message")
            cost += c
            if issued:
                self.timing.on_prefetch_issued(addr // CACHE_LINE)
        self._prefetch_horizon = max(self._prefetch_horizon, end)
        return cost

    def _reset_prefetch_horizon(self) -> None:
        """Allow re-prefetching after the ahead window was invalidated (④)."""
        self._prefetch_horizon = self.next_seq // self.layout.messages_per_line

    # -- the design-specific part --------------------------------------------------

    def poll(self) -> Tuple[Optional[bytes], float]:
        """One poll iteration: returns ``(payload or None, cost_ns)``."""
        raise NotImplementedError

    def poll_batch(self, limit: int) -> Tuple[list, float]:
        """Poll until empty or ``limit`` messages; used by DES driver loops."""
        out = []
        total = 0.0
        while len(out) < limit:
            payload, cost = self.poll()
            total += cost
            if payload is None:
                break
            out.append(payload)
        return out, total
