"""Sender/receiver protocol for message channels over non-coherent CXL.

Each channel has exactly one sender and one receiver (§3.2.2).  The sender
writes fixed-size messages into the ring through its own (non-coherent) cache
and makes them visible with CLWB when a cache line fills or on an explicit
:meth:`ChannelSender.flush`.  Backpressure uses the 8 B consumed counter:

* the receiver bumps the counter only after consuming a large batch
  (``capacity / counter_batch_divisor`` messages, §4) and CLWBs it;
* the sender caches the counter value and re-reads it -- paying
  CLFLUSHOPT + MFENCE + a CXL miss -- only when the cached value says the
  ring is full.

Every method returns its CPU cost in nanoseconds.  Receiver poll behaviour is
design-specific and lives in :mod:`repro.channel.designs`; the common slot
load / epoch check / counter machinery is here.

Both endpoints sit on the driver cores' hottest loop, so the ring geometry
(slot base, power-of-two mask, wrap shift) is captured once at construction
and the timing hooks collapse to a no-hook fast path when the default
:class:`TimingHooks` is in use -- per-poll dispatch never re-discovers either.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Optional, Tuple

from ..config import CACHE_LINE
from ..errors import ChannelError
from ..mem.cache import HostCache, _Line
from .ring import RingLayout, decode_slot, encode_slot  # noqa: F401  (re-export)

__all__ = ["ChannelSender", "ChannelReceiver", "TimingHooks", "ChannelCounters"]

_COUNTER = struct.Struct("<Q")
_LINE_MASK = CACHE_LINE - 1


def _clwb_hot(cache: HostCache, addr: int, category: str) -> float:
    """``cache.clwb`` with the hook-free, fault-free writeback inlined.

    Every channel message and counter publish pays one CLWB, so the common
    case (dirty line, no writeback hook, no fault injection armed) skips the
    method call chain; anything unusual falls back to the generic path.
    """
    index = addr // CACHE_LINE
    line = cache._lines.get(index)
    if line is None or not line.dirty:
        return cache.timings.clflush_issue_ns
    if cache._wb_fault is not None or cache.writeback_hook is not None:
        return cache.clwb(addr, category=category)
    cache.pool._lines[index] = bytearray(line.data)
    wr = cache._wr
    if wr is None:
        link_stats = cache.pool.stats_for(cache.host)
        cache._rd = link_stats.read_bytes
        cache._wr = wr = link_stats.write_bytes
    wr[category] = wr.get(category, 0) + CACHE_LINE
    line.dirty = False
    cache.stats.writebacks += 1
    return cache.timings.clwb_ns


class TimingHooks:
    """Callbacks that let a timing harness model memory-level parallelism.

    The functional protocol is timing-agnostic; the Figure 6 microbench
    injects a subclass that tracks when prefetched lines actually arrive so
    that a "hit" on a line still in flight stalls the receiver.
    """

    def on_prefetch_issued(self, line_index: int) -> None:
        """A PREFETCHT0 actually went out to CXL for ``line_index``."""

    def on_demand_fill(self, line_index: int) -> None:
        """A demand load missed and fetched ``line_index`` synchronously."""

    def on_invalidate(self, line_index: int) -> None:
        """The receiver dropped ``line_index`` from its cache."""

    def hit_stall_ns(self, line_index: int) -> float:
        """Extra stall when touching a cached line that is still in flight."""
        return 0.0


@dataclass
class ChannelCounters:
    """Operation counts, for tests and bandwidth accounting."""

    sent: int = 0
    received: int = 0
    empty_polls: int = 0
    counter_refreshes: int = 0
    counter_updates: int = 0
    full_stalls: int = 0


class ChannelSender:
    """The producing endpoint of a one-way channel."""

    __slots__ = ("layout", "cache", "category", "next_seq", "_cached_consumed",
                 "_dirty_line_addr", "counters", "_slots", "_slot_base",
                 "_slot_mask", "_msize", "_wrap_shift")

    def __init__(self, layout: RingLayout, cache: HostCache, category: str = "message"):
        self.layout = layout
        self.cache = cache
        self.category = category
        self.next_seq = 0
        self._cached_consumed = 0
        self._dirty_line_addr: Optional[int] = None
        self.counters = ChannelCounters()
        # Ring geometry, captured once (slots is a power of two).
        self._slots = layout.slots
        self._slot_base = layout.region.base
        self._slot_mask = layout.slots - 1
        self._msize = layout.message_size
        self._wrap_shift = layout.slots.bit_length() - 1

    # -- capacity ------------------------------------------------------------

    @property
    def free_slots_cached(self) -> int:
        """Free slots according to the locally cached consumed counter."""
        return self._slots - (self.next_seq - self._cached_consumed)

    @property
    def occupancy_cached(self) -> float:
        """Ring occupancy in [0, 1] by the locally cached consumed counter.

        Zero-cost (no counter refresh): a conservative overestimate, which
        is the right bias for admission control reading it as a congestion
        signal -- the ring can only be emptier than the cache believes.
        """
        return (self.next_seq - self._cached_consumed) / self._slots

    def refresh_consumed(self) -> float:
        """Re-read the consumed counter from CXL (invalidate + fence + load)."""
        counter_addr = self.layout.counter_addr
        cost = self.cache.clflush(counter_addr, fenced=True, category="counter")
        cost += self.cache.mfence()
        raw, load_cost = self.cache.load(counter_addr, 8, category="counter")
        cost += load_cost
        value = _COUNTER.unpack(raw)[0]
        if value > self.next_seq:
            raise ChannelError(
                f"consumed counter {value} ahead of send sequence {self.next_seq}"
            )
        if value > self._cached_consumed:
            self._cached_consumed = value
        self.counters.counter_refreshes += 1
        return cost

    # -- sending ---------------------------------------------------------------

    def try_send(self, payload: bytes) -> Tuple[bool, float]:
        """Write one message if a slot is free.  Returns ``(sent, cost_ns)``.

        On False the caller should retry later (the ring is full even after a
        counter refresh).
        """
        msize = self._msize
        if len(payload) != msize:
            raise ChannelError(
                f"payload must be exactly {msize} B, got {len(payload)}"
            )
        seq = self.next_seq
        cost = 0.0
        if self._slots - (seq - self._cached_consumed) <= 0:
            cost += self.refresh_consumed()
            if self._slots - (seq - self._cached_consumed) <= 0:
                self.counters.full_stalls += 1
                return False, cost

        b0 = payload[0]
        if b0 & 0x80:
            raise ChannelError("payload first byte must leave the epoch bit clear")
        # Fresh messages on lap 0 carry epoch 1; the bit toggles per wrap.
        if (seq >> self._wrap_shift) & 1:
            slot = payload
        else:
            slot = bytearray(payload)
            slot[0] = b0 | 0x80
        addr = self._slot_base + (seq & self._slot_mask) * msize
        cache = self.cache
        line = cache._lines.get(addr // CACHE_LINE)
        if line is not None and not cache._track_lru:
            # cache.store single-line hit, inlined (steady state: ring lines
            # stay cached between laps).
            offset = addr & _LINE_MASK
            line.data[offset:offset + msize] = slot
            line.dirty = True
            cache.stats.stores += 1
            cost += cache.timings.store_ns
        else:
            cost += cache.store(addr, slot, category=self.category)
        self.next_seq = seq + 1
        self.counters.sent += 1

        line_addr = addr & ~_LINE_MASK
        if (addr + msize) & _LINE_MASK == 0:
            cost += _clwb_hot(cache, line_addr, self.category)
            self._dirty_line_addr = None
        else:
            self._dirty_line_addr = line_addr
        return True, cost

    def try_send_batch(self, payloads, out: list) -> bool:
        """Fused :meth:`try_send` loop for driver batching.

        ``out`` is a two-slot ``[sent, cost_ns]`` accumulator updated after
        every payload, so a caller's ``finally`` observes partial progress
        exactly as the call-per-payload loop would under an exception.
        Returns True when the ring is full (the failed attempt's cost is
        already accumulated).
        """
        slots = self._slots
        msize = self._msize
        mask = self._slot_mask
        base = self._slot_base
        wshift = self._wrap_shift
        cache = self.cache
        lines = cache._lines
        track = cache._track_lru
        cstats = cache.stats
        store_ns = cache.timings.store_ns
        category = self.category
        counters = self.counters
        for payload in payloads:
            if len(payload) != msize:
                raise ChannelError(
                    f"payload must be exactly {msize} B, got {len(payload)}"
                )
            seq = self.next_seq
            c = 0.0
            if slots - (seq - self._cached_consumed) <= 0:
                c += self.refresh_consumed()
                if slots - (seq - self._cached_consumed) <= 0:
                    counters.full_stalls += 1
                    out[1] += c
                    return True
            b0 = payload[0]
            if b0 & 0x80:
                raise ChannelError(
                    "payload first byte must leave the epoch bit clear")
            if (seq >> wshift) & 1:
                slot = payload
            else:
                slot = bytearray(payload)
                slot[0] = b0 | 0x80
            addr = base + (seq & mask) * msize
            line = lines.get(addr // CACHE_LINE)
            if line is not None and not track:
                offset = addr & _LINE_MASK
                line.data[offset:offset + msize] = slot
                line.dirty = True
                cstats.stores += 1
                c += store_ns
            else:
                c += cache.store(addr, slot, category=category)
            self.next_seq = seq + 1
            counters.sent += 1
            line_addr = addr & ~_LINE_MASK
            if (addr + msize) & _LINE_MASK == 0:
                c += _clwb_hot(cache, line_addr, category)
                self._dirty_line_addr = None
            else:
                self._dirty_line_addr = line_addr
            out[1] += c
            out[0] += 1
        return False

    def flush(self) -> float:
        """CLWB a partially filled line so receivers can see it (low rate)."""
        if self._dirty_line_addr is None:
            return 0.0
        cost = _clwb_hot(self.cache, self._dirty_line_addr, self.category)
        self._dirty_line_addr = None
        return cost

    def send(self, payload: bytes) -> float:
        """Send and flush immediately; raises if the ring is full."""
        ok, cost = self.try_send(payload)
        if not ok:
            from ..errors import ChannelFullError

            raise ChannelFullError("message ring full")
        # flush(), inlined: single sends pay it once per message.
        dirty = self._dirty_line_addr
        if dirty is None:
            return cost + 0.0
        self._dirty_line_addr = None
        return cost + _clwb_hot(self.cache, dirty, self.category)


class ChannelReceiver:
    """Base class for the consuming endpoint; designs override :meth:`poll`."""

    #: human-readable design name (Figure 6 legend)
    design = "abstract"

    __slots__ = ("layout", "cache", "timing", "_timing", "counter_batch",
                 "next_seq", "_consumed_since_update", "_prefetch_horizon",
                 "counters", "_slot_base", "_slot_mask", "_msize",
                 "_wrap_shift", "_counter_addr", "_timings")

    def __init__(
        self,
        layout: RingLayout,
        cache: HostCache,
        counter_batch: Optional[int] = None,
        timing: Optional[TimingHooks] = None,
    ):
        self.layout = layout
        self.cache = cache
        self.timing = timing or TimingHooks()
        # Precomputed dispatch: the no-op default hooks are skipped entirely
        # on the poll path; only a real (subclassed) harness pays the calls.
        self._timing = None if type(self.timing) is TimingHooks else self.timing
        # §4: update the counter only after consuming half the ring by default.
        self.counter_batch = counter_batch if counter_batch is not None else max(
            1, layout.slots // 2
        )
        self.next_seq = 0
        self._consumed_since_update = 0
        # Highest line-sequence number (seq // messages_per_line, monotonic
        # across ring wraps) for which a prefetch has been issued.  Real
        # receivers track their position the same way instead of re-issuing
        # PREFETCHT0 for the whole window on every poll.
        self._prefetch_horizon = -1
        self.counters = ChannelCounters()
        # Ring geometry, captured once (slots is a power of two).
        self._slot_base = layout.region.base
        self._slot_mask = layout.slots - 1
        self._msize = layout.message_size
        self._wrap_shift = layout.slots.bit_length() - 1
        self._counter_addr = layout.counter_addr
        self._timings = cache.timings

    # -- common machinery -------------------------------------------------------

    def _line_index(self, seq: int) -> int:
        return self.layout.slot_line_addr(seq) // CACHE_LINE

    def _check_slot(self, seq: int) -> Tuple[Optional[bytes], float]:
        """Load the slot for ``seq``; return (payload, cost) or (None, cost)."""
        msize = self._msize
        addr = self._slot_base + (seq & self._slot_mask) * msize
        timing = self._timing
        cache = self.cache
        if timing is None:
            raw, cost = cache.load(addr, msize, category="message")
        else:
            line_idx = addr // CACHE_LINE
            was_cached = cache.contains(addr)
            cost = 0.0
            if was_cached:
                cost += timing.hit_stall_ns(line_idx)
            raw, load_cost = cache.load(addr, msize, category="message")
            cost += load_cost
            if not was_cached:
                timing.on_demand_fill(line_idx)
        b0 = raw[0]
        if (b0 >> 7) != 1 - ((seq >> self._wrap_shift) & 1):
            self.counters.empty_polls += 1
            cost += self._timings.empty_poll_ns
            return None, cost
        return bytes((b0 & 0x7F,)) + raw[1:], cost

    def _consume(self, seq: int) -> float:
        """Bookkeeping after a message is accepted."""
        self.next_seq = seq + 1
        self.counters.received += 1
        self._consumed_since_update += 1
        cost = self._timings.message_cpu_ns
        if self._consumed_since_update >= self.counter_batch:
            cost += self._publish_counter()
        return cost

    def _publish_counter(self) -> float:
        """Store + CLWB the consumed counter so the sender can reuse slots.

        The counter line is the hottest store in the protocol (published
        once per drained batch), so the single-line store hit is inlined.
        """
        counter_addr = self._counter_addr
        cache = self.cache
        line = cache._lines.get(counter_addr // CACHE_LINE)
        if line is not None and not cache._track_lru:
            offset = counter_addr & _LINE_MASK
            line.data[offset:offset + 8] = _COUNTER.pack(self.next_seq)
            line.dirty = True
            cache.stats.stores += 1
            cost = 0.0 + cache.timings.store_ns
        else:
            cost = cache.store(
                counter_addr, _COUNTER.pack(self.next_seq), category="counter"
            )
        # _clwb_hot, inlined: the counter line is dirty here in steady state
        # (we just stored to it), so the common case is one writeback.
        index = counter_addr // CACHE_LINE
        wline = cache._lines.get(index)
        if wline is None or not wline.dirty:
            cost += cache.timings.clflush_issue_ns
        elif cache._wb_fault is not None or cache.writeback_hook is not None:
            cost += cache.clwb(counter_addr, category="counter")
        else:
            cache.pool._lines[index] = bytearray(wline.data)
            wr = cache._wr
            if wr is None:
                link_stats = cache.pool.stats_for(cache.host)
                cache._rd = link_stats.read_bytes
                cache._wr = wr = link_stats.write_bytes
            wr["counter"] = wr.get("counter", 0) + CACHE_LINE
            wline.dirty = False
            cache.stats.writebacks += 1
            cost += cache.timings.clwb_ns
        self._consumed_since_update = 0
        self.counters.counter_updates += 1
        return cost

    def force_publish_counter(self) -> float:
        """Publish unconditionally (used when a driver goes idle)."""
        if self._consumed_since_update == 0:
            return 0.0
        return self._publish_counter()

    def _invalidate_line_of(self, seq: int, fenced: bool) -> float:
        line_addr = (self._slot_base + (seq & self._slot_mask) * self._msize) & ~_LINE_MASK
        cost = self.cache.clflush(line_addr, fenced=fenced, category="message")
        if self._timing is not None:
            self._timing.on_invalidate(line_addr // CACHE_LINE)
        return cost

    def _prefetch_ahead(self, depth_lines: int) -> float:
        """Issue PREFETCHT0 up to ``depth_lines`` ring lines ahead.

        Lines already covered by a previous issue (the *prefetch horizon*)
        are skipped; a prefetch of a line still cached (possibly stale) is a
        hardware no-op, which is the pathology Figure 6's design ② hits.
        """
        layout = self.layout
        per_line = layout.messages_per_line
        lines = layout.lines - 1
        if lines < depth_lines:
            depth_lines = lines
        cur_lseq = self.next_seq // per_line
        start = self._prefetch_horizon + 1
        if start < cur_lseq + 1:
            start = cur_lseq + 1
        end = cur_lseq + depth_lines
        cost = 0.0
        if start <= end:
            cache = self.cache
            timing = self._timing
            base = self._slot_base
            mask = self._slot_mask
            msize = self._msize
            if cache._track_lru:
                for lseq in range(start, end + 1):
                    addr = (base + ((lseq * per_line) & mask) * msize) & ~_LINE_MASK
                    issued, c = cache.prefetch(addr, category="message")
                    cost += c
                    if issued and timing is not None:
                        timing.on_prefetch_issued(addr // CACHE_LINE)
            else:
                # cache.prefetch + its fill, inlined per window line (the
                # streaming receiver issues one burst of these per message).
                lines = cache._lines
                pool_lines = cache.pool._lines
                cstats = cache.stats
                issue_ns = cache.timings.prefetch_issue_ns
                rd = cache._rd
                if rd is None:
                    link_stats = cache.pool.stats_for(cache.host)
                    cache._rd = rd = link_stats.read_bytes
                    cache._wr = link_stats.write_bytes
                for lseq in range(start, end + 1):
                    index = ((base + ((lseq * per_line) & mask) * msize)
                             & ~_LINE_MASK) // CACHE_LINE
                    if index in lines:
                        cstats.prefetches_ignored += 1
                    else:
                        src = pool_lines.get(index)
                        lines[index] = _Line(
                            bytearray(src) if src is not None
                            else bytearray(CACHE_LINE))
                        rd["message"] = rd.get("message", 0) + CACHE_LINE
                        cstats.prefetches_issued += 1
                        if timing is not None:
                            timing.on_prefetch_issued(index)
                    cost += issue_ns
        if self._prefetch_horizon < end:
            self._prefetch_horizon = end
        return cost

    def _reset_prefetch_horizon(self) -> None:
        """Allow re-prefetching after the ahead window was invalidated (④)."""
        self._prefetch_horizon = self.next_seq // self.layout.messages_per_line

    # -- the design-specific part --------------------------------------------------

    def poll(self) -> Tuple[Optional[bytes], float]:
        """One poll iteration: returns ``(payload or None, cost_ns)``."""
        raise NotImplementedError

    def poll_batch(self, limit: int) -> Tuple[list, float]:
        """Poll until empty or ``limit`` messages; used by DES driver loops."""
        out = []
        total = 0.0
        poll = self.poll
        append = out.append
        n = 0
        while n < limit:
            payload, cost = poll()
            total += cost
            if payload is None:
                break
            append(payload)
            n += 1
        return out, total
