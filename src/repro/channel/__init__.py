"""Message channels over non-coherent shared CXL memory (§3.2.2)."""

from .designs import (
    RECEIVER_DESIGNS,
    BypassCacheReceiver,
    InvalidateConsumedReceiver,
    InvalidatePrefetchedReceiver,
    NaivePrefetchReceiver,
    make_receiver,
)
from .microbench import ChannelMicrobench, MicrobenchResult, sweep_designs
from .protocol import ChannelCounters, ChannelReceiver, ChannelSender, TimingHooks
from .ring import RingLayout, decode_slot, encode_slot
from .sharded import ShardedChannelGroup, sharded_saturation

__all__ = [
    "RingLayout",
    "encode_slot",
    "decode_slot",
    "ChannelSender",
    "ChannelReceiver",
    "ChannelCounters",
    "TimingHooks",
    "BypassCacheReceiver",
    "NaivePrefetchReceiver",
    "InvalidateConsumedReceiver",
    "InvalidatePrefetchedReceiver",
    "RECEIVER_DESIGNS",
    "make_receiver",
    "ChannelMicrobench",
    "MicrobenchResult",
    "sweep_designs",
    "ShardedChannelGroup",
    "sharded_saturation",
]
