"""Sharded multi-channel message passing (§6, "Single-threaded datapath").

The paper's prototype uses one I/O core and one channel per direction, and
notes that "message channel throughput scales linearly with additional
channels", making a sharded multi-channel design the natural extension for
devices faster than one core can feed.  This module implements that
extension: a :class:`ShardedChannelGroup` stripes messages across N
independent rings, each with its own sender/receiver endpoint (one per
core), preserving FIFO order *within a shard* (messages for one flow hash to
one shard, as the real design would pin a flow to a queue pair).

:func:`sharded_saturation` measures aggregate saturation throughput vs shard
count with the Figure 6 virtual-time harness, one simulated core pair per
shard -- the linear-scaling claim made quantitative.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..config import OasisConfig
from ..errors import ChannelError
from ..mem.cache import HostCache
from ..mem.cxl import CXLMemoryPool
from ..mem.layout import Region
from .designs import InvalidatePrefetchedReceiver
from .microbench import ChannelMicrobench
from .protocol import ChannelSender
from .ring import RingLayout

__all__ = ["ShardedChannelGroup", "sharded_saturation"]


class ShardedChannelGroup:
    """N independent rings striped by flow hash.

    Functional model: each shard is a full non-coherent ring with its own
    sender/receiver cache endpoints.  ``send(flow, payload)`` routes by
    ``hash(flow) % shards``; :meth:`drain_shard` consumes one shard (one
    receiver core each in the sharded design).
    """

    def __init__(
        self,
        pool: CXLMemoryPool,
        base_addr: int,
        shards: int,
        slots: int = 1024,
        message_size: int = 16,
        sender_host: str = "sender",
        receiver_host: str = "receiver",
        prefetch_depth: int = 16,
    ):
        if shards < 1:
            raise ChannelError("need at least one shard")
        self.shards = shards
        self.message_size = message_size
        self.senders: List[ChannelSender] = []
        self.receivers: List[InvalidatePrefetchedReceiver] = []
        ring_bytes = RingLayout.required_bytes(slots, message_size)
        for i in range(shards):
            region = Region(base_addr + i * ring_bytes, ring_bytes,
                            f"shard-{i}")
            layout = RingLayout(region, slots, message_size)
            # One core (cache context) per shard endpoint.
            self.senders.append(ChannelSender(
                layout, HostCache(pool, f"{sender_host}-{i}")))
            self.receivers.append(InvalidatePrefetchedReceiver(
                layout, HostCache(pool, f"{receiver_host}-{i}"),
                prefetch_depth=prefetch_depth))

    def shard_of(self, flow: int) -> int:
        return flow % self.shards

    def send(self, flow: int, payload: bytes) -> float:
        """Send on the flow's shard; returns sender cpu ns."""
        return self.senders[self.shard_of(flow)].send(payload)

    def try_send(self, flow: int, payload: bytes):
        return self.senders[self.shard_of(flow)].try_send(payload)

    def drain_shard(self, shard: int, limit: int = 256):
        """Consume up to ``limit`` messages from one shard."""
        return self.receivers[shard].poll_batch(limit)

    def drain_all(self, limit_per_shard: int = 256):
        """Convenience: drain every shard (tests/single-threaded callers)."""
        out = []
        cost = 0.0
        for shard in range(self.shards):
            msgs, c = self.drain_shard(shard, limit_per_shard)
            out.extend(msgs)
            cost += c
        return out, cost


def sharded_saturation(
    shard_counts: Sequence[int] = (1, 2, 4, 8),
    n_messages: int = 10_000,
    slots: int = 2048,
    config: Optional[OasisConfig] = None,
) -> Dict[int, float]:
    """Aggregate saturation MOp/s vs shard count.

    Each shard is an independent sender/receiver core pair, so aggregate
    throughput is the sum of per-shard saturation runs -- exactly the
    linear-scaling argument of §6 (the shards share only the CXL link, which
    at ~30 GB/s is far from limiting 16 B message traffic).
    """
    results: Dict[int, float] = {}
    for shards in shard_counts:
        total = 0.0
        for shard in range(shards):
            bench = ChannelMicrobench("invalidate-prefetched", config=config,
                                      slots=slots)
            total += bench.run(n_messages).achieved_mops
        results[shards] = total
    return results
