"""The four receiver designs benchmarked in Figure 6.

All four share the functional ring protocol from
:mod:`repro.channel.protocol`; they differ only in *when* they invalidate
cache lines and whether they prefetch:

① :class:`BypassCacheReceiver` -- prior-work baseline: CLFLUSHOPT + MFENCE
   before **every** poll, so every poll is a serialised CXL miss
   (~3 MOp/s in the paper).

② :class:`NaivePrefetchReceiver` -- software-prefetches subsequent lines
   after every successful poll and invalidates the current line only after an
   empty poll.  Prefetches of lines already (stale) in the cache are ignored
   by the hardware, so after the first ring wrap every line fetch degenerates
   into a serialised invalidate + demand miss (~8.6 MOp/s).

③ :class:`InvalidateConsumedReceiver` -- additionally invalidates a line as
   soon as all its messages are consumed, unblocking future prefetches
   (~87 MOp/s), but prefetched-then-stale lines still add an extra
   invalidate + miss round-trip per message at moderate load (latency bump
   to ~1.2 us).

④ :class:`InvalidatePrefetchedReceiver` -- the Oasis design: after an empty
   poll it also invalidates the prefetched-ahead window, so newly arriving
   messages are found with a single clean miss (~0.6 us at the 14 MOp/s
   target).
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..mem.cache import _Line
from .protocol import ChannelReceiver

__all__ = [
    "BypassCacheReceiver",
    "NaivePrefetchReceiver",
    "InvalidateConsumedReceiver",
    "InvalidatePrefetchedReceiver",
    "RECEIVER_DESIGNS",
    "make_receiver",
]


class BypassCacheReceiver(ChannelReceiver):
    """① Invalidate + fence before each poll (no CPU caching of the ring)."""

    design = "bypass-cache"
    __slots__ = ()

    def poll(self) -> Tuple[Optional[bytes], float]:
        cost = self._invalidate_line_of(self.next_seq, fenced=True)
        cost += self.cache.mfence()
        payload, check_cost = self._check_slot(self.next_seq)
        cost += check_cost
        if payload is None:
            return None, cost
        cost += self._consume(self.next_seq)
        return payload, cost


class _PrefetchingReceiver(ChannelReceiver):
    """Common logic for designs ② / ③ / ④."""

    invalidate_consumed = False
    invalidate_prefetched = False
    __slots__ = ("prefetch_depth", "_streak", "_prefetch_threshold")

    def __init__(self, layout, cache, counter_batch=None, timing=None, prefetch_depth=16):
        super().__init__(layout, cache, counter_batch=counter_batch, timing=timing)
        self.prefetch_depth = prefetch_depth
        # Prefetching is only worth its CXL bandwidth when the channel is
        # actually streaming (§3.2.2 / Table 3: "prefetching is triggered
        # only when the channel is not idle").  We arm it once a consumption
        # streak shows messages arriving faster than we drain them.
        self._streak = 0
        self._prefetch_threshold = max(2, layout.messages_per_line)

    def poll(self) -> Tuple[Optional[bytes], float]:
        if self._timing is not None:
            return self._poll_hooked()
        # No timing harness installed: one flat pass over the slot check,
        # consume bookkeeping and line maintenance, with the same cost
        # composition as the hooked path below.
        seq = self.next_seq
        msize = self._msize
        addr = self._slot_base + (seq & self._slot_mask) * msize
        cache = self.cache
        raw, cost = cache.load(addr, msize, category="message")
        b0 = raw[0]
        if (b0 >> 7) != 1 - ((seq >> self._wrap_shift) & 1):
            # Empty poll: the cached copy of the current line may simply be
            # stale.  Drop it (fenced, so the re-poll really goes to CXL).
            self.counters.empty_polls += 1
            timings = self._timings
            cost += timings.empty_poll_ns
            self._streak = 0
            cost += cache.clflush(addr & -64, fenced=True, category="message")
            cache.stats.fences += 1
            cost += timings.mfence_ns
            if self.invalidate_prefetched:
                cost += self._invalidate_prefetch_window()
            return None, cost
        payload = bytes((b0 & 0x7F,)) + raw[1:]
        self.next_seq = seq + 1
        counters = self.counters
        counters.received += 1
        consumed = self._consumed_since_update + 1
        self._consumed_since_update = consumed
        consume_cost = self._timings.message_cpu_ns
        if consumed >= self.counter_batch:
            consume_cost += self._publish_counter()
        cost += consume_cost
        streak = self._streak + 1
        self._streak = streak
        if self.invalidate_consumed and ((addr + msize) & 63) == 0:
            # Line fully consumed: drop it (unfenced, off the critical
            # path) so the next lap's prefetch can bring in fresh data.
            cost += cache.clflush(addr & -64, fenced=False, category="message")
        if streak >= self._prefetch_threshold:
            cost += self._prefetch_ahead(self.prefetch_depth)
        return payload, cost

    def poll_batch(self, limit: int) -> Tuple[list, float]:
        """Fused drain loop: :meth:`poll` inlined per message (no-hook path).

        Driver cores call this once per drain; fusing the batch loop, the
        per-message poll and the single-line cache-hit load removes three
        Python frames per message while keeping the exact per-poll cost
        composition of the generic loop.
        """
        if self._timing is not None:
            return ChannelReceiver.poll_batch(self, limit)
        out = []
        append = out.append
        total = 0.0
        cache = self.cache
        lines = cache._lines
        track = cache._track_lru
        cstats = cache.stats
        t = self._timings
        counters = self.counters
        batch = self.counter_batch
        base = self._slot_base
        mask = self._slot_mask
        msize = self._msize
        wshift = self._wrap_shift
        inv_consumed = self.invalidate_consumed
        threshold = self._prefetch_threshold
        pool = cache.pool
        pool_lines = pool._lines
        pool_size = pool.size
        n = 0
        while n < limit:
            seq = self.next_seq
            addr = base + (seq & mask) * msize
            index = addr >> 6
            line = lines.get(index)
            if line is not None:
                # cache.load single-line hit, inlined; the payload is built
                # straight off the cached bytearray (one copy, no concat).
                if track:
                    lines.move_to_end(index)
                cstats.hits += 1
                cost = 0.0 + t.cache_hit_ns
                offset = addr & 63
                data = line.data
                b0 = data[offset]
            elif not track and (index + 1) << 6 <= pool_size and index >= 0:
                # cache.load single-line miss (_fill), inlined: demand-fetch
                # the line from the pool with the same accounting as load().
                src = pool_lines.get(index)
                line = _Line(bytearray(src) if src is not None
                             else bytearray(64))
                lines[index] = line
                rd = cache._rd
                if rd is None:
                    link_stats = pool.stats_for(cache.host)
                    cache._rd = rd = link_stats.read_bytes
                    cache._wr = link_stats.write_bytes
                rd["message"] = rd.get("message", 0) + 64
                cstats.misses += 1
                cost = 0.0 + t.cxl_load_ns
                offset = addr & 63
                data = line.data
                b0 = data[offset]
            else:
                raw, cost = cache.load(addr, msize, category="message")
                b0 = raw[0]
            if (b0 >> 7) != 1 - ((seq >> wshift) & 1):
                counters.empty_polls += 1
                cost += t.empty_poll_ns
                self._streak = 0
                # cache.clflush(fenced=True) + cache.mfence(), inlined; the
                # just-polled line is clean (it was loaded, never stored).
                dropped = lines.pop(index, None)
                if dropped is not None:
                    if dropped.dirty:
                        cache._write_back(index, dropped, "message")
                        cstats.writebacks += 1
                    cstats.invalidations += 1
                cost += t.clflush_ns
                cstats.fences += 1
                cost += t.mfence_ns
                if self.invalidate_prefetched:
                    cost += self._invalidate_prefetch_window()
                total += cost
                break
            if line is not None:
                buf = data[offset:offset + msize]
                buf[0] = b0 & 0x7F
                payload = bytes(buf)
            else:
                payload = bytes((b0 & 0x7F,)) + raw[1:]
            self.next_seq = seq + 1
            counters.received += 1
            consumed = self._consumed_since_update + 1
            self._consumed_since_update = consumed
            consume_cost = t.message_cpu_ns
            if consumed >= batch:
                consume_cost += self._publish_counter()
            cost += consume_cost
            streak = self._streak + 1
            self._streak = streak
            if inv_consumed and ((addr + msize) & 63) == 0:
                # cache.clflush(fenced=False) of the consumed line, inlined.
                dropped = lines.pop(index, None)
                if dropped is not None:
                    if dropped.dirty:
                        cache._write_back(index, dropped, "message")
                        cstats.writebacks += 1
                    cstats.invalidations += 1
                cost += t.clflush_issue_ns
            if streak >= threshold:
                cost += self._prefetch_ahead(self.prefetch_depth)
            append(payload)
            total += cost
            n += 1
        return out, total

    def _poll_hooked(self) -> Tuple[Optional[bytes], float]:
        seq = self.next_seq
        payload, cost = self._check_slot(seq)
        if payload is not None:
            cost += self._consume(seq)
            self._streak += 1
            if self.invalidate_consumed and \
                    ((self._slot_base + (seq & self._slot_mask) * self._msize
                      + self._msize) & 63) == 0:
                # Line fully consumed: drop it (unfenced, off the critical
                # path) so the next lap's prefetch can bring in fresh data.
                cost += self._invalidate_line_of(seq, fenced=False)
            if self._streak >= self._prefetch_threshold:
                cost += self._prefetch_ahead(self.prefetch_depth)
            return payload, cost

        # Empty poll: the cached copy of the current line may simply be
        # stale.  Drop it (fenced, so the re-poll really goes to CXL).
        self._streak = 0
        cost += self._invalidate_line_of(seq, fenced=True)
        cost += self.cache.mfence()
        if self.invalidate_prefetched:
            cost += self._invalidate_prefetch_window()
        return None, cost

    def _invalidate_prefetch_window(self) -> float:
        """④ only: drop the prefetched-ahead lines that may now be stale."""
        cost = 0.0
        layout = self.layout
        per_line = layout.messages_per_line
        depth = self.prefetch_depth
        lines = layout.lines - 1
        if lines < depth:
            depth = lines
        cache = self.cache
        cached_lines = cache._lines
        timing = self._timing
        base = self._slot_base
        mask = self._slot_mask
        msize = self._msize
        next_seq = self.next_seq
        cstats = cache.stats
        issue_ns = cache.timings.clflush_issue_ns
        for i in range(1, depth + 1):
            seq = next_seq + i * per_line
            line_addr = (base + (seq & mask) * msize) & ~63
            # cache.clflush(fenced=False), inlined per cached window line.
            dropped = cached_lines.pop(line_addr >> 6, None)
            if dropped is not None:
                if dropped.dirty:
                    cache._write_back(line_addr >> 6, dropped, "message")
                    cstats.writebacks += 1
                cstats.invalidations += 1
                cost += issue_ns
                if timing is not None:
                    timing.on_invalidate(line_addr >> 6)
        self._reset_prefetch_horizon()
        return cost


class NaivePrefetchReceiver(_PrefetchingReceiver):
    """② Prefetch, but never invalidate consumed lines."""

    design = "naive-prefetch"
    __slots__ = ()


class InvalidateConsumedReceiver(_PrefetchingReceiver):
    """③ ② plus invalidate-once-consumed."""

    design = "invalidate-consumed"
    invalidate_consumed = True
    __slots__ = ()


class InvalidatePrefetchedReceiver(_PrefetchingReceiver):
    """④ ③ plus invalidate the prefetched window after empty polls (Oasis)."""

    design = "invalidate-prefetched"
    invalidate_consumed = True
    invalidate_prefetched = True
    __slots__ = ()


RECEIVER_DESIGNS = {
    cls.design: cls
    for cls in (
        BypassCacheReceiver,
        NaivePrefetchReceiver,
        InvalidateConsumedReceiver,
        InvalidatePrefetchedReceiver,
    )
}


def make_receiver(design: str, layout, cache, **kwargs) -> ChannelReceiver:
    """Construct a receiver by Figure 6 design name."""
    try:
        cls = RECEIVER_DESIGNS[design]
    except KeyError:
        raise ValueError(
            f"unknown design {design!r}; choose from {sorted(RECEIVER_DESIGNS)}"
        ) from None
    if cls is BypassCacheReceiver:
        kwargs.pop("prefetch_depth", None)
    return cls(layout, cache, **kwargs)
