"""The four receiver designs benchmarked in Figure 6.

All four share the functional ring protocol from
:mod:`repro.channel.protocol`; they differ only in *when* they invalidate
cache lines and whether they prefetch:

① :class:`BypassCacheReceiver` -- prior-work baseline: CLFLUSHOPT + MFENCE
   before **every** poll, so every poll is a serialised CXL miss
   (~3 MOp/s in the paper).

② :class:`NaivePrefetchReceiver` -- software-prefetches subsequent lines
   after every successful poll and invalidates the current line only after an
   empty poll.  Prefetches of lines already (stale) in the cache are ignored
   by the hardware, so after the first ring wrap every line fetch degenerates
   into a serialised invalidate + demand miss (~8.6 MOp/s).

③ :class:`InvalidateConsumedReceiver` -- additionally invalidates a line as
   soon as all its messages are consumed, unblocking future prefetches
   (~87 MOp/s), but prefetched-then-stale lines still add an extra
   invalidate + miss round-trip per message at moderate load (latency bump
   to ~1.2 us).

④ :class:`InvalidatePrefetchedReceiver` -- the Oasis design: after an empty
   poll it also invalidates the prefetched-ahead window, so newly arriving
   messages are found with a single clean miss (~0.6 us at the 14 MOp/s
   target).
"""

from __future__ import annotations

from typing import Optional, Tuple

from .protocol import ChannelReceiver

__all__ = [
    "BypassCacheReceiver",
    "NaivePrefetchReceiver",
    "InvalidateConsumedReceiver",
    "InvalidatePrefetchedReceiver",
    "RECEIVER_DESIGNS",
    "make_receiver",
]


class BypassCacheReceiver(ChannelReceiver):
    """① Invalidate + fence before each poll (no CPU caching of the ring)."""

    design = "bypass-cache"

    def poll(self) -> Tuple[Optional[bytes], float]:
        cost = self._invalidate_line_of(self.next_seq, fenced=True)
        cost += self.cache.mfence()
        payload, check_cost = self._check_slot(self.next_seq)
        cost += check_cost
        if payload is None:
            return None, cost
        cost += self._consume(self.next_seq)
        return payload, cost


class _PrefetchingReceiver(ChannelReceiver):
    """Common logic for designs ② / ③ / ④."""

    invalidate_consumed = False
    invalidate_prefetched = False

    def __init__(self, layout, cache, counter_batch=None, timing=None, prefetch_depth=16):
        super().__init__(layout, cache, counter_batch=counter_batch, timing=timing)
        self.prefetch_depth = prefetch_depth
        # Prefetching is only worth its CXL bandwidth when the channel is
        # actually streaming (§3.2.2 / Table 3: "prefetching is triggered
        # only when the channel is not idle").  We arm it once a consumption
        # streak shows messages arriving faster than we drain them.
        self._streak = 0
        self._prefetch_threshold = max(2, layout.messages_per_line)

    def poll(self) -> Tuple[Optional[bytes], float]:
        seq = self.next_seq
        payload, cost = self._check_slot(seq)
        if payload is not None:
            cost += self._consume(seq)
            self._streak += 1
            if self.invalidate_consumed and self.layout.is_line_end(seq):
                # Line fully consumed: drop it (unfenced, off the critical
                # path) so the next lap's prefetch can bring in fresh data.
                cost += self._invalidate_line_of(seq, fenced=False)
            if self._streak >= self._prefetch_threshold:
                cost += self._prefetch_ahead(self.prefetch_depth)
            return payload, cost

        # Empty poll: the cached copy of the current line may simply be
        # stale.  Drop it (fenced, so the re-poll really goes to CXL).
        self._streak = 0
        cost += self._invalidate_line_of(seq, fenced=True)
        cost += self.cache.mfence()
        if self.invalidate_prefetched:
            cost += self._invalidate_prefetch_window()
        return None, cost

    def _invalidate_prefetch_window(self) -> float:
        """④ only: drop the prefetched-ahead lines that may now be stale."""
        cost = 0.0
        per_line = self.layout.messages_per_line
        depth = min(self.prefetch_depth, self.layout.lines - 1)
        for i in range(1, depth + 1):
            seq = self.next_seq + i * per_line
            line_addr = self.layout.slot_line_addr(seq)
            if self.cache.contains(line_addr):
                cost += self.cache.clflush(line_addr, fenced=False, category="message")
                self.timing.on_invalidate(line_addr // 64)
        self._reset_prefetch_horizon()
        return cost


class NaivePrefetchReceiver(_PrefetchingReceiver):
    """② Prefetch, but never invalidate consumed lines."""

    design = "naive-prefetch"


class InvalidateConsumedReceiver(_PrefetchingReceiver):
    """③ ② plus invalidate-once-consumed."""

    design = "invalidate-consumed"
    invalidate_consumed = True


class InvalidatePrefetchedReceiver(_PrefetchingReceiver):
    """④ ③ plus invalidate the prefetched window after empty polls (Oasis)."""

    design = "invalidate-prefetched"
    invalidate_consumed = True
    invalidate_prefetched = True


RECEIVER_DESIGNS = {
    cls.design: cls
    for cls in (
        BypassCacheReceiver,
        NaivePrefetchReceiver,
        InvalidateConsumedReceiver,
        InvalidatePrefetchedReceiver,
    )
}


def make_receiver(design: str, layout, cache, **kwargs) -> ChannelReceiver:
    """Construct a receiver by Figure 6 design name."""
    try:
        cls = RECEIVER_DESIGNS[design]
    except KeyError:
        raise ValueError(
            f"unknown design {design!r}; choose from {sorted(RECEIVER_DESIGNS)}"
        ) from None
    if cls is BypassCacheReceiver:
        kwargs.pop("prefetch_depth", None)
    return cls(layout, cache, **kwargs)
