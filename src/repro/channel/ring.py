"""Circular-buffer layout for Oasis message channels (§3.2.2).

A channel is a region of shared CXL memory holding ``slots`` fixed-size
messages (16 B for the network engine, 64 B for the storage engine) followed
by an 8 B *consumed counter* on its own cache line.

The most significant bit of each message's first byte is the **epoch bit**:
the sender toggles it on every ring wrap, so the receiver can distinguish a
fresh message from a leftover of the previous lap without any other shared
state.  Message payloads must therefore keep their first byte below 0x80
(all Oasis opcodes do).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import CACHE_LINE
from ..errors import ChannelError
from ..mem.layout import Region, align_up

__all__ = ["RingLayout", "encode_slot", "decode_slot"]


def encode_slot(payload: bytes, epoch: int) -> bytes:
    """Stamp ``payload`` with ``epoch`` (0 or 1) in the MSB of byte 0."""
    if not payload:
        raise ChannelError("empty payload")
    if payload[0] & 0x80:
        raise ChannelError("payload first byte must leave the epoch bit clear")
    if epoch not in (0, 1):
        raise ChannelError(f"epoch must be 0 or 1, got {epoch}")
    return bytes([payload[0] | (epoch << 7)]) + payload[1:]


def decode_slot(raw: bytes) -> tuple[bytes, int]:
    """Split a raw slot into ``(payload, epoch)``."""
    if not raw:
        raise ChannelError("empty slot")
    epoch = raw[0] >> 7
    return bytes([raw[0] & 0x7F]) + raw[1:], epoch


@dataclass(frozen=True)
class RingLayout:
    """Address arithmetic for one ring in shared memory.

    The derived geometry (``messages_per_line``, ``lines``, ``counter_addr``)
    is computed once at construction -- layouts are frozen, and the datapath
    reads these on hot paths.
    """

    region: Region
    slots: int
    message_size: int

    # Derived geometry -- messages_per_line, lines, counter_addr -- is set by
    # __post_init__ via object.__setattr__ (the dataclass is frozen) and is
    # deliberately not part of the field list: construction, equality and
    # repr stay keyed on the three inputs alone.

    def __post_init__(self):
        if self.slots < 2 or self.slots & (self.slots - 1):
            raise ChannelError("slots must be a power of two >= 2")
        if self.message_size not in (16, 64):
            raise ChannelError("message_size must be 16 or 64")
        if self.region.size < self.required_bytes(self.slots, self.message_size):
            raise ChannelError(
                f"region of {self.region.size} B too small for "
                f"{self.slots} x {self.message_size} B ring"
            )
        array_bytes = align_up(self.slots * self.message_size, CACHE_LINE)
        object.__setattr__(self, "messages_per_line", CACHE_LINE // self.message_size)
        object.__setattr__(self, "lines", array_bytes // CACHE_LINE)
        object.__setattr__(self, "counter_addr", self.region.base + array_bytes)

    @staticmethod
    def required_bytes(slots: int, message_size: int) -> int:
        """Region size needed: slot array + counter on its own line."""
        return align_up(slots * message_size, CACHE_LINE) + CACHE_LINE

    def slot_addr(self, seq: int) -> int:
        """Byte address of the slot for message sequence number ``seq``."""
        return self.region.base + (seq % self.slots) * self.message_size

    def slot_line_addr(self, seq: int) -> int:
        """Base address of the cache line containing ``seq``'s slot."""
        return self.slot_addr(seq) & ~(CACHE_LINE - 1)

    def expected_epoch(self, seq: int) -> int:
        """Epoch bit value a fresh message with sequence ``seq`` carries.

        Lap 0 uses epoch 1 so that never-written (zero-filled) slots decode
        as *old*; each ring wrap toggles the bit.
        """
        return 1 - ((seq // self.slots) & 1)

    def is_line_start(self, seq: int) -> bool:
        return self.slot_addr(seq) % CACHE_LINE == 0

    def is_line_end(self, seq: int) -> bool:
        return (self.slot_addr(seq) + self.message_size) % CACHE_LINE == 0
