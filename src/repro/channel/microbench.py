"""Virtual-time microbenchmark for one-way message passing (Figure 6).

Mirrors the paper's two-socket setup (§3.2.2): one sender core and one
receiver core, each behind its own non-coherent cache, exchanging fixed-size
messages through a ring in shared CXL memory.  The harness interleaves the
two actors in global virtual-time order so that the *functional* ring state
(including staleness) is temporally consistent, and layers two timing
refinements on top of the per-operation CPU costs:

* **posted-write flight time** -- a CLWB'd line lands in the pool
  ``cxl_write_ns`` after the writeback executes (via the cache's
  ``writeback_hook``);
* **memory-level parallelism** -- prefetched lines arrive ``cxl_load_ns``
  after issue; touching a line still in flight stalls the receiver for the
  remaining time, while demand misses serialise.  This is what separates
  design ② (serialised invalidate+miss per line, ~8.6 MOp/s) from designs
  ③/④ (pipelined prefetches, ~87 MOp/s).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..config import CACHE_LINE, OasisConfig
from ..mem.cache import HostCache
from ..mem.cxl import CXLMemoryPool
from ..mem.layout import Region
from .designs import make_receiver
from .protocol import ChannelSender, TimingHooks
from .ring import RingLayout

__all__ = ["ChannelMicrobench", "MicrobenchResult", "sweep_designs"]

_PAYLOAD16 = struct.Struct("<BHIQx")  # opcode, size, ip, pointer + 1 pad byte


@dataclass
class MicrobenchResult:
    """One (design, offered-load) data point."""

    design: str
    offered_mops: float            # inf for closed-loop saturation runs
    achieved_mops: float
    latency_p50_us: float
    latency_p99_us: float
    latency_mean_us: float
    messages: int

    def row(self) -> str:
        offered = "sat" if np.isinf(self.offered_mops) else f"{self.offered_mops:6.1f}"
        return (
            f"{self.design:<22} offered={offered} MOp/s  "
            f"achieved={self.achieved_mops:6.2f} MOp/s  "
            f"p50={self.latency_p50_us:5.2f} us  p99={self.latency_p99_us:5.2f} us"
        )


class _PipelineTiming(TimingHooks):
    """Tracks in-flight prefetches; `clock_ns` is advanced by the harness."""

    def __init__(self, cxl_load_ns: float):
        self.cxl_load_ns = cxl_load_ns
        self.clock_ns = 0.0
        self.ready: Dict[int, float] = {}

    def on_prefetch_issued(self, line_index: int) -> None:
        self.ready[line_index] = self.clock_ns + self.cxl_load_ns

    def on_demand_fill(self, line_index: int) -> None:
        self.ready.pop(line_index, None)

    def on_invalidate(self, line_index: int) -> None:
        self.ready.pop(line_index, None)

    def hit_stall_ns(self, line_index: int) -> float:
        ready_at = self.ready.pop(line_index, None)
        if ready_at is None:
            return 0.0
        return max(0.0, ready_at - self.clock_ns)


class ChannelMicrobench:
    """Drive one channel design at one offered load in virtual time."""

    #: sender busy-wait before retrying a full ring, ns
    RETRY_NS = 100.0
    #: sender flushes a partial line if the next message is further out
    FLUSH_LAG_NS = 200.0

    def __init__(
        self,
        design: str = "invalidate-prefetched",
        config: Optional[OasisConfig] = None,
        slots: Optional[int] = None,
        message_size: int = 16,
        prefetch_depth: Optional[int] = None,
        counter_batch: Optional[int] = None,
    ):
        self.config = config or OasisConfig()
        self.design = design
        self.slots = slots if slots is not None else self.config.datapath.channel_slots
        self.message_size = message_size
        self.prefetch_depth = (
            prefetch_depth if prefetch_depth is not None
            else self.config.datapath.prefetch_depth
        )
        self.counter_batch = counter_batch
        self.timings = self.config.cxl.timings

        ring_bytes = RingLayout.required_bytes(self.slots, message_size)
        self.pool = CXLMemoryPool(self.config.cxl, size=ring_bytes)
        self.layout = RingLayout(Region(0, ring_bytes, "microbench-ring"),
                                 self.slots, message_size)
        self.sender_cache = HostCache(self.pool, "sender", timings=self.timings)
        self.receiver_cache = HostCache(self.pool, "receiver", timings=self.timings)
        self.sender = ChannelSender(self.layout, self.sender_cache)
        self.pipeline = _PipelineTiming(self.timings.cxl_load_ns)
        kwargs = dict(counter_batch=self.counter_batch, timing=self.pipeline)
        if design != "bypass-cache":
            kwargs["prefetch_depth"] = self.prefetch_depth
        self.receiver = make_receiver(design, self.layout, self.receiver_cache, **kwargs)

        # Posted writes from either cache land in the pool after a flight time.
        self._pending: List[tuple] = []  # (apply_time_ns, line_index, data)
        self._actor_now = 0.0
        self.sender_cache.writeback_hook = self._delayed_writeback
        self.receiver_cache.writeback_hook = self._delayed_writeback

    # -- delayed visibility ----------------------------------------------------

    def _delayed_writeback(self, line_index: int, data: bytes, category: str) -> None:
        self._pending.append((self._actor_now + self.timings.cxl_write_ns, line_index, data))

    def _apply_pending(self, up_to_ns: float) -> None:
        if not self._pending:
            return
        remaining = []
        for apply_at, line_index, data in self._pending:
            if apply_at <= up_to_ns:
                self.pool.write_line(line_index, data)
            else:
                remaining.append((apply_at, line_index, data))
        self._pending = remaining

    # -- main loop ----------------------------------------------------------------

    def run(
        self,
        n_messages: int = 30_000,
        interval_ns: Optional[float] = None,
        warmup_fraction: float = 0.2,
    ) -> MicrobenchResult:
        """Send ``n_messages``; ``interval_ns=None`` means closed-loop saturation."""
        if interval_ns is None:
            arrivals = np.zeros(n_messages)
            offered = float("inf")
        else:
            arrivals = np.arange(n_messages, dtype=float) * interval_ns
            offered = 1e3 / interval_ns  # MOp/s

        sender_clock = 0.0
        receiver_clock = 0.0
        send_times: Dict[int, float] = {}
        recv_times: List[float] = []
        latencies: List[float] = []
        next_msg = 0
        received = 0

        while received < n_messages:
            if next_msg < n_messages:
                next_send_t = max(sender_clock, arrivals[next_msg])
            else:
                next_send_t = float("inf")

            if next_send_t <= receiver_clock:
                # -- sender step
                self._apply_pending(next_send_t)
                self._actor_now = next_send_t
                payload = _PAYLOAD16.pack(1, self.message_size, next_msg & 0xFFFFFFFF,
                                          next_msg)
                payload = payload.ljust(self.message_size, b"\x00")
                ok, cost = self.sender.try_send(payload)
                if ok:
                    send_times[self.sender.next_seq - 1] = next_send_t
                    sender_clock = next_send_t + cost
                    no_more_soon = (
                        next_msg + 1 >= n_messages
                        or arrivals[next_msg + 1] > sender_clock + self.FLUSH_LAG_NS
                    )
                    if no_more_soon:
                        self._actor_now = sender_clock
                        sender_clock += self.sender.flush()
                    next_msg += 1
                else:
                    sender_clock = next_send_t + cost + self.RETRY_NS
            else:
                # -- receiver step
                self._apply_pending(receiver_clock)
                self.pipeline.clock_ns = receiver_clock
                payload, cost = self.receiver.poll()
                receiver_clock += max(cost, 1.0)
                if payload is not None:
                    seq = self.receiver.next_seq - 1
                    latencies.append(receiver_clock - send_times.pop(seq))
                    recv_times.append(receiver_clock)
                    received += 1

        skip = int(len(latencies) * warmup_fraction)
        lat = np.asarray(latencies[skip:]) / 1e3  # us
        times = np.asarray(recv_times[skip:])
        if len(times) > 1 and times[-1] > times[0]:
            achieved = (len(times) - 1) / (times[-1] - times[0]) * 1e3  # MOp/s
        else:
            achieved = 0.0
        return MicrobenchResult(
            design=self.design,
            offered_mops=offered,
            achieved_mops=achieved,
            latency_p50_us=float(np.percentile(lat, 50)) if len(lat) else 0.0,
            latency_p99_us=float(np.percentile(lat, 99)) if len(lat) else 0.0,
            latency_mean_us=float(lat.mean()) if len(lat) else 0.0,
            messages=len(lat),
        )


def sweep_designs(
    designs: Sequence[str] = (
        "bypass-cache",
        "naive-prefetch",
        "invalidate-consumed",
        "invalidate-prefetched",
    ),
    offered_mops: Sequence[float] = (0.5, 1, 2, 4, 8, 14, 20, 30, 50, 80),
    n_messages: int = 30_000,
    slots: Optional[int] = None,
    config: Optional[OasisConfig] = None,
) -> Dict[str, List[MicrobenchResult]]:
    """Reproduce Figure 6: throughput/latency curves per design.

    For each design, runs every offered load whose rate the design can still
    sustain (points beyond saturation are reported at the saturated rate,
    matching how the paper's open-loop plot flattens), plus a closed-loop
    saturation point that pins the maximum throughput.
    """
    results: Dict[str, List[MicrobenchResult]] = {}
    for design in designs:
        points = []
        # The saturation point needs several ring laps so the cold-start
        # transient (empty polls while sender and receiver run in lockstep)
        # is outside the measured window.
        bench = ChannelMicrobench(design, config=config, slots=slots)
        sat_messages = max(n_messages, 4 * bench.slots)
        sat = bench.run(sat_messages)
        for load in offered_mops:
            bench = ChannelMicrobench(design, config=config, slots=slots)
            points.append(bench.run(n_messages, interval_ns=1e3 / load))
        points.append(sat)
        results[design] = points
    return results
