"""One module per paper table/figure; each has ``run()`` and ``main()``.

See DESIGN.md's per-experiment index for the mapping to paper results, and
``runner.main()`` to regenerate everything.
"""

from . import (  # noqa: F401
    fig2,
    fig3,
    fig6,
    fig8,
    fig9,
    fig10,
    fig11,
    fig12,
    fig13,
    fig14,
    table1,
    table2,
    table3,
)
from .runner import ALL_EXPERIMENTS

__all__ = [
    "fig2", "fig3", "fig6", "fig8", "fig9", "fig10", "fig11", "fig12",
    "fig13", "fig14", "table1", "table2", "table3", "ALL_EXPERIMENTS",
]
