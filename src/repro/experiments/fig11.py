"""Figure 11: latency-overhead breakdown.

Three configurations: baseline (local NIC, local buffers), baseline with I/O
buffers moved into CXL memory, and full Oasis.  Paper result: buffers-in-CXL
costs almost nothing; nearly all of Oasis's overhead is cross-host message
passing.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..analysis.report import render_table
from .common import scale
from .fig10 import ECHO_LOADS_PPS, PACKET_SIZES, run_echo

__all__ = ["run", "main", "MODES"]

MODES = ("local", "local-cxl-buffers", "oasis")


def run(
    sizes: Sequence[int] = PACKET_SIZES,
    loads: Optional[Dict[str, float]] = None,
    duration_s: Optional[float] = None,
) -> dict:
    loads = loads or ECHO_LOADS_PPS
    duration = duration_s if duration_s is not None else 0.2 * scale()
    results: Dict = {}
    for size in sizes:
        results[size] = {}
        for load_name, pps in loads.items():
            results[size][load_name] = {
                mode: run_echo(mode, size, pps, duration) for mode in MODES
            }
    return results


def main() -> dict:
    results = run()
    rows = []
    for size, loads in results.items():
        for load_name, cell in loads.items():
            base = cell["local"]
            cxl = cell["local-cxl-buffers"]
            oasis = cell["oasis"]
            rows.append((
                size, load_name, base["p50"], cxl["p50"], oasis["p50"],
                cxl["p50"] - base["p50"], oasis["p50"] - cxl["p50"],
            ))
    print(render_table(
        ["size B", "load", "baseline p50", "+CXL buffers p50", "Oasis p50",
         "buffer cost", "messaging cost"],
        rows,
        title="Figure 11: overhead breakdown, us (paper: buffers ~free, "
              "messaging dominates)",
        digits=2,
    ))
    return results


if __name__ == "__main__":
    main()
