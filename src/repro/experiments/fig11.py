"""Figure 11: latency-overhead breakdown.

Three configurations: baseline (local NIC, local buffers), baseline with I/O
buffers moved into CXL memory, and full Oasis.  Paper result: buffers-in-CXL
costs almost nothing; nearly all of Oasis's overhead is cross-host message
passing.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..analysis.report import render_table
from ..analysis.stats import summarize_latencies
from .common import scale
from .fig10 import ECHO_LOADS_PPS, PACKET_SIZES, run_echo

__all__ = ["run", "run_attribution", "main", "MODES"]

MODES = ("local", "local-cxl-buffers", "oasis")


def run(
    sizes: Sequence[int] = PACKET_SIZES,
    loads: Optional[Dict[str, float]] = None,
    duration_s: Optional[float] = None,
) -> dict:
    loads = loads or ECHO_LOADS_PPS
    duration = duration_s if duration_s is not None else 0.2 * scale()
    results: Dict = {}
    for size in sizes:
        results[size] = {}
        for load_name, pps in loads.items():
            results[size][load_name] = {
                mode: run_echo(mode, size, pps, duration) for mode in MODES
            }
    return results


def run_attribution(packet_size: int = 75, rate_pps: float = 20_000.0,
                    duration_s: Optional[float] = None) -> dict:
    """Cross-check the Fig 11 breakdown against flow-derived attribution.

    Fig 11 infers the messaging cost *indirectly*, by differencing mode-level
    p50s.  Flow tracing measures it *directly*: every request's RTT is
    decomposed into named stage segments, so the extra time Oasis spends in
    the fe<->be message channels (``chan.*`` stages, doorbell hops instead of
    local queues) should account for essentially all of the inferred
    messaging cost.  Returns per-mode stage p50s plus the derived comparison.
    """
    from ..workloads.echo import EchoClient
    from .common import SERVER_IP, build_echo_pod

    duration = duration_s if duration_s is not None else 0.1 * scale()
    results: Dict = {}
    for mode in MODES:
        pod, inst, client_ep, _ = build_echo_pod(mode, remote=(mode == "oasis"))
        pod.enable_flow_tracing()
        client = EchoClient(pod.sim, client_ep, SERVER_IP,
                            packet_size=packet_size, rate_pps=rate_pps,
                            metrics=pod.metrics, flows=pod.flows)
        client.start(duration)
        pod.run(duration + 0.02)
        pod.stop()
        attribution = pod.flows.attribution
        results[mode] = {
            "rtt_p50_us": summarize_latencies(
                client.rtt_hist.observations)["p50"],
            "flow_p50_us": attribution.total_percentile(50),
            "stage_p50_us": attribution.stage_p50s(),
            "flows": pod.flows.completed,
            "conservation_violations": len(pod.flows.check_conservation()),
        }

    def channel_us(mode: str) -> float:
        return sum(v for stage, v in results[mode]["stage_p50_us"].items()
                   if stage.startswith("chan."))

    messaging = (results["oasis"]["flow_p50_us"]
                 - results["local-cxl-buffers"]["flow_p50_us"])
    channel_delta = channel_us("oasis") - channel_us("local-cxl-buffers")
    results["derived"] = {
        "buffer_cost_us": (results["local-cxl-buffers"]["flow_p50_us"]
                           - results["local"]["flow_p50_us"]),
        "messaging_cost_us": messaging,
        "channel_stage_delta_us": channel_delta,
        "channel_share_of_messaging": (channel_delta / messaging
                                       if messaging else float("nan")),
    }
    return results


def main() -> dict:
    results = run()
    rows = []
    for size, loads in results.items():
        for load_name, cell in loads.items():
            base = cell["local"]
            cxl = cell["local-cxl-buffers"]
            oasis = cell["oasis"]
            rows.append((
                size, load_name, base["p50"], cxl["p50"], oasis["p50"],
                cxl["p50"] - base["p50"], oasis["p50"] - cxl["p50"],
            ))
    print(render_table(
        ["size B", "load", "baseline p50", "+CXL buffers p50", "Oasis p50",
         "buffer cost", "messaging cost"],
        rows,
        title="Figure 11: overhead breakdown, us (paper: buffers ~free, "
              "messaging dominates)",
        digits=2,
    ))

    attr = run_attribution()
    stage_rows = []
    for mode in MODES:
        cell = attr[mode]
        chan_us = sum(v for stage, v in cell["stage_p50_us"].items()
                      if stage.startswith("chan."))
        stage_rows.append((mode, cell["rtt_p50_us"], cell["flow_p50_us"],
                           chan_us, cell["conservation_violations"]))
    derived = attr["derived"]
    print()
    print(render_table(
        ["mode", "rtt p50", "flow p50", "chan stages p50", "violations"],
        stage_rows,
        title="Flow-derived attribution cross-check (per-stage decomposition "
              "of the same RTTs)",
        digits=2,
    ))
    print(f"\nmessaging cost {derived['messaging_cost_us']:.2f} us vs "
          f"channel-stage delta {derived['channel_stage_delta_us']:.2f} us "
          f"({derived['channel_share_of_messaging']:.0%} attributed to "
          f"fe<->be channels)")
    results["attribution"] = attr
    return results


if __name__ == "__main__":
    main()
