"""Figure 14: memcached (reliable transport) P99 latency through a failover.

Paper result: P99 spikes at the moment of NIC failure and recovers within
~133 ms -- longer than UDP's 38 ms because the reliable transport
retransmits the packets lost during the interruption and delivers them late,
temporarily inflating client-observed latency.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..analysis.report import render_table
from ..core.pod import CXLPod
from ..faults import FaultPlan, FaultSpec
from ..workloads.apps import APP_PROFILES, AppClient, AppServer
from ..workloads.echo import EchoServer
from .common import CLIENT_IP, SERVER_IP, build_echo_pod, scale

__all__ = ["run", "main"]


def run(
    duration_s: Optional[float] = None,
    rate_rps: float = 3000.0,
    fail_at_s: Optional[float] = None,
    bin_s: float = 0.1,
    seed: int = 5,
) -> dict:
    duration = duration_s if duration_s is not None else 10.0 * scale()
    fail_at = fail_at_s if fail_at_s is not None else duration / 2 + 0.002

    pod, inst, client_ep, nic0 = build_echo_pod("oasis", remote=True,
                                                backup_nic=True)
    pod.enable_raft()
    profile = APP_PROFILES["memcached"]
    rng = np.random.default_rng(seed)
    AppServer(pod.sim, inst, profile, rng, port=11211)
    client = AppClient(pod.sim, client_ep, SERVER_IP, profile, rate_rps,
                       np.random.default_rng(seed + 1), server_port=11211)
    client.start(duration)
    injector = pod.inject_faults(FaultPlan(
        [FaultSpec(kind="switch.port_down", target=nic0.name, at=fail_at)],
        name="fig14-port-down",
    ))
    pod.run(duration + 1.5)
    pod.stop()

    timeline = client.p99_timeline(bin_s, duration)
    # Baseline P99: bins well before the failure.
    pre = timeline[: max(1, int(fail_at / bin_s) - 2)]
    baseline_p99 = float(np.nanmedian(pre))
    # Recovery: last bin whose P99 exceeds 3x the pre-failure baseline.
    threshold = 3.0 * baseline_p99
    spike_bins = [i for i, v in enumerate(timeline)
                  if v == v and v > threshold and i * bin_s >= fail_at - bin_s]
    if spike_bins:
        recovery_ms = (spike_bins[-1] + 1) * bin_s * 1000 - fail_at * 1000
        peak_ms = float(np.nanmax(timeline[spike_bins[0]:spike_bins[-1] + 1])) / 1000
    else:
        recovery_ms = 0.0
        peak_ms = 0.0
    return {
        "timeline_p99_us": timeline,
        "baseline_p99_us": baseline_p99,
        "recovery_ms": float(recovery_ms),
        "peak_p99_ms": peak_ms,
        "retransmits": client.sock.retransmits,
        "fault_events": [event.signature() for event in injector.events],
        "sent": client.sent,
        "completed": len(client.latencies_us),
        "fail_at_s": fail_at,
        "bin_s": bin_s,
    }


def main() -> dict:
    results = run()
    timeline = results["timeline_p99_us"]
    bin_s = results["bin_s"]
    window = [
        (f"{i * bin_s:.1f}", round(v, 1) if v == v else "-")
        for i, v in enumerate(timeline)
        if abs(i * bin_s - results["fail_at_s"]) < 0.5
    ]
    print(render_table(
        ["time s", "P99 us"], window,
        title="Figure 14b: memcached P99 around the failure",
    ))
    print()
    print(render_table(
        ["metric", "value"],
        [("baseline P99 (us)", round(results["baseline_p99_us"], 1)),
         ("peak P99 (ms)", round(results["peak_p99_ms"], 1)),
         ("recovery time (ms)", round(results["recovery_ms"], 1)),
         ("paper recovery (ms)", 133),
         ("retransmits", results["retransmits"])],
        title="Figure 14: P99 recovery after NIC failover",
    ))
    return results


if __name__ == "__main__":
    main()
