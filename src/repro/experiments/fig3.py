"""Figure 3: inbound traffic of four busy-rack hosts, 10 us granularity.

Paper result: traffic is highly bursty -- host 1 peaks near 40 Gbps yet its
P99 utilization is under 3 % while P99.99 reaches ~39 %.
"""

from __future__ import annotations

import numpy as np

from ..analysis.report import render_table
from ..workloads.traces import RACK_A_PARAMS, generate_trace

__all__ = ["run", "main"]


def run(seed: int = 1000) -> dict:
    traces = [
        generate_trace(params, np.random.default_rng(seed + i))
        for i, params in enumerate(RACK_A_PARAMS)
    ]
    hosts = []
    for i, trace in enumerate(traces):
        series = trace.utilization_series()
        hosts.append({
            "host": i + 1,
            "peak_gbps": float(series.max()) * trace.params.nic_gbps,
            "mean_util": trace.mean_utilization,
            "p99_util": trace.utilization_percentile(99),
            "p9999_util": trace.utilization_percentile(99.99),
            "packets": len(trace.times),
        })
    return {"hosts": hosts, "traces": traces}


def main() -> dict:
    results = run()
    rows = [
        (h["host"], h["packets"], h["peak_gbps"], h["mean_util"] * 100,
         h["p99_util"] * 100, h["p9999_util"] * 100)
        for h in results["hosts"]
    ]
    print(render_table(
        ["host", "packets", "peak Gbps", "mean %", "P99 %", "P99.99 %"],
        rows,
        title="Figure 3: rack A inbound traffic, 1 s at 10 us bins "
              "(paper host 1: peak ~40 Gbps, P99 < 3 %, P99.99 ~39 %)",
        digits=1,
    ))
    return results


if __name__ == "__main__":
    main()
