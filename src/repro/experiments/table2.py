"""Table 2: NIC bandwidth utilization at P99.99, two racks x four hosts.

Paper result (inbound): rack A 39/30/0/23 % per host with 10 % aggregated;
rack B 39/75/52/79 % with 20 % aggregated -- i.e. four hosts could share a
single NIC, raising pooled utilization from ~20 % to ~80 %.
"""

from __future__ import annotations

import numpy as np

from ..analysis.report import render_table
from ..analysis.stats import utilization_percentile
from ..workloads.traces import RACK_A_PARAMS, RACK_B_PARAMS, PacketTrace, generate_trace

__all__ = ["run", "main"]

PAPER = {
    "A": ([39, 30, 0, 23], 10),
    "B": ([39, 75, 52, 79], 20),
}


def run(seed: int = 1000, crosscheck: bool = False, rack: bool = False,
        rack_hosts: int = 32, port_limit: int = 4) -> dict:
    """Table 2 study; ``rack=True`` adds a 32-host rack-scale aggregation.

    The rack study tiles the eight Table 2 host profiles across
    ``rack_hosts`` hosts (fresh seeds per host), then compares the NIC count
    covering the *whole-rack* P99.99 aggregate -- floored at
    ``ceil(hosts / port_limit)`` by the multi-headed device's head count --
    against pairing the same hosts two at a time (the 2-host pods earlier
    PRs simulated, one shared NIC minimum per pair).  ``beats_pairs`` is
    the acceptance flag: rack-wide pooling must need fewer NICs.
    """
    racks = {}
    for rack_name, params in (("A", RACK_A_PARAMS), ("B", RACK_B_PARAMS)):
        traces = [
            generate_trace(p, np.random.default_rng(seed + i))
            for i, p in enumerate(params)
        ]
        per_host = [t.utilization_percentile(99.99) for t in traces]
        agg = PacketTrace.aggregate(traces)
        # Aggregated column: combined traffic vs the combined NIC capacity.
        agg_util = utilization_percentile(
            agg.times, agg.sizes, params[0].duration_s,
            len(params) * params[0].line_bytes_per_sec, 99.99,
        )
        racks[rack_name] = {"per_host": per_host, "aggregated": agg_util}
        if crosscheck:
            # Stream each host's windowed utilization through the fleet
            # pipeline's fixed-memory P-square sketch and compare its p99
            # against the exact (store-everything) percentile Table 2 uses.
            from ..obs.fleet import P2Quantile

            # On these bursty mostly-idle series (60-98 % exact zeros) the
            # five-marker sketch can drift within the tail, so the contract
            # is neighbourhood membership: the estimate must land between
            # the exact p98 and p99.9.  (On continuous distributions it
            # tracks p99 to a few percent -- see tests/test_fleet.py.)
            sketch_p99 = []
            exact_p99 = []
            exact_band = []
            for t in traces:
                series = t.utilization_series()
                sketch = P2Quantile(0.99)
                for u in series:
                    sketch.observe(float(u))
                sketch_p99.append(sketch.value)
                exact_p99.append(float(np.percentile(series, 99.0)))
                exact_band.append((float(np.percentile(series, 98.0)),
                                   float(np.percentile(series, 99.9))))
            racks[rack_name]["crosscheck"] = {"sketch_p99": sketch_p99,
                                              "exact_p99": exact_p99,
                                              "exact_band": exact_band}
    if rack:
        params = list(RACK_A_PARAMS) + list(RACK_B_PARAMS)
        tiled = [params[i % len(params)] for i in range(rack_hosts)]
        traces = [generate_trace(p, np.random.default_rng(seed + 100 + i))
                  for i, p in enumerate(tiled)]
        duration = tiled[0].duration_s
        capacity = sum(p.line_bytes_per_sec for p in tiled)
        agg = PacketTrace.aggregate(traces)
        agg_util = utilization_percentile(
            agg.times, agg.sizes, duration, capacity, 99.99)
        # NICs covering the rack-wide P99.99 peak, in whole 100 Gbit
        # units, floored by the multi-headed port limit.
        unit = 100e9 / 8.0
        peak_bytes = agg_util * capacity
        rack_nics = max(1, int(np.ceil(peak_bytes / unit - 1e-9)),
                        int(np.ceil(rack_hosts / port_limit)))
        # Baseline: the same hosts pooled two at a time (each pair needs
        # at least one shared NIC sized for *its* P99.99 peak).
        pair_utils = []
        pair_nics = 0
        for i in range(0, rack_hosts, 2):
            pair = PacketTrace.aggregate(traces[i:i + 2])
            pair_cap = sum(p.line_bytes_per_sec for p in tiled[i:i + 2])
            u = utilization_percentile(
                pair.times, pair.sizes, duration, pair_cap, 99.99)
            pair_utils.append(u)
            pair_nics += max(1, int(np.ceil(u * pair_cap / unit - 1e-9)))
        racks["rack"] = {
            "hosts": rack_hosts,
            "port_limit": port_limit,
            "per_host": [t.utilization_percentile(99.99) for t in traces],
            "aggregated": agg_util,
            "nics_needed": rack_nics,
            "pair_mean_p9999": float(np.mean(pair_utils)),
            "pair_nics_needed": pair_nics,
            "saved_vs_pairs": 1.0 - rack_nics / pair_nics,
            "beats_pairs": rack_nics < pair_nics,
        }
    return racks


def main() -> dict:
    racks = run()
    rows = []
    for rack, data in racks.items():
        paper_hosts, paper_agg = PAPER[rack]
        rows.append(
            [f"Rack {rack} (measured)"]
            + [u * 100 for u in data["per_host"]]
            + [data["aggregated"] * 100]
        )
        rows.append([f"Rack {rack} (paper, in)"] + paper_hosts + [paper_agg])
    print(render_table(
        ["", "Host 1", "Host 2", "Host 3", "Host 4", "Aggregated"],
        rows,
        title="Table 2: NIC bandwidth utilization at P99.99 (%)",
        digits=0,
    ))
    return racks


if __name__ == "__main__":
    main()
