"""Table 3: CXL link bandwidth used by Oasis under varying network load.

Paper result (about 4 MOp/s of NIC operations):

| load          | payload GB/s | message GB/s | total GB/s |
|---------------|--------------|--------------|------------|
| idle          | 0.0          | 0.2          | 0.2        |
| busy (75 B)   | 0.7          | 1.6          | 2.3        |
| busy (1500 B) | 12.0         | 1.5          | 13.5       |

With 1500 B packets, ~89 % of the link traffic is payload buffers.

Methodology here: the DES replays a scaled-down packet rate, measures CXL
bytes per NIC operation from the pool's per-category counters, and scales to
the paper's 4 MOp/s operating point.  Idle polling is not simulated
event-by-event (see :class:`repro.core.engine.Driver`); its bandwidth is the
analytic product of polling cores and the idle poll cycle.
"""

from __future__ import annotations

from typing import Optional

from ..analysis.report import render_table
from ..workloads.echo import EchoClient
from .common import CLIENT_IP, SERVER_IP, build_echo_pod, scale

__all__ = ["run", "main", "idle_poll_bandwidth"]

#: idle invalidate+fence+demand-miss cycle on the current ring line, ns
IDLE_POLL_CYCLE_NS = 960.0
#: dedicated polling cores in the paper's two-host setup (fe, fe, be)
IDLE_POLLING_CORES = 3
#: Table 3's operating point: NIC operations per second
TARGET_OPS = 4e6


def idle_poll_bandwidth(cores: int = IDLE_POLLING_CORES,
                        cycle_ns: float = IDLE_POLL_CYCLE_NS) -> float:
    """Idle busy-polling traffic in bytes/s (one 64 B line per cycle)."""
    return cores * 64.0 / (cycle_ns * 1e-9)


def _measure_busy(packet_size: int, rate_pps: float, duration_s: float) -> dict:
    pod, inst, client_ep, _ = build_echo_pod("oasis", remote=True)
    client = EchoClient(pod.sim, client_ep, SERVER_IP,
                        packet_size=packet_size, rate_pps=rate_pps)
    client.start(duration_s)
    pod.run(duration_s + 0.02)
    pod.stop()
    # Pod-wide CXL bytes per category, read from the metrics registry (the
    # cxl_link_bytes collector observes the same LinkStats the legacy
    # pod.cxl_traffic_by_category() merges, so the numbers are identical).
    snap = pod.metrics.snapshot(time=pod.sim.now)
    traffic = {cat: nbytes for (cat,), nbytes
               in snap.aggregate("cxl_link_bytes", by=("category",)).items()}
    # Each echoed packet = one RX + one TX NIC operation.
    ops = 2.0 * client.stats.received
    payload_per_op = traffic.get("payload", 0) / max(ops, 1)
    message_per_op = (traffic.get("message", 0) + traffic.get("counter", 0)) / max(ops, 1)
    return {
        "payload_gbps": payload_per_op * TARGET_OPS / 1e9,
        "message_gbps": message_per_op * TARGET_OPS / 1e9,
        "ops_measured": ops,
    }


def run(duration_s: Optional[float] = None, rate_pps: float = 150_000.0) -> dict:
    duration = duration_s if duration_s is not None else 0.15 * scale()
    idle_gbps = idle_poll_bandwidth() / 1e9
    rows = {
        "idle": {"payload_gbps": 0.0, "message_gbps": idle_gbps},
        "busy_75": _measure_busy(75, rate_pps, duration),
        "busy_1500": _measure_busy(1500, rate_pps, duration),
    }
    for row in rows.values():
        row["total_gbps"] = row["payload_gbps"] + row["message_gbps"]
    return rows


def main() -> dict:
    results = run()
    paper = {"idle": (0.0, 0.2, 0.2), "busy_75": (0.7, 1.6, 2.3),
             "busy_1500": (12.0, 1.5, 13.5)}
    rows = []
    for load, row in results.items():
        p = paper[load]
        rows.append((load, row["payload_gbps"], row["message_gbps"],
                     row["total_gbps"], f"{p[0]}/{p[1]}/{p[2]}"))
    print(render_table(
        ["load", "payload GB/s", "message GB/s", "total GB/s",
         "paper (pay/msg/total)"],
        rows,
        title="Table 3: CXL link bandwidth at the 4 MOp/s operating point",
        digits=2,
    ))
    return results


if __name__ == "__main__":
    main()
