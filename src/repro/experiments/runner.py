"""Run every experiment in sequence (``python -m repro.experiments.runner``).

Set ``OASIS_SCALE`` (e.g. 0.2) to shrink simulated durations for a quick
pass; the default regenerates every table and figure at full scale.  Set
``OASIS_OUT=<dir>`` to also dump each experiment's machine-readable results
as JSON (numpy arrays become lists; non-serialisable objects their repr).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from . import fig2, fig3, fig6, fig8, fig9, fig10, fig11, fig12, fig13, fig14
from . import table1, table2, table3

__all__ = ["ALL_EXPERIMENTS", "main"]

ALL_EXPERIMENTS = [
    ("Table 1 (device parameters)", table1),
    ("Figure 2 (stranding vs pod size)", fig2),
    ("Figure 3 (bursty rack traffic)", fig3),
    ("Table 2 (P99.99 utilization)", table2),
    ("Figure 6 (message channel designs)", fig6),
    ("Figure 8 (web application overhead)", fig8),
    ("Figure 9 (memcached overhead)", fig9),
    ("Figure 10 (UDP echo overhead)", fig10),
    ("Figure 11 (overhead breakdown)", fig11),
    ("Table 3 (CXL link bandwidth)", table3),
    ("Figure 12 (trace-replay multiplexing)", fig12),
    ("Figure 13 (UDP failover)", fig13),
    ("Figure 14 (memcached failover)", fig14),
]


def _jsonable(value):
    """Best-effort conversion of experiment results to JSON."""
    import numpy as np

    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (np.integer, np.floating)):
        return value.item()
    if isinstance(value, (int, float, str, bool)) or value is None:
        return value
    if hasattr(value, "__dict__"):
        return {k: _jsonable(v) for k, v in vars(value).items()
                if not k.startswith("_")}
    return repr(value)


def main() -> None:
    out_dir = os.environ.get("OASIS_OUT")
    if out_dir:
        Path(out_dir).mkdir(parents=True, exist_ok=True)
    for title, module in ALL_EXPERIMENTS:
        print("=" * 72)
        print(title)
        print("=" * 72)
        start = time.time()
        results = module.main()
        print(f"[{title}: {time.time() - start:.1f}s]")
        print()
        if out_dir:
            name = module.__name__.rsplit(".", 1)[-1]
            with open(Path(out_dir) / f"{name}.json", "w") as f:
                json.dump(_jsonable(results), f, indent=1)


if __name__ == "__main__":
    main()
