"""Table 1: NIC/SSD performance requirements (configuration constants).

Not an experiment -- this renders the model's device parameters against the
paper's Table 1 so drift is visible.
"""

from __future__ import annotations

from ..analysis.report import render_table
from ..config import OasisConfig

__all__ = ["run", "main"]


def run() -> dict:
    config = OasisConfig()
    return {
        "nic": {
            "bandwidth_gbs": config.nic.bytes_per_sec / 1e9,
            "paper_bandwidth_gbs": 26.0,   # 200 Gbit with line coding (§2.1)
            "latency_us": "50-110 (cloud), ~4-10 (our small testbed)",
            "count": "1-2",
        },
        "ssd": {
            "bandwidth_gbs": config.ssd.bytes_per_sec / 1e9,
            "paper_bandwidth_gbs": 5.0,
            "read_latency_us": config.ssd.read_latency_us,
            "paper_latency_us": 100.0,
            "count": 6,
        },
    }


def main() -> dict:
    results = run()
    rows = [
        ("NIC GB/s", results["nic"]["bandwidth_gbs"],
         results["nic"]["paper_bandwidth_gbs"]),
        ("SSD GB/s", results["ssd"]["bandwidth_gbs"],
         results["ssd"]["paper_bandwidth_gbs"]),
        ("SSD read latency us", results["ssd"]["read_latency_us"],
         results["ssd"]["paper_latency_us"]),
    ]
    print(render_table(["parameter", "model", "paper"], rows,
                       title="Table 1: device performance parameters",
                       digits=1))
    return results


if __name__ == "__main__":
    main()
