"""Figure 8: Oasis overhead on four web applications.

Paper result: across a Python HTTP server, Rust Rocket, nginx and Apache
Tomcat, Oasis (remote NIC) adds a consistent 4-7 us at P50/P90/P99 under low
and moderate load; near saturation both setups spike alike.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from ..analysis.report import render_table
from ..core.pod import CXLPod
from ..net.packet import make_ip
from ..workloads.apps import APP_PROFILES, AppClient, AppProfile, AppServer
from .common import CLIENT_IP, SERVER_IP, scale

__all__ = ["run", "run_app", "main", "WEB_APPS", "LOAD_LEVELS"]

WEB_APPS = ("python-http", "rocket", "nginx", "tomcat")
#: fraction of the app's single-worker capacity
LOAD_LEVELS = {"low": 0.10, "moderate": 0.45, "high": 0.85}


def run_app(
    profile: AppProfile,
    mode: str,
    load_fraction: float,
    duration_s: float = 0.25,
    seed: int = 11,
) -> dict:
    """One (app, mode, load) cell: returns latency percentiles in us."""
    pod = CXLPod(mode=mode)
    h0 = pod.add_host()
    remote = mode == "oasis"
    h1 = pod.add_host() if remote else h0
    nic = pod.add_nic(h0)
    inst = pod.add_instance(h1 if remote else h0, ip=SERVER_IP, nic=nic)
    rng = np.random.default_rng(seed)
    AppServer(pod.sim, inst, profile, rng)
    client_ep = pod.add_external_client(ip=CLIENT_IP)
    rate = load_fraction * 1e6 / profile.service_mean_us
    client = AppClient(pod.sim, client_ep, SERVER_IP, profile, rate,
                       np.random.default_rng(seed + 1))
    client.start(duration_s)
    pod.run(duration_s + 0.05)
    pod.stop()
    return client.latency_percentiles()


def run(
    apps: Sequence[str] = WEB_APPS,
    loads: Optional[Dict[str, float]] = None,
    duration_s: Optional[float] = None,
) -> dict:
    loads = loads or LOAD_LEVELS
    duration = duration_s if duration_s is not None else 0.25 * scale()
    results: Dict[str, dict] = {}
    for app in apps:
        profile = APP_PROFILES[app]
        results[app] = {}
        for load_name, fraction in loads.items():
            baseline = run_app(profile, "local", fraction, duration)
            oasis = run_app(profile, "oasis", fraction, duration)
            results[app][load_name] = {"baseline": baseline, "oasis": oasis}
    return results


def main() -> dict:
    results = run()
    rows = []
    for app, loads in results.items():
        for load_name, cell in loads.items():
            b, o = cell["baseline"], cell["oasis"]
            rows.append((
                app, load_name,
                b["p50"], o["p50"], o["p50"] - b["p50"],
                b["p99"], o["p99"], o["p99"] - b["p99"],
            ))
    print(render_table(
        ["app", "load", "base p50", "oasis p50", "d(p50)",
         "base p99", "oasis p99", "d(p99)"],
        rows,
        title="Figure 8: web-app latency, us "
              "(paper: Oasis adds a consistent 4-7 us)",
        digits=1,
    ))
    return results


if __name__ == "__main__":
    main()
