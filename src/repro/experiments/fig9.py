"""Figure 9: Oasis overhead on memcached.

Paper result: latency overhead is consistently about 4-7 us at all
percentiles.
"""

from __future__ import annotations

from typing import Optional

from ..analysis.report import render_table
from ..workloads.apps import APP_PROFILES
from .common import scale
from .fig8 import LOAD_LEVELS, run_app

__all__ = ["run", "main"]


def run(duration_s: Optional[float] = None) -> dict:
    duration = duration_s if duration_s is not None else 0.25 * scale()
    profile = APP_PROFILES["memcached"]
    results = {}
    for load_name, fraction in LOAD_LEVELS.items():
        results[load_name] = {
            "baseline": run_app(profile, "local", fraction, duration),
            "oasis": run_app(profile, "oasis", fraction, duration),
        }
    return results


def main() -> dict:
    results = run()
    rows = []
    for load_name, cell in results.items():
        b, o = cell["baseline"], cell["oasis"]
        rows.append((
            load_name,
            b["p50"], o["p50"], o["p50"] - b["p50"],
            b["p90"], o["p90"], o["p90"] - b["p90"],
            b["p99"], o["p99"], o["p99"] - b["p99"],
        ))
    print(render_table(
        ["load", "base p50", "oasis p50", "d(p50)", "base p90", "oasis p90",
         "d(p90)", "base p99", "oasis p99", "d(p99)"],
        rows,
        title="Figure 9: memcached latency, us (paper: +4-7 us everywhere)",
        digits=1,
    ))
    return results


if __name__ == "__main__":
    main()
