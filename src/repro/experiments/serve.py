"""Multi-tenant QoS serving: WFQ isolation against a noisy neighbour (PR 10).

``python -m repro serve`` runs the 3-class tenant mix from
:func:`repro.workloads.tenants.SERVE_PROFILES` against one pooled SSD sized
so the mix saturates only while the noisy neighbour surges:

* **mc**  -- latency-sensitive reads (weight 4, guaranteed rate, 1.5 ms SLO);
* **web** -- diurnal web tier (weight 2, rate swinging sinusoidally);
* **bg**  -- bursty background block I/O (weight 1, brownout-sheddable).

Mid-run the ``bg`` tenant surges to **8x** its configured rate -- far past
the device -- and the per-tenant WFQ at the storage frontend has to make
that tenant eat its *own* excess (per-lane depth caps + CoDel) while the
victims keep their latency and their weighted share.

Two runs from one seed quantify isolation:

* **solo** -- ``mc`` alone on the pod (its no-contention latency baseline);
* **mix**  -- all three tenants plus the surge.

Headline gates (dumped to ``BENCH_pr10.json`` with ``--out``, gated in CI
against ``benchmarks/baseline_serve.json``):

* ``p99_ratio`` -- the victim's mix-run P99 must stay within **1.5x** its
  solo baseline (isolation of latency);
* ``min_share_frac`` -- during the surge every tenant's goodput must reach
  at least **0.9x** its weighted max-min fair share of the measured
  capacity (isolation of throughput; the share is water-filled over
  measured demand, so demand-capped tenants are gated against their own
  offered load);
* per-tenant conservation must hold (the
  :class:`~repro.faults.invariants.InvariantChecker` verdict rides along).

Same seed => byte-identical JSON: arrivals, WFQ ordering, CoDel drops and
the diurnal modulation are all pure functions of (seed, config).
"""

from __future__ import annotations

import json
from dataclasses import replace
from typing import Dict

from ..config import OasisConfig
from ..core.pod import CXLPod
from ..workloads.tenants import SERVE_PROFILES, TenantClient, TenantProfile
from .common import SERVER_IP, scale

__all__ = ["run_serve", "main_serve", "main", "weighted_fair_share"]

#: Same derated drive as the overload sweep: ~9.8k IOPS capacity.
SSD_BANDWIDTH_GBPS = 0.04

#: Noisy-neighbour surge factor on the ``bg`` tenant.
SURGE_FACTOR = 8.0

#: Launch window for serving: small enough that the device queue cannot
#: build head-of-line blocking the WFQ cannot see (measured: window=2 holds
#: the victim P99 ratio at ~1.3x across seeds vs ~12x at the default 32,
#: while costing ~1% of saturated throughput).
SERVE_LAUNCH_WINDOW = 2

P99_RATIO_CEILING = 1.5
SHARE_FRAC_FLOOR = 0.9


def _capacity_iops(config) -> float:
    return config.ssd.bytes_per_sec / config.ssd.block_size


def weighted_fair_share(demands: Dict[str, float],
                        weights: Dict[str, float],
                        capacity: float) -> Dict[str, float]:
    """Weighted max-min (water-filling) allocation of ``capacity``.

    Tenants demanding less than their weighted share are capped at their
    demand and the slack is re-divided among the rest by weight -- the
    fluid-model allocation an ideal WFQ server converges to.
    """
    share = {name: 0.0 for name in demands}
    active = {name for name, demand in demands.items() if demand > 0}
    remaining = capacity
    while active and remaining > 1e-9:
        total_weight = sum(weights[name] for name in active)
        quantum = remaining / total_weight
        capped = [name for name in sorted(active)
                  if demands[name] <= weights[name] * quantum + 1e-12]
        if not capped:
            for name in active:
                share[name] += weights[name] * quantum
            break
        for name in capped:
            share[name] = demands[name]
            remaining -= demands[name]
            active.remove(name)
    return share


def _one_run(seed: int, tenants, pre_s: float, surge_s: float,
             post_s: float) -> dict:
    """One pod run serving ``tenants`` (subset of the 3-class mix).

    Every profile's client is constructed (so RNG substream creation is
    identical across solo and mix runs) but only ``tenants`` are started.
    """
    base_cfg = OasisConfig()
    config = base_cfg.with_(
        seed=seed,
        ssd=replace(base_cfg.ssd, bandwidth_gbps=SSD_BANDWIDTH_GBPS),
        overload=replace(base_cfg.overload, enabled=True,
                         launch_window=SERVE_LAUNCH_WINDOW,
                         brownout_high=0.15, brownout_low=0.05))
    pod = CXLPod(config=config, mode="oasis")
    h0 = pod.add_host()
    h1 = pod.add_host()
    pod.add_nic(h0)
    ssd = pod.add_ssd(h0)
    inst = pod.add_instance(h1, ip=SERVER_IP)
    device = pod.add_block_device(inst, ssd)
    pod.enable_fleet_telemetry(period_s=0.002)

    profiles = SERVE_PROFILES(_capacity_iops(config))
    pod.enable_multi_tenant(
        {name: profile.spec() for name, profile in profiles.items()},
        overload=config.overload)

    clients: Dict[str, TenantClient] = {}
    for name, profile in profiles.items():
        client = TenantClient(pod.sim, device, profile,
                              rng=pod.rng.get(f"serve/{name}"))
        if name in tenants:
            pod.register_tenant_client(client)
            clients[name] = client
    checker = pod.check_invariants(interval_s=0.05)

    duration = pre_s + surge_s + post_s
    for client in clients.values():
        client.start(duration)
    noisy = clients.get("bg")
    if noisy is not None:
        pod.sim.at(pre_s, noisy.set_rate_multiplier, SURGE_FACTOR)
        pod.sim.at(pre_s + surge_s, noisy.set_rate_multiplier, 1.0)
    pod.run(duration + 0.05)
    pod.stop()
    verdict = checker.finish()

    frontend = pod.storage_frontends[h1.name]
    surge_window = (pre_s, pre_s + surge_s)
    per_tenant = {}
    for name, client in clients.items():
        stats = client.stats
        span = surge_s
        offered = sum(
            stats.offered[i] for i in range(len(stats.offered))
            if surge_window[0] <= i * stats.bin_s < surge_window[1])
        per_tenant[name] = {
            "summary": client.summary(),
            "surge_offered_iops": round(offered / span, 3),
            "surge_goodput_iops": round(
                stats.window_goodput_iops(*surge_window), 3),
        }
    return {
        "tenants": sorted(clients),
        "per_tenant": per_tenant,
        "frontend_tenants": frontend.tenant_stats(),
        "wfq": frontend._admission.per_tenant(),
        "invariants_ok": verdict.ok,
        "invariant_violations": [
            {"t": round(v.time, 9), "invariant": v.invariant,
             "detail": v.detail} for v in verdict.violations],
        "tenant_slo_burn": {
            name: round(value, 6) for name, value in sorted(
                pod.fleet.view().tenant_slo_burn().items())},
        "alerts": {
            "fired": pod.fleet.alerts.fired,
            "cleared": pod.fleet.alerts.cleared,
            "log": pod.fleet.alerts.log_json(),
        },
    }


def run_serve(seed: int = 11, pre_s: float = None, surge_s: float = None,
              post_s: float = None) -> dict:
    """Solo baseline + 3-tenant mix from one seed; isolation headline."""
    s = scale()
    if pre_s is None:
        pre_s = max(0.15, 0.3 * s)
    if surge_s is None:
        surge_s = max(0.15, 0.3 * s)
    if post_s is None:
        post_s = max(0.1, 0.2 * s)
    capacity = _capacity_iops(OasisConfig().with_(
        ssd=replace(OasisConfig().ssd, bandwidth_gbps=SSD_BANDWIDTH_GBPS)))
    profiles = SERVE_PROFILES(capacity)

    solo = _one_run(seed, ("mc",), pre_s, surge_s, post_s)
    mix = _one_run(seed, tuple(profiles), pre_s, surge_s, post_s)

    solo_p99 = solo["per_tenant"]["mc"]["summary"]["p99_us"]
    mix_p99 = mix["per_tenant"]["mc"]["summary"]["p99_us"]
    p99_ratio = mix_p99 / solo_p99 if solo_p99 > 0 else float("inf")

    # Throughput isolation at saturation: during the surge, gate each
    # tenant's goodput against its weighted max-min share of the *measured*
    # serving capacity, water-filled over measured offered demand.
    demands = {name: data["surge_offered_iops"]
               for name, data in mix["per_tenant"].items()}
    goodputs = {name: data["surge_goodput_iops"]
                for name, data in mix["per_tenant"].items()}
    weights = {name: profiles[name].weight for name in demands}
    measured_capacity = sum(goodputs.values())
    shares = weighted_fair_share(demands, weights, measured_capacity)
    share_fracs = {
        name: (goodputs[name] / shares[name] if shares[name] > 0 else 1.0)
        for name in sorted(demands)}
    min_share_frac = min(share_fracs.values())

    ok = (p99_ratio <= P99_RATIO_CEILING
          and min_share_frac >= SHARE_FRAC_FLOOR
          and solo["invariants_ok"] and mix["invariants_ok"])
    return {
        "seed": seed,
        "capacity_iops": round(capacity, 3),
        "surge_factor": SURGE_FACTOR,
        "launch_window": SERVE_LAUNCH_WINDOW,
        "pre_s": pre_s,
        "surge_s": surge_s,
        "post_s": post_s,
        "profiles": {
            name: {"weight": profile.weight,
                   "rate_iops": round(profile.rate_iops, 3),
                   "guarantee_iops": round(profile.guarantee_iops, 3),
                   "slo_us": profile.slo_us}
            for name, profile in sorted(profiles.items())},
        "solo": solo,
        "mix": mix,
        "solo_p99_us": round(solo_p99, 3),
        "mix_p99_us": round(mix_p99, 3),
        "p99_ratio": round(p99_ratio, 6),
        "surge_demand_iops": {n: round(v, 3)
                              for n, v in sorted(demands.items())},
        "surge_share_iops": {n: round(v, 3)
                             for n, v in sorted(shares.items())},
        "share_fracs": {n: round(v, 6)
                        for n, v in sorted(share_fracs.items())},
        "min_share_frac": round(min_share_frac, 6),
        "ok": ok,
    }


def _render(result: dict) -> None:
    print(f"multi-tenant serve: capacity {result['capacity_iops']:,.0f} "
          f"IOPS, noisy neighbour x{result['surge_factor']:.0f} for "
          f"{result['surge_s'] * 1e3:.0f} ms "
          f"(launch window {result['launch_window']})")
    for name in sorted(result["mix"]["per_tenant"]):
        data = result["mix"]["per_tenant"][name]
        summary = data["summary"]
        fe = result["mix"]["frontend_tenants"].get(name, {})
        print(f"  {name:<4} w={result['profiles'][name]['weight']:.0f} "
              f"offered {data['surge_offered_iops']:8,.0f} -> goodput "
              f"{data['surge_goodput_iops']:8,.0f} IOPS in surge "
              f"(share {result['share_fracs'][name]:.2f}x fair), "
              f"p99 {summary['p99_us']:8,.0f} us, shed {fe.get('shed', 0)}")
    print(f"  victim   mc p99 solo {result['solo_p99_us']:,.0f} us -> mix "
          f"{result['mix_p99_us']:,.0f} us "
          f"(ratio {result['p99_ratio']:.2f}, ceiling "
          f"{P99_RATIO_CEILING:.1f})")
    burn = result["mix"]["tenant_slo_burn"]
    if burn:
        levels = ", ".join(f"{name}={value:.2f}"
                           for name, value in burn.items())
        print(f"  slo burn {levels}")
    verdict = "PASS" if result["ok"] else "FAIL"
    print(f"  verdict  {verdict}: p99_ratio={result['p99_ratio']:.2f} "
          f"(<= {P99_RATIO_CEILING}), min_share_frac="
          f"{result['min_share_frac']:.2f} (>= {SHARE_FRAC_FLOOR}), "
          f"invariants={'ok' if result['mix']['invariants_ok'] else 'VIOLATED'}")


def main_serve(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description="multi-tenant QoS serving: per-tenant WFQ isolation "
                    "against an 8x noisy neighbour")
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--json", action="store_true",
                        help="print the machine-readable result")
    parser.add_argument("--out", type=str, default=None,
                        help="also write a BENCH-style dump "
                             "(e.g. BENCH_pr10.json)")
    parser.add_argument("--check", action="store_true",
                        help="exit 1 unless the victim's P99 stays within "
                             f"{P99_RATIO_CEILING}x its solo baseline and "
                             "every tenant reaches "
                             f"{SHARE_FRAC_FLOOR}x its fair share")
    args = parser.parse_args(argv)

    result = run_serve(seed=args.seed)
    if args.json:
        print(json.dumps(result, indent=1, sort_keys=True))
    else:
        _render(result)
    if args.out:
        payload = {"results": {"serve": result}}
        with open(args.out, "w") as fh:
            json.dump(payload, fh, indent=1, sort_keys=True)
            fh.write("\n")
        print(f"serve results written to {args.out}")
    if args.check and not result["ok"]:
        print("serve: FAIL -- see verdict above", flush=True)
        return 1
    return 0


def main() -> dict:
    """Experiment-runner entry: the default mix, rendered."""
    result = run_serve()
    _render(result)
    return result


if __name__ == "__main__":   # pragma: no cover
    raise SystemExit(main_serve())
