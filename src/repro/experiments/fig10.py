"""Figure 10: UDP echo round-trip latency, 75 B vs 1500 B packets.

Paper result: Oasis adds 4-7 us regardless of packet size -- the overhead is
message passing, not payload movement.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..analysis.stats import summarize_latencies
from ..analysis.report import render_table
from ..workloads.echo import EchoClient
from .common import CLIENT_IP, SERVER_IP, build_echo_pod, scale

__all__ = ["run", "run_echo", "main", "PACKET_SIZES", "ECHO_LOADS_PPS"]

PACKET_SIZES = (75, 1500)
ECHO_LOADS_PPS = {"low": 20_000.0, "moderate": 100_000.0}


def run_echo(mode: str, packet_size: int, rate_pps: float,
             duration_s: float = 0.2, seed: Optional[int] = None) -> dict:
    """One echo cell; returns RTT percentiles in us.

    With ``seed`` the run is fully deterministic from that one root seed
    (Poisson arrivals drawn from the pod's RNG tree) and the summary gains a
    ``report_json`` field -- the canonical metrics snapshot serialised with
    sorted keys -- so replay tests can assert byte-identical output.
    """
    remote = mode == "oasis"
    config = None
    if seed is not None:
        from ..config import OasisConfig

        config = OasisConfig().with_(seed=seed)
    pod, inst, client_ep, _ = build_echo_pod(mode, remote=remote,
                                             config=config)
    # The pod's flow registry is wired in but stays disabled, so this path
    # doubles as the benchmark for flow tracing's off-mode overhead.
    client = EchoClient(pod.sim, client_ep, SERVER_IP,
                        packet_size=packet_size, rate_pps=rate_pps,
                        rng=pod.rng.get("echo-client") if seed is not None
                        else None,
                        poisson=seed is not None,
                        metrics=pod.metrics, flows=pod.flows)
    client.start(duration_s)
    pod.run(duration_s + 0.02)
    pod.stop()
    # Percentiles come from the registry's echo_rtt_us histogram (keep_raw
    # preserves every observation, so this is numerically identical to the
    # legacy client.stats.latencies_us path it replaced).
    summary = summarize_latencies(client.rtt_hist.observations)
    summary["lost"] = (client.stats.sent
                       - int(pod.metrics.value("echo_rtt_us_count",
                                               client=client.name)))
    if seed is not None:
        import json

        from ..obs.cli import snapshot_json

        summary["report_json"] = json.dumps(
            snapshot_json(pod.metrics.snapshot(pod.sim.now)), sort_keys=True)
    return summary


def run(
    sizes: Sequence[int] = PACKET_SIZES,
    loads: Optional[Dict[str, float]] = None,
    duration_s: Optional[float] = None,
) -> dict:
    loads = loads or ECHO_LOADS_PPS
    duration = duration_s if duration_s is not None else 0.2 * scale()
    results: Dict = {}
    for size in sizes:
        results[size] = {}
        for load_name, pps in loads.items():
            results[size][load_name] = {
                "baseline": run_echo("local", size, pps, duration),
                "oasis": run_echo("oasis", size, pps, duration),
            }
    return results


def main() -> dict:
    results = run()
    rows = []
    for size, loads in results.items():
        for load_name, cell in loads.items():
            b, o = cell["baseline"], cell["oasis"]
            rows.append((
                size, load_name,
                b["p50"], o["p50"], o["p50"] - b["p50"],
                b["p99"], o["p99"], o["p99"] - b["p99"],
            ))
    print(render_table(
        ["size B", "load", "base p50", "oasis p50", "d(p50)",
         "base p99", "oasis p99", "d(p99)"],
        rows,
        title="Figure 10: UDP echo RTT, us "
              "(paper: +4-7 us, independent of packet size)",
        digits=1,
    ))
    return results


if __name__ == "__main__":
    main()
