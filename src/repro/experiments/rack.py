"""Rack-scale scenario: the fig10 workload on every host simultaneously.

``python -m repro rack`` builds a :class:`~repro.core.pod.RackBuilder`
topology (default: the ROADMAP's 32 hosts / 4 pools / ~100 pooled devices,
port limit 4), runs the paper's UDP echo on **every** host at once -- each
instance pinned to a *different* host's NIC inside its pool, so all traffic
crosses the pool -- and drives a synthetic place/release churn through the
sharded, batch-committed control plane while the datapath is under load.

Headline numbers (dumped to ``BENCH_pr8.json`` with ``--out``):

* ``events_per_sec`` / ``wall_per_sim_sec`` -- the PR 6 sim-speed budget at
  rack scale, gated by ``tools/check_bench_regression.py``;
* ``commit_p50_ms`` / ``commit_p99_ms`` -- decide-to-leader-applied latency
  of replicated control commands under group commit;
* ``control_commits_per_sec`` -- control-plane decision throughput;
* ``converged`` -- every Raft replica of every shard matches its shard's
  canonical state at the end of the run.
"""

from __future__ import annotations

import json
import time
from dataclasses import replace
from typing import Optional

import numpy as np

from ..config import OasisConfig
from ..core.pod import RackBuilder
from ..net.packet import make_ip
from ..workloads.echo import EchoClient, EchoServer
from .common import scale

__all__ = ["run_rack", "main_rack", "main"]


def run_rack(
    hosts: int = 32,
    pools: int = 4,
    nics_per_host: int = 2,
    ssds_per_host: int = 1,
    port_limit: Optional[int] = 4,
    packet_size: int = 256,
    rate_pps: float = 20_000.0,
    duration_s: Optional[float] = None,
    seed: int = 21,
    churn: int = 256,
    batch_window_ms: float = 0.2,
    replicas: int = 3,
) -> dict:
    """Sustain the fig10 echo on every host; return the headline metrics."""
    if duration_s is None:
        duration_s = max(0.02, 0.08 * scale())
    base = OasisConfig()
    config = base.with_(
        seed=seed,
        failover=replace(base.failover,
                         commit_batch_window_ms=batch_window_ms))
    builder = RackBuilder(hosts=hosts, pools=pools,
                          nics_per_host=nics_per_host,
                          ssds_per_host=ssds_per_host,
                          port_limit=port_limit, config=config)
    pod = builder.build()
    if replicas > 0:
        pod.enable_raft(replicas=replicas)
        # Let every shard elect its leader before admitting load.
        pod.run(0.12)
    pod.allocator.start_lease_sweeper()

    # One echo server per host, pinned to the *next* host's NIC inside the
    # same pool so every request crosses the pool; one seeded open client.
    clients = []
    for group in pod.groups:
        for gi, host in enumerate(group.hosts):
            i = host.index
            server_ip = make_ip(10, 0, 0, i + 1)
            next_host = group.hosts[(gi + 1) % len(group.hosts)]
            nic = pod.nics[f"nic-{next_host.name}"]
            inst = pod.add_instance(host, ip=server_ip, nic=nic)
            EchoServer(pod.sim, inst)
            endpoint = pod.add_external_client(ip=make_ip(10, 0, 9, i + 1))
            clients.append(EchoClient(
                pod.sim, endpoint, server_ip, packet_size=packet_size,
                rate_pps=rate_pps, rng=pod.rng.get(f"rack-client-{i}"),
                poisson=True, metrics=pod.metrics))

    # Control-plane churn: synthetic leases placed/released while the
    # datapath is hot, so commit latency is measured under load.
    churn_stats = {"placed": 0, "released": 0}
    if churn > 0:
        interval = duration_s / (churn + 1)
        hold = 2.0 * interval

        def _place(ip: int, host_name: str) -> None:
            pod.allocator.place_instance(ip, host_name, 0.2)
            churn_stats["placed"] += 1

        def _release(ip: int) -> None:
            pod.allocator.release_instance(ip, 0.2)
            churn_stats["released"] += 1

        for j in range(churn):
            ip = make_ip(10, 1, j >> 8, (j & 0xFF) + 1)
            host = pod.hosts[j % len(pod.hosts)]
            pod.sim.schedule((j + 1) * interval, _place, ip, host.name)
            pod.sim.schedule((j + 1) * interval + hold, _release, ip)

    for client in clients:
        client.start(duration_s)

    before = pod.sim.processed_events
    t0 = time.perf_counter()
    pod.run(duration_s + 0.005)
    wall = time.perf_counter() - t0
    events = pod.sim.processed_events - before

    # Settle: let the last group-commit windows flush and replicate.
    pod.run(0.1)
    pod.stop()

    latencies = np.concatenate(
        [np.asarray(c.stats.latencies_us, dtype=float) for c in clients
         if c.stats.latencies_us] or [np.zeros(1)])
    commits = np.asarray(pod.allocator.commit_latencies, dtype=float)
    converged = pod.allocator.convergence_ok()
    return {
        "hosts": hosts,
        "pools": pools,
        "devices": builder.device_count(),
        "port_limit": port_limit,
        "batch_window_ms": batch_window_ms,
        "replicas": replicas,
        "seed": seed,
        "duration_s": duration_s,
        "rate_pps": rate_pps,
        "packet_size": packet_size,
        "events": int(events),
        "wall_s": wall,
        "events_per_sec": events / wall if wall > 0 else 0.0,
        "wall_per_sim_sec": wall / duration_s,
        "rtt_p50_us": float(np.percentile(latencies, 50)),
        "rtt_p99_us": float(np.percentile(latencies, 99)),
        "echo_replies": int(sum(len(c.stats.latencies_us) for c in clients)),
        "commits": int(commits.size),
        "commit_p50_ms": (float(np.percentile(commits, 50)) * 1e3
                          if commits.size else 0.0),
        "commit_p99_ms": (float(np.percentile(commits, 99)) * 1e3
                          if commits.size else 0.0),
        "control_commits_per_sec": (commits.size / duration_s
                                    if duration_s > 0 else 0.0),
        "batches_proposed": pod.allocator.batches_proposed,
        "churn_placed": churn_stats["placed"],
        "churn_released": churn_stats["released"],
        "pending_after": pod.allocator.pending_commands,
        "converged": converged,
    }


def main_rack(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro rack",
        description="fig10 echo on every host of a sharded, batch-committed "
                    "rack (headline: events/sec + commit latency)")
    parser.add_argument("--hosts", type=int, default=32)
    parser.add_argument("--pools", type=int, default=4)
    parser.add_argument("--nics", type=int, default=2,
                        help="pooled NICs per host (default 2)")
    parser.add_argument("--ssds", type=int, default=1,
                        help="pooled SSDs per host (default 1)")
    parser.add_argument("--port-limit", type=int, default=4,
                        help="multi-headed device head count (default 4; "
                             "0 disables the limit)")
    parser.add_argument("--rate", type=float, default=20_000.0,
                        help="per-host echo rate in pps (default 20k)")
    parser.add_argument("--packet-size", type=int, default=256)
    parser.add_argument("--duration", type=float, default=None,
                        help="simulated seconds (default 0.08 * OASIS_SCALE)")
    parser.add_argument("--seed", type=int, default=21)
    parser.add_argument("--churn", type=int, default=256,
                        help="synthetic place/release pairs during the run")
    parser.add_argument("--batch-window-ms", type=float, default=0.2,
                        help="group-commit flush window (0 disables batching)")
    parser.add_argument("--replicas", type=int, default=3,
                        help="Raft replicas per pool shard (0 disables Raft)")
    parser.add_argument("--json", action="store_true",
                        help="print the machine-readable result")
    parser.add_argument("--out", type=str, default=None,
                        help="also write a BENCH-style dump "
                             "(e.g. BENCH_pr8.json)")
    parser.add_argument("--check", action="store_true",
                        help="exit 1 unless replicas converged and the "
                             "command queue drained")
    args = parser.parse_args(argv)

    result = run_rack(
        hosts=args.hosts, pools=args.pools, nics_per_host=args.nics,
        ssds_per_host=args.ssds,
        port_limit=(args.port_limit or None), packet_size=args.packet_size,
        rate_pps=args.rate, duration_s=args.duration, seed=args.seed,
        churn=args.churn, batch_window_ms=args.batch_window_ms,
        replicas=args.replicas,
    )
    if args.json:
        print(json.dumps(result, indent=1, sort_keys=True))
    else:
        print(f"rack: {result['hosts']} hosts / {result['pools']} pools / "
              f"{result['devices']} pooled devices "
              f"(port limit {result['port_limit']})")
        print(f"  echo     {result['echo_replies']} replies, "
              f"RTT p50 {result['rtt_p50_us']:.2f} us, "
              f"p99 {result['rtt_p99_us']:.2f} us")
        print(f"  kernel   {result['events_per_sec']:,.0f} events/s over "
              f"{result['events']:,} events "
              f"({result['wall_per_sim_sec']:.2f} wall-s per sim-s)")
        print(f"  control  {result['commits']} replicated commits in "
              f"{result['batches_proposed']} batches, "
              f"p50 {result['commit_p50_ms']:.3f} ms, "
              f"p99 {result['commit_p99_ms']:.3f} ms, "
              f"{result['control_commits_per_sec']:,.0f} commits/s")
        print(f"  churn    {result['churn_placed']} placed / "
              f"{result['churn_released']} released")
        print(f"  verdict  converged={result['converged']} "
              f"pending={result['pending_after']}")
    if args.out:
        payload = {"results": {"rack_scale": result}}
        with open(args.out, "w") as fh:
            json.dump(payload, fh, indent=1, sort_keys=True)
            fh.write("\n")
        print(f"rack results written to {args.out}")
    if args.check and not (result["converged"]
                           and result["pending_after"] == 0):
        print("rack: FAIL -- control plane did not converge", flush=True)
        return 1
    return 0


def main() -> dict:
    """Experiment-runner entry: a CI-sized slice of the default rack."""
    result = run_rack(hosts=8, pools=2, churn=64)
    print(f"8-host rack slice: {result['events_per_sec']:,.0f} events/s, "
          f"commit p99 {result['commit_p99_ms']:.3f} ms, "
          f"converged={result['converged']}")
    return result
