"""Overload sweep: goodput through a surge, retry budgets on vs off (PR 9).

``python -m repro overload`` drives an open-loop block-I/O client through a
pooled SSD sized so the surge exceeds device capacity:

* **pre**   -- offered load ~0.6x capacity (healthy);
* **surge** -- offered load 1.5x capacity for a window;
* **post**  -- back to the pre-surge rate.

Two runs from the same seed differ in exactly one bit: whether the pod armed
``enable_overload_control()``.

* **budgets off** (the PR 3 unbounded-retry baseline) exhibits *metastable
  collapse*: the surge builds a device backlog, per-attempt latency blows
  through the retry timeout, and the retry amplification (~4x offered load)
  keeps the device saturated after the surge ends -- goodput stays pinned
  near zero even though offered load is back below capacity;
* **budgets on** sheds the excess at the admission queue (CoDel
  front-drop + depth cap), denies storm retries from the token-bucket
  retry budget, trips per-device breakers, and browns out background I/O
  -- goodput tracks capacity through the surge and *recovers* to the
  pre-surge level once it passes.

Headline (dumped to ``BENCH_pr9.json`` with ``--out`` and gated in CI):
``recovery_on`` (post-surge goodput / pre-surge goodput, budgets on) must
stay >= 0.90 while ``recovery_off`` stays < 0.50.  Same seed => byte
identical JSON (shed/trip/probe sequences included), pinned by the replay
tests.
"""

from __future__ import annotations

import json
from dataclasses import replace

from ..config import OasisConfig
from ..core.pod import CXLPod
from ..net.packet import make_ip
from ..workloads.openloop import OpenLoopBlockClient
from .common import scale

__all__ = ["run_overload", "main_overload", "main"]

SERVER_IP = make_ip(10, 0, 0, 1)

#: Derated drive for the sweep: 40 MB/s => one 4 KB op serialises ~102.4 us,
#: so device capacity is ~9.8k IOPS -- small enough that a CI-sized run can
#: push 1.5x past it.
SSD_BANDWIDTH_GBPS = 0.04


def _capacity_iops(config) -> float:
    return config.ssd.bytes_per_sec / config.ssd.block_size


def _one_run(
    seed: int,
    overload_on: bool,
    base_rate: float,
    surge_rate: float,
    pre_s: float,
    surge_s: float,
    post_s: float,
    background_fraction: float = 0.2,
) -> dict:
    base_cfg = OasisConfig()
    config = base_cfg.with_(
        seed=seed,
        ssd=replace(base_cfg.ssd, bandwidth_gbps=SSD_BANDWIDTH_GBPS))
    pod = CXLPod(config=config, mode="oasis")
    h0 = pod.add_host()
    h1 = pod.add_host()
    pod.add_nic(h0)
    ssd = pod.add_ssd(h0)
    inst = pod.add_instance(h1, ip=SERVER_IP)
    device = pod.add_block_device(inst, ssd)
    pod.enable_fleet_telemetry(period_s=0.002)
    if overload_on:
        # Brownout thresholds sized to the CoDel-held admission queue: under
        # control the queue hovers near target_s * capacity (~50 of 256
        # slots), so the enter threshold sits below that and exit near zero.
        pod.enable_overload_control(replace(
            base_cfg.overload, enabled=True,
            brownout_high=0.15, brownout_low=0.05))

    client = OpenLoopBlockClient(
        pod.sim, device, rate_iops=base_rate, read_fraction=1.0,
        rng=pod.rng.get("overload/client"), bin_s=0.01,
        background_fraction=background_fraction, name="overload-client")
    pod.register_load_source(client)

    duration = pre_s + surge_s + post_s
    pod.sim.at(pre_s, client.set_rate, surge_rate)
    pod.sim.at(pre_s + surge_s, client.set_rate, base_rate)
    client.start(duration)
    pod.run(duration + 0.05)
    pod.stop()

    stats = client.stats
    goodput_pre = stats.window_goodput_iops(pre_s * 0.3, pre_s)
    goodput_surge = stats.window_goodput_iops(pre_s, pre_s + surge_s)
    goodput_post = stats.window_goodput_iops(duration - post_s * 0.5, duration)
    recovery = goodput_post / goodput_pre if goodput_pre > 0 else 0.0

    frontend = pod.storage_frontends[h1.name]
    out = {
        "workload": stats.summary(),
        "goodput_pre_iops": round(goodput_pre, 3),
        "goodput_surge_iops": round(goodput_surge, 3),
        "goodput_post_iops": round(goodput_post, 3),
        "recovery_ratio": round(recovery, 6),
        "frontend": {
            "submitted": frontend.submitted,
            "completed_ok": frontend.completed_ok,
            "completed_error": frontend.completed_error,
            "timeouts": frontend.timeouts,
            "retries": frontend.retries,
            "giveups": frontend.giveups,
            "shed": frontend.shed,
            "shed_queue_full": frontend.shed_queue_full,
            "shed_sojourn": frontend.shed_sojourn,
            "shed_breaker": frontend.shed_breaker,
            "shed_brownout": frontend.shed_brownout,
            "retry_budget_denied": frontend.retry_budget_denied,
            "breaker_trips": frontend.breaker_trips,
        },
        "alerts": {
            "fired": pod.fleet.alerts.fired,
            "cleared": pod.fleet.alerts.cleared,
            "log": pod.fleet.alerts.log_json(),
        },
    }
    if overload_on:
        budget = frontend._budget
        out["budget"] = {"deposits": budget.deposits, "spent": budget.spent,
                         "denied": budget.denied,
                         "tokens": round(budget.tokens, 6)}
        out["brownout"] = pod.brownout.as_dict()
    return out


def run_overload(
    seed: int = 11,
    base_util: float = 0.6,
    surge_util: float = 1.5,
    pre_s: float = None,
    surge_s: float = None,
    post_s: float = None,
) -> dict:
    """Budgets-on and budgets-off runs from one seed; recovery headline."""
    s = scale()
    if pre_s is None:
        pre_s = max(0.2, 0.4 * s)
    if surge_s is None:
        surge_s = max(0.15, 0.3 * s)
    if post_s is None:
        post_s = max(0.3, 0.5 * s)
    capacity = _capacity_iops(OasisConfig().with_(
        ssd=replace(OasisConfig().ssd, bandwidth_gbps=SSD_BANDWIDTH_GBPS)))
    base_rate = base_util * capacity
    surge_rate = surge_util * capacity
    on = _one_run(seed, True, base_rate, surge_rate, pre_s, surge_s, post_s)
    off = _one_run(seed, False, base_rate, surge_rate, pre_s, surge_s, post_s)
    return {
        "seed": seed,
        "capacity_iops": round(capacity, 3),
        "base_rate_iops": round(base_rate, 3),
        "surge_rate_iops": round(surge_rate, 3),
        "pre_s": pre_s,
        "surge_s": surge_s,
        "post_s": post_s,
        "on": on,
        "off": off,
        "recovery_on": on["recovery_ratio"],
        "recovery_off": off["recovery_ratio"],
        "surge_goodput_frac_on": round(
            on["goodput_surge_iops"] / capacity, 6),
        "ok": (on["recovery_ratio"] >= 0.90
               and off["recovery_ratio"] < 0.50),
    }


def _render(result: dict) -> None:
    print(f"overload sweep: capacity {result['capacity_iops']:,.0f} IOPS, "
          f"base {result['base_rate_iops']:,.0f}, "
          f"surge {result['surge_rate_iops']:,.0f} "
          f"({result['surge_s']*1e3:.0f} ms surge)")
    for label in ("on", "off"):
        run = result[label]
        fe = run["frontend"]
        print(f"  budgets {label:<3} goodput pre {run['goodput_pre_iops']:8,.0f} "
              f"surge {run['goodput_surge_iops']:8,.0f} "
              f"post {run['goodput_post_iops']:8,.0f} IOPS "
              f"-> recovery {run['recovery_ratio']:.2f}")
        print(f"              shed={fe['shed']} "
              f"(full={fe['shed_queue_full']} sojourn={fe['shed_sojourn']} "
              f"breaker={fe['shed_breaker']} brownout={fe['shed_brownout']}) "
              f"retries={fe['retries']} denied={fe['retry_budget_denied']} "
              f"trips={fe['breaker_trips']} giveups={fe['giveups']}")
    verdict = "PASS" if result["ok"] else "FAIL"
    print(f"  verdict  {verdict}: recovery_on={result['recovery_on']:.2f} "
          f"(need >= 0.90), recovery_off={result['recovery_off']:.2f} "
          f"(need < 0.50)")


def main_overload(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro overload",
        description="open-loop overload sweep: goodput collapse vs recovery "
                    "with retry budgets/admission control on and off")
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--base-util", type=float, default=0.6,
                        help="pre/post offered load as a fraction of device "
                             "capacity (default 0.6)")
    parser.add_argument("--surge-util", type=float, default=1.5,
                        help="surge offered load as a fraction of device "
                             "capacity (default 1.5)")
    parser.add_argument("--json", action="store_true",
                        help="print the machine-readable result")
    parser.add_argument("--out", type=str, default=None,
                        help="also write a BENCH-style dump "
                             "(e.g. BENCH_pr9.json)")
    parser.add_argument("--check", action="store_true",
                        help="exit 1 unless budgets-on recovers >= 90% of "
                             "pre-surge goodput and budgets-off stays "
                             "collapsed (< 50%)")
    args = parser.parse_args(argv)

    result = run_overload(seed=args.seed, base_util=args.base_util,
                          surge_util=args.surge_util)
    if args.json:
        print(json.dumps(result, indent=1, sort_keys=True))
    else:
        _render(result)
    if args.out:
        payload = {"results": {"overload": result}}
        with open(args.out, "w") as fh:
            json.dump(payload, fh, indent=1, sort_keys=True)
            fh.write("\n")
        print(f"overload results written to {args.out}")
    if args.check and not result["ok"]:
        print("overload: FAIL -- see verdict above", flush=True)
        return 1
    return 0


def main() -> dict:
    """Experiment-runner entry: the default sweep, rendered."""
    result = run_overload()
    _render(result)
    return result


if __name__ == "__main__":   # pragma: no cover
    raise SystemExit(main_overload())
