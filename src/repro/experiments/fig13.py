"""Figure 13: UDP packet loss during a NIC failure and Oasis failover.

Paper result: a 10 s UDP echo run with the NIC's switch port disabled at
~5 s shows a single burst of packet loss lasting roughly 38 ms, after which
traffic flows through the backup NIC (MAC borrowing) with no application
involvement.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..analysis.report import render_series, render_table
from ..faults import FaultPlan, FaultSpec
from ..workloads.echo import EchoClient
from .common import SERVER_IP, build_echo_pod, scale

__all__ = ["run", "main"]


def run(
    duration_s: Optional[float] = None,
    rate_pps: float = 2000.0,
    fail_at_s: Optional[float] = None,
    seed: int = 3,
    trace_path: Optional[str] = None,
) -> dict:
    duration = duration_s if duration_s is not None else 10.0 * scale()
    # Inject just after a 25 ms link-monitor tick so detection takes nearly a
    # full interval, like the paper's observed (single-run) 38 ms.
    fail_at = fail_at_s if fail_at_s is not None else duration / 2 + 0.002

    pod, inst, client_ep, nic0 = build_echo_pod("oasis", remote=True,
                                                backup_nic=True)
    # The failover measured is the full replicated control plane's: the
    # command commits through Raft before its effects run (§3.5).
    pod.enable_raft()
    # Record just the failover phases; the per-packet channel/DMA events of a
    # multi-second run would be noise here.
    pod.enable_tracing(categories={"failover"})
    client = EchoClient(pod.sim, client_ep, SERVER_IP, packet_size=75,
                        rate_pps=rate_pps,
                        rng=np.random.default_rng(seed), poisson=False)
    client.start(duration)
    # The paper's injection ("we disable the switch port connected to the
    # NIC"), scheduled through the deterministic fault injector.
    injector = pod.inject_faults(FaultPlan(
        [FaultSpec(kind="switch.port_down", target=nic0.name, at=fail_at)],
        name="fig13-port-down",
    ))
    pod.run(duration + 1.0)
    pod.stop()

    stats = client.stats
    # Interruption: the longest gap between consecutive received packets.
    recv = np.asarray(stats.recv_times)
    gaps = np.diff(recv)
    worst = int(gaps.argmax()) if len(gaps) else 0
    interruption_ms = float(gaps[worst] * 1000) if len(gaps) else float("nan")
    # The traced failover phases (detect -> report -> process -> reroute)
    # decompose the interruption the paper narrates in §3.3.3.
    phases = {e.name.split(".", 1)[1]: e.dur * 1e3
              for e in pod.tracer.spans(category="failover")}
    trace_events = 0
    if trace_path is not None:
        trace_events = pod.tracer.export_chrome(trace_path)
    return {
        "sent": stats.sent,
        "received": stats.received,
        "lost": stats.lost,
        "interruption_ms": interruption_ms,
        "interruption_at_s": float(recv[worst]) if len(gaps) else float("nan"),
        "loss_timeline": stats.loss_timeline(0.1, duration),
        "failovers": pod.allocator.failovers_executed,
        "fail_at_s": fail_at,
        "fault_events": [event.signature() for event in injector.events],
        "failover_phases_ms": phases,
        "failover_phase_sum_ms": float(sum(phases.values())),
        "trace_events": trace_events,
        "trace_timeline": pod.tracer.timeline(category="failover"),
    }


def main() -> dict:
    results = run()
    timeline = results["loss_timeline"]
    xs = [f"{0.1 * i:.1f}" for i in range(len(timeline))]
    nonzero = [(x, int(v)) for x, v in zip(xs, timeline) if v]
    print(render_table(
        ["time s", "lost packets"], nonzero or [("-", 0)],
        title="Figure 13a: lost packets per 100 ms bin",
    ))
    print()
    print(render_table(
        ["metric", "value"],
        [("packets sent", results["sent"]),
         ("packets lost", results["lost"]),
         ("interruption (ms)", round(results["interruption_ms"], 1)),
         ("paper interruption (ms)", 38),
         ("failovers executed", results["failovers"])],
        title="Figure 13b: failover interruption",
    ))
    print()
    print(render_table(
        ["phase", "ms"],
        [(name, round(ms, 3))
         for name, ms in results["failover_phases_ms"].items()]
        + [("total", round(results["failover_phase_sum_ms"], 3))],
        title="Failover phases (traced, §3.3.3)",
    ))
    return results


if __name__ == "__main__":
    main()
