"""Figure 12: production-trace replay -- two hosts sharing one NIC.

Paper result: replaying rack A hosts 1-2 inbound traces, multiplexing both
onto host 1's NIC leaves host 1's P99 round-trip latency unchanged and adds
~1 us to host 2's, while aggregated NIC utilization at P99.99 roughly
doubles (18 % -> 37 %).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

import numpy as np

from ..analysis.report import render_table
from ..workloads.replay import run_trace_replay
from ..workloads.traces import RACK_A_PARAMS, generate_trace
from .common import scale

__all__ = ["run", "main"]


def run(duration_s: Optional[float] = None, seed: int = 50) -> dict:
    duration = duration_s if duration_s is not None else 0.25 * scale()
    traces = [
        generate_trace(replace(RACK_A_PARAMS[i], duration_s=duration),
                       np.random.default_rng(seed + i))
        for i in range(2)
    ]
    baseline = run_trace_replay(traces, multiplexed=False)
    multiplexed = run_trace_replay(traces, multiplexed=True)
    return {"baseline": baseline, "multiplexed": multiplexed,
            "packets": [len(t.times) for t in traces]}


def main() -> dict:
    results = run()
    base, mux = results["baseline"], results["multiplexed"]
    rows = []
    for i in range(2):
        rows.append((
            f"host {i + 1}",
            base.per_host[i]["p50"], mux.per_host[i]["p50"],
            base.per_host[i]["p99"], mux.per_host[i]["p99"],
            mux.per_host[i]["p99"] - base.per_host[i]["p99"],
        ))
    print(render_table(
        ["", "base p50", "mux p50", "base p99", "mux p99", "d(p99)"],
        rows,
        title="Figure 12: trace replay RTT, us (paper: host 1 unchanged, "
              "host 2 +~1 us)",
        digits=1,
    ))
    print()
    print(render_table(
        ["setup", "aggregated P99.99 util %", "lost"],
        [("baseline (2 NICs)", base.nic_p9999_util * 100, base.lost),
         ("multiplexed (1 NIC)", mux.nic_p9999_util * 100, mux.lost)],
        title="Aggregated NIC utilization (paper: 18 % -> 37 %)",
        digits=1,
    ))
    return results


if __name__ == "__main__":
    main()
