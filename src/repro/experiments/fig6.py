"""Figure 6: one-way message-passing throughput/latency per channel design.

Paper result (16 B messages, two sockets over a real CXL 2.0 pool):

* bypass-cache baseline saturates at 3.0 MOp/s with ~0.6 us idle latency;
* naive prefetching reaches only 8.6 MOp/s -- stale cached lines block the
  prefetcher;
* + invalidate-consumed unlocks prefetching: ~87 MOp/s, but median latency
  rises to ~1.2 us at moderate loads (prefetched-then-stale lines);
* + invalidate-prefetched (the Oasis design) keeps the same throughput and
  restores ~0.6 us latency at the 14 MOp/s target.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..analysis.report import render_table
from ..channel.microbench import ChannelMicrobench, sweep_designs

__all__ = ["run", "main", "DESIGNS"]

DESIGNS = (
    "bypass-cache",
    "naive-prefetch",
    "invalidate-consumed",
    "invalidate-prefetched",
)

PAPER_SATURATION = {
    "bypass-cache": 3.0,
    "naive-prefetch": 8.6,
    "invalidate-consumed": 87.0,
    "invalidate-prefetched": 87.0,
}


def run(
    offered_mops: Sequence[float] = (1, 2, 4, 8, 14, 20, 30, 50),
    n_messages: int = 20_000,
    slots: Optional[int] = None,
) -> dict:
    curves = sweep_designs(DESIGNS, offered_mops, n_messages, slots)
    saturation = {d: pts[-1] for d, pts in curves.items()}  # closed-loop point
    return {"curves": curves, "saturation": saturation}


def main() -> dict:
    results = run()
    rows = []
    for design, sat in results["saturation"].items():
        rows.append((design, sat.achieved_mops, PAPER_SATURATION[design]))
    print(render_table(
        ["design", "max MOp/s (measured)", "max MOp/s (paper)"],
        rows, title="Figure 6: saturation throughput", digits=1,
    ))
    print()
    for design, points in results["curves"].items():
        series = [
            (p.achieved_mops, p.latency_p50_us)
            for p in points if p.offered_mops != float("inf")
        ]
        print(render_table(
            ["achieved MOp/s", "median latency us"], series,
            title=f"Figure 6 curve: {design}", digits=2,
        ))
        print()
    return results


if __name__ == "__main__":
    main()
