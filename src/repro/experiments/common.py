"""Shared experiment plumbing.

Every experiment module exposes ``run(...) -> dict`` (machine-readable
results) and ``main()`` (prints the paper-style table/series).  ``SCALE``
(env ``OASIS_SCALE``, default 1.0) shrinks simulated durations/workloads
proportionally so the suite can run quickly in CI while full-scale runs
regenerate the paper's statistics.
"""

from __future__ import annotations

import os
from typing import Optional

import numpy as np

from ..config import OasisConfig
from ..core.pod import CXLPod
from ..net.packet import make_ip
from ..workloads.echo import EchoClient, EchoServer

__all__ = ["scale", "build_echo_pod", "SERVER_IP", "CLIENT_IP"]

SERVER_IP = make_ip(10, 0, 0, 1)
CLIENT_IP = make_ip(10, 0, 9, 1)


def scale(default: float = 1.0) -> float:
    """Experiment scale factor from the OASIS_SCALE environment variable."""
    try:
        return float(os.environ.get("OASIS_SCALE", default))
    except ValueError:
        return default


def build_echo_pod(mode: str, remote: bool = True,
                   config: Optional[OasisConfig] = None,
                   backup_nic: bool = False):
    """The paper's §5 two-host testbed with a UDP echo server instance.

    Returns ``(pod, instance, client_endpoint, primary_nic)``.  ``remote``
    places the instance on the host *without* the NIC (the Oasis case);
    baseline modes colocate it.
    """
    pod = CXLPod(config=config, mode=mode)
    h0 = pod.add_host()
    h1 = pod.add_host() if (remote or backup_nic) else h0
    nic0 = pod.add_nic(h0)
    if backup_nic:
        pod.add_nic(h1, is_backup=True)
    instance_host = h1 if remote else h0
    inst = pod.add_instance(instance_host, ip=SERVER_IP, nic=nic0)
    EchoServer(pod.sim, inst)
    client = pod.add_external_client(ip=CLIENT_IP)
    return pod, inst, client, nic0
