"""Figure 2: stranded NIC bandwidth / SSD capacity vs pod size.

Paper result: pooling across pods of 8 hosts cuts stranded NIC bandwidth
from 27 % to roughly the low teens and stranded SSD capacity from 33 % to
single digits, equivalent to provisioning ~16 % less NIC bandwidth and ~26 %
fewer SSDs per pod.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..analysis.report import render_table
from ..workloads.allocation import generate_allocation_trace
from ..workloads.stranding import (live_stranding, pooled_stranding,
                                   schedule_trace, stranded_fractions)

__all__ = ["run", "main"]

#: Whole-device units used throughout (one 100 Gbit NIC, one 4 TB SSD).
NIC_DEVICE_UNIT = 100.0
SSD_DEVICE_UNIT = 4.0


def run(
    n_instances: int = 6000,
    n_hosts: int = 64,
    pod_sizes: Sequence[int] = (1, 2, 4, 8, 16),
    seed: int = 7,
    crosscheck: bool = False,
    rack: bool = False,
    port_limit: Optional[int] = 4,
) -> dict:
    """Figure 2 pipeline; ``rack=True`` adds the 32-host rack-scale study.

    The rack study re-runs the pooling sweep with rack-sized pods (up to 32
    hosts sharing one pool shard) under the multi-headed device's
    ``port_limit`` -- a device attaches to at most that many hosts, so a
    32-host pod needs at least ``ceil(32 / port_limit)`` devices.  The
    headline is that rack-scale pooling still strands *less* than the
    2-host pods PRs 1-7 simulated (``beats_2host`` flags).
    """
    rng = np.random.default_rng(seed)
    trace = generate_allocation_trace(
        n_instances=n_instances, duration_s=20_000.0, mean_lifetime_s=3000.0,
        rng=rng,
    )
    placed = schedule_trace(trace, n_hosts)
    baseline = stranded_fractions(trace, n_hosts)
    nic = pooled_stranding(trace, n_hosts, pod_sizes, "nic_gbps",
                           NIC_DEVICE_UNIT,
                           rng=np.random.default_rng(seed + 1))
    ssd = pooled_stranding(trace, n_hosts, pod_sizes, "ssd_tb",
                           SSD_DEVICE_UNIT,
                           rng=np.random.default_rng(seed + 2))
    results = {
        "placed": placed,
        "total": n_instances,
        "baseline_stranded": baseline,
        "nic": nic,
        "ssd": ssd,
    }
    if rack:
        rack_sizes = tuple(s for s in (2, 8, 32) if s <= n_hosts)
        rack_nic = pooled_stranding(
            trace, n_hosts, rack_sizes, "nic_gbps", NIC_DEVICE_UNIT,
            rng=np.random.default_rng(seed + 4), port_limit=port_limit)
        rack_ssd = pooled_stranding(
            trace, n_hosts, rack_sizes, "ssd_tb", SSD_DEVICE_UNIT,
            rng=np.random.default_rng(seed + 5), port_limit=port_limit)
        results["rack"] = {
            "port_limit": port_limit,
            "pod_sizes": rack_sizes,
            "nic": rack_nic,
            "ssd": rack_ssd,
            "nic_beats_2host": (
                rack_nic[-1].stranded_fraction
                < rack_nic[0].stranded_fraction),
            "ssd_beats_2host": (
                rack_ssd[-1].stranded_fraction
                < rack_ssd[0].stranded_fraction),
        }
    if crosscheck:
        # Live-vs-offline agreement on one pod spanning every host: the
        # streaming StrandingGauge replayed over the same timeline must
        # reproduce the offline integral (the fleet pipeline's contract).
        results["crosscheck"] = {}
        for resource, unit, key in (("nic_gbps", NIC_DEVICE_UNIT, "nic"),
                                    ("ssd_tb", SSD_DEVICE_UNIT, "ssd")):
            offline = pooled_stranding(
                trace, n_hosts, (n_hosts,), resource, unit,
                rng=np.random.default_rng(seed + 3), repeats=1)[0]
            live = live_stranding(trace, n_hosts, resource, unit)
            results["crosscheck"][key] = {
                "offline_devices": offline.devices_needed,
                "offline_stranded": offline.stranded_fraction,
                "live_devices": live["devices_needed"],
                "live_stranded": live["stranded_fraction"],
            }
    return results


def main() -> dict:
    results = run()
    base = results["baseline_stranded"]
    print(render_table(
        ["resource", "stranded %"],
        [(k, v * 100) for k, v in base.items()],
        title="Baseline stranding (paper: cores 5 %, mem 9 %, NIC 27 %, SSD 33 %)",
        digits=1,
    ))
    rows = []
    for nic_row, ssd_row in zip(results["nic"], results["ssd"]):
        rows.append((
            nic_row.pod_size,
            nic_row.stranded_fraction * 100,
            nic_row.saved_fraction * 100,
            ssd_row.stranded_fraction * 100,
            ssd_row.saved_fraction * 100,
        ))
    print()
    print(render_table(
        ["pod size", "NIC stranded %", "NIC saved %", "SSD stranded %",
         "SSD saved %"],
        rows,
        title="Figure 2: stranding vs pod size "
              "(paper: NIC 27->~11 %, SSD 33->7 % at pod size 8)",
        digits=1,
    ))
    return results


if __name__ == "__main__":
    main()
