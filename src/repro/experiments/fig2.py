"""Figure 2: stranded NIC bandwidth / SSD capacity vs pod size.

Paper result: pooling across pods of 8 hosts cuts stranded NIC bandwidth
from 27 % to roughly the low teens and stranded SSD capacity from 33 % to
single digits, equivalent to provisioning ~16 % less NIC bandwidth and ~26 %
fewer SSDs per pod.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..analysis.report import render_table
from ..workloads.allocation import generate_allocation_trace
from ..workloads.stranding import (live_stranding, pooled_stranding,
                                   schedule_trace, stranded_fractions)

__all__ = ["run", "main"]

#: Whole-device units used throughout (one 100 Gbit NIC, one 4 TB SSD).
NIC_DEVICE_UNIT = 100.0
SSD_DEVICE_UNIT = 4.0


def run(
    n_instances: int = 6000,
    n_hosts: int = 64,
    pod_sizes: Sequence[int] = (1, 2, 4, 8, 16),
    seed: int = 7,
    crosscheck: bool = False,
) -> dict:
    rng = np.random.default_rng(seed)
    trace = generate_allocation_trace(
        n_instances=n_instances, duration_s=20_000.0, mean_lifetime_s=3000.0,
        rng=rng,
    )
    placed = schedule_trace(trace, n_hosts)
    baseline = stranded_fractions(trace, n_hosts)
    nic = pooled_stranding(trace, n_hosts, pod_sizes, "nic_gbps",
                           NIC_DEVICE_UNIT,
                           rng=np.random.default_rng(seed + 1))
    ssd = pooled_stranding(trace, n_hosts, pod_sizes, "ssd_tb",
                           SSD_DEVICE_UNIT,
                           rng=np.random.default_rng(seed + 2))
    results = {
        "placed": placed,
        "total": n_instances,
        "baseline_stranded": baseline,
        "nic": nic,
        "ssd": ssd,
    }
    if crosscheck:
        # Live-vs-offline agreement on one pod spanning every host: the
        # streaming StrandingGauge replayed over the same timeline must
        # reproduce the offline integral (the fleet pipeline's contract).
        results["crosscheck"] = {}
        for resource, unit, key in (("nic_gbps", NIC_DEVICE_UNIT, "nic"),
                                    ("ssd_tb", SSD_DEVICE_UNIT, "ssd")):
            offline = pooled_stranding(
                trace, n_hosts, (n_hosts,), resource, unit,
                rng=np.random.default_rng(seed + 3), repeats=1)[0]
            live = live_stranding(trace, n_hosts, resource, unit)
            results["crosscheck"][key] = {
                "offline_devices": offline.devices_needed,
                "offline_stranded": offline.stranded_fraction,
                "live_devices": live["devices_needed"],
                "live_stranded": live["stranded_fraction"],
            }
    return results


def main() -> dict:
    results = run()
    base = results["baseline_stranded"]
    print(render_table(
        ["resource", "stranded %"],
        [(k, v * 100) for k, v in base.items()],
        title="Baseline stranding (paper: cores 5 %, mem 9 %, NIC 27 %, SSD 33 %)",
        digits=1,
    ))
    rows = []
    for nic_row, ssd_row in zip(results["nic"], results["ssd"]):
        rows.append((
            nic_row.pod_size,
            nic_row.stranded_fraction * 100,
            nic_row.saved_fraction * 100,
            ssd_row.stranded_fraction * 100,
            ssd_row.saved_fraction * 100,
        ))
    print()
    print(render_table(
        ["pod size", "NIC stranded %", "NIC saved %", "SSD stranded %",
         "SSD saved %"],
        rows,
        title="Figure 2: stranding vs pod size "
              "(paper: NIC 27->~11 %, SSD 33->7 % at pod size 8)",
        digits=1,
    ))
    return results


if __name__ == "__main__":
    main()
