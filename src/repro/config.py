"""Model constants for the Oasis reproduction.

Every timing, bandwidth and sizing knob lives here, as frozen dataclasses with
defaults calibrated against the paper:

* :class:`CacheTimings` / :class:`CXLConfig` -- §2.3 and the Figure 6
  microbenchmarks (message-channel throughput/latency).
* :class:`NICConfig` / :class:`SSDConfig` -- Table 1 device requirements.
* :class:`DatapathConfig` -- §3.2 buffer-area and channel sizing.
* :class:`FailoverConfig` -- §3.3.3/§3.5 detection and lease parameters,
  calibrated to a ~38 ms UDP interruption (Figure 13).
* :class:`TransportConfig` -- the mini reliable transport whose retransmission
  behaviour yields the ~133 ms memcached P99 recovery (Figure 14).

Calibration note (Figure 6): the distinction between *synchronous* cache-line
flushes (CLFLUSHOPT immediately fenced with MFENCE, which serialises the
pipeline) and *asynchronous* flushes (issued and retired in the background)
is what separates the baseline design (3 MOp/s) from the Oasis design
(~90 MOp/s).  The constants below encode that: a fenced flush costs
``clflush_ns + mfence_ns`` on the critical path, an unfenced one only
``clflush_issue_ns``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from .errors import ConfigError

__all__ = [
    "CacheTimings",
    "CXLConfig",
    "NICConfig",
    "SSDConfig",
    "DatapathConfig",
    "FailoverConfig",
    "TransportConfig",
    "RetryConfig",
    "OverloadConfig",
    "HostConfig",
    "OasisConfig",
    "CACHE_LINE",
]

CACHE_LINE = 64  # bytes


@dataclass(frozen=True)
class CacheTimings:
    """CPU-side memory operation costs, in nanoseconds.

    ``cxl_load_ns / ddr_load_ns`` defaults to ~2.2x, matching the paper's AMD
    5th-gen EPYC measurement (§2.3).
    """

    ddr_load_ns: float = 110.0
    cxl_load_ns: float = 250.0          # load-to-use miss latency over CXL
    cxl_stream_ns: float = 4.0         # per-line cost of subsequent misses in
                                        # one sequential access (MLP overlaps
                                        # the load-to-use latency)
    cxl_write_ns: float = 110.0         # posted write to the CXL device
    cache_hit_ns: float = 1.5           # L1/L2 hit on an already-present line
    clflush_ns: float = 40.0            # CLFLUSHOPT when serialised by a fence
    clflush_issue_ns: float = 6.0       # CLFLUSHOPT issued without a fence
    clwb_ns: float = 20.0               # CLWB (writeback, line retained clean)
    mfence_ns: float = 30.0
    prefetch_issue_ns: float = 1.0      # PREFETCHT0 issue cost
    store_ns: float = 2.5               # cached store (write-allocate hit)
    message_cpu_ns: float = 6.0         # decode + handoff of one 16 B message
    empty_poll_ns: float = 4.0          # branch + epoch check on an empty slot

    def validate(self) -> None:
        for name, value in self.__dict__.items():
            if value < 0:
                raise ConfigError(f"CacheTimings.{name} must be >= 0, got {value}")
        if self.cxl_load_ns < self.ddr_load_ns:
            raise ConfigError("CXL load latency must be >= DDR load latency")


@dataclass(frozen=True)
class CXLConfig:
    """CXL pod geometry and link model (§2.3).

    A CXL 2.0 / PCIe-5.0 lane carries 4 GB/s per direction; the evaluation
    platform attaches each host with x8 lanes (32 GB/s per direction).
    """

    lanes_per_host: int = 8
    lane_gbps: float = 4.0              # GB/s per lane per direction
    pool_bytes: int = 256 << 30         # 256 GB device, as in §5
    link_efficiency: float = 0.92       # random 64 B access efficiency (§2.3)
    timings: CacheTimings = field(default_factory=CacheTimings)

    @property
    def link_bytes_per_sec(self) -> float:
        return self.lanes_per_host * self.lane_gbps * 1e9 * self.link_efficiency

    def validate(self) -> None:
        if self.lanes_per_host <= 0:
            raise ConfigError("lanes_per_host must be positive")
        if self.pool_bytes <= 0:
            raise ConfigError("pool_bytes must be positive")
        if not 0 < self.link_efficiency <= 1:
            raise ConfigError("link_efficiency must be in (0, 1]")
        self.timings.validate()


@dataclass(frozen=True)
class NICConfig:
    """100 Gbit ConnectX-5-like NIC (Table 1, §5)."""

    bandwidth_gbps: float = 100.0       # line rate, bits/s
    tx_queue_depth: int = 1024
    rx_queue_depth: int = 1024
    max_flow_tags: int = 4096
    dma_setup_ns: float = 250.0         # WQE fetch + doorbell processing
    wire_latency_us: float = 1.0        # NIC-to-switch propagation + PHY
    supports_flow_tagging: bool = True

    @property
    def bytes_per_sec(self) -> float:
        return self.bandwidth_gbps * 1e9 / 8.0

    def validate(self) -> None:
        if self.bandwidth_gbps <= 0:
            raise ConfigError("bandwidth_gbps must be positive")
        if self.tx_queue_depth <= 0 or self.rx_queue_depth <= 0:
            raise ConfigError("queue depths must be positive")


@dataclass(frozen=True)
class SSDConfig:
    """Datacenter NVMe SSD (Table 1: 5 GB/s, 0.5 MOp/s, ~100 us)."""

    capacity_bytes: int = 4 << 40       # 4 TB namespace
    bandwidth_gbps: float = 5.0         # GB/s
    read_latency_us: float = 90.0
    write_latency_us: float = 25.0
    queue_depth: int = 1024
    block_size: int = 4096

    @property
    def bytes_per_sec(self) -> float:
        return self.bandwidth_gbps * 1e9

    def validate(self) -> None:
        if self.capacity_bytes <= 0 or self.bandwidth_gbps <= 0:
            raise ConfigError("SSD capacity/bandwidth must be positive")
        if self.block_size <= 0 or self.block_size % 512:
            raise ConfigError("block_size must be a positive multiple of 512")


@dataclass(frozen=True)
class DatapathConfig:
    """Oasis datapath sizing (§3.2, §3.3)."""

    channel_slots: int = 8192           # per-direction message ring slots
    net_message_bytes: int = 16         # network engine message size
    storage_message_bytes: int = 64     # storage engine message size
    prefetch_depth: int = 16            # PREFETCHT0 look-ahead (best in Fig 6)
    counter_batch_divisor: int = 2      # receiver updates counter every
                                        # capacity/divisor messages (§4)
    tx_region_bytes: int = 4 << 30      # per-host frontend TX region (paper: 4 GB)
    instance_tx_area_bytes: int = 64 << 20  # per-instance TX buffer area (64 MB)
    # Per-NIC RX buffer area.  The paper uses 4 GB; the simulation enumerates
    # individual RX buffers, so the default is scaled to 16 MB (8192 x 2 KB
    # buffers, 8x the RX ring depth) which is behaviourally equivalent as
    # long as buffers are recycled faster than they are consumed.
    rx_region_bytes: int = 16 << 20
    rx_buffer_bytes: int = 2048         # one RX buffer (fits a 1500 B frame)
    ipc_hop_us: float = 0.45            # instance <-> frontend IPC hop (local DDR)
    driver_poll_us: float = 0.30        # driver loop service slice
    dedicated_cores_per_driver: int = 1

    def validate(self) -> None:
        if self.channel_slots < 2 or self.channel_slots & (self.channel_slots - 1):
            raise ConfigError("channel_slots must be a power of two >= 2")
        if self.net_message_bytes not in (16, 64):
            raise ConfigError("net_message_bytes must be 16 or 64")
        if self.storage_message_bytes != 64:
            raise ConfigError("storage_message_bytes must be 64 (NVMe command)")
        if self.prefetch_depth < 0:
            raise ConfigError("prefetch_depth must be >= 0")
        if self.counter_batch_divisor < 1:
            raise ConfigError("counter_batch_divisor must be >= 1")


@dataclass(frozen=True)
class FailoverConfig:
    """Failure detection and mitigation (§3.3.3, §3.5).

    The UDP interruption in Figure 13 is roughly: link-monitor detection
    (uniform over ``link_monitor_interval_ms``) + allocator processing +
    frontend notification + MAC-borrow relearning at the switch.  With the
    defaults below the end-to-end gap lands near the paper's 38 ms.
    """

    link_monitor_interval_ms: float = 25.0
    telemetry_interval_ms: float = 100.0
    lease_ttl_ms: float = 1000.0
    allocator_processing_ms: float = 10.0    # revoke leases, pick backup, log commit
    notify_frontend_ms: float = 2.0         # allocator -> each frontend driver
    mac_borrow_ms: float = 2.0              # GARP-style borrow frame + relearn
    host_failure_missed_telemetry: int = 3  # missed records before host declared dead
    migration_grace_period_s: float = 5.0   # dual-NIC RX window during migration
    lease_sweep_interval_ms: float = 250.0  # expiry sweep period (lease lifecycle)
    commit_retry_ms: float = 20.0           # re-propose queued commands to a new leader
    #: Group-commit flush window for replication: commands buffered up to
    #: this long ride one Raft log entry.  0 disables batching (every
    #: command is its own entry -- the 2-host replay-identical default).
    commit_batch_window_ms: float = 0.0
    commit_batch_max: int = 64              # flush early past this many buffered commands

    def validate(self) -> None:
        if self.link_monitor_interval_ms <= 0:
            raise ConfigError("link_monitor_interval_ms must be positive")
        if self.lease_ttl_ms <= self.telemetry_interval_ms:
            raise ConfigError("lease TTL must exceed the telemetry interval")
        if self.lease_sweep_interval_ms <= 0:
            raise ConfigError("lease_sweep_interval_ms must be positive")
        if self.commit_retry_ms <= 0:
            raise ConfigError("commit_retry_ms must be positive")
        if self.commit_batch_window_ms < 0:
            raise ConfigError("commit_batch_window_ms must be >= 0")
        if self.commit_batch_max < 1:
            raise ConfigError("commit_batch_max must be >= 1")


@dataclass(frozen=True)
class TransportConfig:
    """Mini reliable transport used by the memcached workload (Fig 14)."""

    initial_rto_ms: float = 60.0
    min_rto_ms: float = 60.0
    max_rto_ms: float = 1000.0
    rto_backoff: float = 2.0
    max_retries: int = 8
    window: int = 64

    def validate(self) -> None:
        if self.min_rto_ms <= 0 or self.max_rto_ms < self.min_rto_ms:
            raise ConfigError("invalid RTO bounds")
        if self.rto_backoff < 1.0:
            raise ConfigError("rto_backoff must be >= 1")


@dataclass(frozen=True)
class RetryConfig:
    """Datapath retry/timeout/backoff under device faults (fault injection).

    The storage frontend re-submits requests that time out or complete with a
    transient device error (media error, queue-full, drive momentarily dead),
    backing off exponentially; after ``storage_max_retries`` the error is
    surfaced to the guest instead of hanging.  The network backend re-posts
    TX descriptors whose DMA was aborted mid-transfer.
    """

    storage_max_retries: int = 3
    storage_timeout_ms: float = 25.0    # per-attempt request deadline
    storage_backoff_ms: float = 1.0     # first retry delay
    storage_backoff_mult: float = 2.0   # exponential backoff factor
    tx_max_retries: int = 3
    tx_retry_backoff_us: float = 50.0   # first TX repost delay

    def validate(self) -> None:
        if self.storage_max_retries < 0 or self.tx_max_retries < 0:
            raise ConfigError("retry counts must be >= 0")
        if self.storage_timeout_ms <= 0:
            raise ConfigError("storage_timeout_ms must be positive")
        if self.storage_backoff_ms < 0 or self.tx_retry_backoff_us < 0:
            raise ConfigError("backoff delays must be >= 0")
        if self.storage_backoff_mult < 1.0:
            raise ConfigError("storage_backoff_mult must be >= 1")


@dataclass(frozen=True)
class OverloadConfig:
    """Overload control: admission, retry budgets, breakers, brownout.

    Disabled by default -- with ``enabled=False`` neither engine takes the
    overload code paths, so every seeded replay from earlier PRs stays
    byte-identical.  When enabled:

    * frontends bound their submission queues (``admission_depth``) and run
      CoDel-style drop-from-front on queue sojourn, so offered load beyond
      capacity is shed early instead of growing an unbounded backlog;
    * retries draw from a shared token-bucket *retry budget* replenished by
      fresh traffic (``retry_budget_ratio`` tokens per fresh request), so a
      retry storm can never exceed a configured fraction of offered load;
    * each frontend runs a per-device *circuit breaker*
      (closed -> open -> half-open) whose half-open probe timing is jittered
      from a dedicated seeded substream;
    * a brownout controller watches the fleet ``HealthView`` queue-saturation
      gauges and tells frontends to shed background/low-priority work first.
    """

    enabled: bool = False
    # -- bounded admission (CoDel-style drop-from-front) -------------------
    admission_depth: int = 256          # max queued-but-unsubmitted requests
    codel_target_ms: float = 5.0        # acceptable standing queue sojourn
    codel_interval_ms: float = 25.0     # breach must persist this long
    launch_window: int = 32             # in-flight cap per storage frontend
    # -- retry budget (token bucket, shared per frontend) ------------------
    retry_budget_ratio: float = 0.2     # tokens deposited per fresh request
    retry_budget_min: float = 8.0       # initial tokens (cold-start retries)
    retry_budget_cap: float = 64.0      # bucket capacity
    # -- circuit breaker (per device behind each frontend) -----------------
    breaker_failure_threshold: int = 8  # consecutive failures to trip open
    breaker_open_ms: float = 50.0       # open dwell before a half-open probe
    breaker_probe_jitter_ms: float = 5.0  # seeded jitter on the probe timer
    # -- retry timing jitter (dedicated RNG substreams; 0 = legacy timing) -
    retry_jitter_frac: float = 0.0      # +/- fraction of each backoff delay
    # -- brownout (driven by HealthView queue saturation) ------------------
    brownout_high: float = 0.85         # enter brownout at/above this
    brownout_low: float = 0.60          # leave brownout below this
    brownout_period_s: float = 0.005    # controller evaluation period

    def validate(self) -> None:
        if self.admission_depth < 1:
            raise ConfigError("admission_depth must be >= 1")
        if self.launch_window < 1:
            raise ConfigError("launch_window must be >= 1")
        if self.codel_target_ms <= 0 or self.codel_interval_ms <= 0:
            raise ConfigError("CoDel target/interval must be positive")
        if not 0 <= self.retry_budget_ratio <= 1:
            raise ConfigError("retry_budget_ratio must be in [0, 1]")
        if self.retry_budget_min < 0 or self.retry_budget_cap <= 0:
            raise ConfigError("retry budget sizes must be non-negative")
        if self.retry_budget_min > self.retry_budget_cap:
            raise ConfigError("retry_budget_min must be <= retry_budget_cap")
        if self.breaker_failure_threshold < 1:
            raise ConfigError("breaker_failure_threshold must be >= 1")
        if self.breaker_open_ms <= 0 or self.breaker_probe_jitter_ms < 0:
            raise ConfigError("breaker timings must be positive")
        if not 0 <= self.retry_jitter_frac < 1:
            raise ConfigError("retry_jitter_frac must be in [0, 1)")
        if not 0 < self.brownout_low <= self.brownout_high:
            raise ConfigError("brownout thresholds must satisfy 0 < low <= high")
        if self.brownout_period_s <= 0:
            raise ConfigError("brownout_period_s must be positive")


@dataclass(frozen=True)
class HostConfig:
    """Per-host resource capacities used by the allocation/stranding study."""

    cores: int = 96
    memory_gb: float = 768.0
    nic_gbps: float = 100.0
    ssd_tb: float = 24.0                # six 4 TB local drives (§2.1)

    def validate(self) -> None:
        if min(self.cores, self.memory_gb, self.nic_gbps, self.ssd_tb) <= 0:
            raise ConfigError("host capacities must be positive")


@dataclass(frozen=True)
class OasisConfig:
    """Top-level bundle of every model constant."""

    cxl: CXLConfig = field(default_factory=CXLConfig)
    nic: NICConfig = field(default_factory=NICConfig)
    ssd: SSDConfig = field(default_factory=SSDConfig)
    datapath: DatapathConfig = field(default_factory=DatapathConfig)
    failover: FailoverConfig = field(default_factory=FailoverConfig)
    transport: TransportConfig = field(default_factory=TransportConfig)
    retry: RetryConfig = field(default_factory=RetryConfig)
    overload: OverloadConfig = field(default_factory=OverloadConfig)
    host: HostConfig = field(default_factory=HostConfig)
    seed: int = 42

    def validate(self) -> "OasisConfig":
        self.cxl.validate()
        self.nic.validate()
        self.ssd.validate()
        self.datapath.validate()
        self.failover.validate()
        self.transport.validate()
        self.retry.validate()
        self.overload.validate()
        self.host.validate()
        return self

    def with_(self, **kwargs) -> "OasisConfig":
        """Return a copy with top-level fields replaced."""
        return replace(self, **kwargs)


DEFAULT_CONFIG = OasisConfig()
