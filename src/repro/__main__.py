"""Command-line entry point: ``python -m repro [experiment ...]``.

With no arguments, lists the available experiments; with names (e.g.
``fig6 table3`` or ``all``), runs them and prints the paper-style tables.
Two observability subcommands ride along:

* ``report`` -- run a short echo workload and print registry-backed metric
  summaries (traffic by category/host, channel/cache ops, scraped bandwidth);
* ``trace [out.json]`` -- run the Fig 13 failover with the sim-time tracer
  and export Chrome-trace JSON.
"""

from __future__ import annotations

import sys

from . import __version__
from .experiments import runner


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    by_name = {
        module.__name__.rsplit(".", 1)[-1]: (title, module)
        for title, module in runner.ALL_EXPERIMENTS
    }
    if not argv or argv[0] in ("-h", "--help"):
        print(f"repro {__version__} -- Oasis (SOSP '25) reproduction")
        print("usage: python -m repro <experiment ...|all>")
        print("       python -m repro report")
        print("       python -m repro trace [out.json]\n")
        print("experiments:")
        for name, (title, _) in by_name.items():
            print(f"  {name:<8} {title}")
        print("\nobservability:")
        print("  report   registry-backed metrics summary of an echo run")
        print("  trace    failover run exported as Chrome-trace JSON")
        return 0
    if argv[0] == "report":
        from .obs.cli import main_report

        main_report()
        return 0
    if argv[0] == "trace":
        from .obs.cli import main_trace

        main_trace(argv[1] if len(argv) > 1 else "oasis-failover-trace.json")
        return 0
    if argv == ["all"]:
        runner.main()
        return 0
    unknown = [name for name in argv if name not in by_name]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(by_name)}", file=sys.stderr)
        return 2
    for name in argv:
        title, module = by_name[name]
        print(f"== {title} ==")
        module.main()
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
