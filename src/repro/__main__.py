"""Command-line entry point: ``python -m repro [experiment ...]``.

With no arguments, lists the available experiments; with names (e.g.
``fig6 table3`` or ``all``), runs them and prints the paper-style tables.
Two observability subcommands ride along:

* ``report [--json]`` -- run a short echo workload and print registry-backed
  metric summaries (traffic by category/host, channel/cache ops, scraped
  bandwidth); ``--json`` emits the machine-readable snapshot instead;
* ``trace [out.json]`` -- run the Fig 13 failover with the sim-time tracer
  and export Chrome-trace JSON;
* ``flows [out.json]`` -- run the UDP echo workload with end-to-end flow
  tracing and print the per-stage attribution table, critical path and
  slowest-request waterfall (optionally exporting a Perfetto flow-arrow
  trace);
* ``top [--once] [--json] [--hosts N]`` -- run a seeded echo workload with
  the fleet-health pipeline enabled and render the live rack dashboard
  (per-host/per-device utilization bars, pool stranding, firing alerts);
* ``overload [--check] [--json]`` -- open-loop surge sweep through 1.5x
  device capacity with retry budgets/admission control on vs off
  (budgets-off shows metastable collapse, budgets-on recovers);
* ``serve [--check] [--json]`` -- multi-tenant QoS serving: a 3-class
  tenant mix under per-tenant weighted-fair queueing, with a noisy
  neighbour surging to 8x its share (victim latency and weighted shares
  are gated against the solo baseline).
"""

from __future__ import annotations

import sys

from . import __version__
from .experiments import runner


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    by_name = {
        module.__name__.rsplit(".", 1)[-1]: (title, module)
        for title, module in runner.ALL_EXPERIMENTS
    }
    if not argv or argv[0] in ("-h", "--help"):
        print(f"repro {__version__} -- Oasis (SOSP '25) reproduction")
        print("usage: python -m repro <experiment ...|all>")
        print("       python -m repro report [--json] [--sim-gauges]")
        print("       python -m repro trace [out.json]")
        print("       python -m repro flows [out.json]")
        print("       python -m repro top [--once] [--json] [--hosts N]")
        print("       python -m repro rack [--hosts N] [--pools M] [--json]")
        print("       python -m repro chaos [--seed N] [--plan plan.json]")
        print("       python -m repro overload [--check] [--json] [--out BENCH_pr10.json]")
        print("       python -m repro serve [--check] [--json] [--out BENCH_pr10.json]\n")
        print("experiments:")
        for name, (title, _) in by_name.items():
            print(f"  {name:<8} {title}")
        print("\nobservability:")
        print("  report   registry-backed metrics summary of an echo run")
        print("  trace    failover run exported as Chrome-trace JSON")
        print("  flows    per-request latency attribution (bottleneck profile)")
        print("  top      live fleet-health dashboard (utilization/stranding/alerts)")
        print("  rack     32-host rack: echo on every host + sharded control plane")
        print("  chaos    deterministic fault injection with invariant checks")
        print("  overload surge sweep: goodput collapse vs recovery with retry budgets")
        print("  serve    multi-tenant QoS serving: WFQ isolation vs a noisy neighbour")
        return 0
    if argv[0] == "report":
        from .obs.cli import main_report

        main_report(as_json="--json" in argv[1:],
                    sim_gauges="--sim-gauges" in argv[1:])
        return 0
    if argv[0] == "top":
        from .obs.cli import main_top

        return main_top(argv[1:])
    if argv[0] == "trace":
        from .obs.cli import main_trace

        main_trace(argv[1] if len(argv) > 1 else "oasis-failover-trace.json")
        return 0
    if argv[0] == "flows":
        from .obs.cli import main_flows

        main_flows(argv[1] if len(argv) > 1 else None)
        return 0
    if argv[0] == "rack":
        from .experiments.rack import main_rack

        return main_rack(argv[1:])
    if argv[0] == "chaos":
        from .faults.chaos import main_chaos

        return main_chaos(argv[1:])
    if argv[0] == "overload":
        from .experiments.overload import main_overload

        return main_overload(argv[1:])
    if argv[0] == "serve":
        from .experiments.serve import main_serve

        return main_serve(argv[1:])
    if argv == ["all"]:
        runner.main()
        return 0
    unknown = [name for name in argv if name not in by_name]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(by_name)}", file=sys.stderr)
        return 2
    for name in argv:
        title, module = by_name[name]
        print(f"== {title} ==")
        module.main()
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
