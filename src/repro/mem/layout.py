"""Shared-memory region management.

The Oasis datapath carves the pool into regions (§3.2/§3.3): per-host channel
regions, a 4 GB TX region per frontend (subdivided into 64 MB per-instance TX
buffer areas), and a 4 GB RX buffer area per NIC.  Two allocators cover those
needs:

* :class:`RegionAllocator` -- first-fit free-list allocator with coalescing,
  used to hand out large regions and variable-size TX buffers;
* :class:`FixedPool` -- an O(1) free-stack of fixed-size buffers, used for
  RX buffers that the backend driver posts to the NIC and recycles.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..config import CACHE_LINE
from ..errors import MemoryFault

__all__ = ["Region", "RegionAllocator", "FixedPool", "align_up"]


def align_up(value: int, alignment: int) -> int:
    """Round ``value`` up to a multiple of ``alignment`` (a power of two)."""
    return (value + alignment - 1) & ~(alignment - 1)


@dataclass(frozen=True)
class Region:
    """A [base, base+size) window of the shared pool."""

    base: int
    size: int
    label: str = ""

    @property
    def end(self) -> int:
        return self.base + self.size

    def contains(self, addr: int, size: int = 1) -> bool:
        return self.base <= addr and addr + size <= self.end

    def offset_of(self, addr: int) -> int:
        if not self.contains(addr):
            raise MemoryFault(f"address {addr:#x} outside region {self.label!r}")
        return addr - self.base

    def subregion(self, offset: int, size: int, label: str = "") -> "Region":
        if offset < 0 or offset + size > self.size:
            raise MemoryFault(
                f"subregion [{offset}, {offset + size}) outside region of {self.size} B"
            )
        return Region(self.base + offset, size, label or self.label)


class RegionAllocator:
    """First-fit allocator with free-block coalescing, cache-line aligned."""

    def __init__(self, region: Region, alignment: int = CACHE_LINE):
        if alignment & (alignment - 1):
            raise MemoryFault("alignment must be a power of two")
        self.region = region
        self.alignment = alignment
        # Sorted list of free (base, size) blocks.
        base = align_up(region.base, alignment)
        self._free: List[Tuple[int, int]] = [(base, region.end - base)]
        self._allocated: Dict[int, int] = {}

    @property
    def free_bytes(self) -> int:
        return sum(size for _, size in self._free)

    @property
    def allocated_bytes(self) -> int:
        return sum(self._allocated.values())

    def alloc(self, size: int, label: str = "") -> Region:
        """Allocate ``size`` bytes; raises :class:`MemoryFault` when full."""
        if size <= 0:
            raise MemoryFault("allocation size must be positive")
        want = align_up(size, self.alignment)
        for i, (base, block) in enumerate(self._free):
            if block >= want:
                if block == want:
                    self._free.pop(i)
                else:
                    self._free[i] = (base + want, block - want)
                self._allocated[base] = want
                return Region(base, size, label)
        raise MemoryFault(
            f"out of shared memory: want {want} B, {self.free_bytes} B free "
            f"(fragmented into {len(self._free)} blocks)"
        )

    def free(self, region: Region) -> None:
        """Return a region; adjacent free blocks are coalesced."""
        want = self._allocated.pop(region.base, None)
        if want is None:
            raise MemoryFault(f"double free or foreign region at {region.base:#x}")
        i = bisect.bisect_left(self._free, (region.base, 0))
        self._free.insert(i, (region.base, want))
        self._coalesce(i)

    def _coalesce(self, i: int) -> None:
        # Merge with the following block.
        if i + 1 < len(self._free):
            base, size = self._free[i]
            nbase, nsize = self._free[i + 1]
            if base + size == nbase:
                self._free[i] = (base, size + nsize)
                self._free.pop(i + 1)
        # Merge with the preceding block.
        if i > 0:
            pbase, psize = self._free[i - 1]
            base, size = self._free[i]
            if pbase + psize == base:
                self._free[i - 1] = (pbase, psize + size)
                self._free.pop(i)


class FixedPool:
    """Fixed-size buffer pool (RX buffers): O(1) alloc/free, full recycling."""

    def __init__(self, region: Region, buffer_size: int):
        if buffer_size <= 0 or buffer_size % CACHE_LINE:
            raise MemoryFault("buffer_size must be a positive multiple of 64")
        self.region = region
        self.buffer_size = buffer_size
        base = align_up(region.base, CACHE_LINE)
        count = (region.end - base) // buffer_size
        if count <= 0:
            raise MemoryFault("region too small for even one buffer")
        self._free: List[int] = [base + i * buffer_size for i in range(count)][::-1]
        self._outstanding: set[int] = set()
        self.capacity = count

    @property
    def available(self) -> int:
        return len(self._free)

    @property
    def outstanding(self) -> int:
        return len(self._outstanding)

    def alloc(self) -> Optional[int]:
        """Pop a free buffer address, or None when exhausted."""
        if not self._free:
            return None
        addr = self._free.pop()
        self._outstanding.add(addr)
        return addr

    def free(self, addr: int) -> None:
        if addr not in self._outstanding:
            raise MemoryFault(f"recycling unknown or double-freed buffer {addr:#x}")
        self._outstanding.remove(addr)
        self._free.append(addr)
