"""Per-host CPU cache over non-coherent shared CXL memory.

This is the model that makes the paper's §3.2 problems *real* rather than
narrated:

* a host's load hits its own cached copy of a line even after another host
  (or a device) has overwritten the line in the pool -- i.e. **stale reads**;
* a host's store stays in its cache (dirty) and is invisible to everyone else
  until an explicit CLWB / CLFLUSHOPT;
* PREFETCHT0 on a line that is *already cached* is a no-op, which is exactly
  why naive prefetching stalls in Figure 6 (design ②) and why the Oasis
  channel must invalidate consumed and prefetched-but-stale lines (③/④).

Within one host, DMA is kept coherent the way real hardware does it: a device
write snoops and invalidates the local cache line, a device read snoops out
dirty data.  Across hosts there is no snooping at all -- that is the CXL 2.0
reality Oasis is built for.

Every operation returns its CPU cost in nanoseconds; callers (driver loops,
the Figure 6 microbench) accumulate those costs into virtual time.

This sits on the hottest path of the simulator (every channel poll, doorbell
and payload move goes through it), so the single-line cases -- 16 B messages,
8 B counters, aligned 64 B slots -- take a branch-free fast path, and the
per-line link accounting writes straight into this host's
:class:`~repro.mem.cxl.LinkStats` tables instead of re-resolving them per
operation.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional, Tuple

from ..config import CACHE_LINE, CacheTimings
from ..errors import MemoryFault
from .cxl import CXLMemoryPool, lines_spanned

__all__ = ["HostCache", "CacheStats"]


@dataclass
class CacheStats:
    """Operation counters, used by tests and the Table 3 experiment."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    writebacks: int = 0
    invalidations: int = 0
    fences: int = 0
    prefetches_issued: int = 0
    prefetches_ignored: int = 0     # line already cached: the Fig 6 pathology
    evictions: int = 0
    dma_read_snoop_hits: int = 0
    dma_write_snoop_hits: int = 0
    writebacks_lost: int = 0        # injected fault: posted write vanished
    writebacks_partial: int = 0     # injected fault: only half the line landed

    def reset(self) -> None:
        for name in self.__dict__:
            setattr(self, name, 0)


class _Line:
    __slots__ = ("data", "dirty")

    def __init__(self, data: bytearray, dirty: bool = False):
        self.data = data
        self.dirty = dirty


class HostCache:
    """One host's view of the shared pool through its (non-coherent) caches."""

    __slots__ = ("pool", "host", "capacity_lines", "timings", "_lines",
                 "stats", "_track_lru", "_rd", "_wr", "writeback_hook",
                 "_wb_fault")

    def __init__(
        self,
        pool: CXLMemoryPool,
        host: str,
        capacity_lines: Optional[int] = None,
        timings: Optional[CacheTimings] = None,
    ):
        self.pool = pool
        self.host = host
        self.capacity_lines = capacity_lines
        self.timings = timings or pool.timings
        self._lines: "OrderedDict[int, _Line]" = OrderedDict()
        self.stats = CacheStats()
        # LRU order only matters for a bounded cache; the unbounded default
        # skips the per-access move_to_end.
        self._track_lru = capacity_lines is not None
        # This host's per-category byte counters, bound lazily on the first
        # accounted transfer so the pool's link table is populated exactly
        # when traffic first flows (not when the cache object is built).
        self._rd = None
        self._wr = None
        # Optional interception of explicit writebacks (CLWB/CLFLUSHOPT of a
        # dirty line).  The Figure 6 microbench uses this to model the posted
        # write's flight time: the hook receives (line_index, data, category)
        # and applies the bytes to the pool once the write lands.  When unset,
        # writebacks reach the pool immediately.
        self.writeback_hook = None
        # Fault injection (repro.faults): the next N writebacks of matching
        # category are dropped ("drop") or torn in half ("partial").
        self._wb_fault: Optional[dict] = None

    # -- internals ----------------------------------------------------------

    def _account(self, direction_write: bool, category: str, nbytes: int) -> None:
        table = self._wr if direction_write else self._rd
        if table is None:
            stats = self.pool.stats_for(self.host)
            self._rd = stats.read_bytes
            self._wr = stats.write_bytes
            table = self._wr if direction_write else self._rd
        table[category] = table.get(category, 0) + nbytes

    def _evict_if_needed(self) -> None:
        while self.capacity_lines is not None and len(self._lines) > self.capacity_lines:
            index, line = self._lines.popitem(last=False)
            if line.dirty:
                # A capacity eviction of a dirty line is a posted write just
                # like CLWB/CLFLUSHOPT: it must go through the writeback hook
                # so timing harnesses model its flight time too.
                self._write_back(index, line, "eviction")
            self.stats.evictions += 1

    def _fill(self, index: int, category: str) -> _Line:
        pool = self.pool
        if index < 0 or (index + 1) * CACHE_LINE > pool.size:
            raise MemoryFault(
                f"access [{index * CACHE_LINE}, {(index + 1) * CACHE_LINE}) "
                f"outside pool of {pool.size} B")
        src = pool._lines.get(index)
        data = bytearray(src) if src is not None else bytearray(CACHE_LINE)
        line = _Line(data)
        self._lines[index] = line
        if self._track_lru:
            self._evict_if_needed()
        self._account(False, category, CACHE_LINE)
        return line

    def _touch(self, index: int) -> None:
        self._lines.move_to_end(index)

    # -- inspection (free: used by assertions, not the datapath) -------------

    def contains(self, addr: int) -> bool:
        return addr // CACHE_LINE in self._lines

    def is_dirty(self, addr: int) -> bool:
        line = self._lines.get(addr // CACHE_LINE)
        return bool(line and line.dirty)

    @property
    def cached_line_count(self) -> int:
        return len(self._lines)

    # -- CPU loads and stores -------------------------------------------------

    def load(self, addr: int, size: int, category: str = "payload") -> Tuple[bytes, float]:
        """CPU load of ``size`` bytes.  Returns ``(data, cost_ns)``.

        Cached lines are served from the cache *even if stale* -- staleness is
        the caller's problem, exactly as on real non-coherent CXL 2.0.
        """
        t = self.timings
        index = addr // CACHE_LINE
        offset = addr - index * CACHE_LINE
        if offset + size <= CACHE_LINE:
            # Fast path: the load is contained in one line.
            line = self._lines.get(index)
            stats = self.stats
            if line is None:
                # _fill, inlined (this is the hottest miss path in the sim).
                pool = self.pool
                if index < 0 or (index + 1) * CACHE_LINE > pool.size:
                    raise MemoryFault(
                        f"access [{index * CACHE_LINE}, {(index + 1) * CACHE_LINE}) "
                        f"outside pool of {pool.size} B")
                src = pool._lines.get(index)
                line = _Line(bytearray(src) if src is not None else bytearray(CACHE_LINE))
                self._lines[index] = line
                if self._track_lru:
                    self._evict_if_needed()
                rd = self._rd
                if rd is None:
                    link_stats = pool.stats_for(self.host)
                    self._rd = rd = link_stats.read_bytes
                    self._wr = link_stats.write_bytes
                rd[category] = rd.get(category, 0) + CACHE_LINE
                stats.misses += 1
                cost = 0.0 + t.cxl_load_ns
            else:
                if self._track_lru:
                    self._lines.move_to_end(index)
                stats.hits += 1
                cost = 0.0 + t.cache_hit_ns
            return bytes(line.data[offset:offset + size]), cost
        out = bytearray(size)
        cost = 0.0
        pos = 0
        first_miss = True
        lines = self._lines
        stats = self.stats
        track = self._track_lru
        while pos < size:
            index = (addr + pos) // CACHE_LINE
            offset = (addr + pos) - index * CACHE_LINE
            take = CACHE_LINE - offset
            rest = size - pos
            if rest < take:
                take = rest
            line = lines.get(index)
            if line is None:
                line = self._fill(index, category)
                stats.misses += 1
                # A sequential multi-line load overlaps misses after the
                # first (hardware prefetch + MLP): only the first pays the
                # full load-to-use latency.
                cost += t.cxl_load_ns if first_miss else t.cxl_stream_ns
                first_miss = False
            else:
                if track:
                    lines.move_to_end(index)
                stats.hits += 1
                cost += t.cache_hit_ns
            out[pos:pos + take] = line.data[offset:offset + take]
            pos += take
        return bytes(out), cost

    def store(self, addr: int, data: bytes, category: str = "payload") -> float:
        """CPU store (write-allocate).  Dirty data stays local until CLWB."""
        t = self.timings
        size = len(data)
        index = addr // CACHE_LINE
        offset = addr - index * CACHE_LINE
        if offset + size <= CACHE_LINE:
            # Fast path: the store is contained in one line.
            line = self._lines.get(index)
            if line is None:
                if offset == 0 and size == CACHE_LINE:
                    # Full-line store: no read-for-ownership needed.
                    line = _Line(bytearray(CACHE_LINE))
                    self._lines[index] = line
                    if self._track_lru:
                        self._evict_if_needed()
                    cost = 0.0
                else:
                    # _fill (read-for-ownership), inlined.
                    pool = self.pool
                    if index < 0 or (index + 1) * CACHE_LINE > pool.size:
                        raise MemoryFault(
                            f"access [{index * CACHE_LINE}, "
                            f"{(index + 1) * CACHE_LINE}) "
                            f"outside pool of {pool.size} B")
                    src = pool._lines.get(index)
                    line = _Line(bytearray(src) if src is not None
                                 else bytearray(CACHE_LINE))
                    self._lines[index] = line
                    if self._track_lru:
                        self._evict_if_needed()
                    rd = self._rd
                    if rd is None:
                        link_stats = pool.stats_for(self.host)
                        self._rd = rd = link_stats.read_bytes
                        self._wr = link_stats.write_bytes
                    rd[category] = rd.get(category, 0) + CACHE_LINE
                    cost = 0.0 + t.cxl_load_ns
            else:
                if self._track_lru:
                    self._lines.move_to_end(index)
                cost = 0.0
            line.data[offset:offset + size] = data
            line.dirty = True
            self.stats.stores += 1
            return cost + t.store_ns
        cost = 0.0
        pos = 0
        first_miss = True
        lines = self._lines
        stats = self.stats
        track = self._track_lru
        while pos < size:
            index = (addr + pos) // CACHE_LINE
            offset = (addr + pos) - index * CACHE_LINE
            take = CACHE_LINE - offset
            rest = size - pos
            if rest < take:
                take = rest
            line = lines.get(index)
            if line is None:
                if offset == 0 and take == CACHE_LINE:
                    # Full-line store: no read-for-ownership needed.
                    line = _Line(bytearray(CACHE_LINE))
                    lines[index] = line
                    if track:
                        self._evict_if_needed()
                else:
                    line = self._fill(index, category)
                    # RFO fetch; overlapped after the first miss (MLP).
                    cost += t.cxl_load_ns if first_miss else t.cxl_stream_ns
                    first_miss = False
            else:
                if track:
                    lines.move_to_end(index)
            line.data[offset:offset + take] = data[pos:pos + take]
            line.dirty = True
            cost += t.store_ns
            stats.stores += 1
            pos += take
        return cost

    # -- explicit coherence operations ----------------------------------------

    def clwb(self, addr: int, category: str = "payload") -> float:
        """Write back the line containing ``addr`` (kept cached, clean)."""
        index = addr // CACHE_LINE
        line = self._lines.get(index)
        if line is None or not line.dirty:
            return self.timings.clflush_issue_ns
        # _write_back, inlined: every visible channel message pays one of
        # these, so the common hook-free, fault-free case stays flat.
        if self._wb_fault is not None and self._writeback_faulted(index, line, category):
            line.dirty = False
            self.stats.writebacks += 1
            return self.timings.clwb_ns
        hook = self.writeback_hook
        if hook is not None:
            hook(index, bytes(line.data), category)
        else:
            pool = self.pool
            if index < 0 or (index + 1) * CACHE_LINE > pool.size:
                raise MemoryFault(
                    f"access [{index * CACHE_LINE}, {(index + 1) * CACHE_LINE}) "
                    f"outside pool of {pool.size} B")
            pool._lines[index] = bytearray(line.data)
        wr = self._wr
        if wr is None:
            link_stats = self.pool.stats_for(self.host)
            self._rd = link_stats.read_bytes
            self._wr = wr = link_stats.write_bytes
        wr[category] = wr.get(category, 0) + CACHE_LINE
        line.dirty = False
        self.stats.writebacks += 1
        return self.timings.clwb_ns

    def clwb_range(self, addr: int, size: int, category: str = "payload") -> float:
        if size > 0 and addr >= 0 and \
                addr // CACHE_LINE == (addr + size - 1) // CACHE_LINE:
            # Single-line range (counters, 16/64 B messages): skip the loop.
            return self.clwb(addr, category)
        if self._wb_fault is not None or self.writeback_hook is not None:
            cost = 0.0
            for i in lines_spanned(addr, size):
                cost += self.clwb(i * CACHE_LINE, category)
            return cost
        # Hook-free fast path: clwb() inlined per spanned line (every TX
        # payload writeback walks this loop).
        t = self.timings
        clwb_ns = t.clwb_ns
        issue_ns = t.clflush_issue_ns
        lines = self._lines
        pool = self.pool
        pool_size = pool.size
        pool_lines = pool._lines
        stats = self.stats
        wr = self._wr
        cost = 0.0
        for i in lines_spanned(addr, size):
            line = lines.get(i)
            if line is None or not line.dirty:
                cost += issue_ns
                continue
            if i < 0 or (i + 1) * CACHE_LINE > pool_size:
                raise MemoryFault(
                    f"access [{i * CACHE_LINE}, {(i + 1) * CACHE_LINE}) "
                    f"outside pool of {pool_size} B")
            pool_lines[i] = bytearray(line.data)
            if wr is None:
                link_stats = pool.stats_for(self.host)
                self._rd = link_stats.read_bytes
                self._wr = wr = link_stats.write_bytes
            wr[category] = wr.get(category, 0) + CACHE_LINE
            line.dirty = False
            stats.writebacks += 1
            cost += clwb_ns
        return cost

    def clflush(self, addr: int, fenced: bool = False, category: str = "payload") -> float:
        """CLFLUSHOPT: write back if dirty, then drop the line.

        ``fenced=True`` models a CLFLUSHOPT immediately ordered by MFENCE
        (serialising, ~5x the cost of a background flush) -- the difference
        that separates the Figure 6 baseline from the Oasis design.
        """
        t = self.timings
        index = addr // CACHE_LINE
        line = self._lines.pop(index, None)
        if line is not None:
            stats = self.stats
            if line.dirty:
                self._write_back(index, line, category)
                stats.writebacks += 1
            stats.invalidations += 1
        return t.clflush_ns if fenced else t.clflush_issue_ns

    def inject_writeback_fault(self, count: int = 1, mode: str = "drop",
                               category: Optional[str] = "payload",
                               on_fault=None) -> None:
        """Arm a writeback fault: the next ``count`` writebacks whose category
        matches (``None`` matches any) are dropped or half-torn.

        The CPU side is oblivious -- CLWB retires, the line goes clean, the
        writeback counter ticks -- but the pool never (fully) sees the bytes,
        which is exactly how a lost posted write on a flaky CXL link behaves.
        ``on_fault(line_index, category, mode)`` lets the injector record the
        damaged line so invariant checks can exclude it.
        """
        if mode not in ("drop", "partial"):
            raise ValueError(f"unknown writeback fault mode {mode!r}")
        if count <= 0:
            raise ValueError("writeback fault count must be positive")
        self._wb_fault = {"count": int(count), "mode": mode,
                          "category": category, "on_fault": on_fault}

    def _writeback_faulted(self, index: int, line: "_Line", category: str) -> bool:
        fault = self._wb_fault
        if fault is None:
            return False
        if fault["category"] is not None and fault["category"] != category:
            return False
        fault["count"] -= 1
        if fault["count"] <= 0:
            self._wb_fault = None
        if fault["on_fault"] is not None:
            fault["on_fault"](index, category, fault["mode"])
        if fault["mode"] == "drop":
            self.stats.writebacks_lost += 1
            return True
        # Partial: the first half of the line lands, the tail is torn off.
        half = CACHE_LINE // 2
        merged = bytes(line.data[:half]) + self.pool.read_line(index)[half:]
        self.pool.write_line(index, merged)
        self._account(True, category, CACHE_LINE)
        self.stats.writebacks_partial += 1
        return True

    def _write_back(self, index: int, line: "_Line", category: str) -> None:
        if self._wb_fault is not None and self._writeback_faulted(index, line, category):
            return
        hook = self.writeback_hook
        if hook is not None:
            hook(index, bytes(line.data), category)
        else:
            pool = self.pool
            if index < 0 or (index + 1) * CACHE_LINE > pool.size:
                raise MemoryFault(
                    f"access [{index * CACHE_LINE}, {(index + 1) * CACHE_LINE}) "
                    f"outside pool of {pool.size} B")
            pool._lines[index] = bytearray(line.data)
        self._account(True, category, CACHE_LINE)

    def clflush_range(self, addr: int, size: int, fenced: bool = False,
                      category: str = "payload") -> float:
        if size > 0 and addr >= 0 and \
                addr // CACHE_LINE == (addr + size - 1) // CACHE_LINE:
            # Single-line range: skip the loop.
            return self.clflush(addr, fenced, category)
        if self._wb_fault is not None or self.writeback_hook is not None:
            cost = 0.0
            for i in lines_spanned(addr, size):
                cost += self.clflush(i * CACHE_LINE, fenced, category)
            return cost
        # Hook-free fast path: clflush() inlined per spanned line (every RX
        # buffer invalidation walks this loop).
        t = self.timings
        per_line_ns = t.clflush_ns if fenced else t.clflush_issue_ns
        lines = self._lines
        pool = self.pool
        pool_size = pool.size
        pool_lines = pool._lines
        stats = self.stats
        wr = self._wr
        cost = 0.0
        for i in lines_spanned(addr, size):
            line = lines.pop(i, None)
            if line is not None:
                if line.dirty:
                    # _write_back, inlined (hook-free, fault-free).
                    if i < 0 or (i + 1) * CACHE_LINE > pool_size:
                        raise MemoryFault(
                            f"access [{i * CACHE_LINE}, {(i + 1) * CACHE_LINE})"
                            f" outside pool of {pool_size} B")
                    pool_lines[i] = bytearray(line.data)
                    if wr is None:
                        link_stats = pool.stats_for(self.host)
                        self._rd = link_stats.read_bytes
                        self._wr = wr = link_stats.write_bytes
                    wr[category] = wr.get(category, 0) + CACHE_LINE
                    stats.writebacks += 1
                stats.invalidations += 1
            cost += per_line_ns
        return cost

    def mfence(self) -> float:
        self.stats.fences += 1
        return self.timings.mfence_ns

    def prefetch(self, addr: int, category: str = "message") -> Tuple[bool, float]:
        """PREFETCHT0.  Returns ``(issued, cost_ns)``.

        A prefetch of a line already present in the cache is ignored by the
        hardware -- including when the cached copy is stale.  This no-op is
        the root cause dissected in §3.2.2.
        """
        index = addr // CACHE_LINE
        if index in self._lines:
            self.stats.prefetches_ignored += 1
            return False, self.timings.prefetch_issue_ns
        self._fill(index, category)
        self.stats.prefetches_issued += 1
        return True, self.timings.prefetch_issue_ns

    def drop_all(self) -> None:
        """Invalidate the entire cache without writing anything back."""
        self._lines.clear()

    # -- intra-host DMA snooping ------------------------------------------------

    def snoop_dma_write(self, addr: int, size: int) -> float:
        """Called when a *local* device DMA-writes: invalidate our copies."""
        cost = 0.0
        for index in lines_spanned(addr, size):
            if self._lines.pop(index, None) is not None:
                self.stats.dma_write_snoop_hits += 1
                cost += self.timings.clflush_issue_ns
        return cost

    def snoop_dma_read(self, addr: int, size: int) -> float:
        """Called when a *local* device DMA-reads: flush our dirty data."""
        cost = 0.0
        for index in lines_spanned(addr, size):
            line = self._lines.get(index)
            if line is not None and line.dirty:
                self.pool.write_line(index, bytes(line.data))
                self._account(True, "snoop", CACHE_LINE)
                line.dirty = False
                self.stats.dma_read_snoop_hits += 1
                cost += self.timings.clwb_ns
        return cost
