"""CXL memory substrate: shared pool, non-coherent host caches, regions."""

from .cache import CacheStats, HostCache
from .cxl import CXLMemoryPool, LinkStats, line_base, line_index, lines_spanned
from .layout import FixedPool, Region, RegionAllocator, align_up

__all__ = [
    "CXLMemoryPool",
    "LinkStats",
    "HostCache",
    "CacheStats",
    "Region",
    "RegionAllocator",
    "FixedPool",
    "align_up",
    "line_base",
    "line_index",
    "lines_spanned",
]
