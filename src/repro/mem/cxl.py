"""Shared CXL memory pool model.

The pool is a flat, byte-addressable store shared by every host in the pod
(§2.3).  Hosts never touch it directly: CPU accesses go through a
:class:`~repro.mem.cache.HostCache` (which may serve stale data -- the pool is
*not* cache-coherent across hosts), while PCIe devices DMA straight to the
pool through :meth:`CXLMemoryPool.dma_read` / :meth:`dma_write`.

Storage is sparse (a dict of 64 B lines), so a 256 GB pool costs memory only
for the lines actually written.  Every transfer is accounted per host link and
per *category* ("payload", "message", "counter", ...), which is what
regenerates Table 3's bandwidth breakdown.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional, Tuple

from ..config import CACHE_LINE, CXLConfig
from ..errors import MemoryFault

__all__ = ["CXLMemoryPool", "LinkStats", "line_index", "line_base", "lines_spanned"]


def line_index(addr: int) -> int:
    """Cache-line index containing byte address ``addr``."""
    return addr // CACHE_LINE


def line_base(addr: int) -> int:
    """Base byte address of the cache line containing ``addr``.

    Negative addresses are rejected: Python's floor-division/masking would
    silently return a "valid"-looking line for them, so a sign bug upstream
    would corrupt an unrelated line instead of faulting.
    """
    if addr < 0:
        raise MemoryFault(f"negative address {addr}")
    return addr & ~(CACHE_LINE - 1)


def lines_spanned(addr: int, size: int) -> range:
    """Indices of every cache line touched by ``[addr, addr+size)``."""
    if addr < 0:
        raise MemoryFault(f"negative address {addr}")
    if size <= 0:
        return range(0)
    return range(addr // CACHE_LINE, (addr + size - 1) // CACHE_LINE + 1)


@dataclass
class LinkStats:
    """Per-host-link transfer counters, split by direction and category."""

    read_bytes: Dict[str, int] = field(default_factory=dict)
    write_bytes: Dict[str, int] = field(default_factory=dict)

    def record(self, direction: str, category: str, nbytes: int) -> None:
        table = self.read_bytes if direction == "read" else self.write_bytes
        table[category] = table.get(category, 0) + nbytes

    def total(self, direction: Optional[str] = None) -> int:
        total = 0
        if direction in (None, "read"):
            total += sum(self.read_bytes.values())
        if direction in (None, "write"):
            total += sum(self.write_bytes.values())
        return total

    def by_category(self) -> Dict[str, int]:
        """Read+write bytes per category."""
        merged: Dict[str, int] = {}
        for table in (self.read_bytes, self.write_bytes):
            for category, nbytes in table.items():
                merged[category] = merged.get(category, 0) + nbytes
        return merged

    def snapshot(self) -> "LinkStats":
        return LinkStats(dict(self.read_bytes), dict(self.write_bytes))

    def delta_since(self, earlier: "LinkStats") -> "LinkStats":
        """Counters accumulated since an earlier :meth:`snapshot`."""
        delta = LinkStats()
        for category, nbytes in self.read_bytes.items():
            delta.read_bytes[category] = nbytes - earlier.read_bytes.get(category, 0)
        for category, nbytes in self.write_bytes.items():
            delta.write_bytes[category] = nbytes - earlier.write_bytes.get(category, 0)
        return delta


class CXLMemoryPool:
    """A multi-headed CXL memory device shared by all hosts in a pod."""

    def __init__(self, config: Optional[CXLConfig] = None, size: Optional[int] = None):
        self.config = config or CXLConfig()
        self.size = size if size is not None else self.config.pool_bytes
        if self.size <= 0:
            raise MemoryFault("pool size must be positive")
        self._lines: Dict[int, bytearray] = {}
        self.link_stats: Dict[str, LinkStats] = {}
        self.timings = self.config.timings
        # Fault injection (repro.faults): per-host-link bandwidth derate and
        # added latency; the key None degrades every link in the pod.
        self._link_faults: Dict[Optional[str], Tuple[float, float]] = {}

    # -- accounting --------------------------------------------------------

    def stats_for(self, host: str) -> LinkStats:
        if host not in self.link_stats:
            self.link_stats[host] = LinkStats()
        return self.link_stats[host]

    def _account(self, host: Optional[str], direction: str, category: str, nbytes: int) -> None:
        if host is None:
            return
        stats = self.link_stats.get(host)
        if stats is None:
            stats = self.link_stats[host] = LinkStats()
        table = stats.read_bytes if direction == "read" else stats.write_bytes
        table[category] = table.get(category, 0) + nbytes

    def total_traffic(self) -> int:
        return sum(stats.total() for stats in self.link_stats.values())

    # -- raw line access (used by HostCache and DMA) -------------------------

    def _check(self, addr: int, size: int) -> None:
        if addr < 0 or size < 0 or addr + size > self.size:
            raise MemoryFault(f"access [{addr}, {addr + size}) outside pool of {self.size} B")

    def read_line(self, index: int) -> bytes:
        """Return the 64 B line at ``index`` (zeros if never written)."""
        if index < 0 or (index + 1) * CACHE_LINE > self.size:
            raise MemoryFault(
                f"access [{index * CACHE_LINE}, {(index + 1) * CACHE_LINE}) "
                f"outside pool of {self.size} B")
        data = self._lines.get(index)
        return bytes(data) if data is not None else bytes(CACHE_LINE)

    def write_line(self, index: int, data: bytes) -> None:
        if index < 0 or (index + 1) * CACHE_LINE > self.size:
            raise MemoryFault(
                f"access [{index * CACHE_LINE}, {(index + 1) * CACHE_LINE}) "
                f"outside pool of {self.size} B")
        if len(data) != CACHE_LINE:
            raise MemoryFault(f"line write must be {CACHE_LINE} B, got {len(data)}")
        self._lines[index] = bytearray(data)

    # -- device (DMA) access: bypasses CPU caches ----------------------------

    def dma_read(self, addr: int, size: int, host: Optional[str] = None,
                 category: str = "payload",
                 account_bytes: Optional[int] = None) -> bytes:
        """Device read straight from the pool (no CPU cache involvement).

        ``account_bytes`` overrides the traffic accounting (e.g. a frame's
        declared wire size when padding bytes are not physically stored).
        """
        self._check(addr, size)
        out = bytearray(size)
        lines = self._lines
        pos = 0
        while pos < size:
            cursor = addr + pos
            index = cursor >> 6
            offset = cursor & 63
            take = CACHE_LINE - offset
            rest = size - pos
            if rest < take:
                take = rest
            line = lines.get(index)
            if line is not None:
                out[pos:pos + take] = line[offset:offset + take]
            pos += take
        nbytes = account_bytes if account_bytes is not None else (
            0 if size <= 0 else
            ((addr + size - 1) // CACHE_LINE - addr // CACHE_LINE + 1) * CACHE_LINE
        )
        self._account(host, "read", category, nbytes)
        return bytes(out)

    def dma_write(self, addr: int, data: bytes, host: Optional[str] = None,
                  category: str = "payload",
                  account_bytes: Optional[int] = None) -> None:
        """Device write straight to the pool (no CPU cache involvement)."""
        size = len(data)
        self._check(addr, size)
        lines = self._lines
        pos = 0
        while pos < size:
            cursor = addr + pos
            index = cursor >> 6
            offset = cursor & 63
            take = CACHE_LINE - offset
            rest = size - pos
            if rest < take:
                take = rest
            line = lines.get(index)
            if line is None:
                line = bytearray(CACHE_LINE)
                lines[index] = line
            line[offset:offset + take] = data[pos:pos + take]
            pos += take
        nbytes = account_bytes if account_bytes is not None else (
            0 if size <= 0 else
            ((addr + size - 1) // CACHE_LINE - addr // CACHE_LINE + 1) * CACHE_LINE
        )
        self._account(host, "write", category, nbytes)

    # -- transfer timing -----------------------------------------------------

    def set_link_fault(self, host: Optional[str] = None, derate: float = 1.0,
                       extra_s: float = 0.0) -> None:
        """Degrade a host's CXL link: divide bandwidth by ``derate`` and add
        ``extra_s`` to every transfer.  ``host=None`` degrades all links."""
        if derate < 1.0:
            raise MemoryFault(f"link derate must be >= 1, got {derate}")
        self._link_faults[host] = (derate, extra_s)

    def clear_link_fault(self, host: Optional[str] = None) -> None:
        self._link_faults.pop(host, None)

    def link_fault_active(self, host: Optional[str] = None) -> bool:
        return host in self._link_faults or None in self._link_faults

    def transfer_time_s(self, nbytes: int, host: Optional[str] = None) -> float:
        """Time to move ``nbytes`` across one host's CXL link (bandwidth only,
        plus any injected link fault on that host's link)."""
        base = nbytes / self.config.link_bytes_per_sec
        if self._link_faults:
            fault = self._link_faults.get(host)
            if fault is None:
                fault = self._link_faults.get(None)
            if fault is not None:
                derate, extra_s = fault
                return base * derate + extra_s
        return base

    def touched_lines(self) -> Iterator[Tuple[int, bytes]]:
        """All lines ever written, for debugging/verification."""
        for index in sorted(self._lines):
            yield index, bytes(self._lines[index])
