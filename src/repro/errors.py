"""Exception hierarchy for the Oasis reproduction."""

from __future__ import annotations

__all__ = [
    "ReproError",
    "MemoryFault",
    "ProtectionFault",
    "ChannelError",
    "ChannelFullError",
    "DeviceError",
    "DeviceFailedError",
    "AllocationError",
    "LeaseError",
    "ConfigError",
]


class ReproError(Exception):
    """Base class for all library errors."""


class MemoryFault(ReproError):
    """Access outside a mapped CXL region or past a region boundary."""


class ProtectionFault(MemoryFault):
    """An instance touched shared CXL memory outside its own buffer area."""


class ChannelError(ReproError):
    """Message-channel protocol violation (size, ownership, epoch)."""


class ChannelFullError(ChannelError):
    """Sender ran out of free slots (receiver's consumed counter too old)."""


class DeviceError(ReproError):
    """PCIe device protocol error (bad descriptor, queue misuse)."""


class DeviceFailedError(DeviceError):
    """Operation attempted on a failed device."""


class AllocationError(ReproError):
    """Pod-wide allocator could not satisfy a resource request."""


class LeaseError(ReproError):
    """Lease expired, revoked, or doubly granted."""


class ConfigError(ReproError):
    """Invalid configuration value."""
