"""Open-loop, heavy-tailed block I/O client (overload generator).

The closed-loop workloads (echo/memcached/blockio) self-limit: they cap
in-flight requests, so offered load can never exceed capacity and overload
behaviour is unobservable.  This client extends the fig3 ON/OFF idea into a
rate-driven generator that queues independently of completions:

* a Poisson *base* arrival process at ``rate_iops`` (mutable mid-run, so an
  experiment or the ``overload.surge`` fault can sweep offered load through
  and beyond capacity);
* Poisson-arriving *bursts* whose sizes are lognormal with a heavy tail,
  issued back-to-back (the fig3 shape: a low hum plus rare intense bursts).

Nothing is dropped at the client: every arrival is submitted, which is what
lets the storage frontend's admission control (or lack of it) determine the
outcome.  Offered load, goodput, sheds, errors and mean latency are binned
over time so experiments can render the goodput/latency-vs-time curve and
measure recovery after a surge.

Determinism: one dedicated RNG substream drives every draw (arrivals, burst
sizes, op mix); completions never feed back into the arrival process, so
the offered event stream is a pure function of (seed, rate profile).
"""

from __future__ import annotations

import math
from typing import List, Optional

import numpy as np

from ..core.storage.frontend import STATUS_SHED
from ..sim.core import Simulator, USEC

__all__ = ["OpenLoopBlockClient", "OpenLoopStats"]


class OpenLoopStats:
    """Totals plus per-bin timelines of one open-loop run."""

    def __init__(self, bin_s: float, duration_s: float):
        self.bin_s = bin_s
        bins = max(1, int(math.ceil(duration_s / bin_s)))
        self.offered = [0] * bins          # submissions, by submit time
        self.goodput = [0] * bins          # ok completions, by completion time
        self.shed_bins = [0] * bins        # sheds, by completion time
        self.error_bins = [0] * bins       # errors, by completion time
        self._latency_sum = [0.0] * bins   # of ok completions
        self.submitted = 0
        self.completed_ok = 0
        self.shed = 0
        self.errors = 0
        self.latencies_us: List[float] = []
        # Completions landing after the last bin's right edge (requests in
        # flight when the run window closed).  They still count in the
        # totals above, but folding them into the final bin would inflate
        # its goodput/latency -- and the recovery headline measured there.
        self.late_goodput = 0
        self.late_shed = 0
        self.late_errors = 0

    def _bin(self, t: float) -> Optional[int]:
        """Bin index for time ``t``; None once ``t`` is past the last bin."""
        index = int(t / self.bin_s)
        if index >= len(self.offered):
            return None
        return max(0, index)

    def on_submit(self, t: float) -> None:
        self.submitted += 1
        index = self._bin(t)
        if index is not None:
            self.offered[index] += 1

    def on_complete(self, t: float, status: int, latency_us: float) -> None:
        index = self._bin(t)
        if status == 0:
            self.completed_ok += 1
            self.latencies_us.append(latency_us)
            if index is None:
                self.late_goodput += 1
            else:
                self.goodput[index] += 1
                self._latency_sum[index] += latency_us
        elif status == STATUS_SHED:
            self.shed += 1
            if index is None:
                self.late_shed += 1
            else:
                self.shed_bins[index] += 1
        else:
            self.errors += 1
            if index is None:
                self.late_errors += 1
            else:
                self.error_bins[index] += 1

    def mean_latency_us(self, index: int) -> float:
        count = self.goodput[index]
        return self._latency_sum[index] / count if count else 0.0

    def goodput_iops(self, index: int) -> float:
        return self.goodput[index] / self.bin_s

    def window_goodput_iops(self, t0: float, t1: float) -> float:
        """Mean ok-completions/s over the window [t0, t1).

        The window is clamped to the binned range and the divisor is the
        *clamped* span, so a window reaching past the last bin's edge no
        longer averages over bins it never summed.
        """
        nbins = len(self.goodput)
        lo = min(max(0, int(t0 / self.bin_s)), nbins - 1)
        hi = max(lo + 1, min(nbins, int(math.ceil(t1 / self.bin_s))))
        total = sum(self.goodput[lo:hi])
        return total / ((hi - lo) * self.bin_s)

    def summary(self) -> dict:
        lat = self.latencies_us
        return {
            "submitted": self.submitted,
            "completed_ok": self.completed_ok,
            "shed": self.shed,
            "errors": self.errors,
            "late_goodput": self.late_goodput,
            "late_shed": self.late_shed,
            "late_errors": self.late_errors,
            "p50_us": float(np.percentile(lat, 50)) if lat else 0.0,
            "p99_us": float(np.percentile(lat, 99)) if lat else 0.0,
            "bin_s": self.bin_s,
            "offered": list(self.offered),
            "goodput": list(self.goodput),
            "shed_bins": list(self.shed_bins),
            "error_bins": list(self.error_bins),
            "mean_latency_us": [round(self.mean_latency_us(i), 3)
                                for i in range(len(self.offered))],
        }


class OpenLoopBlockClient:
    """Rate-driven block I/O source; offered load is seed-deterministic."""

    #: tenant tag for per-tenant WFQ (None keeps the legacy shared lane);
    #: set by the TenantClient subclass, never by plain overload runs.
    tenant: Optional[str] = None

    def __init__(
        self,
        sim: Simulator,
        device,
        rate_iops: float = 10_000.0,
        read_fraction: float = 0.9,
        io_blocks: int = 1,
        address_blocks: int = 4096,
        rng: Optional[np.random.Generator] = None,
        bin_s: float = 0.01,
        burst_rate_per_s: float = 0.0,
        burst_size_median: float = 32.0,
        burst_size_sigma: float = 1.2,
        burst_spacing_s: float = 2e-6,
        background_fraction: float = 0.0,
        name: str = "openloop",
    ):
        self.sim = sim
        self.device = device
        self.rate_iops = rate_iops
        self.rate_mult = 1.0            # overload.surge fault hook
        self.read_fraction = read_fraction
        self.io_blocks = io_blocks
        self.address_blocks = address_blocks
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.bin_s = bin_s
        self.burst_rate_per_s = burst_rate_per_s
        self.burst_size_median = burst_size_median
        self.burst_size_sigma = burst_size_sigma
        self.burst_spacing_s = burst_spacing_s
        self.background_fraction = background_fraction
        self.name = name
        self.stats: Optional[OpenLoopStats] = None
        self._stopped = True
        self._inflight = 0
        self._write_payload = bytes(io_blocks * device.block_size)

    # -- rate control (experiments and the overload.surge fault) -----------

    def set_rate(self, rate_iops: float) -> None:
        self.rate_iops = rate_iops

    def set_rate_multiplier(self, factor: float) -> None:
        """Multiplicative surge hook (the ``overload.surge`` fault)."""
        self.rate_mult = factor

    @property
    def effective_rate(self) -> float:
        return self.rate_iops * self.rate_mult

    @property
    def inflight(self) -> int:
        return self._inflight

    # -- lifecycle ---------------------------------------------------------

    def start(self, duration: float) -> None:
        # Reset every per-run mutable: a client restarted after an
        # ``overload.surge`` fault must not keep the surged multiplier, and
        # completions from a previous run must not count against this one.
        self.stats = OpenLoopStats(self.bin_s, duration)
        self.rate_mult = 1.0
        self._inflight = 0
        self._stopped = False
        self.sim.schedule(0.0, self._arrival_loop)
        if self.burst_rate_per_s > 0:
            self.sim.schedule(
                float(self.rng.exponential(1.0 / self.burst_rate_per_s)),
                self._burst_loop)
        self.sim.schedule(duration, self._stop)

    def _stop(self) -> None:
        self._stopped = True

    # -- arrival processes -------------------------------------------------

    def _arrival_loop(self) -> None:
        if self._stopped:
            return
        rate = self.effective_rate
        if rate > 0:
            self.sim.schedule(float(self.rng.exponential(1.0 / rate)),
                              self._arrival_loop)
            self._issue_one()
        else:
            # Paused: poll for the rate coming back without drawing arrivals.
            self.sim.schedule(self.bin_s, self._arrival_loop)

    def _burst_loop(self) -> None:
        if self._stopped:
            return
        self.sim.schedule(
            float(self.rng.exponential(1.0 / self.burst_rate_per_s)),
            self._burst_loop)
        size = max(1, int(self.rng.lognormal(
            math.log(self.burst_size_median), self.burst_size_sigma)))
        for i in range(size):
            self.sim.schedule(i * self.burst_spacing_s, self._issue_one)

    def _issue_one(self) -> None:
        if self._stopped:
            return
        lba = int(self.rng.integers(
            0, self.address_blocks - self.io_blocks + 1))
        background = (self.background_fraction > 0
                      and float(self.rng.random()) < self.background_fraction)
        start = self.sim.now
        self.stats.on_submit(start)
        self._inflight += 1
        if float(self.rng.random()) < self.read_fraction:
            self.device.read(
                lba, self.io_blocks,
                lambda status, data, s=start: self._complete(status, s),
                background=background, tenant=self.tenant)
        else:
            self.device.write(
                lba, self._write_payload,
                lambda status, s=start: self._complete(status, s),
                background=background, tenant=self.tenant)

    def _complete(self, status: int, started: float) -> None:
        self._inflight -= 1
        latency_us = (self.sim.now - started) / USEC
        self.stats.on_complete(self.sim.now, status, latency_us)
