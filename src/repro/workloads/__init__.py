"""Workload generators and application models."""

from .allocation import (
    DEFAULT_FAMILIES,
    AllocationTrace,
    InstanceFamily,
    InstanceRequest,
    generate_allocation_trace,
)
from .apps import APP_PROFILES, AppClient, AppProfile, AppServer
from .blockio import BlockWorkload, BlockWorkloadStats
from .echo import EchoClient, EchoServer, EchoStats
from .openloop import OpenLoopBlockClient, OpenLoopStats
from .replay import ReplayResult, TraceReplayClient, run_trace_replay
from .tenants import SERVE_PROFILES, TenantClient, TenantProfile
from .stranding import (
    PoolingResult,
    pooled_stranding,
    schedule_trace,
    stranded_fractions,
)
from .traceio import (
    load_allocation_trace,
    load_packet_trace,
    save_allocation_trace,
    save_packet_trace,
)
from .traces import (
    RACK_A_PARAMS,
    RACK_B_PARAMS,
    PacketTrace,
    TraceParams,
    generate_trace,
)

__all__ = [
    "EchoClient",
    "EchoServer",
    "EchoStats",
    "AppServer",
    "AppClient",
    "AppProfile",
    "APP_PROFILES",
    "BlockWorkload",
    "BlockWorkloadStats",
    "OpenLoopBlockClient",
    "OpenLoopStats",
    "TenantProfile",
    "TenantClient",
    "SERVE_PROFILES",
    "TraceParams",
    "PacketTrace",
    "generate_trace",
    "RACK_A_PARAMS",
    "RACK_B_PARAMS",
    "AllocationTrace",
    "InstanceRequest",
    "InstanceFamily",
    "DEFAULT_FAMILIES",
    "generate_allocation_trace",
    "schedule_trace",
    "stranded_fractions",
    "pooled_stranding",
    "PoolingResult",
    "TraceReplayClient",
    "ReplayResult",
    "run_trace_replay",
    "save_packet_trace",
    "load_packet_trace",
    "save_allocation_trace",
    "load_allocation_trace",
]
