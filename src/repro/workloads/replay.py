"""Packet-trace replay through the simulated Oasis stack (§5.2, Figure 12).

The paper replays rack A's inbound captures: two clients generate matching
UDP traffic to two hosts; each host echoes the packets back and the clients
record round-trip latency.  In the baseline each host uses its own NIC; with
multiplexing both share host 1's NIC.  Both setups run Oasis, so the
comparison isolates *multiplexing interference*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..analysis.stats import summarize_latencies, utilization_percentile
from ..core.pod import CXLPod
from ..net.packet import make_ip
from ..workloads.echo import EchoServer
from ..workloads.traces import PacketTrace
from ..net.transport import UdpSocket
from ..sim.core import Simulator, USEC

__all__ = ["TraceReplayClient", "ReplayResult", "run_trace_replay"]


class TraceReplayClient:
    """Replays a PacketTrace as UDP requests and records RTTs."""

    def __init__(self, sim: Simulator, endpoint, server_ip: int,
                 trace: PacketTrace, port: int = 21_000, server_port: int = 7):
        self.sim = sim
        self.trace = trace
        self.server_ip = server_ip
        self.server_port = server_port
        self.sock = UdpSocket(sim, endpoint, port)
        self.sock.on_datagram(self._on_reply)
        self._send_time: Dict[int, float] = {}
        self.latencies_us: List[float] = []
        self.recv_times: List[float] = []
        self.recv_sizes: List[int] = []
        self.sent = 0

    def start(self) -> None:
        base = self.sim.now
        for seq, (t, size) in enumerate(zip(self.trace.times, self.trace.sizes)):
            self.sim.at(base + float(t), self._send_one, seq, int(size))

    def _send_one(self, seq: int, size: int) -> None:
        from ..net.packet import HEADER_SIZE

        self._send_time[seq] = self.sim.now
        self.sent += 1
        pad = max(0, size - HEADER_SIZE - 8)
        self.sock.sendto(seq.to_bytes(8, "little") + b"\x00" * pad,
                         self.server_ip, self.server_port, wire_size=size,
                         seq=seq)

    def _on_reply(self, frame) -> None:
        sent_at = self._send_time.pop(frame.seq, None)
        if sent_at is None:
            return
        self.latencies_us.append((self.sim.now - sent_at) / USEC)
        self.recv_times.append(self.sim.now)
        self.recv_sizes.append(frame.wire_size)

    @property
    def received(self) -> int:
        return len(self.latencies_us)


@dataclass
class ReplayResult:
    """Per-host RTT summaries plus aggregated NIC utilization."""

    multiplexed: bool
    per_host: List[dict]
    nic_p9999_util: float
    lost: int


def run_trace_replay(
    traces: List[PacketTrace],
    multiplexed: bool,
    duration_s: Optional[float] = None,
    config=None,
) -> ReplayResult:
    """Replay one trace per host; share host 0's NIC when multiplexed."""
    pod = CXLPod(config=config, mode="oasis")
    hosts = [pod.add_host() for _ in traces]
    nics = [pod.add_nic(h) for h in hosts]

    clients = []
    for i, trace in enumerate(traces):
        inst = pod.add_instance(
            hosts[i], ip=make_ip(10, 0, 0, 10 + i),
            nic=nics[0] if multiplexed else nics[i],
        )
        EchoServer(pod.sim, inst)
        client_endpoint = pod.add_external_client(ip=make_ip(10, 0, 9, 10 + i))
        client = TraceReplayClient(pod.sim, client_endpoint, inst.ip, trace)
        client.start()
        clients.append(client)

    run_for = duration_s if duration_s is not None else traces[0].duration_s
    pod.run(run_for + 0.02)   # drain tail
    pod.stop()

    # Aggregated utilization: the traffic the NIC(s) must carry (the offered
    # traces), relative to the provisioned NIC capacity -- one NIC when
    # multiplexed, one per host otherwise.  This mirrors the paper, where
    # Figure 12's 18 % -> 37 % is the Table 2 aggregated-utilization metric
    # recomputed against the shared NIC.
    all_times = np.concatenate([t.times for t in traces])
    all_sizes = np.concatenate([t.sizes for t in traces]).astype(float)
    line = traces[0].params.line_bytes_per_sec
    denominator = line if multiplexed else line * len(traces)
    util = utilization_percentile(all_times, all_sizes, run_for, denominator,
                                  99.99) if len(all_times) else 0.0
    lost = sum(c.sent - c.received for c in clients)
    return ReplayResult(
        multiplexed=multiplexed,
        per_host=[summarize_latencies(c.latencies_us) for c in clients],
        nic_p9999_util=util,
        lost=lost,
    )
