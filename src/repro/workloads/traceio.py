"""Trace persistence: save/load the workload traces.

Lets users substitute *real* captures for the synthetic generators:

* packet traces (Figure 3/12 inputs) as ``.npz`` -- arrays of arrival times
  and sizes plus the link parameters;
* allocation traces (Figure 2 input) as CSV with one instance per row
  (arrive, depart, cores, memory, NIC, SSD, family, host) -- the same fields
  the paper's production trace records.
"""

from __future__ import annotations

import csv
from dataclasses import asdict
from pathlib import Path
from typing import List, Optional, Union

import numpy as np

from ..config import HostConfig
from .allocation import AllocationTrace, InstanceRequest
from .traces import PacketTrace, TraceParams

__all__ = [
    "save_packet_trace",
    "load_packet_trace",
    "save_allocation_trace",
    "load_allocation_trace",
]

PathLike = Union[str, Path]


def save_packet_trace(trace: PacketTrace, path: PathLike) -> None:
    """Write a packet trace to ``.npz`` (times, sizes, link parameters)."""
    params = trace.params
    np.savez_compressed(
        path,
        times=trace.times,
        sizes=trace.sizes,
        duration_s=params.duration_s,
        nic_gbps=params.nic_gbps,
        packet_bytes=params.packet_bytes,
    )


def load_packet_trace(path: PathLike) -> PacketTrace:
    """Load a packet trace saved by :func:`save_packet_trace` (or any .npz
    with ``times``/``sizes``/``nic_gbps``/``duration_s`` arrays)."""
    with np.load(path) as data:
        params = TraceParams(
            duration_s=float(data["duration_s"]),
            nic_gbps=float(data["nic_gbps"]),
            packet_bytes=int(data.get("packet_bytes", 1500)),
        )
        times = np.asarray(data["times"], dtype=float)
        sizes = np.asarray(data["sizes"], dtype=np.int64)
    order = np.argsort(times, kind="stable")
    return PacketTrace(times[order], sizes[order], params)


_ALLOC_FIELDS = ["index", "family", "arrive_s", "depart_s", "cores",
                 "memory_gb", "nic_gbps", "ssd_tb", "host"]


def save_allocation_trace(trace: AllocationTrace, path: PathLike) -> None:
    """Write an allocation trace as CSV (one instance per row)."""
    with open(path, "w", newline="") as f:
        writer = csv.DictWriter(f, fieldnames=_ALLOC_FIELDS)
        writer.writeheader()
        for instance in trace.instances:
            row = {field: getattr(instance, field) for field in _ALLOC_FIELDS}
            row["host"] = "" if instance.host is None else instance.host
            writer.writerow(row)


def load_allocation_trace(
    path: PathLike,
    host: Optional[HostConfig] = None,
) -> AllocationTrace:
    """Load an allocation trace saved by :func:`save_allocation_trace`."""
    host = host or HostConfig()
    instances: List[InstanceRequest] = []
    duration = 0.0
    with open(path, newline="") as f:
        for row in csv.DictReader(f):
            instance = InstanceRequest(
                index=int(row["index"]),
                family=row["family"],
                arrive_s=float(row["arrive_s"]),
                depart_s=float(row["depart_s"]),
                cores=float(row["cores"]),
                memory_gb=float(row["memory_gb"]),
                nic_gbps=float(row["nic_gbps"]),
                ssd_tb=float(row["ssd_tb"]),
                host=int(row["host"]) if row["host"] != "" else None,
            )
            instances.append(instance)
            duration = max(duration, instance.arrive_s)
    capacity = np.array([host.cores, host.memory_gb, host.nic_gbps,
                         host.ssd_tb])
    return AllocationTrace(instances, capacity, duration)
