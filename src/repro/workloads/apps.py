"""Application service models (Figures 8, 9 and 14).

The paper measures Oasis's overhead on four web applications (a Python HTTP
server, a Rust Rocket server, nginx, Apache Tomcat) and on memcached.  Each
is modelled as a single-worker request/response server with a calibrated
service-time distribution, so the *datapath* overhead under test rides on a
realistic application-latency floor, and queueing appears at high load just
as in Figure 8's near-saturation spikes.

Requests/responses ride the reliable transport (the apps are TCP-based), so
the memcached failover experiment (Figure 14) naturally shows the
retransmission-driven latency tail after a NIC failure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..config import TransportConfig
from ..net.packet import Frame
from ..net.transport import ReliableSocket, UdpSocket
from ..sim.core import Simulator, USEC

__all__ = ["AppProfile", "APP_PROFILES", "AppServer", "AppClient"]

APP_PORT = 8080


@dataclass(frozen=True)
class AppProfile:
    """One application's service-time model and message sizes."""

    name: str
    service_mean_us: float
    service_sigma: float          # lognormal sigma
    request_bytes: int
    response_bytes: int

    def sample_service_us(self, rng: np.random.Generator) -> float:
        mu = np.log(self.service_mean_us) - self.service_sigma ** 2 / 2
        return float(rng.lognormal(mu, self.service_sigma))


#: Calibrated floors: an interpreted Python server is ~10x slower than nginx.
APP_PROFILES: Dict[str, AppProfile] = {
    "python-http": AppProfile("python-http", 85.0, 0.35, 200, 2048),
    "rocket": AppProfile("rocket", 14.0, 0.30, 200, 1024),
    "nginx": AppProfile("nginx", 9.0, 0.25, 180, 1024),
    "tomcat": AppProfile("tomcat", 28.0, 0.35, 220, 2048),
    "memcached": AppProfile("memcached", 2.5, 0.20, 64, 120),
}


class AppServer:
    """Single-worker request/response server over the reliable transport."""

    def __init__(
        self,
        sim: Simulator,
        endpoint,
        profile: AppProfile,
        rng: np.random.Generator,
        port: int = APP_PORT,
        transport_config: Optional[TransportConfig] = None,
    ):
        self.sim = sim
        self.profile = profile
        self.rng = rng
        self.sock = ReliableSocket(sim, endpoint, port, transport_config)
        self.sock.on_message(self._on_request)
        self._busy_until = 0.0
        self.served = 0

    def _on_request(self, frame: Frame) -> None:
        service = self.profile.sample_service_us(self.rng) * USEC
        start = max(self.sim.now, self._busy_until)
        self._busy_until = start + service
        self.sim.at(self._busy_until, self._respond, frame)

    def _respond(self, request: Frame) -> None:
        self.served += 1
        self.sock.send(
            payload=bytes(min(self.profile.response_bytes, 1400)),
            dst_ip=request.src_ip,
            dst_port=request.src_port,
            wire_size=self.profile.response_bytes,
        )


class AppClient:
    """Open-loop Poisson client measuring request->response latency."""

    def __init__(
        self,
        sim: Simulator,
        endpoint,
        server_ip: int,
        profile: AppProfile,
        rate_rps: float,
        rng: np.random.Generator,
        port: int = 30_000,
        server_port: int = APP_PORT,
        transport_config: Optional[TransportConfig] = None,
    ):
        self.sim = sim
        self.profile = profile
        self.rate_rps = rate_rps
        self.rng = rng
        self.server_ip = server_ip
        self.server_port = server_port
        self.sock = ReliableSocket(sim, endpoint, port, transport_config)
        self.sock.on_message(self._on_response)
        self._outstanding: Dict[int, float] = {}   # our request seq -> sent at
        self._sent_request_for: Dict[int, int] = {}
        self.latencies_us: List[float] = []
        self.response_times: List[float] = []
        self.sent = 0
        self._stopped = False

    def start(self, duration: float) -> None:
        self._stopped = False
        self.sim.schedule(0.0, self._send_one)
        self.sim.schedule(duration, self._stop)

    def _stop(self) -> None:
        self._stopped = True

    def _send_one(self) -> None:
        if self._stopped:
            return
        seq = self.sock.send(
            payload=bytes(min(self.profile.request_bytes, 1400)),
            dst_ip=self.server_ip,
            dst_port=self.server_port,
            wire_size=self.profile.request_bytes,
        )
        self._outstanding[seq] = self.sim.now
        self.sent += 1
        self.sim.schedule(float(self.rng.exponential(1.0 / self.rate_rps)),
                          self._send_one)

    def _on_response(self, frame: Frame) -> None:
        # Responses arrive in submission order per server; match greedily by
        # oldest outstanding request (the server responds FIFO).
        if not self._outstanding:
            return
        seq = min(self._outstanding)
        sent_at = self._outstanding.pop(seq)
        self.latencies_us.append((self.sim.now - sent_at) / USEC)
        self.response_times.append(self.sim.now)

    def latency_percentiles(self) -> dict:
        from ..analysis.stats import summarize_latencies

        return summarize_latencies(self.latencies_us)

    def p99_timeline(self, bin_s: float, duration: float) -> np.ndarray:
        """Per-bin P99 latency (Figure 14)."""
        bins = int(np.ceil(duration / bin_s))
        out = np.full(bins, np.nan)
        times = np.asarray(self.response_times)
        lats = np.asarray(self.latencies_us)
        for b in range(bins):
            mask = (times >= b * bin_s) & (times < (b + 1) * bin_s)
            if mask.any():
                out[b] = np.percentile(lats[mask], 99)
        return out
