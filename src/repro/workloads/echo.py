"""UDP echo workload (the §5.1 overhead microbenchmark).

A client on its own switch port sends fixed-size UDP packets at a configured
rate to an echo server instance; the server echoes them back and the client
records per-packet round-trip latency.  Used for Figures 10, 11, 12 and 13.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..net.packet import Frame
from ..net.transport import UdpSocket
from ..obs.flow import NULL_FLOWS
from ..sim.core import Simulator, USEC

__all__ = ["EchoServer", "EchoClient", "EchoStats"]

ECHO_PORT = 7


class EchoServer:
    """Echoes every datagram back to its sender.

    ``tenant`` tags each reply's ``Frame.meta`` so an instance-side echo
    service bills its TX traffic against that tenant's WFQ lane at the net
    frontend (wire bytes drop ``meta``, so the tag must be applied on the
    sending side of the instance TX path).
    """

    def __init__(self, sim: Simulator, endpoint, port: int = ECHO_PORT,
                 tenant: Optional[str] = None):
        self.sock = UdpSocket(sim, endpoint, port)
        self.sock.on_datagram(self._on_datagram)
        self.echoed = 0
        self.tenant = tenant

    def _on_datagram(self, frame: Frame) -> None:
        self.echoed += 1
        if self.tenant is not None:
            frame.meta["tenant"] = self.tenant
        self.sock.reply(frame)


@dataclass
class EchoStats:
    """Client-side results."""

    sent: int = 0
    received: int = 0
    latencies_us: List[float] = field(default_factory=list)
    send_times: List[float] = field(default_factory=list)
    recv_times: List[float] = field(default_factory=list)

    @property
    def lost(self) -> int:
        return self.sent - self.received

    def percentile_us(self, q: float) -> float:
        if not self.latencies_us:
            return float("nan")
        return float(np.percentile(self.latencies_us, q))

    def loss_timeline(self, bin_s: float, duration: float) -> np.ndarray:
        """Lost packets per time bin (Figure 13a).

        A sent packet counts as lost if its sequence number never came back;
        the loss is attributed to the bin it was sent in.
        """
        bins = int(np.ceil(duration / bin_s))
        lost = np.zeros(bins, dtype=int)
        got = self._received_seqs
        for seq, t in enumerate(self.send_times):
            if seq not in got:
                index = min(bins - 1, int(t / bin_s))
                lost[index] += 1
        return lost

    # sequence numbers that round-tripped (populated by the client)
    _received_seqs: set = field(default_factory=set)


class EchoClient:
    """Open-loop UDP load generator measuring round-trip latency."""

    def __init__(
        self,
        sim: Simulator,
        endpoint,
        server_ip: int,
        packet_size: int = 75,
        rate_pps: float = 10_000.0,
        port: int = 20_000,
        server_port: int = ECHO_PORT,
        rng: Optional[np.random.Generator] = None,
        poisson: bool = False,
        metrics=None,
        flows=None,
        name: str = "echo-client",
        tenant: Optional[str] = None,
    ):
        self.sim = sim
        self.endpoint = endpoint
        self.server_ip = server_ip
        self.server_port = server_port
        self.packet_size = packet_size
        self.rate_pps = rate_pps
        self.rng = rng
        self.poisson = poisson
        self.sock = UdpSocket(sim, endpoint, port)
        self.sock.on_datagram(self._on_reply)
        self.stats = EchoStats()
        self.name = name
        # Multi-tenant serving: tag outbound frames so the net frontend's
        # per-tenant WFQ lanes can classify them (None -> untagged lane).
        self.tenant = tenant
        # When a pod's MetricsRegistry is passed in, RTTs are also observed
        # into an "echo_rtt_us" histogram (keep_raw), so experiments can
        # compute exact percentiles from the registry.
        self.rtt_hist = None
        if metrics is not None:
            self.rtt_hist = metrics.histogram(
                "echo_rtt_us", help="UDP echo round-trip time (us)",
                keep_raw=True, client=name,
            )
        # When a pod's FlowRegistry is passed in (and enabled), every echo
        # becomes an end-to-end flow record attributing its RTT across hops.
        self.flows = flows if flows is not None else NULL_FLOWS
        self._send_time: Dict[int, float] = {}
        self._next_seq = 0
        self._task = None
        self._stopped = False

    def start(self, duration: float) -> None:
        """Schedule sends covering ``duration`` seconds from now."""
        self._stopped = False
        self._schedule_next(first=True)
        self.sim.schedule(duration, self._stop)

    def _stop(self) -> None:
        self._stopped = True

    def _interval(self) -> float:
        mean = 1.0 / self.rate_pps
        if self.poisson and self.rng is not None:
            return float(self.rng.exponential(mean))
        return mean

    def _schedule_next(self, first: bool = False) -> None:
        if self._stopped:
            return
        delay = 0.0 if first else self._interval()
        self.sim.call_after(delay, self._send_one)

    def _send_one(self) -> None:
        if self._stopped:
            return
        seq = self._next_seq
        self._next_seq += 1
        # Carry real bytes up to the declared wire size so CPU-side buffer
        # traffic (stores, copies, writebacks) is accounted at full size.
        from ..net.packet import HEADER_SIZE
        pad = max(0, self.packet_size - HEADER_SIZE - 8)
        payload = seq.to_bytes(8, "little") + b"\x00" * pad
        self._send_time[seq] = self.sim.now
        self.stats.sent += 1
        self.stats.send_times.append(self.sim.now)
        frame = self.sock.sendto(payload, self.server_ip, self.server_port,
                                 wire_size=self.packet_size, seq=seq)
        if self.tenant is not None:
            frame.meta["tenant"] = self.tenant
        flow = self.flows.start("echo", origin=self.name, stage="client.tx",
                                seq=seq)
        if flow is not None:
            frame.meta["flow"] = flow
        self._schedule_next()

    def _on_reply(self, frame: Frame) -> None:
        sent_at = self._send_time.pop(frame.seq, None)
        if sent_at is None:
            return
        if frame.meta:
            flow = frame.meta.get("flow")
            if flow is not None:
                self.flows.complete(flow)
        self.stats.received += 1
        rtt_us = (self.sim.now - sent_at) / USEC
        self.stats.latencies_us.append(rtt_us)
        if self.rtt_hist is not None:
            self.rtt_hist.observe(rtt_us)
        self.stats.recv_times.append(self.sim.now)
        self.stats._received_seqs.add(frame.seq)
