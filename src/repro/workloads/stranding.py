"""Stranding and pooling study (§2.2, Figure 2).

Pipeline:

1. :func:`schedule_trace` -- a first-fit scheduler places the allocation
   trace onto hosts, respecting every per-host resource dimension.  A host
   fills up along one dimension (usually cores), stranding the others.
2. :func:`stranded_fractions` -- time-averaged unallocated share per
   resource while the cluster is loaded: the paper's "27 % NIC / 33 % SSD
   stranded".
3. :func:`pooled_stranding` -- Figure 2 proper: for each pod size, NIC
   bandwidth and SSD capacity are provisioned per *pod* in whole-device
   units sized to the pod's peak pooled demand (the minimum provisioning
   that still places every instance on its trace host); the stranded share
   is the time-averaged provisioned-but-unallocated fraction.  Larger pods
   average out non-coincident per-host peaks, so fewer devices suffice and
   stranding drops -- the paper's 27 %->~11 % (NIC) and 33 %->7 % (SSD) at
   pod size 8.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .allocation import RESOURCES, AllocationTrace, InstanceRequest

__all__ = [
    "schedule_trace",
    "stranded_fractions",
    "pooled_stranding",
    "live_stranding",
    "PoolingResult",
    "UsageTimeline",
]


def schedule_trace(trace: AllocationTrace, n_hosts: int) -> int:
    """First-fit placement onto ``n_hosts`` hosts (all four dimensions).

    Mutates ``instance.host``; unplaceable instances keep ``host=None``.
    Returns the number of placed instances.
    """
    events: List[Tuple[float, int, InstanceRequest]] = []
    for instance in trace.instances:
        events.append((instance.arrive_s, 1, instance))
        events.append((instance.depart_s, 0, instance))
    events.sort(key=lambda e: (e[0], e[1]))

    used = np.zeros((n_hosts, len(RESOURCES)))
    placed = 0
    for _, kind, instance in events:
        if kind == 0:
            if instance.host is not None:
                used[instance.host] -= instance.demand()
            continue
        demand = instance.demand()
        for host in range(n_hosts):
            if np.all(used[host] + demand <= trace.host_capacity + 1e-9):
                used[host] += demand
                instance.host = host
                placed += 1
                break
    return placed


@dataclass
class UsageTimeline:
    """Piecewise-constant per-host, per-resource usage over time."""

    times: np.ndarray            # event timestamps, shape (E,)
    durations: np.ndarray        # interval lengths after each event, (E,)
    usage: np.ndarray            # usage during each interval, (E, H, R)

    @classmethod
    def build(cls, trace: AllocationTrace, n_hosts: int) -> "UsageTimeline":
        events: List[Tuple[float, int, float, float, float, float]] = []
        for instance in trace.placed:
            d = instance.demand()
            events.append((instance.arrive_s, instance.host, *d))
            events.append((instance.depart_s, instance.host, *(-d)))
        events.sort(key=lambda e: e[0])
        n = len(events)
        times = np.array([e[0] for e in events])
        usage = np.zeros((n, n_hosts, len(RESOURCES)))
        current = np.zeros((n_hosts, len(RESOURCES)))
        for i, event in enumerate(events):
            host = event[1]
            current[host] += np.array(event[2:])
            usage[i] = current
        durations = np.empty(n)
        durations[:-1] = np.diff(times)
        durations[-1] = 0.0
        return cls(times, durations, usage)

    def loaded_mask(self, capacity: np.ndarray,
                    load_threshold: float = 0.6) -> np.ndarray:
        """Intervals where mean core usage exceeds the threshold."""
        core = RESOURCES.index("cores")
        mean_core = self.usage[:, :, core].mean(axis=1)
        return mean_core >= load_threshold * capacity[core]

    def time_average(self, values: np.ndarray, mask: np.ndarray) -> float:
        """Duration-weighted mean of ``values`` over masked intervals."""
        w = self.durations * mask
        total = w.sum()
        if total <= 0:
            return float(values.mean()) if len(values) else 0.0
        return float((values * w).sum() / total)


def stranded_fractions(trace: AllocationTrace, n_hosts: int,
                       load_threshold: float = 0.6) -> Dict[str, float]:
    """Time-averaged stranded share per resource while the cluster is loaded."""
    timeline = UsageTimeline.build(trace, n_hosts)
    mask = timeline.loaded_mask(trace.host_capacity, load_threshold)
    result = {}
    for r, resource in enumerate(RESOURCES):
        capacity = trace.host_capacity[r]
        utilization = timeline.usage[:, :, r].sum(axis=1) / (n_hosts * capacity)
        result[resource] = 1.0 - timeline.time_average(utilization, mask)
    return result


def live_stranding(trace: AllocationTrace, n_hosts: int, resource: str,
                   device_unit: float, load_threshold: float = 0.6) -> dict:
    """Replay a trace's usage timeline through the *live* stranding gauge.

    Feeds the same piecewise-constant pod-wide usage and loaded mask the
    offline Figure 2 pipeline integrates into
    :class:`repro.obs.fleet.StrandingGauge`, one update per timeline event
    -- exactly how ``FleetHealth`` feeds it from scraper ticks.  The
    returned ``devices_needed``/``stranded_fraction`` must agree with
    :func:`pooled_stranding` for a single pod of all hosts (the cross-check
    test pins this to within one device).
    """
    from ..obs.fleet import StrandingGauge

    timeline = UsageTimeline.build(trace, n_hosts)
    mask = timeline.loaded_mask(trace.host_capacity, load_threshold)
    r = RESOURCES.index(resource)
    pod_usage = timeline.usage[:, :, r].sum(axis=1)

    # Pass 1: stream the usage once to discover the loaded peak, the way a
    # live pod sees it (provisioning is irrelevant for peak tracking).
    probe = StrandingGauge()
    for t, used, loaded in zip(timeline.times, pod_usage, mask):
        probe.update(float(t), float(used), 0.0, bool(loaded))
    devices = probe.devices_needed(device_unit)
    provisioned = devices * device_unit

    # Pass 2: the steady-state gauge, provisioned at the whole-device count
    # covering that peak (Figure 2's minimum provisioning).
    gauge = StrandingGauge()
    for t, used, loaded in zip(timeline.times, pod_usage, mask):
        gauge.update(float(t), float(used), provisioned, bool(loaded))
    return {
        "resource": resource,
        "devices_needed": devices,
        "stranded_fraction": gauge.stranded_fraction,
        "gauge": gauge,
    }


@dataclass
class PoolingResult:
    """Figure 2 outcome for one pod size and one resource."""

    pod_size: int
    resource: str
    devices_needed: int
    devices_baseline: int
    stranded_fraction: float
    saved_fraction: float


def pooled_stranding(
    trace: AllocationTrace,
    n_hosts: int,
    pod_sizes: Sequence[int],
    resource: str,
    device_unit: float,
    rng: Optional[np.random.Generator] = None,
    repeats: int = 3,
    load_threshold: float = 0.6,
    port_limit: Optional[int] = None,
) -> List[PoolingResult]:
    """Figure 2: stranded share vs pod size for one pooled resource.

    Hosts are assigned to pods at random (as in the paper) and results
    averaged over ``repeats`` shuffles.  Provisioning per pod is the minimum
    whole-device count covering the pod's peak pooled demand, but never less
    than one device per pod.

    ``port_limit`` models the multi-headed device's finite head count at
    rack scale: a device attaches to at most ``port_limit`` hosts, so a pod
    of ``m`` members needs at least ``ceil(m / port_limit)`` devices no
    matter how low its pooled peak is.
    """
    rng = rng if rng is not None else np.random.default_rng(0)
    timeline = UsageTimeline.build(trace, n_hosts)
    mask = timeline.loaded_mask(trace.host_capacity, load_threshold)
    r = RESOURCES.index(resource)
    results = []
    for pod_size in pod_sizes:
        needed_acc = 0.0
        stranded_acc = 0.0
        for _ in range(repeats):
            order = rng.permutation(n_hosts)
            n_pods = int(np.ceil(n_hosts / pod_size))
            devices_needed = 0
            used_avg_total = 0.0
            provisioned_total = 0.0
            per_host_devices = max(1, int(round(
                trace.host_capacity[r] / device_unit)))
            for p in range(n_pods):
                members = order[p * pod_size:(p + 1) * pod_size]
                pod_usage = timeline.usage[:, members, r].sum(axis=1)
                peak = float(pod_usage[mask].max()) if mask.any() else float(
                    pod_usage.max() if len(pod_usage) else 0.0)
                if pod_size == 1:
                    # No pooling: the host keeps its full device complement
                    # (you cannot remove a host's only NIC) -- the Figure 2
                    # baseline point.
                    devices = per_host_devices * len(members)
                else:
                    devices = max(1, int(np.ceil(peak / device_unit - 1e-9)))
                    if port_limit is not None:
                        devices = max(devices, int(
                            np.ceil(len(members) / port_limit)))
                devices_needed += devices
                provisioned_total += devices * device_unit
                used_avg_total += timeline.time_average(pod_usage, mask)
            stranded_acc += 1.0 - used_avg_total / provisioned_total
            needed_acc += devices_needed
        # Baseline: every host keeps its full device complement (1 NIC, 6
        # SSDs on the paper's host configuration).
        baseline = n_hosts * max(1, int(round(
            trace.host_capacity[r] / device_unit)))
        results.append(PoolingResult(
            pod_size=pod_size,
            resource=resource,
            devices_needed=int(round(needed_acc / repeats)),
            devices_baseline=baseline,
            stranded_fraction=stranded_acc / repeats,
            saved_fraction=1.0 - (needed_acc / repeats) / baseline,
        ))
    return results
