"""Colocated CXL bandwidth interference (§2.3 / §6 QoS).

Models a bandwidth-intensive colocated use case -- the paper's example is an
OLAP database scanning CXL-resident tables -- that shares a host's x8 CXL
link with the Oasis datapath.  The load occupies the link for a fraction of
every scheduling quantum; an optional cap models hardware bandwidth
partitioning (Intel RDT-style), the mitigation §6 proposes.
"""

from __future__ import annotations

from typing import Optional

from ..sim.core import Simulator, USEC

__all__ = ["CXLBandwidthLoad"]


class CXLBandwidthLoad:
    """Occupies a host's CXL link at a target bandwidth."""

    def __init__(
        self,
        sim: Simulator,
        host,
        gbps: float,
        direction: str = "read",
        quantum_us: float = 2.0,
        rdt_cap_gbps: Optional[float] = None,
    ):
        self.sim = sim
        self.host = host
        self.gbps = gbps
        self.direction = direction
        self.quantum_s = quantum_us * USEC
        self.rdt_cap_gbps = rdt_cap_gbps
        self._task = None
        self.occupied_s = 0.0

    @property
    def effective_gbps(self) -> float:
        """Offered bandwidth after the RDT-style cap (§6 mitigation)."""
        if self.rdt_cap_gbps is None:
            return self.gbps
        return min(self.gbps, self.rdt_cap_gbps)

    def start(self) -> None:
        if self._task is None:
            self._task = self.sim.every(self.quantum_s, self._tick,
                                        start_after=0.0)

    def stop(self) -> None:
        if self._task is not None:
            self._task.cancel()
            self._task = None

    def _tick(self) -> None:
        link_bps = self.host.shared.pool.config.link_bytes_per_sec
        fraction = min(1.0, self.effective_gbps * 1e9 / link_bps)
        occupy = self.quantum_s * fraction
        if occupy > 0:
            self.host.occupy_link(occupy, self.direction)
            self.occupied_s += occupy
