"""Synthetic cloud allocation trace (the Azure trace of §2.2, Figure 2).

The production trace records, per instance: arrival and departure time, the
scheduled host, and the allocated resources (cores, memory, NIC bandwidth,
SSD capacity).  We generate a statistically similar trace:

* heterogeneous instance families with different resource *ratios*
  (general-purpose, compute-, memory-, storage- and network-optimised), in
  power-of-two sizes, so bin-packing fills hosts along one dimension first;
* Poisson arrivals with lognormal lifetimes;
* the family mix is calibrated so that first-fit packing strands roughly the
  paper's numbers: ~5 % cores, ~9 % memory, ~27 % NIC bandwidth and ~33 %
  SSD capacity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from ..config import HostConfig

__all__ = ["InstanceRequest", "InstanceFamily", "AllocationTrace",
           "DEFAULT_FAMILIES", "generate_allocation_trace"]

RESOURCES = ("cores", "memory_gb", "nic_gbps", "ssd_tb")


@dataclass(frozen=True)
class InstanceFamily:
    """One instance family: per-core resource ratios + popularity weight."""

    name: str
    weight: float
    mem_per_core: float
    nic_per_core: float
    ssd_per_core: float


# Calibrated so cores bind first on a 96-core / 768 GB / 100 Gbps / 24 TB
# host while NIC and SSD lag behind by the paper's stranding margins.
DEFAULT_FAMILIES: List[InstanceFamily] = [
    InstanceFamily("general", 0.40, mem_per_core=8.0, nic_per_core=0.8,
                   ssd_per_core=0.18),
    InstanceFamily("compute", 0.22, mem_per_core=4.0, nic_per_core=0.5,
                   ssd_per_core=0.08),
    InstanceFamily("memory", 0.16, mem_per_core=16.0, nic_per_core=0.7,
                   ssd_per_core=0.12),
    InstanceFamily("storage", 0.12, mem_per_core=8.0, nic_per_core=0.9,
                   ssd_per_core=0.60),
    InstanceFamily("network", 0.10, mem_per_core=6.0, nic_per_core=2.2,
                   ssd_per_core=0.10),
]

_SIZES = (2, 4, 8, 16, 32)
_SIZE_WEIGHTS = (0.35, 0.30, 0.20, 0.10, 0.05)


@dataclass
class InstanceRequest:
    """One instance in the allocation trace."""

    index: int
    family: str
    arrive_s: float
    depart_s: float
    cores: float
    memory_gb: float
    nic_gbps: float
    ssd_tb: float
    host: Optional[int] = None   # assigned by the scheduler

    def demand(self) -> np.ndarray:
        return np.array([self.cores, self.memory_gb, self.nic_gbps, self.ssd_tb])


@dataclass
class AllocationTrace:
    """A full arrival/departure trace plus the host capacity vector."""

    instances: List[InstanceRequest]
    host_capacity: np.ndarray
    duration_s: float

    @property
    def placed(self) -> List[InstanceRequest]:
        return [i for i in self.instances if i.host is not None]


def generate_allocation_trace(
    n_instances: int = 2000,
    duration_s: float = 10_000.0,
    mean_lifetime_s: float = 4000.0,
    host: Optional[HostConfig] = None,
    families: Optional[List[InstanceFamily]] = None,
    rng: Optional[np.random.Generator] = None,
) -> AllocationTrace:
    """Generate an unplaced trace (run a scheduler from
    :mod:`repro.workloads.stranding` to assign hosts)."""
    rng = rng if rng is not None else np.random.default_rng(0)
    host = host or HostConfig()
    families = families or DEFAULT_FAMILIES
    weights = np.array([f.weight for f in families])
    weights = weights / weights.sum()

    arrivals = np.sort(rng.uniform(0.0, duration_s, n_instances))
    lifetimes = rng.lognormal(np.log(mean_lifetime_s), 0.8, n_instances)
    family_idx = rng.choice(len(families), n_instances, p=weights)
    sizes = rng.choice(_SIZES, n_instances, p=_SIZE_WEIGHTS)

    instances = []
    for i in range(n_instances):
        family = families[family_idx[i]]
        cores = float(sizes[i])
        jitter = rng.uniform(0.85, 1.15, 3)
        instances.append(InstanceRequest(
            index=i,
            family=family.name,
            arrive_s=float(arrivals[i]),
            depart_s=float(arrivals[i] + lifetimes[i]),
            cores=cores,
            memory_gb=cores * family.mem_per_core * jitter[0],
            nic_gbps=cores * family.nic_per_core * jitter[1],
            ssd_tb=cores * family.ssd_per_core * jitter[2],
        ))
    capacity = np.array([host.cores, host.memory_gb, host.nic_gbps, host.ssd_tb])
    return AllocationTrace(instances, capacity, duration_s)
