"""fio-style block I/O workload for the storage engine (§3.4).

The paper designs the storage engine but does not evaluate it; this workload
lets the reproduction do so: an open-loop generator issuing random reads and
writes at a configured rate, queue depth and block count against a
:class:`~repro.core.storage.frontend.VirtualBlockDevice`, recording
per-request completion latency.  Used by the storage overhead benchmark
(local SSD vs pooled-over-CXL SSD) and the storage examples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..analysis.stats import summarize_latencies
from ..obs.flow import NULL_FLOWS
from ..sim.core import Simulator, USEC

__all__ = ["BlockWorkload", "BlockWorkloadStats"]


@dataclass
class BlockWorkloadStats:
    """Results of one block-I/O run."""

    submitted: int = 0
    completed: int = 0
    errors: int = 0

    def __post_init__(self):
        self.read_latencies_us: List[float] = []
        self.write_latencies_us: List[float] = []

    def summary(self) -> dict:
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "errors": self.errors,
            "read": summarize_latencies(self.read_latencies_us),
            "write": summarize_latencies(self.write_latencies_us),
        }


class BlockWorkload:
    """Open-loop random block I/O generator with a queue-depth cap."""

    def __init__(
        self,
        sim: Simulator,
        device,
        rate_iops: float = 10_000.0,
        read_fraction: float = 0.7,
        io_blocks: int = 1,
        address_blocks: int = 4096,
        queue_depth: int = 64,
        rng: Optional[np.random.Generator] = None,
        flows=None,
    ):
        self.sim = sim
        self.device = device
        self.rate_iops = rate_iops
        self.rate_mult = 1.0            # overload.surge fault hook
        self.read_fraction = read_fraction
        self.io_blocks = io_blocks
        self.address_blocks = address_blocks
        self.queue_depth = queue_depth
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.stats = BlockWorkloadStats()
        self.flows = flows if flows is not None else NULL_FLOWS
        self._inflight = 0
        self._stopped = True
        self._write_payload = bytes(io_blocks * device.block_size)

    def start(self, duration: float) -> None:
        self._stopped = False
        self.sim.schedule(0.0, self._issue_one)
        self.sim.schedule(duration, self._stop)

    def _stop(self) -> None:
        self._stopped = True

    def set_rate_multiplier(self, factor: float) -> None:
        """Multiplicative surge hook (the ``overload.surge`` fault).

        At the default 1.0 the arrival draw is bit-identical to the
        unmultiplied one, so un-surged runs replay byte-identically.
        """
        self.rate_mult = factor

    @property
    def inflight(self) -> int:
        return self._inflight

    def _issue_one(self) -> None:
        if self._stopped:
            return
        rate = self.rate_iops * self.rate_mult
        self.sim.schedule(float(self.rng.exponential(1.0 / rate)),
                          self._issue_one)
        if self._inflight >= self.queue_depth:
            return   # open-loop drop: queue-depth cap reached
        lba = int(self.rng.integers(0, self.address_blocks - self.io_blocks + 1))
        start = self.sim.now
        self._inflight += 1
        self.stats.submitted += 1
        if self.rng.random() < self.read_fraction:
            flow = self.flows.start("blockio", origin="blockio", stage="issue",
                                    op="read", lba=lba)
            self.device.read(lba, self.io_blocks,
                             lambda status, data, s=start, f=flow:
                             self._complete(status, s, is_read=True, flow=f),
                             flow=flow)
        else:
            flow = self.flows.start("blockio", origin="blockio", stage="issue",
                                    op="write", lba=lba)
            self.device.write(lba, self._write_payload,
                              lambda status, s=start, f=flow:
                              self._complete(status, s, is_read=False, flow=f),
                              flow=flow)

    def _complete(self, status: int, started: float, is_read: bool,
                  flow=None) -> None:
        self._inflight -= 1
        self.stats.completed += 1
        if flow is not None:
            self.flows.complete(flow, status="ok" if status == 0 else "error")
        if status != 0:
            self.stats.errors += 1
            return
        latency_us = (self.sim.now - started) / USEC
        if is_read:
            self.stats.read_latencies_us.append(latency_us)
        else:
            self.stats.write_latencies_us.append(latency_us)
