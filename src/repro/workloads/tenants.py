"""Multi-tenant serving workloads (``python -m repro serve``).

A tenant is an open-loop load source with a scheduling contract: a WFQ
weight, an optional guaranteed rate, and a latency SLO.  Three canonical
profiles model the serving mix the paper's pooled devices have to isolate:

* ``mc`` -- a latency-sensitive memcached-like tenant: steady small reads,
  a tight SLO, and a guaranteed rate covering its whole demand;
* ``web`` -- a diurnal web tier: rate swings sinusoidally over the run
  (the day/night curve compressed to simulated seconds);
* ``bg`` -- bursty background block I/O (scans, compactions): heavy-tailed
  bursts, a loose SLO, weight-only (no guarantee), marked background so
  brownout sheds it first.

:class:`TenantClient` extends the PR-9 open-loop generator with the
tenant tag (riding every request into the storage frontend's per-tenant
WFQ), the diurnal rate modulation, and per-run SLO-violation counting that
:func:`~repro.obs.bindings.bind_tenant_client` exports to fleet health as
the ``tenant_requests`` family.

Determinism: the diurnal modulation is a pure function of simulated time
and the profile, and everything else inherits the open-loop client's
single-RNG-substream discipline, so a tenant's offered stream replays
byte-identically under a fixed seed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, fields
from typing import Dict, Optional

import numpy as np

from ..overload import TenantSpec
from ..sim.core import Simulator, USEC
from .openloop import OpenLoopBlockClient

__all__ = ["TenantProfile", "TenantClient", "SERVE_PROFILES"]


@dataclass(frozen=True)
class TenantProfile:
    """One tenant's workload shape and scheduling contract."""

    name: str
    weight: float = 1.0
    rate_iops: float = 1_000.0
    guarantee_iops: float = 0.0      # > 0 reserves a token-bucket lane
    guarantee_burst: float = 16.0
    read_fraction: float = 0.9
    io_blocks: int = 1
    background_fraction: float = 0.0
    slo_us: float = 2_000.0          # per-request latency objective
    diurnal_amplitude: float = 0.0   # fraction of rate swung sinusoidally
    diurnal_period_s: float = 1.0
    burst_rate_per_s: float = 0.0
    burst_size_median: float = 32.0
    burst_size_sigma: float = 1.2

    def validate(self) -> "TenantProfile":
        if not self.name:
            raise ValueError("tenant profile needs a name")
        if self.rate_iops <= 0:
            raise ValueError(f"{self.name}: rate_iops must be positive")
        if not 0.0 <= self.diurnal_amplitude < 1.0:
            raise ValueError(
                f"{self.name}: diurnal_amplitude must be in [0, 1)")
        if self.diurnal_amplitude > 0 and self.diurnal_period_s <= 0:
            raise ValueError(
                f"{self.name}: diurnal_period_s must be positive")
        if self.slo_us <= 0:
            raise ValueError(f"{self.name}: slo_us must be positive")
        self.spec().validate()
        return self

    def spec(self) -> TenantSpec:
        """The frontend-side scheduling contract for this profile."""
        return TenantSpec(weight=self.weight,
                          guarantee_rate=self.guarantee_iops,
                          guarantee_burst=self.guarantee_burst)

    @classmethod
    def from_dict(cls, data: dict) -> "TenantProfile":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown tenant profile keys: {sorted(unknown)}")
        return cls(**data).validate()


class TenantClient(OpenLoopBlockClient):
    """Open-loop block source owned by one tenant.

    Adds to the base client: the tenant tag on every request, sinusoidal
    diurnal rate modulation (a pure function of sim time, so it perturbs
    no RNG draws), and SLO-violation counting on ok completions.
    """

    def __init__(self, sim: Simulator, device, profile: TenantProfile,
                 rng: Optional[np.random.Generator] = None,
                 bin_s: float = 0.01, address_blocks: int = 4096):
        profile.validate()
        super().__init__(
            sim, device,
            rate_iops=profile.rate_iops,
            read_fraction=profile.read_fraction,
            io_blocks=profile.io_blocks,
            address_blocks=address_blocks,
            rng=rng,
            bin_s=bin_s,
            burst_rate_per_s=profile.burst_rate_per_s,
            burst_size_median=profile.burst_size_median,
            burst_size_sigma=profile.burst_size_sigma,
            background_fraction=profile.background_fraction,
            name=f"tenant-{profile.name}",
        )
        self.profile = profile
        self.tenant = profile.name
        self.slo_violations = 0

    @property
    def effective_rate(self) -> float:
        rate = self.rate_iops * self.rate_mult
        amp = self.profile.diurnal_amplitude
        if amp > 0:
            rate *= 1.0 + amp * math.sin(
                2.0 * math.pi * self.sim.now / self.profile.diurnal_period_s)
        return rate

    def start(self, duration: float) -> None:
        self.slo_violations = 0
        super().start(duration)

    def _complete(self, status: int, started: float) -> None:
        if status == 0:
            latency_us = (self.sim.now - started) / USEC
            if latency_us > self.profile.slo_us:
                self.slo_violations += 1
        super()._complete(status, started)

    def summary(self) -> dict:
        out = self.stats.summary() if self.stats is not None else {}
        out["tenant"] = self.tenant
        out["weight"] = self.profile.weight
        out["slo_us"] = self.profile.slo_us
        out["slo_violations"] = self.slo_violations
        return out


def SERVE_PROFILES(capacity_iops: float) -> Dict[str, TenantProfile]:
    """The 3-class serving mix, scaled to the device's capacity.

    ``mc`` (latency-sensitive, guaranteed), ``web`` (diurnal), ``bg``
    (bursty background).  Offered load sums to ~60% of capacity before the
    noisy neighbour surges, so the mix saturates only during the surge.
    """
    return {
        "mc": TenantProfile(
            name="mc", weight=4.0,
            rate_iops=0.20 * capacity_iops,
            guarantee_iops=0.25 * capacity_iops,
            guarantee_burst=32.0,
            read_fraction=0.98, slo_us=1_500.0,
        ).validate(),
        "web": TenantProfile(
            name="web", weight=2.0,
            rate_iops=0.20 * capacity_iops,
            read_fraction=0.9, slo_us=5_000.0,
            diurnal_amplitude=0.5, diurnal_period_s=0.5,
        ).validate(),
        "bg": TenantProfile(
            name="bg", weight=1.0,
            rate_iops=0.20 * capacity_iops,
            read_fraction=0.3, slo_us=50_000.0,
            background_fraction=0.5,
            burst_rate_per_s=4.0, burst_size_median=24.0,
            burst_size_sigma=1.0,
        ).validate(),
    }
