"""Bursty datacenter packet-trace generator (the §2.2 rack captures).

The paper's production captures show traffic that is *extremely* bursty:
host 1 in rack A has P99 bandwidth utilization below 3 % but P99.99 around
39 % at 10 us granularity (Figure 3), and four hosts aggregated never exceed
10-20 % at P99.99 (Table 2).  That shape -- a low-rate background plus rare,
intense bursts emitted near line rate -- is what makes NIC multiplexing pay
off, so the generator reproduces it mechanistically:

* a Poisson background of standalone packets (the steady hum),
* Poisson-arriving *bursts* whose sizes are lognormal with a heavy tail,
  emitted at a random large fraction of line rate (a flow slamming the NIC).

Per-host parameters (:class:`TraceParams`) are calibrated so the generated
P99/P99.99 utilizations land in the ranges of Table 2.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional

import numpy as np

from ..analysis.stats import utilization_percentile, utilization_series

__all__ = ["TraceParams", "PacketTrace", "generate_trace", "RACK_A_PARAMS",
           "RACK_B_PARAMS"]


@dataclass(frozen=True)
class TraceParams:
    """Knobs for one host's synthetic capture."""

    duration_s: float = 1.0
    nic_gbps: float = 100.0
    packet_bytes: int = 1500
    background_util: float = 0.004      # mean utilization of the steady hum
    burst_rate_per_s: float = 40.0      # burst arrivals
    burst_bytes_median: float = 40e3    # lognormal median burst size
    burst_bytes_sigma: float = 1.6      # lognormal sigma (heavy tail)
    emit_fraction_lo: float = 0.35      # burst emission rate / line rate
    emit_fraction_hi: float = 0.95

    @property
    def line_bytes_per_sec(self) -> float:
        return self.nic_gbps * 1e9 / 8.0


@dataclass
class PacketTrace:
    """One host's packet arrival trace: sorted times and sizes."""

    times: np.ndarray
    sizes: np.ndarray
    params: TraceParams

    @property
    def duration_s(self) -> float:
        return self.params.duration_s

    @property
    def total_bytes(self) -> int:
        return int(self.sizes.sum())

    @property
    def mean_utilization(self) -> float:
        return self.total_bytes / (
            self.params.line_bytes_per_sec * self.duration_s
        )

    def utilization_percentile(self, q: float, bin_s: float = 10e-6) -> float:
        return utilization_percentile(self.times, self.sizes, self.duration_s,
                                      self.params.line_bytes_per_sec, q, bin_s)

    def utilization_series(self, bin_s: float = 10e-6) -> np.ndarray:
        return utilization_series(self.times, self.sizes, self.duration_s,
                                  self.params.line_bytes_per_sec, bin_s)

    def scaled(self, factor: float) -> "PacketTrace":
        """Thin the trace to ``factor`` of its packets (for quick tests)."""
        if factor >= 1.0:
            return self
        keep = np.random.default_rng(0).random(len(self.times)) < factor
        return PacketTrace(self.times[keep], self.sizes[keep], self.params)

    @staticmethod
    def aggregate(traces: List["PacketTrace"]) -> "PacketTrace":
        """Merge several hosts' traces (for aggregated utilization)."""
        times = np.concatenate([t.times for t in traces])
        sizes = np.concatenate([t.sizes for t in traces])
        order = np.argsort(times, kind="stable")
        return PacketTrace(times[order], sizes[order], traces[0].params)


def generate_trace(params: TraceParams, rng: np.random.Generator) -> PacketTrace:
    """Generate one host's capture."""
    line = params.line_bytes_per_sec
    pkt = params.packet_bytes

    # Background: Poisson packets at background_util of line rate.
    bg_pps = params.background_util * line / pkt
    n_bg = rng.poisson(bg_pps * params.duration_s)
    bg_times = rng.uniform(0.0, params.duration_s, n_bg)

    # Bursts: Poisson arrivals; each emits back-to-back packets at a random
    # fraction of line rate.
    n_bursts = rng.poisson(params.burst_rate_per_s * params.duration_s)
    burst_starts = rng.uniform(0.0, params.duration_s, n_bursts)
    burst_bytes = rng.lognormal(np.log(params.burst_bytes_median),
                                params.burst_bytes_sigma, n_bursts)
    emit_fractions = rng.uniform(params.emit_fraction_lo,
                                 params.emit_fraction_hi, n_bursts)

    chunks_t = [bg_times]
    chunks_s = [np.full(n_bg, pkt, dtype=np.int64)]
    for start, nbytes, frac in zip(burst_starts, burst_bytes, emit_fractions):
        npkts = max(1, int(nbytes / pkt))
        spacing = pkt / (line * frac)
        t = start + np.arange(npkts) * spacing
        t = t[t < params.duration_s]
        chunks_t.append(t)
        chunks_s.append(np.full(len(t), pkt, dtype=np.int64))

    times = np.concatenate(chunks_t)
    sizes = np.concatenate(chunks_s)
    order = np.argsort(times, kind="stable")
    return PacketTrace(times[order], sizes[order], params)


# Per-host calibrations matching Table 2's spread.  Rack A: 100 Gbit NICs,
# one near-idle host; rack B: 50 Gbit NICs, hotter.
RACK_A_PARAMS: List[TraceParams] = [
    TraceParams(nic_gbps=100, background_util=0.004, burst_rate_per_s=60,
                burst_bytes_median=60e3, burst_bytes_sigma=1.5,
                emit_fraction_lo=0.15, emit_fraction_hi=0.42),
    TraceParams(nic_gbps=100, background_util=0.003, burst_rate_per_s=45,
                burst_bytes_median=45e3, burst_bytes_sigma=1.4,
                emit_fraction_lo=0.12, emit_fraction_hi=0.33),
    TraceParams(nic_gbps=100, background_util=0.0002, burst_rate_per_s=2,
                burst_bytes_median=8e3, burst_bytes_sigma=1.0,
                emit_fraction_lo=0.02, emit_fraction_hi=0.05),
    TraceParams(nic_gbps=100, background_util=0.002, burst_rate_per_s=35,
                burst_bytes_median=35e3, burst_bytes_sigma=1.4,
                emit_fraction_lo=0.1, emit_fraction_hi=0.26),
]

RACK_B_PARAMS: List[TraceParams] = [
    TraceParams(nic_gbps=50, background_util=0.006, burst_rate_per_s=60,
                burst_bytes_median=45e3, burst_bytes_sigma=1.4,
                emit_fraction_lo=0.15, emit_fraction_hi=0.43),
    TraceParams(nic_gbps=50, background_util=0.010, burst_rate_per_s=90,
                burst_bytes_median=55e3, burst_bytes_sigma=1.4,
                emit_fraction_lo=0.3, emit_fraction_hi=0.8),
    TraceParams(nic_gbps=50, background_util=0.008, burst_rate_per_s=70,
                burst_bytes_median=45e3, burst_bytes_sigma=1.4,
                emit_fraction_lo=0.2, emit_fraction_hi=0.57),
    TraceParams(nic_gbps=50, background_util=0.012, burst_rate_per_s=90,
                burst_bytes_median=55e3, burst_bytes_sigma=1.4,
                emit_fraction_lo=0.35, emit_fraction_hi=0.85),
]
