"""Plain-text table/series renderers for the experiment harness.

Every experiment module prints the same rows/series the paper reports;
these helpers keep the formatting consistent.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

__all__ = ["render_table", "render_series", "fmt"]


def fmt(value, digits: int = 2) -> str:
    """Format numbers compactly; pass strings through."""
    if isinstance(value, str):
        return value
    if value is None:
        return "-"
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        return f"{value:.{digits}f}"
    return str(value)


def render_table(headers: Sequence[str], rows: Iterable[Sequence],
                 title: Optional[str] = None, digits: int = 2) -> str:
    """Render an aligned ASCII table."""
    str_rows = [[fmt(cell, digits) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(name: str, xs: Sequence, ys: Sequence, x_label: str = "x",
                  y_label: str = "y", digits: int = 2) -> str:
    """Render an (x, y) series as the rows a figure would plot."""
    return render_table([x_label, y_label],
                        list(zip(xs, ys)), title=name, digits=digits)
