"""Statistics helpers: time-binned utilization and percentiles.

The paper measures NIC bandwidth utilization at 10 us granularity (§2.2) and
reports tail percentiles (P99, P99.99).  These helpers turn packet
(timestamp, size) streams into exactly those numbers.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

import numpy as np

__all__ = [
    "bin_bandwidth",
    "utilization_percentile",
    "utilization_series",
    "percentile",
    "summarize_latencies",
]


def bin_bandwidth(times_s: np.ndarray, sizes_bytes: np.ndarray,
                  duration_s: float, bin_s: float = 10e-6) -> np.ndarray:
    """Bytes per bin for a packet stream over ``[0, duration_s)``."""
    nbins = max(1, int(np.ceil(duration_s / bin_s)))
    out = np.zeros(nbins)
    if len(times_s) == 0:
        return out
    idx = np.minimum((np.asarray(times_s) / bin_s).astype(np.int64), nbins - 1)
    np.add.at(out, idx, np.asarray(sizes_bytes, dtype=float))
    return out


def utilization_series(times_s, sizes_bytes, duration_s: float,
                       link_bytes_per_sec: float, bin_s: float = 10e-6) -> np.ndarray:
    """Per-bin link utilization in [0, 1+] at ``bin_s`` granularity."""
    per_bin = bin_bandwidth(np.asarray(times_s), np.asarray(sizes_bytes),
                            duration_s, bin_s)
    return per_bin / (link_bytes_per_sec * bin_s)


def utilization_percentile(times_s, sizes_bytes, duration_s: float,
                           link_bytes_per_sec: float, q: float,
                           bin_s: float = 10e-6) -> float:
    """The paper's headline metric, e.g. q=99.99 for P99.99 utilization."""
    series = utilization_series(times_s, sizes_bytes, duration_s,
                                link_bytes_per_sec, bin_s)
    return float(np.percentile(series, q))


def percentile(values: Sequence[float], q: float) -> float:
    if len(values) == 0:
        return float("nan")
    return float(np.percentile(np.asarray(values), q))


def summarize_latencies(latencies_us: Sequence[float]) -> dict:
    """P50/P90/P99/P999 + mean, the set used across Figures 8-12."""
    arr = np.asarray(latencies_us, dtype=float)
    if arr.size == 0:
        return {"count": 0, "p50": float("nan"), "p90": float("nan"),
                "p99": float("nan"), "p999": float("nan"), "mean": float("nan")}
    return {
        "count": int(arr.size),
        "p50": float(np.percentile(arr, 50)),
        "p90": float(np.percentile(arr, 90)),
        "p99": float(np.percentile(arr, 99)),
        "p999": float(np.percentile(arr, 99.9)),
        "mean": float(arr.mean()),
    }
