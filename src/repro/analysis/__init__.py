"""Measurement analysis: percentiles, utilization, report rendering."""

from .report import fmt, render_series, render_table
from .stats import (
    bin_bandwidth,
    percentile,
    summarize_latencies,
    utilization_percentile,
    utilization_series,
)

__all__ = [
    "bin_bandwidth",
    "utilization_series",
    "utilization_percentile",
    "percentile",
    "summarize_latencies",
    "render_table",
    "render_series",
    "fmt",
]
