"""Chaos runner: a mixed workload under a fault plan, invariant-checked.

``python -m repro chaos --seed N [--plan plan.json]`` builds a two-host pod
(pooled NIC + backup, pooled SSD), runs an echo workload and a block-I/O
workload through it, applies the fault plan (the built-in
:data:`DEFAULT_PLAN` when none is given), and evaluates the invariant suite
continuously plus at the end.  Everything -- workload arrivals, fault times,
failover -- derives from the one root seed, so a failing (seed, plan) pair
printed by the run (and dumped via
:func:`~repro.faults.plan.dump_failure_artifact`) replays exactly.
"""

from __future__ import annotations

import json
import sys
from typing import Optional

from ..config import OasisConfig
from ..errors import ConfigError
from ..core.pod import CXLPod
from ..net.packet import make_ip
from ..workloads.blockio import BlockWorkload
from ..workloads.echo import EchoClient, EchoServer
from .plan import FaultPlan, dump_failure_artifact

__all__ = ["DEFAULT_PLAN", "CONTROL_PLAN", "BUILTIN_PLANS", "run_chaos",
           "main_chaos"]

SERVER_IP = make_ip(10, 0, 0, 1)
CLIENT_IP = make_ip(10, 0, 9, 1)

#: A representative all-recoverable schedule exercising every layer: CXL
#: link degradation, device-level transient faults, fabric misbehaviour and
#: a full switch-port failover.  Windowed times are drawn from the root seed.
DEFAULT_PLAN = {
    "name": "default-chaos",
    "faults": [
        {"kind": "cxl.throttle", "window": [0.04, 0.10], "duration": 0.03,
         "params": {"factor": 4.0}},
        {"kind": "cxl.latency_spike", "window": [0.15, 0.25],
         "duration": 0.02, "params": {"extra_us": 1.5}},
        {"kind": "nic.dma_abort", "target": "nic-h0",
         "window": [0.05, 0.30], "params": {"count": 2}},
        {"kind": "ssd.media_error", "window": [0.05, 0.30],
         "params": {"count": 2}},
        {"kind": "switch.drop", "window": [0.05, 0.35],
         "params": {"count": 2}},
        {"kind": "switch.duplicate", "window": [0.05, 0.35],
         "params": {"count": 1}},
        {"kind": "switch.port_down", "target": "nic-h0", "at": 0.30,
         "duration": 0.10},
        {"kind": "overload.surge", "window": [0.10, 0.20],
         "duration": 0.08, "params": {"factor": 1.6}},
    ],
}

#: The control-plane failover gauntlet: the victim frontend's notifications
#: are delayed *before* the NIC's switch port goes down, the allocator
#: leader is crashed between the failure report and the commit of the
#: failover command, and the failure report is delivered twice more.  The
#: run must still execute the failover exactly once (post re-election),
#: fence every stale-epoch post from the lagging frontend, and converge all
#: replicas.  Timeline (link monitor ticks every 25 ms, detection at 0.325,
#: failover commit scheduled at ~0.335): the leader crash at 0.331 lands in
#: between.
CONTROL_PLAN = {
    "name": "control-failover",
    "faults": [
        {"kind": "notify.delay", "target": "h1", "at": 0.29,
         "duration": 0.50, "params": {"extra_s": 0.08}},
        {"kind": "switch.port_down", "target": "nic-h0", "at": 0.301},
        {"kind": "raft.leader_crash", "at": 0.331, "duration": 0.25},
        {"kind": "report.duplicate", "target": "nic-h0", "at": 0.34,
         "params": {"count": 2}},
    ],
}

BUILTIN_PLANS = {
    "default-chaos": DEFAULT_PLAN,
    "control-failover": CONTROL_PLAN,
}


def build_chaos_pod(seed: int):
    """Three hosts: NIC+SSD on h0, the instance on (NIC-less) h1, backup NIC
    on h2 -- so the datapath crosses hosts and failover has somewhere to go."""
    config = OasisConfig().with_(seed=seed)
    pod = CXLPod(config=config, mode="oasis")
    h0 = pod.add_host()
    h1 = pod.add_host()
    h2 = pod.add_host()
    pod.add_nic(h0)                      # nic-h0: primary
    pod.add_nic(h2, is_backup=True)      # nic-h2: failover target
    ssd = pod.add_ssd(h0)
    instance = pod.add_instance(h1, ip=SERVER_IP)
    EchoServer(pod.sim, instance)
    device = pod.add_block_device(instance, ssd)
    client = pod.add_external_client(ip=CLIENT_IP)
    echo = EchoClient(pod.sim, client, SERVER_IP, packet_size=256,
                      rate_pps=2000.0, rng=pod.rng.get("chaos/echo"),
                      poisson=True, metrics=pod.metrics, flows=pod.flows)
    blockio = BlockWorkload(pod.sim, device, rate_iops=1500.0,
                            rng=pod.rng.get("chaos/blockio"), flows=pod.flows)
    # The block workload doubles as the overload.surge fault's target.
    pod.register_load_source(blockio)
    # Control plane under test too: replicated allocator + lease sweeping.
    pod.enable_raft(replicas=3)
    pod.allocator.start_lease_sweeper()
    return pod, echo, blockio


def run_chaos(
    seed: int = 42,
    plan: Optional[FaultPlan] = None,
    duration_s: float = 0.5,
    settle_s: float = 0.3,
    check_interval_s: float = 0.005,
    verbose: bool = True,
) -> dict:
    """One deterministic chaos run; returns the full result bundle."""
    if plan is None:
        plan = FaultPlan.from_json(json.dumps(DEFAULT_PLAN))
    pod, echo, blockio = build_chaos_pod(seed)
    pod.enable_flow_tracing()
    injector = pod.inject_faults(plan)
    checker = pod.check_invariants(interval_s=check_interval_s)
    echo.start(duration_s)
    blockio.start(duration_s)
    pod.run(duration_s + settle_s)
    pod.stop()
    verdict = checker.finish()

    result = {
        "seed": seed,
        "plan": plan.name,
        "ok": verdict.ok,
        "verdict": verdict,
        "injector": injector,
        "events": [event.signature() for event in injector.events],
        "echo": {"sent": echo.stats.sent, "received": echo.stats.received,
                 "lost": echo.stats.lost},
        "blockio": {"submitted": blockio.stats.submitted,
                    "completed": blockio.stats.completed,
                    "errors": blockio.stats.errors},
        "recovery": _recovery_counters(pod),
        "pod": pod,
    }

    if verbose:
        print(f"chaos run: seed={seed} plan={plan.name!r} "
              f"duration={duration_s}s (+{settle_s}s settle)")
        print(f"\nfault events ({len(injector.events)}):")
        for event in injector.events:
            print(f"  {event!r}")
        print(f"\nworkloads:")
        print(f"  echo    sent={echo.stats.sent} "
              f"received={echo.stats.received} lost={echo.stats.lost}")
        print(f"  blockio submitted={blockio.stats.submitted} "
              f"completed={blockio.stats.completed} "
              f"errors={blockio.stats.errors}")
        print(f"\nrecovery counters:")
        for name, value in sorted(result["recovery"].items()):
            print(f"  {name}: {value}")
        print()
        print(verdict.render())

    if not verdict.ok:
        path = dump_failure_artifact(
            f"chaos-seed{seed}-{plan.name}",
            {"seed": seed, "plan": json.loads(plan.to_json()),
             "violations": [repr(v) for v in verdict.violations],
             "events": [repr(e) for e in injector.events]},
        )
        if verbose:
            print(f"\nfailing schedule written to {path}")
    return result


def _recovery_counters(pod) -> dict:
    counters = {}
    for backend in pod.backends.values():
        counters[f"{backend.name}.tx_retries"] = backend.tx_retries
        counters[f"{backend.name}.tx_giveups"] = backend.tx_giveups
    for frontend in pod.storage_frontends.values():
        counters[f"{frontend.name}.retries"] = frontend.retries
        counters[f"{frontend.name}.timeouts"] = frontend.timeouts
        counters[f"{frontend.name}.giveups"] = frontend.giveups
    for nic in pod.nics.values():
        counters[f"{nic.name}.dma_aborts"] = nic.dma_aborts
    for backend in pod.storage_backends.values():
        counters[f"{backend.ssd.name}.media_errors"] = backend.ssd.media_errors
    counters["switch.fault_dropped"] = pod.switch.fault_dropped
    counters["switch.fault_duplicated"] = pod.switch.fault_duplicated
    counters["allocator.failovers"] = pod.allocator.failovers_executed
    # Control plane: fencing, replication and lease-lifecycle counters.
    for backend in pod.backends.values():
        counters[f"{backend.name}.fence_rejects"] = backend.fence_rejects
        counters[f"{backend.name}.stale_accepted"] = backend.stale_accepted
    for backend in pod.storage_backends.values():
        counters[f"{backend.name}.fence_rejects"] = backend.fence_rejects
        counters[f"{backend.name}.stale_accepted"] = backend.stale_accepted
    for frontend in pod.frontends.values():
        counters[f"{frontend.name}.tx_fenced"] = frontend.tx_fenced
        counters[f"{frontend.name}.resyncs"] = frontend.resyncs
    for frontend in pod.storage_frontends.values():
        counters[f"{frontend.name}.fenced"] = frontend.fenced
    # Overload control: load shedding, retry budgets and breaker activity
    # (all zero unless enable_overload_control() armed the pod).
    for frontend in pod.storage_frontends.values():
        counters[f"{frontend.name}.shed"] = frontend.shed
        counters[f"{frontend.name}.retry_budget_denied"] = (
            frontend.retry_budget_denied)
        counters[f"{frontend.name}.breaker_trips"] = frontend.breaker_trips
    for frontend in pod.frontends.values():
        counters[f"{frontend.name}.tx_shed"] = frontend.tx_shed
    for backend in pod.backends.values():
        counters[f"{backend.name}.retry_budget_denied"] = (
            backend.retry_budget_denied)
    allocator = pod.allocator
    counters["allocator.pending_commands"] = allocator.pending_commands
    counters["allocator.duplicate_reports"] = allocator.duplicate_reports
    counters["allocator.failover_no_backup"] = allocator.failover_no_backup
    counters["allocator.lease_expirations"] = allocator.lease_expirations
    counters["notify.delivered"] = allocator.notify.delivered
    counters["notify.delayed"] = allocator.notify.delayed
    counters["notify.dropped"] = allocator.notify.dropped
    return counters


def main_chaos(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro chaos",
        description="deterministic fault-injection run with invariant checks",
    )
    parser.add_argument("--seed", type=int, default=42,
                        help="root seed (drives workloads AND fault times)")
    parser.add_argument("--plan", type=str, default=None,
                        help="fault plan JSON file or a built-in plan name "
                             f"({', '.join(sorted(BUILTIN_PLANS))}); "
                             "default: the built-in default-chaos plan")
    parser.add_argument("--duration", type=float, default=0.5,
                        help="workload duration in sim seconds")
    parser.add_argument("--json", action="store_true",
                        help="emit a machine-readable result instead of text")
    args = parser.parse_args(argv)

    try:
        if args.plan in BUILTIN_PLANS:
            plan = FaultPlan.from_json(json.dumps(BUILTIN_PLANS[args.plan]))
        else:
            plan = FaultPlan.load(args.plan) if args.plan else None
    except (OSError, ConfigError) as exc:
        print(f"chaos: cannot load plan {args.plan!r}: {exc}", file=sys.stderr)
        return 2
    result = run_chaos(seed=args.seed, plan=plan, duration_s=args.duration,
                       verbose=not args.json)
    if args.json:
        verdict = result["verdict"]
        print(json.dumps({
            "seed": result["seed"], "plan": result["plan"],
            "ok": result["ok"],
            "events": [list(sig) for sig in result["events"]],
            "violations": [repr(v) for v in verdict.violations],
            "checks": verdict.checks,
            "echo": result["echo"], "blockio": result["blockio"],
            "recovery": result["recovery"],
        }, indent=1))
    return 0 if result["ok"] else 1


if __name__ == "__main__":   # pragma: no cover
    raise SystemExit(main_chaos())
