"""Deterministic fault injection with invariant-checked chaos schedules.

Usage::

    from repro.faults import FaultPlan, FaultSpec

    plan = FaultPlan([
        FaultSpec(kind="cxl.throttle", at=0.05, duration=0.02,
                  params={"factor": 8.0}),
        FaultSpec(kind="ssd.media_error", target="ssd-h0-1",
                  window=(0.02, 0.1), params={"count": 3}),
    ])
    injector = pod.inject_faults(plan)
    checker = pod.check_invariants(interval_s=0.005)
    pod.run(0.5)
    verdict = checker.finish()
    assert verdict.ok, verdict.render()

Or from the command line::

    python -m repro chaos --seed 7 --plan plan.json
"""

from .injector import FaultEvent, FaultInjector
from .invariants import InvariantChecker, InvariantVerdict, Violation
from .plan import (FAULT_KINDS, FaultPlan, FaultSpec, ResolvedFault,
                   dump_failure_artifact)

__all__ = [
    "FAULT_KINDS", "FaultPlan", "FaultSpec", "ResolvedFault",
    "FaultInjector", "FaultEvent",
    "InvariantChecker", "InvariantVerdict", "Violation",
    "dump_failure_artifact",
]
