"""Declarative, deterministic fault schedules.

A :class:`FaultPlan` is a list of :class:`FaultSpec` entries: *at sim-time T
(or at a seeded random time drawn from a window), apply fault ``kind`` to
``target``, optionally recovering after ``duration`` seconds*.  Plans
round-trip through JSON (``python -m repro chaos --plan plan.json``) and
resolve their random times through :class:`~repro.sim.rng.RngFactory`
substreams, so the same root seed always reproduces the identical fault
sequence -- the property the replay tests pin down.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import ConfigError
from ..sim.rng import RngFactory

__all__ = ["FaultSpec", "FaultPlan", "ResolvedFault", "FAULT_KINDS",
           "dump_failure_artifact"]

#: Every fault the injector knows how to apply, with the target it expects.
FAULT_KINDS: Dict[str, str] = {
    "cxl.latency_spike": "host (None = all links)",
    "cxl.throttle": "host (None = all links)",
    "cache.writeback_loss": "host",
    "nic.fail": "nic",
    "nic.dma_abort": "nic",
    "ssd.fail": "ssd",
    "ssd.media_error": "ssd",
    "switch.drop": "switch (target ignored)",
    "switch.duplicate": "switch (target ignored)",
    "switch.port_down": "nic (its switch port)",
    "host.crash": "host",
    "raft.leader_crash": "ignored (whichever node leads at fire time)",
    "notify.delay": "host (frontend whose notifications lag)",
    "notify.drop": "host (frontend losing the next notification(s))",
    "report.duplicate": "nic (re-deliver its failure report)",
    "overload.surge": "ignored (every registered open-loop load source)",
}

#: Kinds that model one-shot events: ``duration`` makes no sense for them.
_ONE_SHOT_KINDS = frozenset({
    "cache.writeback_loss", "nic.dma_abort", "ssd.media_error",
    "switch.drop", "switch.duplicate", "notify.drop", "report.duplicate",
})


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault.

    Exactly one of ``at`` (a fixed sim time) or ``window`` (a ``[lo, hi)``
    interval the injection time is drawn from, seeded) must be given.
    ``params`` carries kind-specific knobs (counts, derates, extra latency).
    """

    kind: str
    target: Optional[str] = None
    at: Optional[float] = None
    window: Optional[Tuple[float, float]] = None
    duration: Optional[float] = None
    params: Dict = field(default_factory=dict)

    def validate(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigError(
                f"unknown fault kind {self.kind!r}; known: "
                f"{', '.join(sorted(FAULT_KINDS))}"
            )
        if (self.at is None) == (self.window is None):
            raise ConfigError(
                f"fault {self.kind!r}: exactly one of 'at' and 'window' required"
            )
        if self.at is not None and self.at < 0:
            raise ConfigError(f"fault {self.kind!r}: 'at' must be >= 0")
        if self.window is not None:
            lo, hi = self.window
            if lo < 0 or hi <= lo:
                raise ConfigError(
                    f"fault {self.kind!r}: window must satisfy 0 <= lo < hi"
                )
        if self.duration is not None:
            if self.duration <= 0:
                raise ConfigError(f"fault {self.kind!r}: duration must be > 0")
            if self.kind in _ONE_SHOT_KINDS:
                raise ConfigError(
                    f"fault {self.kind!r} is one-shot; 'duration' is meaningless"
                )

    def to_dict(self) -> dict:
        out: dict = {"kind": self.kind}
        if self.target is not None:
            out["target"] = self.target
        if self.at is not None:
            out["at"] = self.at
        if self.window is not None:
            out["window"] = list(self.window)
        if self.duration is not None:
            out["duration"] = self.duration
        if self.params:
            out["params"] = dict(self.params)
        return out

    @classmethod
    def from_dict(cls, raw: dict) -> "FaultSpec":
        known = {"kind", "target", "at", "window", "duration", "params"}
        extra = set(raw) - known
        if extra:
            raise ConfigError(f"unknown fault spec keys: {sorted(extra)}")
        window = raw.get("window")
        spec = cls(
            kind=raw.get("kind", ""),
            target=raw.get("target"),
            at=raw.get("at"),
            window=tuple(window) if window is not None else None,
            duration=raw.get("duration"),
            params=dict(raw.get("params", {})),
        )
        spec.validate()
        return spec


@dataclass(frozen=True)
class ResolvedFault:
    """A :class:`FaultSpec` with its injection time pinned down."""

    index: int
    time: float
    spec: FaultSpec


class FaultPlan:
    """An ordered collection of fault specs, replayable from one root seed."""

    def __init__(self, faults: Sequence[FaultSpec], name: str = "plan"):
        self.faults: List[FaultSpec] = list(faults)
        self.name = name
        for spec in self.faults:
            spec.validate()

    def __len__(self) -> int:
        return len(self.faults)

    def resolve(self, rng: RngFactory) -> List[ResolvedFault]:
        """Pin every windowed fault to a concrete time.

        Each fault draws from its own ``fresh`` substream (keyed by plan
        position and kind), so resolution is independent of call order and of
        any other consumer of the factory -- same root seed, same times.
        """
        resolved = []
        for index, spec in enumerate(self.faults):
            if spec.at is not None:
                time = float(spec.at)
            else:
                lo, hi = spec.window
                stream = rng.fresh(f"faults/{self.name}/{index}/{spec.kind}")
                time = float(stream.uniform(lo, hi))
            resolved.append(ResolvedFault(index=index, time=time, spec=spec))
        resolved.sort(key=lambda rf: (rf.time, rf.index))
        return resolved

    # -- JSON round-trip -----------------------------------------------------

    def to_json(self, indent: int = 1) -> str:
        return json.dumps(
            {"name": self.name,
             "faults": [spec.to_dict() for spec in self.faults]},
            indent=indent,
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            raw = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigError(f"fault plan is not valid JSON: {exc}") from exc
        if isinstance(raw, list):
            raw = {"faults": raw}
        if not isinstance(raw, dict) or "faults" not in raw:
            raise ConfigError(
                "fault plan must be a JSON object with a 'faults' list"
            )
        faults = [FaultSpec.from_dict(entry) for entry in raw["faults"]]
        return cls(faults, name=raw.get("name", "plan"))

    @classmethod
    def load(cls, path: str) -> "FaultPlan":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_json(fh.read())


def dump_failure_artifact(name: str, payload: dict) -> str:
    """Write a failing chaos schedule (plan + seed) for CI artifact upload.

    The directory defaults to ``chaos-artifacts/`` and can be overridden with
    ``CHAOS_ARTIFACT_DIR``.  Returns the path written.
    """
    directory = os.environ.get("CHAOS_ARTIFACT_DIR", "chaos-artifacts")
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"{name}.json")
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=1, default=str)
        fh.write("\n")
    return path
