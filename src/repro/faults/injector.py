"""Apply a :class:`~repro.faults.plan.FaultPlan` to a running pod.

The injector turns declarative fault specs into concrete mutations of the
simulated hardware -- CXL link derates, torn writebacks, NIC/SSD failures,
fabric drops, host crashes -- at deterministic sim times, and records every
injection/recovery in an ordered event log.  Two runs with the same pod seed
and the same plan produce byte-identical event logs, which is what the
replay regression tests assert.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..errors import ConfigError
from .plan import FaultPlan, ResolvedFault

__all__ = ["FaultInjector", "FaultEvent"]


class FaultEvent:
    """One injector action (an injection or a recovery)."""

    __slots__ = ("time", "kind", "target", "phase", "detail")

    def __init__(self, time: float, kind: str, target: str, phase: str,
                 detail: str = ""):
        self.time = time
        self.kind = kind
        self.target = target
        self.phase = phase          # "inject" or "recover"
        self.detail = detail

    def signature(self) -> Tuple:
        return (round(self.time, 9), self.kind, self.target, self.phase,
                self.detail)

    def __repr__(self) -> str:
        extra = f" {self.detail}" if self.detail else ""
        return (f"[{self.time * 1e3:10.3f} ms] {self.phase:<7} "
                f"{self.kind} -> {self.target or '*'}{extra}")


class FaultInjector:
    """Schedules and applies the faults of one plan against one pod."""

    def __init__(self, pod, plan: FaultPlan):
        self.pod = pod
        self.plan = plan
        self.resolved: List[ResolvedFault] = []
        self.events: List[FaultEvent] = []
        self.injected: Dict[str, int] = {}
        self.recovered: Dict[str, int] = {}
        #: Pool line indices damaged by writeback faults -- invariant checks
        #: over memory contents must treat these as expected corruption.
        self.lost_writeback_lines: Set[int] = set()
        self._armed = False

    # -- scheduling ----------------------------------------------------------

    def arm(self) -> List[ResolvedFault]:
        """Resolve the plan against the pod's RNG and schedule every fault."""
        if self._armed:
            raise ConfigError("fault injector already armed")
        self._armed = True
        self.resolved = self.plan.resolve(self.pod.rng)
        for rf in self.resolved:
            self.pod.sim.at(rf.time, self._apply, rf)
        return self.resolved

    # -- bookkeeping ---------------------------------------------------------

    def _record(self, phase: str, kind: str, target: str, detail: str = "") -> None:
        event = FaultEvent(self.pod.sim.now, kind, target, phase, detail)
        self.events.append(event)
        counts = self.injected if phase == "inject" else self.recovered
        counts[kind] = counts.get(kind, 0) + 1
        self.pod.tracer.instant(f"fault.{kind}", category="fault",
                                track="injector", target=target, phase=phase)

    def event_signature(self) -> Tuple:
        """Hashable digest of the full event log (for replay assertions)."""
        return tuple(event.signature() for event in self.events)

    def summary(self) -> dict:
        return {
            "plan": self.plan.name,
            "events": len(self.events),
            "injected": dict(sorted(self.injected.items())),
            "recovered": dict(sorted(self.recovered.items())),
            "lost_writeback_lines": len(self.lost_writeback_lines),
        }

    # -- target resolution ---------------------------------------------------

    def _nic(self, target: Optional[str]):
        nics = list(self.pod.nics.values())
        if target is None:
            if len(nics) == 1:
                return nics[0]
            raise ConfigError("nic fault needs a target (pod has "
                              f"{len(nics)} NICs)")
        if target in self.pod.nics:
            return self.pod.nics[target]
        if target.isdigit() and int(target) < len(nics):
            return nics[int(target)]
        raise ConfigError(f"unknown nic target {target!r}")

    def _host(self, target: Optional[str]):
        hosts = self.pod.hosts
        if target is None:
            if len(hosts) == 1:
                return hosts[0]
            raise ConfigError("host fault needs a target (pod has "
                              f"{len(hosts)} hosts)")
        for host in hosts:
            if host.name == target:
                return host
        if target.isdigit() and int(target) < len(hosts):
            return hosts[int(target)]
        raise ConfigError(f"unknown host target {target!r}")

    def _ssd(self, target: Optional[str]):
        backends = self.pod.storage_backends
        if target is None:
            if len(backends) == 1:
                return next(iter(backends.values())).ssd
            raise ConfigError("ssd fault needs a target (pod has "
                              f"{len(backends)} SSDs)")
        if target in backends:
            return backends[target].ssd
        ssds = [b.ssd for b in backends.values()]
        if target.isdigit() and int(target) < len(ssds):
            return ssds[int(target)]
        raise ConfigError(f"unknown ssd target {target!r}")

    # -- dispatch ------------------------------------------------------------

    def _apply(self, rf: ResolvedFault) -> None:
        spec = rf.spec
        handler = getattr(self, "_apply_" + spec.kind.replace(".", "_"))
        handler(spec)

    def _schedule_recovery(self, spec, fn, *args) -> None:
        if spec.duration is not None:
            self.pod.sim.schedule(spec.duration, fn, *args)

    # CXL link ---------------------------------------------------------------

    def _apply_cxl_latency_spike(self, spec) -> None:
        host = self._host(spec.target).name if spec.target is not None else None
        extra_us = float(spec.params.get("extra_us", 2.0))
        self.pod.pool.set_link_fault(host, derate=1.0, extra_s=extra_us * 1e-6)
        self._record("inject", spec.kind, host or "*", f"+{extra_us}us")
        self._schedule_recovery(spec, self._recover_link, spec.kind, host)

    def _apply_cxl_throttle(self, spec) -> None:
        host = self._host(spec.target).name if spec.target is not None else None
        factor = float(spec.params.get("factor", 8.0))
        self.pod.pool.set_link_fault(host, derate=factor)
        self._record("inject", spec.kind, host or "*", f"x{factor}")
        self._schedule_recovery(spec, self._recover_link, spec.kind, host)

    def _recover_link(self, kind: str, host: Optional[str]) -> None:
        self.pod.pool.clear_link_fault(host)
        self._record("recover", kind, host or "*")

    # Cache ------------------------------------------------------------------

    def _apply_cache_writeback_loss(self, spec) -> None:
        host = self._host(spec.target)
        count = int(spec.params.get("count", 1))
        mode = spec.params.get("mode", "drop")

        def on_fault(index: int, category: str, fault_mode: str) -> None:
            self.lost_writeback_lines.add(index)
            self._record("inject", "cache.writeback_loss", host.name,
                         f"line={index} mode={fault_mode}")

        host.shared.cache.inject_writeback_fault(count=count, mode=mode,
                                                 on_fault=on_fault)

    # NIC --------------------------------------------------------------------

    def _apply_nic_fail(self, spec) -> None:
        nic = self._nic(spec.target)
        nic.fail("fault-injection")
        self._record("inject", spec.kind, nic.name)
        self._schedule_recovery(spec, self._recover_device, spec.kind, nic)

    def _apply_nic_dma_abort(self, spec) -> None:
        nic = self._nic(spec.target)
        count = int(spec.params.get("count", 1))
        nic.inject_dma_abort(count)
        self._record("inject", spec.kind, nic.name, f"count={count}")

    # SSD --------------------------------------------------------------------

    def _apply_ssd_fail(self, spec) -> None:
        ssd = self._ssd(spec.target)
        ssd.fail("fault-injection")
        self._record("inject", spec.kind, ssd.name)
        self._schedule_recovery(spec, self._recover_device, spec.kind, ssd)

    def _apply_ssd_media_error(self, spec) -> None:
        ssd = self._ssd(spec.target)
        count = int(spec.params.get("count", 1))
        ssd.inject_media_error(count)
        self._record("inject", spec.kind, ssd.name, f"count={count}")

    def _recover_device(self, kind: str, device) -> None:
        device.restore()
        self._record("recover", kind, device.name)

    # Switch fabric ----------------------------------------------------------

    def _apply_switch_drop(self, spec) -> None:
        count = int(spec.params.get("count", 1))
        self.pod.switch.inject_drop(count)
        self._record("inject", spec.kind, self.pod.switch.name, f"count={count}")

    def _apply_switch_duplicate(self, spec) -> None:
        count = int(spec.params.get("count", 1))
        self.pod.switch.inject_duplicate(count)
        self._record("inject", spec.kind, self.pod.switch.name, f"count={count}")

    def _apply_switch_port_down(self, spec) -> None:
        nic = self._nic(spec.target)
        nic.port.set_enabled(False)
        self._record("inject", spec.kind, nic.name)
        self._schedule_recovery(spec, self._recover_switch_port, spec.kind, nic)

    def _recover_switch_port(self, kind: str, nic) -> None:
        nic.port.set_enabled(True)
        self._record("recover", kind, nic.name)

    # Host crash -------------------------------------------------------------

    def _host_drivers(self, host) -> list:
        drivers = []
        frontend = self.pod.frontends.get(host.name)
        if frontend is not None:
            drivers.append(frontend)
        sfe = self.pod.storage_frontends.get(host.name)
        if sfe is not None:
            drivers.append(sfe)
        for backend in self.pod.backends.values():
            if backend.host is host:
                drivers.append(backend)
        for backend in self.pod.storage_backends.values():
            if backend.host is host:
                drivers.append(backend)
        return drivers

    def _apply_host_crash(self, spec) -> None:
        host = self._host(spec.target)
        for device in host.devices:
            if not device.failed:
                device.fail("host-crash")
        for driver in self._host_drivers(host):
            driver.stop()
            if hasattr(driver, "stop_monitors"):
                driver.stop_monitors()
        for node in self.pod.raft_nodes:
            if getattr(node, "host", None) is host and node.alive:
                node.crash()
        self._record("inject", spec.kind, host.name,
                     f"devices={len(host.devices)}")
        self._schedule_recovery(spec, self._recover_host, spec.kind, host)

    def _recover_host(self, kind: str, host) -> None:
        for device in host.devices:
            if device.failed:
                device.restore()
        for driver in self._host_drivers(host):
            driver.start()
            if hasattr(driver, "start_monitors"):
                driver.start_monitors()
            driver.kick()
        for node in self.pod.raft_nodes:
            if getattr(node, "host", None) is host and not node.alive:
                node.restart()
        self._record("recover", kind, host.name)

    # Control plane ----------------------------------------------------------

    def _apply_raft_leader_crash(self, spec) -> None:
        leader = None
        for node in self.pod.raft_nodes:
            if node.alive and node.is_leader:
                leader = node
                break
        if leader is None:
            self._record("inject", spec.kind, "*", "no-leader")
            return
        leader.crash()
        self._record("inject", spec.kind, leader.node_id)
        self._schedule_recovery(spec, self._recover_raft_node, spec.kind,
                                leader)

    def _recover_raft_node(self, kind: str, node) -> None:
        node.restart()
        self._record("recover", kind, node.node_id)

    def _apply_notify_delay(self, spec) -> None:
        host = self._host(spec.target)
        extra_s = float(spec.params.get("extra_s", 0.05))
        self.pod.allocator.notify.delay_extra(host.name, extra_s)
        self._record("inject", spec.kind, host.name, f"+{extra_s}s")
        self._schedule_recovery(spec, self._recover_notify_delay, spec.kind,
                                host.name)

    def _recover_notify_delay(self, kind: str, host_name: str) -> None:
        self.pod.allocator.notify.clear_delay(host_name)
        self._record("recover", kind, host_name)

    def _apply_notify_drop(self, spec) -> None:
        host = self._host(spec.target)
        count = int(spec.params.get("count", 1))
        self.pod.allocator.notify.drop_next(host.name, count)
        self._record("inject", spec.kind, host.name, f"count={count}")

    def _apply_report_duplicate(self, spec) -> None:
        nic = self._nic(spec.target)
        count = int(spec.params.get("count", 1))
        for _ in range(count):
            self.pod.allocator.on_failure_report(nic.name)
        self._record("inject", spec.kind, nic.name, f"count={count}")

    # Overload ---------------------------------------------------------------

    def _apply_overload_surge(self, spec) -> None:
        """Multiply every registered open-loop source's arrival rate.

        Drives offered load past capacity for ``duration`` seconds; the
        sources keep queueing arrivals independently of completions, so
        whether the pod sheds or collapses is entirely up to its (enabled
        or disabled) overload control.
        """
        factor = float(spec.params.get("factor", 1.5))
        sources = list(getattr(self.pod, "_load_sources", []))
        if not sources:
            self._record("inject", spec.kind, "*", "no-load-sources")
            return
        for source in sources:
            source.set_rate_multiplier(factor)
        self._record("inject", spec.kind, "*",
                     f"x{factor} sources={len(sources)}")
        self._schedule_recovery(spec, self._recover_overload_surge,
                                spec.kind, sources)

    def _recover_overload_surge(self, kind: str, sources) -> None:
        for source in sources:
            source.set_rate_multiplier(1.0)
        self._record("recover", kind, "*")
