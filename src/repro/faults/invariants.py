"""Continuously-evaluated system invariants for chaos runs.

The checker wires itself into a pod (wrapping descriptor-ring post/complete
callbacks, observation-only) and then asserts, both periodically during the
run and at the end, the properties that must survive *any* fault schedule:

* **completion conservation** -- descriptor rings never lose or duplicate a
  completion: everything posted to a NIC TX ring or SSD submission queue
  completes exactly once (possibly with an error status), and nothing
  completes that was never posted;
* **shed conservation** -- with overload control armed, load shedding may
  *refuse* work but never lose or double-count it: at every storage
  frontend, ``submitted == completed + in_flight + shed + gave_up``
  (give-ups are folded into the error completions);
* **ring bounds** -- no ring ever exceeds its depth, completions never
  outrun posts;
* **buffer conservation** -- RX buffer pools satisfy
  ``available + outstanding == capacity``; frontends eventually free every
  request buffer (no leaks after settle);
* **allocator accounting** -- allocated bandwidth never goes negative, no
  leases remain on failed devices, assignments point at healthy devices;
* **flow conservation** -- every completed flow record telescopes (segment
  durations sum to the end-to-end latency) even when requests were retried;
* **control plane** -- at most one valid NIC lease per instance at any time,
  per-device fencing epochs only ever advance, no backend accepts a
  stale-epoch post, every failed device fails over exactly once (even across
  allocator leader crashes), and once a leader exists and the command queue
  has drained, every caught-up replica's state matches the canonical
  allocator state.

Faults are allowed to *slow* the system, never to wedge it or corrupt its
bookkeeping -- the final check therefore also asserts that no request is
still stuck in flight once the run has settled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["InvariantChecker", "InvariantVerdict", "Violation"]

#: Per-invariant cap on recorded violations (the verdict stays readable even
#: when a bug fires on every packet).
MAX_VIOLATIONS_PER_INVARIANT = 20


@dataclass
class Violation:
    """One observed invariant breach."""

    time: float
    invariant: str
    detail: str

    def __repr__(self) -> str:
        return f"[{self.time * 1e3:10.3f} ms] {self.invariant}: {self.detail}"


@dataclass
class InvariantVerdict:
    """Outcome of a chaos run's invariant evaluation."""

    ok: bool
    violations: List[Violation]
    checks: Dict[str, int] = field(default_factory=dict)

    def render(self) -> str:
        lines = [f"invariants: {'OK' if self.ok else 'VIOLATED'} "
                 f"({sum(self.checks.values())} checks)"]
        for name in sorted(self.checks):
            lines.append(f"  {name}: {self.checks[name]} checks")
        for violation in self.violations:
            lines.append(f"  VIOLATION {violation!r}")
        return "\n".join(lines)


class _RingTracker:
    """Outstanding-descriptor bookkeeping for one post/complete pair.

    Descriptors are tracked by object identity *holding the object itself*,
    so Python cannot recycle an id while it is outstanding (id-reuse would
    otherwise produce false duplicate-post reports).
    """

    def __init__(self, name: str, checker: "InvariantChecker"):
        self.name = name
        self.checker = checker
        self.outstanding: Dict[int, object] = {}
        self.posted = 0
        self.completed = 0

    def on_post(self, descriptor) -> None:
        self.posted += 1
        if id(descriptor) in self.outstanding:
            self.checker.violate(
                "completion-conservation",
                f"{self.name}: descriptor posted twice without completing",
            )
            return
        self.outstanding[id(descriptor)] = descriptor

    def on_complete(self, descriptor) -> None:
        self.completed += 1
        if self.outstanding.pop(id(descriptor), None) is None:
            self.checker.violate(
                "completion-conservation",
                f"{self.name}: completion for a descriptor that is not "
                f"outstanding (lost, duplicated, or never posted)",
            )


class InvariantChecker:
    """Installs invariant probes into a pod and evaluates them."""

    def __init__(self, pod, injector=None):
        self.pod = pod
        self.injector = injector
        self.violations: List[Violation] = []
        self.checks: Dict[str, int] = {}
        self._trackers: List[_RingTracker] = []
        self._task = None
        self._flow_checked = 0
        self._installed = False
        self._suppressed = 0
        self._epoch_seen: Dict[str, int] = {}
        self._stale_seen: Dict[str, int] = {}

    # -- recording -----------------------------------------------------------

    def violate(self, invariant: str, detail: str) -> None:
        count = sum(1 for v in self.violations if v.invariant == invariant)
        if count >= MAX_VIOLATIONS_PER_INVARIANT:
            self._suppressed += 1
            return
        self.violations.append(Violation(self.pod.sim.now, invariant, detail))

    def _checked(self, invariant: str, n: int = 1) -> None:
        self.checks[invariant] = self.checks.get(invariant, 0) + n

    # -- probe installation ----------------------------------------------------

    def install(self) -> "InvariantChecker":
        """Wrap every NIC TX and SSD submission path with conservation probes.

        Must run after the pod topology is built (drivers own the callbacks
        we wrap).  Observation-only: wrapped calls delegate unchanged.
        """
        if self._installed:
            return self
        self._installed = True
        for nic in self.pod.nics.values():
            self._wrap_nic(nic)
        for backend in self.pod.storage_backends.values():
            self._wrap_ssd(backend.ssd)
        return self

    def _wrap_nic(self, nic) -> None:
        tracker = _RingTracker(f"{nic.name}.tx", self)
        self._trackers.append(tracker)
        original_post = nic.post_tx
        original_complete = nic.on_tx_complete

        def post_tx(descriptor):
            original_post(descriptor)       # raises without tracking on reject
            tracker.on_post(descriptor)

        def on_tx_complete(completion):
            tracker.on_complete(completion.descriptor)
            if original_complete is not None:
                original_complete(completion)

        nic.post_tx = post_tx
        nic.on_tx_complete = on_tx_complete

    def _wrap_ssd(self, ssd) -> None:
        tracker = _RingTracker(f"{ssd.name}.sq", self)
        self._trackers.append(tracker)
        original_submit = ssd.submit
        original_complete = ssd.on_completion

        def submit(cmd):
            original_submit(cmd)
            tracker.on_post(cmd)

        def on_completion(completion):
            tracker.on_complete(completion.descriptor)
            if original_complete is not None:
                original_complete(completion)

        ssd.submit = submit
        ssd.on_completion = on_completion

    # -- periodic evaluation ---------------------------------------------------

    def start(self, interval_s: float = 0.005) -> "InvariantChecker":
        """Re-evaluate the continuous invariants every ``interval_s``."""
        self.install()
        self._task = self.pod.sim.every(interval_s, self.check_now)
        return self

    def check_now(self) -> None:
        """Evaluate every invariant that must hold at *all* times."""
        pod = self.pod
        for nic in pod.nics.values():
            for ring in (nic.tx_ring, nic.rx_ring):
                self._checked("ring-bounds")
                if len(ring) > ring.depth:
                    self.violate("ring-bounds",
                                 f"{ring.name}: {len(ring)} > depth {ring.depth}")
        for backend in pod.storage_backends.values():
            self._checked("ring-bounds")
            if len(backend.ssd.sq) > backend.ssd.sq.depth:
                self.violate("ring-bounds",
                             f"{backend.ssd.sq.name}: over depth")
        for tracker in self._trackers:
            self._checked("completion-conservation")
            if tracker.completed > tracker.posted:
                self.violate(
                    "completion-conservation",
                    f"{tracker.name}: {tracker.completed} completions > "
                    f"{tracker.posted} posts",
                )
        for backend in pod.backends.values():
            self._checked("buffer-conservation")
            rx = backend.rx_pool
            if rx.available + rx.outstanding != rx.capacity:
                self.violate(
                    "buffer-conservation",
                    f"{backend.name}: rx pool {rx.available} free + "
                    f"{rx.outstanding} out != {rx.capacity}",
                )
        for device in pod.allocator.devices.values():
            self._checked("allocator-accounting")
            if device.allocated < -1e-9:
                self.violate("allocator-accounting",
                             f"{device.name}: allocated {device.allocated} < 0")
        allocator = pod.allocator
        now = pod.sim.now
        holders: Dict[int, int] = {}
        for (ip, dev), lease in allocator.leases._by_key.items():
            if dev in allocator.devices and lease.valid(now):
                holders[ip] = holders.get(ip, 0) + 1
        self._checked("single-valid-holder")
        for ip, count in holders.items():
            if count > 1:
                self.violate(
                    "single-valid-holder",
                    f"instance {ip:#x} holds {count} valid NIC leases",
                )
        self._checked("monotone-epochs")
        for device_name, epoch in allocator.epochs.device_epoch.items():
            last = self._epoch_seen.get(device_name, 0)
            if epoch < last:
                self.violate("monotone-epochs",
                             f"{device_name}: epoch went {last} -> {epoch}")
            else:
                self._epoch_seen[device_name] = epoch
        for backend in (list(pod.backends.values())
                        + list(pod.storage_backends.values())):
            self._checked("no-stale-writes")
            seen = self._stale_seen.get(backend.name, 0)
            current = backend.stale_accepted
            if current > seen:
                self.violate(
                    "no-stale-writes",
                    f"{backend.name}: accepted {current - seen} stale-epoch "
                    f"posts",
                )
                self._stale_seen[backend.name] = current
        self._check_shed_conservation()
        if pod.flows.enabled:
            records = pod.flows.records
            new = records[self._flow_checked:]
            self._flow_checked = len(records)
            self._checked("flow-conservation", len(new))
            for record in new:
                err = record.conservation_error_s()
                if err > 1e-9:
                    self.violate(
                        "flow-conservation",
                        f"{record.kind} flow: segments off by {err * 1e9:.1f} ns",
                    )

    def _check_shed_conservation(self) -> None:
        """Every submitted storage request is accounted for exactly once.

        With load shedding a request may end shed instead of completed, but
        the books must still balance:
        ``submitted == completed + in_flight + shed + gave_up`` where
        completed splits into ok and error and the give-ups are a subset of
        the error completions -- so the closed form checked here is
        ``submitted == completed_ok + completed_error + shed + pending``.
        """
        for frontend in self.pod.storage_frontends.values():
            self._checked("shed-conservation")
            accounted = (frontend.completed_ok + frontend.completed_error
                         + frontend.shed + len(frontend._pending))
            if frontend.submitted != accounted:
                self.violate(
                    "shed-conservation",
                    f"{frontend.name}: submitted {frontend.submitted} != "
                    f"{frontend.completed_ok} ok + "
                    f"{frontend.completed_error} err + {frontend.shed} shed "
                    f"+ {len(frontend._pending)} in flight",
                )
            self._check_tenant_conservation(frontend)

    def _check_tenant_conservation(self, frontend) -> None:
        """The shed-conservation books must also balance *per tenant*.

        With multi-tenant WFQ armed the frontend keeps per-tenant counters;
        a request charged to the wrong tenant's lane would keep the
        aggregate identity intact while breaking isolation accounting, so
        each tenant's ledger is checked on its own:
        ``submitted == completed_ok + completed_error + shed + pending``.
        """
        if frontend._tenants is None:
            return
        pending: dict = {}
        for state in frontend._pending.values():
            tenant = state.get("tenant")
            pending[tenant] = pending.get(tenant, 0) + 1
        for tenant, stats in frontend.tenant_stats().items():
            self._checked("tenant-conservation")
            in_flight = pending.get(tenant, 0)
            accounted = (stats["completed_ok"] + stats["completed_error"]
                         + stats["shed"] + in_flight)
            if stats["submitted"] != accounted:
                self.violate(
                    "tenant-conservation",
                    f"{frontend.name}/{tenant}: submitted "
                    f"{stats['submitted']} != {stats['completed_ok']} ok + "
                    f"{stats['completed_error']} err + {stats['shed']} shed "
                    f"+ {in_flight} in flight",
                )

    # -- final evaluation ------------------------------------------------------

    def finish(self) -> InvariantVerdict:
        """Cancel the periodic task, run the quiescence-only checks, verdict."""
        if self._task is not None:
            self._task.cancel()
            self._task = None
        self.check_now()
        pod = self.pod

        # Nothing posted may still be outstanding once the run has settled:
        # a fault may delay a completion, never eat it.
        for tracker in self._trackers:
            self._checked("completion-conservation")
            if tracker.outstanding:
                self.violate(
                    "completion-conservation",
                    f"{tracker.name}: {len(tracker.outstanding)} descriptors "
                    f"never completed",
                )

        # No request may be wedged in flight (retries must converge).
        for frontend in pod.storage_frontends.values():
            self._checked("no-stuck-requests")
            if frontend._pending:
                self.violate(
                    "no-stuck-requests",
                    f"{frontend.name}: {len(frontend._pending)} storage "
                    f"requests still in flight",
                )
        for backend in pod.backends.values():
            self._checked("no-stuck-requests")
            if backend._tx_pending or backend._fe_retry:
                self.violate(
                    "no-stuck-requests",
                    f"{backend.name}: {len(backend._tx_pending)} TX + "
                    f"{len(backend._fe_retry)} retry messages still queued",
                )

        allocator = pod.allocator
        for device in allocator.devices.values():
            self._checked("allocator-accounting")
            if device.failed and allocator.leases.leases_on(device.name):
                self.violate("allocator-accounting",
                             f"{device.name}: failed but still leased")
        for ip, name in allocator.assignments.items():
            self._checked("allocator-accounting")
            device = allocator.devices.get(name)
            if device is None or device.failed:
                self.violate("allocator-accounting",
                             f"instance {ip:#x} assigned to failed/unknown "
                             f"device {name}")

        # Exactly-once recovery: every failover command applied exactly once
        # per device, no matter how many leaders proposed it.
        for nic, count in allocator.failover_log.items():
            self._checked("failover-exactly-once")
            if count != 1:
                self.violate("failover-exactly-once",
                             f"{nic}: failover applied {count} times")

        if allocator.replicated:
            leader = allocator.leader_node()
            self._checked("control-quiesce")
            if leader is not None and allocator.pending_commands:
                self.violate(
                    "control-quiesce",
                    f"{allocator.pending_commands} commands still pending "
                    f"with a live leader",
                )
            if leader is not None and not allocator.pending_commands:
                # Failovers == failed devices, once everything committed.
                for name, device in allocator.devices.items():
                    if device.failed:
                        self._checked("failover-exactly-once")
                        if allocator.failover_log.get(name, 0) != 1:
                            self.violate(
                                "failover-exactly-once",
                                f"{name}: failed but failover ran "
                                f"{allocator.failover_log.get(name, 0)} times",
                            )
                canonical = allocator.state.signature()
                for node in pod.raft_nodes:
                    if (not node.alive
                            or node.last_applied != leader.last_applied):
                        continue   # crashed or still catching up
                    self._checked("replica-convergence")
                    sig = allocator.replica_signature(node.node_id)
                    if sig is not None and sig != canonical:
                        self.violate(
                            "replica-convergence",
                            f"{node.node_id}: replica state diverges from "
                            f"the canonical allocator state",
                        )

        if pod.flows.enabled:
            self._checked("flow-conservation")
            bad = pod.flows.check_conservation()
            if bad:
                self.violate("flow-conservation",
                             f"{len(bad)} records violate telescoping")

        if self._suppressed:
            self.violations.append(Violation(
                pod.sim.now, "meta",
                f"{self._suppressed} further violations suppressed"))
        return InvariantVerdict(ok=not self.violations,
                                violations=list(self.violations),
                                checks=dict(self.checks))
