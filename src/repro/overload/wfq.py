"""Per-tenant weighted-fair queueing for the multi-tenant serving layer.

PR 9's single :class:`~repro.overload.admission.AdmissionQueue` protects a
frontend from aggregate overload but cannot isolate tenants: one noisy
neighbour fills the shared queue and every tenant's requests sit behind its
backlog.  :class:`WeightedFairScheduler` replaces that single queue when a
pod arms multi-tenant serving:

* each tenant gets its **own** :class:`AdmissionQueue` (depth cap + CoDel
  front-drop apply per tenant, so a noisy neighbour sheds *its own* excess,
  never a well-behaved victim's);
* dequeue order is **virtual-time weighted-fair** (start-time fair
  queueing with unit request cost): each tenant carries a virtual tag that
  advances by ``1/weight`` per served request, the backlogged tenant with
  the smallest tag is served next, and a tenant going from idle to
  backlogged jumps its tag forward to the scheduler's virtual time -- so
  fairness is enforced over backlogged periods only and idle tenants bank
  no credit;
* a tenant may additionally hold a :class:`TokenBucket` **rate guarantee**:
  requests covered by guaranteed tokens are placed in a shared
  strict-priority reserved lane that is always served before the
  weighted-fair lanes.  The bucket bounds that lane's arrival rate, so the
  guarantee can never starve excess-sharing -- it is the classic
  "guaranteed rate + weighted excess" two-tier discipline.

Everything is deterministic: ties on virtual tags break on the tenant
name, timestamps come from the simulator, and no RNG is involved, so shed
sequences replay byte-identically under a fixed seed.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from .admission import AdmissionQueue

__all__ = ["TokenBucket", "TenantSpec", "WeightedFairScheduler"]


class TokenBucket:
    """Deterministic token bucket (tokens accrue with simulated time)."""

    __slots__ = ("rate", "burst", "tokens", "_last", "granted", "denied")

    def __init__(self, rate: float, burst: float):
        if rate <= 0 or burst <= 0:
            raise ValueError("token bucket rate and burst must be positive")
        self.rate = rate
        self.burst = burst
        self.tokens = burst
        self._last = 0.0
        self.granted = 0
        self.denied = 0

    def take(self, now: float, n: float = 1.0) -> bool:
        if now > self._last:
            self.tokens = min(self.burst,
                              self.tokens + (now - self._last) * self.rate)
            self._last = now
        if self.tokens >= n:
            self.tokens -= n
            self.granted += 1
            return True
        self.denied += 1
        return False


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's scheduling contract at a frontend.

    ``weight`` sets the share of excess capacity; ``guarantee_rate`` (> 0
    to enable) reserves that many requests/s through the strict-priority
    lane, with ``guarantee_burst`` tokens of slack for bursty arrivals.
    """

    weight: float = 1.0
    guarantee_rate: float = 0.0
    guarantee_burst: float = 16.0

    def validate(self) -> None:
        if self.weight <= 0:
            raise ValueError("tenant weight must be positive")
        if self.guarantee_rate < 0 or self.guarantee_burst <= 0:
            raise ValueError("tenant guarantee must be non-negative")


class _Tenant:
    __slots__ = ("name", "weight", "queue", "tag", "bucket",
                 "pushed", "served", "served_reserved")

    def __init__(self, name: str, spec: TenantSpec, depth: int,
                 target_s: float, interval_s: float):
        spec.validate()
        self.name = name
        self.weight = spec.weight
        self.queue = AdmissionQueue(depth, target_s, interval_s)
        self.tag = 0.0
        self.bucket = (TokenBucket(spec.guarantee_rate, spec.guarantee_burst)
                       if spec.guarantee_rate > 0 else None)
        self.pushed = 0
        self.served = 0
        self.served_reserved = 0


class WeightedFairScheduler:
    """Virtual-time WFQ over per-tenant admission queues.

    Drop-in for :class:`AdmissionQueue` at a frontend -- ``push`` takes an
    extra ``tenant`` tag and ``pop`` picks the next tenant by virtual
    time -- with the same conservation contract per tenant:
    ``pushed == admitted + shed_full`` and
    ``admitted == served + shed_sojourn + queued``.
    """

    def __init__(self, depth: int = 256, target_s: float = 0.005,
                 interval_s: float = 0.025,
                 tenants: Optional[Dict[str, TenantSpec]] = None):
        self.depth = depth
        self.target_s = target_s
        self.interval_s = interval_s
        self._tenants: Dict[str, _Tenant] = {}
        self._vtime = 0.0
        # The strict-priority guaranteed lane, shared across tenants and
        # served FIFO; bounded by ``depth`` like any other lane.
        self._reserved: deque = deque()     # (tenant, item)
        for name, spec in (tenants or {}).items():
            self.add_tenant(name, spec)

    def add_tenant(self, name: str, spec: TenantSpec) -> None:
        if name in self._tenants:
            raise ValueError(f"tenant {name!r} already registered")
        self._tenants[name] = _Tenant(name, spec, self.depth,
                                      self.target_s, self.interval_s)

    def _tenant(self, name: Optional[str]) -> _Tenant:
        # Untagged (or unknown) traffic shares one weight-1 "-" lane.
        key = name if name is not None else "-"
        tenant = self._tenants.get(key)
        if tenant is None:
            tenant = self._tenants[key] = _Tenant(
                key, TenantSpec(), self.depth, self.target_s, self.interval_s)
        return tenant

    def __len__(self) -> int:
        return len(self._reserved) + sum(len(t.queue)
                                         for t in self._tenants.values())

    # -- AdmissionQueue-compatible aggregate counters ----------------------

    @property
    def admitted(self) -> int:
        return (sum(t.queue.admitted for t in self._tenants.values())
                + sum(t.served_reserved for t in self._tenants.values())
                + len(self._reserved))

    @property
    def shed_full(self) -> int:
        return sum(t.queue.shed_full for t in self._tenants.values())

    @property
    def shed_sojourn(self) -> int:
        return sum(t.queue.shed_sojourn for t in self._tenants.values())

    @property
    def saturation(self) -> float:
        """Worst per-lane fullness in [0, 1] (the brownout signal)."""
        worst = len(self._reserved) / self.depth
        for tenant in self._tenants.values():
            fullness = len(tenant.queue) / self.depth
            if fullness > worst:
                worst = fullness
        return worst

    # -- scheduling --------------------------------------------------------

    def push(self, now: float, item: Any, tenant: Optional[str] = None) -> bool:
        """Admit ``item`` for ``tenant``; False once its lane is full."""
        state = self._tenant(tenant)
        state.pushed += 1
        if (state.bucket is not None
                and len(self._reserved) < self.depth
                and state.bucket.take(now)):
            self._reserved.append((state, item))
            return True
        if not len(state.queue):
            # Idle -> backlogged: no credit for idle time (SFQ restart).
            if state.tag < self._vtime:
                state.tag = self._vtime
        return state.queue.push(now, item)

    def pop(self, now: float) -> Tuple[Optional[Any], List[Any]]:
        """Next request by virtual time; CoDel drops ride along as shed."""
        shed: List[Any] = []
        if self._reserved:
            state, item = self._reserved.popleft()
            state.served_reserved += 1
            return item, shed
        while True:
            best = None
            for state in self._tenants.values():
                if len(state.queue) and (
                        best is None
                        or (state.tag, state.name) < (best.tag, best.name)):
                    best = state
            if best is None:
                return None, shed
            item, dropped = best.queue.pop(now)
            shed.extend(dropped)
            if item is None:
                continue        # CoDel drained that lane; pick again
            self._vtime = best.tag
            best.tag += 1.0 / best.weight
            best.served += 1
            return item, shed

    def drain(self) -> List[Any]:
        """Empty every lane (teardown), returning the abandoned items."""
        items = [item for _state, item in self._reserved]
        self._reserved.clear()
        for name in sorted(self._tenants):
            items.extend(self._tenants[name].queue.drain())
        return items

    # -- introspection -----------------------------------------------------

    def per_tenant(self) -> Dict[str, dict]:
        """Deterministic per-tenant scheduling counters."""
        out = {}
        reserved_queued: Dict[str, int] = {}
        for state, _item in self._reserved:
            reserved_queued[state.name] = reserved_queued.get(state.name, 0) + 1
        for name in sorted(self._tenants):
            tenant = self._tenants[name]
            out[name] = {
                "weight": tenant.weight,
                "pushed": tenant.pushed,
                "admitted": (tenant.queue.admitted + tenant.served_reserved
                             + reserved_queued.get(name, 0)),
                "served": tenant.served + tenant.served_reserved,
                "served_reserved": tenant.served_reserved,
                "shed_full": tenant.queue.shed_full,
                "shed_sojourn": tenant.queue.shed_sojourn,
                "queued": (len(tenant.queue)
                           + reserved_queued.get(name, 0)),
            }
        return out
