"""Bounded admission queue with CoDel-style drop-from-front.

The frontends put every accepted request through one of these before it is
launched at the device channel.  Two shedding mechanisms compose:

* **depth cap** -- :meth:`AdmissionQueue.push` refuses outright once
  ``depth`` requests are queued, bounding memory and worst-case sojourn;
* **sojourn control** -- :meth:`AdmissionQueue.pop` tracks how long the
  *head* of the queue has waited.  Once head sojourn has stayed above
  ``target_s`` continuously for ``interval_s`` (a standing queue, not a
  transient burst), overdue heads are dropped from the *front* -- the
  oldest requests are the ones whose clients have already given up, so
  dropping them first preserves goodput, exactly CoDel's argument.

The queue is purely deterministic (timestamps in, decisions out); shedding
sequences replay byte-identically under a fixed seed.
"""

from __future__ import annotations

from collections import deque
from typing import Any, List, Optional, Tuple

__all__ = ["AdmissionQueue"]


class AdmissionQueue:
    """FIFO with a hard depth cap and sojourn-based front-drop."""

    __slots__ = ("depth", "target_s", "interval_s", "_q", "_first_above",
                 "admitted", "shed_full", "shed_sojourn")

    def __init__(self, depth: int = 256, target_s: float = 0.005,
                 interval_s: float = 0.025):
        if depth < 1:
            raise ValueError("depth must be >= 1")
        if target_s <= 0 or interval_s <= 0:
            raise ValueError("target_s and interval_s must be positive")
        self.depth = depth
        self.target_s = target_s
        self.interval_s = interval_s
        self._q: deque = deque()        # (enqueue_time, item)
        self._first_above: Optional[float] = None
        self.admitted = 0
        self.shed_full = 0
        self.shed_sojourn = 0

    def __len__(self) -> int:
        return len(self._q)

    def push(self, now: float, item: Any) -> bool:
        """Admit ``item``; False (shed) once the depth cap is hit."""
        if len(self._q) >= self.depth:
            self.shed_full += 1
            return False
        self._q.append((now, item))
        self.admitted += 1
        return True

    def pop(self, now: float) -> Tuple[Optional[Any], List[Any]]:
        """Dequeue the next request, front-dropping overdue heads first.

        Returns ``(item, shed)`` where ``item`` is the request to launch
        (None if the queue drained) and ``shed`` lists the requests CoDel
        dropped from the front on the way; the caller must complete those
        with a shed status so nothing goes stuck.
        """
        shed: List[Any] = []
        while self._q and self._overdue(now):
            shed.append(self._q.popleft()[1])
            self.shed_sojourn += 1
        if not self._q:
            # Canonical CoDel: leaving the drop state when the queue drains
            # -- a later burst must re-earn a full interval_s standing-queue
            # observation before any front drop.
            self._first_above = None
            return None, shed
        enqueued, item = self._q.popleft()
        if not self._q or now - enqueued < self.target_s:
            self._first_above = None    # drained, or healthy again
        return item, shed

    def drain(self) -> List[Any]:
        """Empty the queue (teardown), returning the abandoned items."""
        items = [item for _, item in self._q]
        self._q.clear()
        self._first_above = None
        return items

    def head_sojourn(self, now: float) -> float:
        return now - self._q[0][0] if self._q else 0.0

    def _overdue(self, now: float) -> bool:
        """Has the head breached ``target_s`` for a full ``interval_s``?"""
        if now - self._q[0][0] < self.target_s:
            self._first_above = None
            return False
        if self._first_above is None:
            self._first_above = now
        return now - self._first_above >= self.interval_s
