"""Overload control for the pooled datapaths.

Oasis shares pooled NICs and SSDs across hosts, so one overloaded tenant
can collapse goodput for every host on the pool.  This package supplies the
building blocks both engine frontends thread in when
``OasisConfig.overload.enabled`` is set:

* :class:`~repro.overload.budget.RetryBudget` -- a token bucket replenished
  by fresh traffic, so retries can never exceed a configured fraction of
  offered load (the anti-retry-storm budget).
* :class:`~repro.overload.breaker.CircuitBreaker` -- a per-device
  closed -> open -> half-open state machine with seeded probe jitter.
* :class:`~repro.overload.admission.AdmissionQueue` -- a bounded admission
  queue with CoDel-style sojourn-based drop-from-front.
* :class:`~repro.overload.brownout.BrownoutController` -- watches the fleet
  ``HealthView`` queue-saturation gauges and tells frontends to shed
  background/low-priority work first (graceful brownout).
* :class:`~repro.overload.wfq.WeightedFairScheduler` -- virtual-time
  weighted-fair queueing over per-tenant admission queues, plus
  :class:`~repro.overload.wfq.TokenBucket` rate guarantees, for the
  multi-tenant serving layer (``python -m repro serve``).

Everything here is deterministic: the only randomness (breaker probe
jitter, optional retry backoff jitter) comes from dedicated
:class:`~repro.sim.rng.RngFactory` substreams, so overload control never
perturbs workload RNG draws and whole runs replay byte-identically.
"""

from .admission import AdmissionQueue
from .breaker import CircuitBreaker
from .brownout import BrownoutController
from .budget import RetryBudget
from .wfq import TenantSpec, TokenBucket, WeightedFairScheduler

__all__ = ["AdmissionQueue", "CircuitBreaker", "BrownoutController",
           "RetryBudget", "TenantSpec", "TokenBucket",
           "WeightedFairScheduler"]
