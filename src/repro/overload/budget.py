"""Token-bucket retry budget (the anti-retry-storm governor).

Unbudgeted per-request exponential backoff is the classic metastable-failure
recipe: under saturation every request times out, every timeout retries, and
the retry traffic alone keeps the device saturated after the original surge
has passed.  The budget couples retries to *fresh* traffic: each fresh
request deposits ``ratio`` tokens (capped), each retry attempt spends one
token, and a retry with an empty bucket is denied -- so retry traffic can
never exceed roughly ``ratio`` times the fresh arrival rate.
"""

from __future__ import annotations

__all__ = ["RetryBudget"]


class RetryBudget:
    """Shared per-frontend token bucket gating retry attempts."""

    __slots__ = ("ratio", "cap", "tokens", "deposits", "spent", "denied")

    def __init__(self, ratio: float = 0.2, initial: float = 8.0,
                 cap: float = 64.0):
        if not 0.0 <= ratio <= 1.0:
            raise ValueError(f"ratio must be in [0, 1], got {ratio}")
        if cap <= 0 or initial < 0:
            raise ValueError("cap must be positive and initial >= 0")
        self.ratio = ratio
        self.cap = cap
        self.tokens = min(initial, cap)
        self.deposits = 0       # fresh requests seen
        self.spent = 0          # retry tokens granted
        self.denied = 0         # retry attempts refused

    def deposit(self, n: int = 1) -> None:
        """Credit the bucket for ``n`` fresh (non-retry) requests."""
        self.deposits += n
        self.tokens = min(self.cap, self.tokens + n * self.ratio)

    def try_spend(self, cost: float = 1.0) -> bool:
        """Spend ``cost`` tokens for one retry attempt, if available."""
        if self.tokens >= cost:
            self.tokens -= cost
            self.spent += 1
            return True
        self.denied += 1
        return False

    def __repr__(self) -> str:
        return (f"RetryBudget(tokens={self.tokens:.2f}, ratio={self.ratio}, "
                f"spent={self.spent}, denied={self.denied})")
