"""Per-device circuit breaker: closed -> open -> half-open.

A frontend keeps one breaker per backend device.  Consecutive failures trip
the breaker open; while open, requests are rejected locally (shed) instead
of being launched at a device that is already failing, which is what turns
a sick device into a retry storm.  After an open dwell (plus seeded jitter,
so a fleet of breakers doesn't probe in lockstep) one half-open *probe*
request is let through: success re-closes the breaker, failure re-opens it.

The breaker takes explicit ``now`` timestamps rather than a simulator
handle, so the state machine is trivially property-testable; probe jitter
is drawn from a dedicated RNG substream at trip time, keeping every trip
and probe instant byte-replayable under a fixed seed.
"""

from __future__ import annotations

from typing import Optional

__all__ = ["CircuitBreaker", "CLOSED", "OPEN", "HALF_OPEN"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """Failure-counting breaker guarding one backend device."""

    __slots__ = ("name", "failure_threshold", "open_s", "probe_jitter_s",
                 "rng", "state", "failures", "open_until", "trips", "probes",
                 "rejections", "reclosures")

    def __init__(self, failure_threshold: int = 8, open_s: float = 0.05,
                 probe_jitter_s: float = 0.0, rng=None, name: str = ""):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if open_s <= 0 or probe_jitter_s < 0:
            raise ValueError("open_s must be positive, jitter >= 0")
        self.name = name
        self.failure_threshold = failure_threshold
        self.open_s = open_s
        self.probe_jitter_s = probe_jitter_s
        self.rng = rng
        self.state = CLOSED
        self.failures = 0           # consecutive failures while closed
        self.open_until: float = 0.0
        self.trips = 0
        self.probes = 0
        self.rejections = 0
        self.reclosures = 0

    def allow(self, now: float) -> bool:
        """May a request be launched at the device right now?

        While half-open exactly one probe is outstanding; everything else
        is rejected until the probe's verdict comes back.
        """
        if self.state == CLOSED:
            return True
        if self.state == OPEN and now >= self.open_until:
            self.state = HALF_OPEN
            self.probes += 1
            return True             # this request is the probe
        self.rejections += 1
        return False

    def record_success(self, now: float) -> None:
        self.failures = 0
        if self.state != CLOSED:
            self.state = CLOSED
            self.reclosures += 1

    def record_failure(self, now: float) -> None:
        if self.state == HALF_OPEN:
            self._trip(now)         # failed probe: back to open
            return
        if self.state == OPEN:
            return                  # stragglers from before the trip
        self.failures += 1
        if self.failures >= self.failure_threshold:
            self._trip(now)

    def _trip(self, now: float) -> None:
        self.state = OPEN
        self.failures = 0
        self.trips += 1
        jitter = 0.0
        if self.rng is not None and self.probe_jitter_s > 0:
            jitter = float(self.rng.uniform(0.0, self.probe_jitter_s))
        self.open_until = now + self.open_s + jitter

    def probe_eta(self, now: float) -> Optional[float]:
        """Seconds until the next half-open probe (None unless open)."""
        if self.state != OPEN:
            return None
        return max(0.0, self.open_until - now)

    def __repr__(self) -> str:
        return (f"CircuitBreaker({self.name!r}, state={self.state}, "
                f"trips={self.trips}, rejections={self.rejections})")
