"""Brownout controller: graceful degradation driven by fleet telemetry.

Consumes the PR 7 ``HealthView`` queue-saturation gauges (the same API the
placement policy will use) on a fixed period and maps the worst device queue
onto a discrete *brownout level*:

* level 0 -- healthy, serve everything;
* level 1 -- a device queue has saturated past ``high``: registered
  frontends shed background work first (storage drops flush/read-ahead
  batch work, the netengine drops low-priority frames).

Hysteresis (``low`` < ``high``) prevents flapping; the controller only
calls ``set_brownout(level)`` on transitions, so a disabled or healthy pod
pays one gauge read per period and nothing else.  Everything is driven by
sim time -- brownout enter/exit instants replay byte-identically.
"""

from __future__ import annotations

from typing import List

__all__ = ["BrownoutController"]


class BrownoutController:
    """Periodic queue-saturation watcher toggling frontend brownout."""

    def __init__(self, sim, view, high: float = 0.85, low: float = 0.60,
                 period_s: float = 0.005):
        if not 0 < low <= high:
            raise ValueError("need 0 < low <= high")
        self.sim = sim
        self.view = view                # HealthView over the fleet pipeline
        self.high = high
        self.low = low
        self.period_s = period_s
        self.level = 0
        self.entries = 0                # level 0 -> 1 transitions
        self.exits = 0                  # level 1 -> 0 transitions
        self.transitions: List[tuple] = []   # (t, level, worst_saturation)
        self._targets: list = []
        self._task = None

    def register(self, target) -> None:
        """Register a frontend exposing ``set_brownout(level: int)``."""
        self._targets.append(target)

    def start(self) -> None:
        if self._task is None:
            self._task = self.sim.every(self.period_s, self._tick)

    def stop(self) -> None:
        if self._task is not None:
            self._task.cancel()
            self._task = None

    def worst_saturation(self) -> float:
        """Worst congestion signal: device queues OR admission queues.

        Device-queue gauges come from the HealthView; with admission
        control armed the device queue is deliberately kept short, so the
        registered frontends' own admission-queue saturation is folded in
        -- that is where excess load piles up once launches are windowed.
        """
        table = self.view.queue_saturation()
        worst = max(table.values()) if table else 0.0
        for target in self._targets:
            worst = max(worst, getattr(target, "admission_saturation", 0.0))
        return worst

    def _tick(self) -> None:
        worst = self.worst_saturation()
        if self.level == 0 and worst >= self.high:
            self._set_level(1, worst)
        elif self.level == 1 and worst < self.low:
            self._set_level(0, worst)

    def _set_level(self, level: int, worst: float) -> None:
        self.level = level
        if level:
            self.entries += 1
        else:
            self.exits += 1
        self.transitions.append((self.sim.now, level, round(worst, 6)))
        for target in self._targets:
            target.set_brownout(level)

    def log_json(self) -> List[list]:
        """Deterministic transition log (replay-identity contract)."""
        return [[round(t, 9), level, worst]
                for t, level, worst in self.transitions]

    def as_dict(self) -> dict:
        return {"level": self.level, "entries": self.entries,
                "exits": self.exits, "transitions": self.log_json()}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"BrownoutController(level={self.level}, "
                f"entries={self.entries}, exits={self.exits})")
