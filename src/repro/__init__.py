"""Oasis reproduction: pooling PCIe devices over CXL memory pools.

Python reproduction of "Oasis: Pooling PCIe Devices Over CXL to Boost
Utilization" (SOSP '25) as a discrete-event, functional simulation.  See
DESIGN.md for the system inventory and EXPERIMENTS.md for the per-figure
reproduction results.
"""

from .config import (
    CacheTimings,
    CXLConfig,
    DatapathConfig,
    FailoverConfig,
    HostConfig,
    NICConfig,
    OasisConfig,
    SSDConfig,
    TransportConfig,
)
from .core.pod import CXLPod
from .host.instance import Instance, ResourceSpec
from .net.packet import ip_str, mac_str, make_ip, make_mac

__version__ = "1.0.0"

__all__ = [
    "CXLPod",
    "OasisConfig",
    "CXLConfig",
    "CacheTimings",
    "NICConfig",
    "SSDConfig",
    "DatapathConfig",
    "FailoverConfig",
    "TransportConfig",
    "HostConfig",
    "Instance",
    "ResourceSpec",
    "make_ip",
    "make_mac",
    "ip_str",
    "mac_str",
]
