"""Pod-wide metrics registry: named, labelled counters/gauges/histograms.

Before this layer existed, counters were scattered ad hoc across
``CacheStats``, ``ChannelCounters``, ``LinkStats`` and the NIC/SSD/switch
classes, with no way to scrape them over time or correlate them with
sim-time events.  The registry gives every subsystem one place to publish:

* **instruments** -- :class:`Counter` / :class:`Gauge` / :class:`Histogram`
  objects created through the registry and mutated on the hot path
  (``inc`` / ``set`` / ``observe`` are a dict lookup plus an add);
* **collectors** -- callables registered with
  :meth:`MetricsRegistry.register_collector` that *read* the existing
  legacy counter objects at snapshot time.  Binding a subsystem is therefore
  observation-only: ``CacheStats`` and friends remain the source of truth,
  and experiments that consume them keep producing identical numbers.

Every sample carries a label set (``host``, ``device``, ``channel``,
``category``, ...).  :meth:`MetricsRegistry.snapshot` materialises all
samples into an immutable :class:`MetricsSnapshot` with cheap
``delta_since`` / ``aggregate`` semantics, mirroring (and generalising) the
pre-existing ``LinkStats.snapshot`` / ``delta_since`` idiom.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Sample",
    "MetricsRegistry",
    "MetricsSnapshot",
    "labels_key",
]

#: canonical immutable form of a label set: sorted (key, value) pairs
LabelsKey = Tuple[Tuple[str, str], ...]


def labels_key(labels: Dict[str, str]) -> LabelsKey:
    """Canonical hashable form of a label dict."""
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


@dataclass(frozen=True)
class Sample:
    """One scraped value: a metric name, its labels, and a number."""

    name: str
    labels: LabelsKey
    value: float

    def label(self, key: str, default: Optional[str] = None) -> Optional[str]:
        for k, v in self.labels:
            if k == key:
                return v
        return default


class _Instrument:
    """Base class for registry-owned instruments."""

    kind = "abstract"
    __slots__ = ("name", "labels", "help")

    def __init__(self, name: str, labels: LabelsKey, help: str = ""):
        self.name = name
        self.labels = labels
        self.help = help

    def samples(self) -> Iterable[Sample]:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        pairs = ",".join(f"{k}={v}" for k, v in self.labels)
        return f"<{type(self).__name__} {self.name}{{{pairs}}}>"


class Counter(_Instrument):
    """A monotonically increasing count."""

    kind = "counter"
    __slots__ = ("value",)

    def __init__(self, name: str, labels: LabelsKey, help: str = ""):
        super().__init__(name, labels, help)
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (by {amount})")
        self.value += amount

    def samples(self) -> Iterable[Sample]:
        yield Sample(self.name, self.labels, self.value)


class Gauge(_Instrument):
    """A point-in-time value; optionally backed by a read callback.

    Callback-backed gauges (``fn``) are how the legacy ad-hoc counters are
    registered without being rewritten: the callable is evaluated at
    snapshot time.
    """

    kind = "gauge"
    __slots__ = ("_value", "fn")

    def __init__(self, name: str, labels: LabelsKey, help: str = "",
                 fn: Optional[Callable[[], float]] = None):
        super().__init__(name, labels, help)
        self._value = 0.0
        self.fn = fn

    def set(self, value: float) -> None:
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self._value -= amount

    @property
    def value(self) -> float:
        if self.fn is not None:
            return float(self.fn())
        return self._value

    def samples(self) -> Iterable[Sample]:
        yield Sample(self.name, self.labels, self.value)


#: default histogram bucket bounds (generic latency-ish scale)
DEFAULT_BUCKETS = (1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0,
                   1000.0, 2500.0, 5000.0, 10000.0, float("inf"))


class Histogram(_Instrument):
    """A distribution: cumulative buckets plus count/sum.

    ``keep_raw=True`` (the default) also retains every observation, so
    experiments can compute *exact* percentiles from the registry -- this is
    what lets Figure 10/11 render from the registry while staying
    numerically identical to the legacy hand-pulled lists.
    """

    kind = "histogram"
    __slots__ = ("buckets", "bucket_counts", "count", "sum", "observations",
                 "keep_raw")

    def __init__(self, name: str, labels: LabelsKey, help: str = "",
                 buckets: Sequence[float] = DEFAULT_BUCKETS,
                 keep_raw: bool = True):
        super().__init__(name, labels, help)
        bounds = sorted(float(b) for b in buckets)
        if not bounds or bounds[-1] != float("inf"):
            bounds.append(float("inf"))
        self.buckets: Tuple[float, ...] = tuple(bounds)
        self.bucket_counts: List[int] = [0] * len(self.buckets)
        self.count = 0
        self.sum = 0.0
        self.keep_raw = keep_raw
        self.observations: List[float] = []

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.sum += value
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.bucket_counts[i] += 1
                break
        if self.keep_raw:
            self.observations.append(value)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else float("nan")

    def samples(self) -> Iterable[Sample]:
        yield Sample(f"{self.name}_count", self.labels, float(self.count))
        yield Sample(f"{self.name}_sum", self.labels, self.sum)
        cumulative = 0
        for bound, n in zip(self.buckets, self.bucket_counts):
            cumulative += n
            le = "+Inf" if bound == float("inf") else f"{bound:g}"
            yield Sample(f"{self.name}_bucket", self.labels + (("le", le),),
                         float(cumulative))


class MetricsSnapshot:
    """An immutable point-in-time view of every sample in a registry."""

    __slots__ = ("time", "values")

    def __init__(self, values: Dict[Tuple[str, LabelsKey], float],
                 time: float = 0.0):
        self.time = time
        self.values = values

    def __len__(self) -> int:
        return len(self.values)

    def get(self, name: str, default: float = 0.0, **labels) -> float:
        return self.values.get((name, labels_key(labels)), default)

    def delta_since(self, earlier: "MetricsSnapshot") -> "MetricsSnapshot":
        """Per-sample difference against an earlier snapshot.

        Samples absent from ``earlier`` are treated as zero, matching
        ``LinkStats.delta_since``.
        """
        return MetricsSnapshot(
            {key: value - earlier.values.get(key, 0.0)
             for key, value in self.values.items()},
            time=self.time,
        )

    def aggregate(self, name: str,
                  by: Sequence[str] = ()) -> Dict[Tuple[str, ...], float]:
        """Sum samples of ``name`` grouped by the given label keys.

        With ``by=()`` the result has a single entry keyed by the empty
        tuple (the grand total).
        """
        out: Dict[Tuple[str, ...], float] = {}
        for (sample_name, labels), value in self.values.items():
            if sample_name != name:
                continue
            table = dict(labels)
            group = tuple(table.get(k, "") for k in by)
            out[group] = out.get(group, 0.0) + value
        return out

    def total(self, name: str) -> float:
        return sum(self.aggregate(name).values())

    def names(self) -> List[str]:
        return sorted({name for name, _ in self.values})

    def items(self):
        return self.values.items()


class MetricsRegistry:
    """The pod-wide registry of instruments and legacy-counter collectors."""

    def __init__(self):
        self._instruments: Dict[Tuple[str, LabelsKey], _Instrument] = {}
        self._collectors: List[Callable[[], Iterable[Sample]]] = []

    # -- instrument creation (get-or-create, idempotent) ----------------------

    def _get_or_create(self, cls, name: str, help: str, labels: dict, **kwargs):
        key = (name, labels_key(labels))
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = cls(name, key[1], help=help, **kwargs)
            self._instruments[key] = instrument
        elif not isinstance(instrument, cls):
            raise TypeError(
                f"metric {name}{dict(key[1])} already registered as "
                f"{instrument.kind}, not {cls.kind}"
            )
        return instrument

    def counter(self, name: str, help: str = "", **labels) -> Counter:
        return self._get_or_create(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "",
              fn: Optional[Callable[[], float]] = None, **labels) -> Gauge:
        gauge = self._get_or_create(Gauge, name, help, labels)
        if fn is not None:
            gauge.fn = fn
        return gauge

    def histogram(self, name: str, help: str = "",
                  buckets: Sequence[float] = DEFAULT_BUCKETS,
                  keep_raw: bool = True, **labels) -> Histogram:
        return self._get_or_create(Histogram, name, help, labels,
                                   buckets=buckets, keep_raw=keep_raw)

    def register_collector(self, fn: Callable[[], Iterable[Sample]]) -> None:
        """Register a callable yielding :class:`Sample` objects at scrape time."""
        self._collectors.append(fn)

    # -- reading ---------------------------------------------------------------

    def collect(self) -> List[Sample]:
        """Every sample currently visible (instruments + collectors)."""
        out: List[Sample] = []
        for instrument in self._instruments.values():
            out.extend(instrument.samples())
        for collector in self._collectors:
            out.extend(collector())
        return out

    def snapshot(self, time: float = 0.0) -> MetricsSnapshot:
        """Materialise a :class:`MetricsSnapshot` (duplicate samples sum)."""
        values: Dict[Tuple[str, LabelsKey], float] = {}
        for sample in self.collect():
            key = (sample.name, sample.labels)
            values[key] = values.get(key, 0.0) + sample.value
        return MetricsSnapshot(values, time=time)

    def value(self, name: str, default: float = 0.0, **labels) -> float:
        return self.snapshot().get(name, default, **labels)

    def aggregate(self, name: str,
                  by: Sequence[str] = ()) -> Dict[Tuple[str, ...], float]:
        return self.snapshot().aggregate(name, by=by)

    def find(self, name: str) -> List[_Instrument]:
        return [inst for (n, _), inst in self._instruments.items() if n == name]

    @property
    def instrument_count(self) -> int:
        return len(self._instruments)

    @property
    def collector_count(self) -> int:
        return len(self._collectors)
