"""Registry bindings for the pre-existing ad-hoc counter classes.

Each ``bind_*`` function registers a *collector* -- a callable evaluated at
snapshot time that reads a legacy counter object (``LinkStats``,
``CacheStats``, ``ChannelCounters``, NIC/SSD/switch/driver attributes) and
yields registry :class:`~repro.obs.metrics.Sample` objects with canonical
names and labels.  Binding is observation-only: the legacy objects stay the
source of truth and are never mutated, so experiments that read them
directly keep producing identical numbers.

Everything here is duck-typed on the counter objects' public attributes to
keep :mod:`repro.obs` import-free of the subsystem modules (the pod wires
the concrete objects in).

Canonical metric names:

=========================  ==============================  =================
name                       labels                          source
=========================  ==============================  =================
``cxl_link_bytes``         host, direction, category       ``LinkStats``
``cache_ops``              host, domain, op                ``CacheStats``
``channel_ops``            channel, role, op               ``ChannelCounters``
``nic_frames``/``_bytes``  device, host, direction         ``SimNIC``
``nic_dropped_frames``     device, host, reason            ``SimNIC``
``ssd_ops``/``ssd_bytes``  device, host, op                ``SimSSD``
``switch_frames``          switch, event                   ``LearningSwitch``
``switch_port_*``          switch, port                    ``SwitchPort``
``driver_*``               driver, (op)                    ``Driver`` + subclasses
``allocator_events``       event                           ``PodAllocator``
``raft_term``/...          node                            ``RaftNode``
=========================  ==============================  =================
"""

from __future__ import annotations

from .metrics import MetricsRegistry, Sample, labels_key

__all__ = [
    "bind_sim",
    "bind_scraper",
    "bind_pool",
    "bind_cache",
    "bind_channel_endpoint",
    "bind_channel_pair",
    "bind_nic",
    "bind_ssd",
    "bind_switch",
    "bind_driver",
    "bind_allocator",
    "bind_raft_node",
    "bind_tracer",
    "bind_flows",
    "bind_injector",
    "CACHE_OP_FIELDS",
    "CHANNEL_OP_FIELDS",
]

#: CacheStats counter attributes exported as ``cache_ops``
CACHE_OP_FIELDS = (
    "hits", "misses", "stores", "writebacks", "invalidations", "fences",
    "prefetches_issued", "prefetches_ignored", "evictions",
    "dma_read_snoop_hits", "dma_write_snoop_hits",
    "writebacks_lost", "writebacks_partial",
)

#: ChannelCounters attributes exported as ``channel_ops``
CHANNEL_OP_FIELDS = (
    "sent", "received", "empty_polls", "counter_refreshes",
    "counter_updates", "full_stalls",
)


def _sample(name, value, **labels) -> Sample:
    return Sample(name, labels_key(labels), float(value))


def bind_sim(registry: MetricsRegistry, sim) -> None:
    """Export the event kernel's own health gauges.

    ``sim_pending_events`` counts *live* (non-tombstoned) queue entries --
    a steady climb under constant load is the signature of a leaked timer
    (e.g. the pre-fix ``Process.interrupt``).  Not bound by the pod by
    default: scraping it into reports would perturb the byte-identical
    seeded snapshots the replay suite pins.
    """

    def collect():
        yield _sample("sim_processed_events", sim.processed_events)
        yield _sample("sim_pending_events", sim.pending)
        yield _sample("sim_now_seconds", sim.now)

    registry.register_collector(collect)


def bind_scraper(registry: MetricsRegistry, scraper) -> None:
    """Export the scraper's own buffering health.

    ``scraper_dropped`` counts snapshots evicted off the back of the ring
    (sampling itself never stops); ``report`` surfaces it so a window that
    silently rolled over is visible in the artifact built from it.
    """

    def collect():
        yield _sample("scraper_samples_taken", scraper.samples_taken)
        yield _sample("scraper_buffered", len(scraper))
        yield _sample("scraper_dropped", scraper.dropped)

    registry.register_collector(collect)


def bind_pool(registry: MetricsRegistry, pool) -> None:
    """Export a :class:`CXLMemoryPool`'s per-host ``LinkStats``."""

    def collect():
        for host, stats in pool.link_stats.items():
            for category, nbytes in stats.read_bytes.items():
                yield _sample("cxl_link_bytes", nbytes, host=host,
                              direction="read", category=category)
            for category, nbytes in stats.write_bytes.items():
                yield _sample("cxl_link_bytes", nbytes, host=host,
                              direction="write", category=category)

    registry.register_collector(collect)


def bind_cache(registry: MetricsRegistry, cache, host: str,
               domain: str = "cxl") -> None:
    """Export one :class:`HostCache`'s ``CacheStats`` plus its line count."""

    def collect():
        stats = cache.stats
        for op in CACHE_OP_FIELDS:
            yield _sample("cache_ops", getattr(stats, op), host=host,
                          domain=domain, op=op)
        yield _sample("cache_lines_resident", cache.cached_line_count,
                      host=host, domain=domain)

    registry.register_collector(collect)


def bind_channel_endpoint(registry: MetricsRegistry, counters, channel: str,
                          role: str) -> None:
    """Export one ``ChannelCounters`` (sender or receiver side)."""

    def collect():
        for op in CHANNEL_OP_FIELDS:
            yield _sample("channel_ops", getattr(counters, op),
                          channel=channel, role=role, op=op)

    registry.register_collector(collect)


def bind_channel_pair(registry: MetricsRegistry, pair) -> None:
    """Export both directions of a :class:`ChannelPair` (CXL channels only)."""
    for endpoint in (pair.a_to_b, pair.b_to_a):
        sender = getattr(endpoint, "sender", None)
        receiver = getattr(endpoint, "receiver", None)
        if sender is not None:
            bind_channel_endpoint(registry, sender.counters, endpoint.name,
                                  "sender")
        if receiver is not None:
            bind_channel_endpoint(registry, receiver.counters, endpoint.name,
                                  "receiver")


def bind_nic(registry: MetricsRegistry, nic) -> None:
    host = nic.host.name

    def collect():
        name = nic.name
        yield _sample("nic_frames", nic.tx_frames, device=name, host=host,
                      direction="tx")
        yield _sample("nic_frames", nic.rx_frames, device=name, host=host,
                      direction="rx")
        yield _sample("nic_bytes", nic.tx_bytes, device=name, host=host,
                      direction="tx")
        yield _sample("nic_bytes", nic.rx_bytes, device=name, host=host,
                      direction="rx")
        yield _sample("nic_dropped_frames", nic.rx_dropped_no_buffer,
                      device=name, host=host, reason="no_buffer")
        yield _sample("nic_dropped_frames", nic.rx_dropped_down,
                      device=name, host=host, reason="link_down")
        yield _sample("nic_link_up", 1.0 if nic.link_up else 0.0,
                      device=name, host=host)
        yield _sample("device_aer_errors", nic.aer.total(), device=name,
                      host=host)
        yield _sample("nic_tx_completions", nic.tx_completions, device=name,
                      host=host)
        yield _sample("nic_dma_aborts", nic.dma_aborts, device=name,
                      host=host)

    registry.register_collector(collect)


def bind_ssd(registry: MetricsRegistry, ssd) -> None:
    host = ssd.host.name

    def collect():
        name = ssd.name
        yield _sample("ssd_ops", ssd.reads, device=name, host=host, op="read")
        yield _sample("ssd_ops", ssd.writes, device=name, host=host, op="write")
        yield _sample("ssd_bytes", ssd.read_bytes, device=name, host=host,
                      op="read")
        yield _sample("ssd_bytes", ssd.write_bytes, device=name, host=host,
                      op="write")
        yield _sample("device_aer_errors", ssd.aer.total(), device=name,
                      host=host)
        yield _sample("ssd_completions", ssd.completions, device=name,
                      host=host)
        yield _sample("ssd_media_errors", ssd.media_errors, device=name,
                      host=host)

    registry.register_collector(collect)


def bind_switch(registry: MetricsRegistry, switch) -> None:
    def collect():
        name = switch.name
        yield _sample("switch_frames", switch.forwarded_frames, switch=name,
                      event="forwarded")
        yield _sample("switch_frames", switch.flooded_frames, switch=name,
                      event="flooded")
        yield _sample("switch_frames", switch.fault_dropped, switch=name,
                      event="fault_dropped")
        yield _sample("switch_frames", switch.fault_duplicated, switch=name,
                      event="fault_duplicated")
        for port_id, port in switch.ports.items():
            yield _sample("switch_port_tx_frames", port.tx_frames,
                          switch=name, port=str(port_id))
            yield _sample("switch_port_tx_bytes", port.tx_bytes,
                          switch=name, port=str(port_id))
            yield _sample("switch_port_dropped_frames", port.dropped_frames,
                          switch=name, port=str(port_id))

    registry.register_collector(collect)


#: extra per-driver counters exported when present (frontends vs backends)
_DRIVER_EXTRA_FIELDS = (
    "tx_forwarded", "rx_delivered", "rx_unknown_instance", "tx_no_buffer",
    "tx_posted", "rx_forwarded", "rx_fallback_inspections",
    "rx_dropped_unknown",
    # fault tolerance (net backend / storage frontend)
    "tx_retries", "tx_giveups",
    "retries", "timeouts", "giveups", "completed_ok", "completed_error",
    # epoch fencing (§3.3.3): rejections at backends, recoveries at frontends
    "fence_rejects", "stale_accepted", "tx_fenced", "resyncs", "fenced",
    # overload control: admission/shedding, retry budgets, circuit breakers
    "submitted", "shed", "shed_queue_full", "shed_sojourn", "shed_breaker",
    "shed_brownout", "retry_budget_denied", "breaker_trips", "breakers_open",
    "tx_shed", "tx_shed_queue_full", "tx_shed_sojourn", "tx_shed_brownout",
    "brownout_level",
)


def bind_driver(registry: MetricsRegistry, driver) -> None:
    """Export a busy-polling :class:`Driver`'s loop and datapath counters."""

    def collect():
        name = driver.name
        yield _sample("driver_busy_ns", driver.busy_ns, driver=name)
        yield _sample("driver_wakeups", driver.wakeups, driver=name)
        for op in _DRIVER_EXTRA_FIELDS:
            value = getattr(driver, op, None)
            if value is not None:
                yield _sample("driver_ops", value, driver=name, op=op)
        depth = getattr(driver, "queue_depth", None)
        if depth is not None:
            # Backends expose live device-queue occupancy (NIC TX ring +
            # overflow backlog, SSD submission queue); fleet health turns
            # this into queue saturation vs the configured depth.
            yield _sample("device_queue_depth", depth,
                          device=driver.device_name)

    registry.register_collector(collect)


def bind_tenant_client(registry: MetricsRegistry, client) -> None:
    """Export a tenant load generator's request counters.

    One ``tenant_requests`` family keyed by (tenant, result); fleet health
    turns the deltas into per-tenant SLO-burn and shed-rate gauges.
    """

    def collect():
        tenant = client.tenant
        stats = client.stats
        yield _sample("tenant_requests", stats.submitted,
                      tenant=tenant, result="submitted")
        yield _sample("tenant_requests", stats.completed_ok,
                      tenant=tenant, result="ok")
        yield _sample("tenant_requests", stats.shed,
                      tenant=tenant, result="shed")
        yield _sample("tenant_requests", stats.errors,
                      tenant=tenant, result="error")
        yield _sample("tenant_requests", client.slo_violations,
                      tenant=tenant, result="slo_violation")

    registry.register_collector(collect)


def bind_allocator(registry: MetricsRegistry, allocator) -> None:
    def collect():
        yield _sample("allocator_events", allocator.failovers_executed,
                      event="failover")
        yield _sample("allocator_events", allocator.migrations_executed,
                      event="migration")
        yield _sample("allocator_telemetry_records",
                      allocator.telemetry_store.records_ingested)
        yield _sample("allocator_events", allocator.lease_expirations,
                      event="lease_expiry")
        yield _sample("allocator_events", allocator.duplicate_reports,
                      event="duplicate_report")
        yield _sample("allocator_events", allocator.failover_no_backup,
                      event="failover_no_backup")
        yield _sample("allocator_pending_commands",
                      allocator.pending_commands)
        yield _sample("fence_epoch_grants", allocator.epochs.grants)
        yield _sample("fence_epoch_revokes", allocator.epochs.revokes)
        yield _sample("notify_delivered", allocator.notify.delivered)
        yield _sample("notify_dropped", allocator.notify.dropped)
        for device in allocator.devices.values():
            yield _sample("allocator_device_allocated", device.allocated,
                          device=device.name, kind="nic")
            yield _sample("allocator_device_capacity", device.capacity,
                          device=device.name, kind="nic")
            yield _sample("allocator_device_failed",
                          1.0 if device.failed else 0.0,
                          device=device.name, kind="nic")
        for device in allocator.storage_devices.values():
            yield _sample("allocator_device_allocated", device.allocated,
                          device=device.name, kind="ssd")
            yield _sample("allocator_device_capacity", device.capacity,
                          device=device.name, kind="ssd")
            yield _sample("allocator_device_failed",
                          1.0 if device.failed else 0.0,
                          device=device.name, kind="ssd")

    registry.register_collector(collect)


def bind_tracer(registry: MetricsRegistry, tracer) -> None:
    """Export the tracer's recording health (recorded vs silently dropped)."""

    def collect():
        yield _sample("tracer_events_recorded", len(tracer.events))
        yield _sample("tracer_events_dropped", tracer.dropped)

    registry.register_collector(collect)


def bind_flows(registry: MetricsRegistry, flows) -> None:
    """Export a :class:`~repro.obs.flow.FlowRegistry`'s bookkeeping."""

    def collect():
        yield _sample("flow_started", flows.started)
        yield _sample("flow_completed", flows.completed)
        yield _sample("flow_records_dropped", flows.dropped_records)
        yield _sample("flow_stash_evicted", flows.stash_evicted)
        yield _sample("flow_stash_open", len(flows._stash))

    registry.register_collector(collect)


def bind_injector(registry: MetricsRegistry, injector) -> None:
    """Export a :class:`~repro.faults.injector.FaultInjector`'s event counts."""

    def collect():
        for kind, count in injector.injected.items():
            yield _sample("fault_injected", count, kind=kind)
        for kind, count in injector.recovered.items():
            yield _sample("fault_recovered", count, kind=kind)

    registry.register_collector(collect)


def bind_raft_node(registry: MetricsRegistry, node) -> None:
    def collect():
        name = node.node_id
        yield _sample("raft_term", node.current_term, node=name)
        yield _sample("raft_commit_index", node.commit_index, node=name)
        yield _sample("raft_is_leader", 1.0 if node.state == "leader" else 0.0,
                      node=name)

    registry.register_collector(collect)
