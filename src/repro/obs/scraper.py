"""Periodic scraping of a :class:`~repro.obs.metrics.MetricsRegistry`.

The scraper is a simulation-time process: every ``period_s`` of *virtual*
time it materialises a :class:`~repro.obs.metrics.MetricsSnapshot` of the
whole registry into a bounded time-series buffer.  Experiments and the
``python -m repro report`` CLI then read per-metric series
(:meth:`TelemetryScraper.series`) or per-interval rates
(:meth:`TelemetryScraper.rates`) out of the buffer, exactly the way the
pod-wide allocator consumes the backends' 100 ms telemetry records (§3.5).

The buffer is a ring: at ``max_snapshots`` the oldest snapshot is evicted
so sampling never stops -- a long-running pod always has the freshest
window, and ``dropped`` counts how many fell off the back.  Streaming
consumers that must see *every* sample regardless of buffer depth register
via :meth:`TelemetryScraper.subscribe` (that is how
:class:`~repro.obs.fleet.FleetHealth` gets its deltas without retaining
raw snapshots at all).

The scrape period relies on :class:`~repro.sim.core.PeriodicTask` firing
from an unjittered base timeline -- "every 100 ms" really means a 100 ms
mean period, which is what makes the derived rates trustworthy.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, List, Optional, Tuple

from .metrics import MetricsRegistry, MetricsSnapshot

__all__ = ["TelemetryScraper"]


class TelemetryScraper:
    """Samples a registry at a configurable virtual-time period."""

    def __init__(
        self,
        sim,
        registry: MetricsRegistry,
        period_s: float = 0.1,
        max_snapshots: int = 100_000,
    ):
        self.sim = sim
        self.registry = registry
        self.period_s = period_s
        self.max_snapshots = max_snapshots
        self.snapshots: deque = deque(maxlen=max_snapshots)
        self.samples_taken = 0
        self.dropped = 0
        self._task = None
        self._subscribers: List[Callable[[MetricsSnapshot], None]] = []

    # -- lifecycle ---------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._task is not None

    def start(self, period_s: Optional[float] = None) -> "TelemetryScraper":
        """Begin sampling every ``period_s`` (idempotent)."""
        if self._task is not None:
            return self
        if period_s is not None:
            self.period_s = period_s
        self._task = self.sim.every(self.period_s, self._sample)
        return self

    def stop(self) -> None:
        if self._task is not None:
            self._task.cancel()
            self._task = None

    def subscribe(self, fn: Callable[[MetricsSnapshot], None]) -> None:
        """Stream every new snapshot to ``fn`` as it is taken.

        Subscribers see all samples in order even after the ring evicts
        them, so they can maintain unbounded-horizon state (EWMAs,
        sketches) in bounded memory.
        """
        self._subscribers.append(fn)

    def _append(self, snapshot: MetricsSnapshot) -> None:
        if (self.snapshots.maxlen is not None
                and len(self.snapshots) == self.snapshots.maxlen):
            self.dropped += 1          # ring full: the oldest falls off
        self.snapshots.append(snapshot)
        for fn in self._subscribers:
            fn(snapshot)

    def _sample(self) -> None:
        self.samples_taken += 1
        self._append(self.registry.snapshot(time=self.sim.now))

    def sample_now(self) -> MetricsSnapshot:
        """Take one out-of-band sample immediately (also buffered)."""
        snapshot = self.registry.snapshot(time=self.sim.now)
        self._append(snapshot)
        return snapshot

    # -- reading -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.snapshots)

    @property
    def latest(self) -> Optional[MetricsSnapshot]:
        return self.snapshots[-1] if self.snapshots else None

    def times(self) -> List[float]:
        return [snapshot.time for snapshot in self.snapshots]

    def series(self, name: str, **labels) -> Tuple[List[float], List[float]]:
        """The sampled values of one metric over time: ``(times, values)``.

        With no labels given, samples of ``name`` are summed across all
        label sets (the pod-wide total).  Covers whatever window the ring
        currently holds.
        """
        times: List[float] = []
        values: List[float] = []
        for snapshot in self.snapshots:
            times.append(snapshot.time)
            if labels:
                values.append(snapshot.get(name, **labels))
            else:
                values.append(snapshot.total(name))
        return times, values

    def rates(self, name: str, **labels) -> Tuple[List[float], List[float]]:
        """Per-second deltas between consecutive samples of a counter."""
        times, values = self.series(name, **labels)
        out_t: List[float] = []
        out_r: List[float] = []
        for i in range(1, len(times)):
            dt = times[i] - times[i - 1]
            if dt <= 0:
                continue
            out_t.append(times[i])
            out_r.append((values[i] - values[i - 1]) / dt)
        return out_t, out_r

    def clear(self) -> None:
        self.snapshots.clear()
        self.dropped = 0
