"""Fleet health telemetry: streaming utilization/saturation/stranding state.

The scraper/registry firehose answers "what happened since the run
started"; this module answers "which device, link, or host is hot *right
now*, and how stranded is each pool?" -- the live signals the load-aware
placement policy (ROADMAP item 5) consumes and the ``python -m repro top``
dashboard renders.  Everything is bounded-memory and fed exclusively from
:class:`~repro.obs.scraper.TelemetryScraper` deltas: the pipeline keeps one
previous snapshot and fixed-size streaming state per entity, never a raw
snapshot history of its own.

Pieces:

* :class:`Ewma` -- exponentially weighted moving average over the
  irregular (but near-periodic) scrape timeline;
* :class:`P2Quantile` -- the Jain & Chlamtac P-square streaming quantile
  estimator: five markers, O(1) memory, deterministic;
* :class:`HealthSeries` -- one entity's gauge: last value, peak, EWMA and
  streaming p50/p99 sketches;
* :class:`StrandingGauge` -- duration-weighted live stranding
  (``1 - time_avg(used) / provisioned``), the *same* definition
  :func:`repro.workloads.stranding.stranded_fractions` computes offline,
  so the live gauge and the Figure 2 pipeline cross-check exactly;
* :class:`AlertEngine` -- declarative threshold / hysteresis /
  for-duration rules evaluated once per scrape tick, emitting sim-time
  alert instants into the :class:`~repro.obs.trace.Tracer` and
  ``fleet_alert_*`` counters into the registry;
* :class:`FleetHealth` -- the pipeline tying it together, subscribed to
  the scraper; :class:`HealthView` -- the stable query API
  (``hot_devices()`` / ``stranding(pool)`` / ``saturation(link)`` /
  ``alerts()``) that placement policies consume.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Ewma",
    "P2Quantile",
    "HealthSeries",
    "StrandingGauge",
    "AlertRule",
    "AlertEvent",
    "AlertEngine",
    "FleetHealth",
    "HealthView",
    "DEFAULT_ALERT_RULES",
]


class Ewma:
    """EWMA over irregularly spaced samples: ``alpha = 1 - exp(-dt/tau)``.

    With samples arriving every ``dt`` the smoothing horizon is ``tau``
    seconds of sim time regardless of the scrape period, which is what
    makes thresholds like "hot for 100 ms" scrape-rate independent.
    """

    __slots__ = ("tau_s", "value", "_last_t")

    def __init__(self, tau_s: float = 0.05):
        self.tau_s = tau_s
        self.value: Optional[float] = None
        self._last_t: Optional[float] = None

    def update(self, t: float, x: float) -> float:
        if self.value is None or self._last_t is None:
            self.value = float(x)
        else:
            dt = max(t - self._last_t, 0.0)
            alpha = 1.0 - math.exp(-dt / self.tau_s) if self.tau_s > 0 else 1.0
            self.value += alpha * (x - self.value)
        self._last_t = t
        return self.value


class P2Quantile:
    """Streaming quantile estimation with five markers (P-square algorithm).

    Deterministic and O(1) memory: the estimator never stores observations,
    so a :class:`HealthSeries` stays fixed-size no matter how long the run.
    Until five observations arrive the exact small-sample percentile is
    returned from the buffered values.
    """

    __slots__ = ("q", "count", "_heights", "_pos", "_desired", "_inc")

    def __init__(self, q: float):
        if not 0.0 < q < 1.0:
            raise ValueError(f"quantile must be in (0, 1), got {q}")
        self.q = q
        self.count = 0
        self._heights: List[float] = []
        self._pos = [1, 2, 3, 4, 5]
        self._desired = [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0]
        self._inc = [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0]

    def observe(self, x: float) -> None:
        x = float(x)
        self.count += 1
        if self.count <= 5:
            self._heights.append(x)
            if self.count == 5:
                self._heights.sort()
            return
        h, pos = self._heights, self._pos
        if x < h[0]:
            h[0] = x
            k = 0
        elif x >= h[4]:
            h[4] = x
            k = 3
        else:
            k = 0
            for i in range(1, 4):
                if x < h[i]:
                    break
                k = i
        for i in range(k + 1, 5):
            pos[i] += 1
        for i in range(5):
            self._desired[i] += self._inc[i]
        for i in range(1, 4):
            d = self._desired[i] - pos[i]
            if ((d >= 1.0 and pos[i + 1] - pos[i] > 1)
                    or (d <= -1.0 and pos[i - 1] - pos[i] < -1)):
                step = 1 if d >= 1.0 else -1
                candidate = self._parabolic(i, step)
                if not h[i - 1] < candidate < h[i + 1]:
                    candidate = self._linear(i, step)
                h[i] = candidate
                pos[i] += step

    def _parabolic(self, i: int, step: int) -> float:
        h, n = self._heights, self._pos
        return h[i] + step / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + step) * (h[i + 1] - h[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - step) * (h[i] - h[i - 1]) / (n[i] - n[i - 1])
        )

    def _linear(self, i: int, step: int) -> float:
        h, n = self._heights, self._pos
        return h[i] + step * (h[i + step] - h[i]) / (n[i + step] - n[i])

    @property
    def value(self) -> float:
        if self.count == 0:
            return float("nan")
        if self.count < 5:
            ordered = sorted(self._heights)
            rank = self.q * (len(ordered) - 1)
            lo = int(rank)
            hi = min(lo + 1, len(ordered) - 1)
            return ordered[lo] + (rank - lo) * (ordered[hi] - ordered[lo])
        return self._heights[2]


class HealthSeries:
    """One entity's streaming gauge: rate/level, peak, EWMA, p50/p99.

    Fixed memory: a handful of scalars plus two five-marker sketches.
    ``observe`` records a level (a utilization fraction, a saturation);
    ``observe_counter`` differences a cumulative counter into a per-second
    rate first, the way the scraper's ``rates()`` does, then records it.
    """

    __slots__ = ("family", "entity", "last", "last_t", "peak", "count",
                 "ewma", "_p50", "_p99", "_last_counter", "_last_counter_t")

    def __init__(self, family: str, entity: str, ewma_tau_s: float = 0.05):
        self.family = family
        self.entity = entity
        self.last = 0.0
        self.last_t: Optional[float] = None
        self.peak = 0.0
        self.count = 0
        self.ewma = Ewma(ewma_tau_s)
        self._p50 = P2Quantile(0.50)
        self._p99 = P2Quantile(0.99)
        self._last_counter: Optional[float] = None
        self._last_counter_t: Optional[float] = None

    def observe(self, t: float, value: float) -> None:
        value = float(value)
        self.last = value
        self.last_t = t
        self.count += 1
        if value > self.peak:
            self.peak = value
        self.ewma.update(t, value)
        self._p50.observe(value)
        self._p99.observe(value)

    def observe_counter(self, t: float, cumulative: float) -> None:
        if self._last_counter is not None and t > self._last_counter_t:
            rate = ((cumulative - self._last_counter)
                    / (t - self._last_counter_t))
            self.observe(t, rate)
        self._last_counter = float(cumulative)
        self._last_counter_t = t

    @property
    def p50(self) -> float:
        return self._p50.value

    @property
    def p99(self) -> float:
        return self._p99.value

    def as_dict(self) -> dict:
        return {
            "last": self.last,
            "ewma": self.ewma.value if self.ewma.value is not None else 0.0,
            "p50": self.p50 if self.count else 0.0,
            "p99": self.p99 if self.count else 0.0,
            "peak": self.peak,
            "samples": self.count,
        }


class StrandingGauge:
    """Live stranding: ``1 - time_avg(used) / provisioned`` while loaded.

    The duration-weighted integral mirrors
    :meth:`repro.workloads.stranding.UsageTimeline.time_average` exactly:
    each ``update(t, used, provisioned, loaded)`` closes the interval that
    started at the previous update (whose ``used``/``loaded`` apply to it)
    and opens a new one.  Fed the same usage timeline and loaded mask as
    the offline Figure 2 pipeline, the gauge reproduces its stranded
    fraction and (via :meth:`devices_needed`) its device count.
    """

    __slots__ = ("_last_t", "_last_used", "_last_provisioned", "_last_loaded",
                 "weighted_used", "weighted_provisioned", "loaded_s",
                 "peak_used", "peak_any", "updates")

    def __init__(self):
        self._last_t: Optional[float] = None
        self._last_used = 0.0
        self._last_provisioned = 0.0
        self._last_loaded = True
        self.weighted_used = 0.0
        self.weighted_provisioned = 0.0
        self.loaded_s = 0.0
        self.peak_used = 0.0          # peak while loaded
        self.peak_any = 0.0           # peak regardless of load mask
        self.updates = 0

    def update(self, t: float, used: float, provisioned: float,
               loaded: bool = True) -> None:
        if self._last_t is not None and t > self._last_t and self._last_loaded:
            dt = t - self._last_t
            self.weighted_used += self._last_used * dt
            self.weighted_provisioned += self._last_provisioned * dt
            self.loaded_s += dt
        self._last_t = t
        self._last_used = float(used)
        self._last_provisioned = float(provisioned)
        self._last_loaded = bool(loaded)
        self.updates += 1
        if used > self.peak_any:
            self.peak_any = float(used)
        if loaded and used > self.peak_used:
            self.peak_used = float(used)

    @property
    def stranded_fraction(self) -> float:
        if self.weighted_provisioned > 0:
            return 1.0 - self.weighted_used / self.weighted_provisioned
        if self._last_provisioned > 0:
            return 1.0 - self._last_used / self._last_provisioned
        return 0.0

    @property
    def stranded_now(self) -> float:
        if self._last_provisioned > 0:
            return 1.0 - self._last_used / self._last_provisioned
        return 0.0

    def devices_needed(self, device_unit: float) -> int:
        """Minimum whole devices covering the loaded peak (>=1), as Fig 2."""
        peak = self.peak_used if self.loaded_s > 0 else self.peak_any
        return max(1, int(math.ceil(peak / device_unit - 1e-9)))


# -- alerting -----------------------------------------------------------------


@dataclass(frozen=True)
class AlertRule:
    """One declarative alert: threshold + hysteresis + for-duration.

    The rule watches every entity of one gauge ``family``.  An entity whose
    value holds at or above ``threshold`` for ``for_s`` seconds of sim time
    fires; it clears only when the value drops below ``clear_below``
    (default: the threshold itself), so values hovering at the threshold
    cannot flap the alert.
    """

    name: str
    family: str
    threshold: float
    for_s: float = 0.0
    clear_below: Optional[float] = None
    help: str = ""

    @property
    def clear_threshold(self) -> float:
        return self.threshold if self.clear_below is None else self.clear_below


#: The default ruleset: a device hot >80 % for 100 ms, a CXL link near
#: line rate, a device queue backing up, a lease-expiry storm (sweeps are
#: rare in a healthy pod), and sustained SLO burn.
DEFAULT_ALERT_RULES: Tuple[AlertRule, ...] = (
    AlertRule("hot_device", "device_util", 0.80, for_s=0.100,
              clear_below=0.70,
              help="device moved >80% of its line rate for 100 ms"),
    AlertRule("link_saturated", "link_saturation", 0.90, for_s=0.100,
              clear_below=0.75,
              help="host CXL link >90% of capacity for 100 ms"),
    AlertRule("queue_saturated", "queue_saturation", 0.90, for_s=0.100,
              clear_below=0.50,
              help="device descriptor queue >90% full for 100 ms"),
    AlertRule("lease_expiry_storm", "lease_expiry_rate", 10.0, for_s=0.200,
              clear_below=1.0,
              help=">10 lease expirations/s for 200 ms"),
    AlertRule("slo_burn", "slo_burn", 0.5, for_s=0.200, clear_below=0.25,
              help="SLO violated on >50% of recent scrape ticks"),
    # Overload control (PR 9): sustained load shedding, a starved retry
    # budget, or a frontend dropped into brownout are all pod-health events.
    AlertRule("overload_shedding", "shed_rate", 100.0, for_s=0.050,
              clear_below=10.0,
              help="frontend shedding >100 requests/s for 50 ms"),
    AlertRule("overload_retry_denied", "retry_denied_rate", 50.0,
              for_s=0.050, clear_below=5.0,
              help="retry budget denying >50 retries/s for 50 ms"),
    AlertRule("overload_brownout", "brownout", 1.0, for_s=0.0,
              clear_below=1.0,
              help="frontend in brownout: low-priority work is being shed"),
    # Multi-tenant serving (PR 10): one tenant burning its latency SLO.
    # The gauge family only exists once a pod registers tenant clients, so
    # the rule is inert for every non-serving run.
    AlertRule("tenant_slo_burn", "tenant_slo_burn", 0.5, for_s=0.050,
              clear_below=0.25,
              help="tenant's latency SLO violated on >50% of recent "
                   "completions"),
)


@dataclass(frozen=True)
class AlertEvent:
    """One alert transition (fire or clear) at a sim-time instant."""

    t: float
    rule: str
    entity: str
    kind: str                 # "fire" | "clear"
    value: float
    since: float              # when the breach (pending) began

    def as_json(self) -> list:
        return [round(self.t, 9), self.rule, self.entity, self.kind,
                round(self.value, 9)]


class AlertEngine:
    """Evaluates :class:`AlertRule` s once per scrape tick.

    Per (rule, entity) state machine::

        ok --value>=threshold--> pending --held for_s--> firing
        pending --value<threshold--> ok            (no event: gated)
        firing --value<clear_below--> ok           (clear event)
        firing --clear_below<=value--> firing      (hysteresis: no flap)

    Transitions emit :class:`AlertEvent` s into a bounded log, sim-time
    instants into the tracer (category ``alert``) and ``fleet_alert_*``
    registry counters.
    """

    def __init__(self, rules: Sequence[AlertRule] = DEFAULT_ALERT_RULES,
                 tracer=None, registry=None, max_events: int = 10_000):
        self.rules = tuple(rules)
        self.tracer = tracer
        self.registry = registry
        self.log: deque = deque(maxlen=max_events)
        self.dropped = 0
        self.fired = 0
        self.cleared = 0
        #: (rule, entity) -> {"state": "pending"|"firing", "since": t,
        #:                    "value": last}
        self._state: Dict[Tuple[str, str], dict] = {}

    @property
    def active(self) -> Dict[Tuple[str, str], dict]:
        """Currently firing alerts: (rule, entity) -> state dict."""
        return {key: st for key, st in self._state.items()
                if st["state"] == "firing"}

    def _emit(self, event: AlertEvent) -> None:
        if len(self.log) == self.log.maxlen:
            self.dropped += 1
        self.log.append(event)
        if event.kind == "fire":
            self.fired += 1
        else:
            self.cleared += 1
        if self.registry is not None:
            counter = ("fleet_alert_fired" if event.kind == "fire"
                       else "fleet_alert_cleared")
            self.registry.counter(counter, rule=event.rule).inc()
        if self.tracer is not None:
            self.tracer.instant(f"alert.{event.kind}:{event.rule}",
                                category="alert", track="alerts",
                                entity=event.entity,
                                value=round(event.value, 6))

    def evaluate(self, t: float, values: Dict[Tuple[str, str], float]) -> None:
        """One tick: ``values`` maps (family, entity) -> current level."""
        by_family: Dict[str, List[Tuple[str, float]]] = {}
        for (family, entity), value in values.items():
            by_family.setdefault(family, []).append((entity, value))
        for rule in self.rules:
            for entity, value in sorted(by_family.get(rule.family, ())):
                key = (rule.name, entity)
                state = self._state.get(key)
                if value >= rule.threshold:
                    if state is None:
                        state = {"state": "pending", "since": t, "value": value}
                        self._state[key] = state
                    state["value"] = value
                    if (state["state"] == "pending"
                            and t - state["since"] >= rule.for_s):
                        state["state"] = "firing"
                        self._emit(AlertEvent(t, rule.name, entity, "fire",
                                              value, state["since"]))
                elif state is not None:
                    state["value"] = value
                    if state["state"] == "pending":
                        # Spike shorter than for_s: gated, never fired.
                        del self._state[key]
                    elif value < rule.clear_threshold:
                        self._emit(AlertEvent(t, rule.name, entity, "clear",
                                              value, state["since"]))
                        del self._state[key]
                    # clear_threshold <= value < threshold: keep firing.

    def log_json(self) -> List[list]:
        """The deterministic alert sequence (replay-identity contract)."""
        return [event.as_json() for event in self.log]


# -- the pipeline -------------------------------------------------------------


class FleetHealth:
    """Streaming fleet state fed from scraper deltas.

    Subscribe via ``scraper.subscribe(fleet.ingest)`` (what
    :meth:`repro.core.pod.CXLPod.enable_fleet_telemetry` does); each scrape
    tick differences the new snapshot against the previous one, updates the
    per-entity :class:`HealthSeries` gauges and per-pool
    :class:`StrandingGauge` s, and runs the :class:`AlertEngine`.  Memory
    is bounded by the entity count, never the run length.
    """

    def __init__(
        self,
        nic_bytes_per_sec: float,
        ssd_bytes_per_sec: float,
        link_bytes_per_sec: float,
        nic_queue_depth: int = 1024,
        ssd_queue_depth: int = 64,
        rules: Optional[Sequence[AlertRule]] = None,
        tracer=None,
        registry=None,
        flows=None,
        slo=None,
        ewma_tau_s: float = 0.05,
        slo_tau_s: float = 0.05,
    ):
        self.nic_bytes_per_sec = nic_bytes_per_sec
        self.ssd_bytes_per_sec = ssd_bytes_per_sec
        self.link_bytes_per_sec = link_bytes_per_sec
        self.queue_depths = {"nic": nic_queue_depth, "ssd": ssd_queue_depth}
        self.flows = flows
        self.slo = slo
        self.ewma_tau_s = ewma_tau_s
        self.gauges: Dict[Tuple[str, str], HealthSeries] = {}
        self.stranding_gauges: Dict[str, StrandingGauge] = {}
        self.pools: Dict[str, dict] = {}
        self.device_host: Dict[str, str] = {}
        self.device_kind: Dict[str, str] = {}
        self.alerts = AlertEngine(
            rules if rules is not None else DEFAULT_ALERT_RULES,
            tracer=tracer, registry=registry)
        self._slo_ewma = Ewma(slo_tau_s)
        self._slo_tau_s = slo_tau_s
        #: per-tenant SLO-burn EWMAs (created lazily as tenants appear)
        self._tenant_burn: Dict[str, Ewma] = {}
        self._prev = None
        self.ticks = 0
        self.time = 0.0

    # -- gauge plumbing ----------------------------------------------------

    def gauge(self, family: str, entity: str) -> HealthSeries:
        key = (family, entity)
        series = self.gauges.get(key)
        if series is None:
            series = self.gauges[key] = HealthSeries(
                family, entity, ewma_tau_s=self.ewma_tau_s)
        return series

    def _observe(self, family: str, entity: str, t: float,
                 value: float) -> None:
        self.gauge(family, entity).observe(t, value)

    # -- ingest ------------------------------------------------------------

    def ingest(self, snapshot) -> None:
        """Consume one scraped snapshot (called by the scraper per tick)."""
        t = snapshot.time
        prev, self._prev = self._prev, snapshot
        self.ticks += 1
        self.time = t
        if prev is None or t <= prev.time:
            return
        dt = t - prev.time
        delta = snapshot.delta_since(prev)
        self._ingest_devices(t, dt, delta)
        self._ingest_links(t, dt, delta)
        self._ingest_queues(t, snapshot)
        self._ingest_pools(t, snapshot)
        self._ingest_control(t, dt, delta)
        self._ingest_overload(t, dt, snapshot, delta)
        self._ingest_tenants(t, dt, delta)
        self._ingest_slo(t)
        self.alerts.evaluate(t, {key: series.last
                                 for key, series in self.gauges.items()})

    def _ingest_devices(self, t: float, dt: float, delta) -> None:
        host_util: Dict[str, float] = {}
        nic = delta.aggregate("nic_bytes", by=("device", "host", "direction"))
        per_device: Dict[Tuple[str, str], Dict[str, float]] = {}
        for (device, host, direction), nbytes in nic.items():
            per_device.setdefault((device, host), {})[direction] = nbytes
        for (device, host), dirs in sorted(per_device.items()):
            self.device_host[device] = host
            self.device_kind[device] = "nic"
            # Full-duplex link: the busier direction sets the utilization.
            util = max(dirs.get("tx", 0.0), dirs.get("rx", 0.0)) / (
                self.nic_bytes_per_sec * dt)
            self._observe("device_util", device, t, util)
            host_util[host] = max(host_util.get(host, 0.0), util)
        ssd = delta.aggregate("ssd_bytes", by=("device", "host", "op"))
        per_ssd: Dict[Tuple[str, str], float] = {}
        for (device, host, _op), nbytes in ssd.items():
            per_ssd[(device, host)] = per_ssd.get((device, host), 0.0) + nbytes
        for (device, host), nbytes in sorted(per_ssd.items()):
            self.device_host[device] = host
            self.device_kind[device] = "ssd"
            util = nbytes / (self.ssd_bytes_per_sec * dt)
            self._observe("device_util", device, t, util)
            host_util[host] = max(host_util.get(host, 0.0), util)
        for host, util in sorted(host_util.items()):
            self._observe("host_util", host, t, util)

    def _ingest_links(self, t: float, dt: float, delta) -> None:
        links = delta.aggregate("cxl_link_bytes", by=("host", "direction"))
        per_host: Dict[str, Dict[str, float]] = {}
        for (host, direction), nbytes in links.items():
            per_host.setdefault(host, {})[direction] = nbytes
        for host, dirs in sorted(per_host.items()):
            saturation = max(dirs.get("read", 0.0), dirs.get("write", 0.0)) / (
                self.link_bytes_per_sec * dt)
            self._observe("link_saturation", host, t, saturation)

    def _ingest_queues(self, t: float, snapshot) -> None:
        depths = snapshot.aggregate("device_queue_depth", by=("device",))
        for (device,), depth in sorted(depths.items()):
            capacity = self.queue_depths.get(
                self.device_kind.get(device, "nic"), 1024)
            self._observe("queue_saturation", device, t,
                          depth / capacity if capacity else 0.0)

    def _ingest_pools(self, t: float, snapshot) -> None:
        allocated = snapshot.aggregate("allocator_device_allocated",
                                       by=("device", "kind"))
        capacity = snapshot.aggregate("allocator_device_capacity",
                                      by=("device", "kind"))
        failed = snapshot.aggregate("allocator_device_failed",
                                    by=("device", "kind"))
        pools: Dict[str, dict] = {}
        for (device, kind), cap in capacity.items():
            pool = pools.setdefault(kind, {"allocated": 0.0,
                                           "provisioned": 0.0,
                                           "devices": 0, "failed": 0})
            if failed.get((device, kind), 0.0):
                pool["failed"] += 1
                continue           # failed devices are not provisioned
            pool["devices"] += 1
            pool["provisioned"] += cap
            pool["allocated"] += allocated.get((device, kind), 0.0)
        for kind, pool in sorted(pools.items()):
            gauge = self.stranding_gauges.get(kind)
            if gauge is None:
                gauge = self.stranding_gauges[kind] = StrandingGauge()
            gauge.update(t, pool["allocated"], pool["provisioned"])
            self._observe("pool_stranding", kind, t, gauge.stranded_now)
        self.pools = pools

    def _ingest_control(self, t: float, dt: float, delta) -> None:
        expiries = delta.aggregate("allocator_events", by=("event",)).get(
            ("lease_expiry",), 0.0)
        self._observe("lease_expiry_rate", "pod", t, expiries / dt)

    def _ingest_overload(self, t: float, dt: float, snapshot, delta) -> None:
        """Overload-control gauges off the driver counters (PR 9).

        ``shed_rate``/``retry_denied_rate`` are per-second rates from the
        shed and budget-denial counter deltas; ``brownout`` is the level
        itself (0/1) straight from the snapshot.  All zero -- and alert-
        silent -- unless the pod armed ``enable_overload_control()``.
        """
        ops = delta.aggregate("driver_ops", by=("driver", "op"))
        shed: Dict[str, float] = {}
        denied: Dict[str, float] = {}
        for (driver, op), count in ops.items():
            if op in ("shed", "tx_shed"):
                shed[driver] = shed.get(driver, 0.0) + count
            elif op == "retry_budget_denied":
                denied[driver] = denied.get(driver, 0.0) + count
        for driver, count in sorted(shed.items()):
            self._observe("shed_rate", driver, t, count / dt)
        for driver, count in sorted(denied.items()):
            self._observe("retry_denied_rate", driver, t, count / dt)
        levels = snapshot.aggregate("driver_ops", by=("driver", "op"))
        for (driver, op), level in sorted(levels.items()):
            if op == "brownout_level":
                self._observe("brownout", driver, t, level)

    def _ingest_tenants(self, t: float, dt: float, delta) -> None:
        """Per-tenant serving gauges off the ``tenant_requests`` family.

        ``tenant_slo_burn`` is the EWMA'd fraction of this tick's ok
        completions that blew the tenant's latency SLO (feeding the
        ``tenant_slo_burn`` alert rule); ``tenant_shed_rate`` is the
        tenant's sheds/s.  The family only exists once a pod registers
        tenant clients (``register_tenant_client``), so non-serving runs
        never grow these gauges and the alert rule stays inert.
        """
        requests = delta.aggregate("tenant_requests", by=("tenant", "result"))
        if not requests:
            return
        per_tenant: Dict[str, Dict[str, float]] = {}
        for (tenant, result), count in requests.items():
            per_tenant.setdefault(tenant, {})[result] = count
        for tenant, results in sorted(per_tenant.items()):
            ok = results.get("ok", 0.0)
            ewma = self._tenant_burn.get(tenant)
            if ewma is None:
                ewma = self._tenant_burn[tenant] = Ewma(self._slo_tau_s)
            if ok > 0:
                burn = min(1.0, results.get("slo_violation", 0.0) / ok)
                self._observe("tenant_slo_burn", tenant, t,
                              ewma.update(t, burn))
            elif ewma.value is not None:
                # No completions this tick: decay toward the last level so
                # a stalled tenant's burn gauge does not freeze mid-alert.
                self._observe("tenant_slo_burn", tenant, t,
                              ewma.update(t, ewma.value))
            self._observe("tenant_shed_rate", tenant, t,
                          results.get("shed", 0.0) / dt)

    def _ingest_slo(self, t: float) -> None:
        if self.slo is None or self.flows is None:
            return
        attribution = getattr(self.flows, "attribution", None)
        if attribution is None or not self.slo.configured:
            return
        violated = 1.0 if self.slo.check(attribution) else 0.0
        self._observe("slo_burn", "pod", t, self._slo_ewma.update(t, violated))

    # -- querying ----------------------------------------------------------

    def view(self) -> "HealthView":
        return HealthView(self)


class HealthView:
    """The stable query API over a :class:`FleetHealth` pipeline.

    ROADMAP item 5's placement/migration policy should consume *this* --
    not the pipeline internals -- so the pipeline can evolve without
    breaking policies.
    """

    def __init__(self, fleet: FleetHealth):
        self.fleet = fleet

    # -- devices -----------------------------------------------------------

    def utilization(self, device: Optional[str] = None):
        """Latest utilization per device (or one device's level)."""
        table = {entity: series.last
                 for (family, entity), series in self.fleet.gauges.items()
                 if family == "device_util"}
        return table if device is None else table.get(device, 0.0)

    def hot_devices(self, threshold: float = 0.8,
                    smoothed: bool = False) -> List[Tuple[str, float]]:
        """Devices at/above ``threshold``, hottest first.

        ``smoothed=True`` ranks by the EWMA instead of the raw last sample
        (what a proactive migration policy should key on).
        """
        out = []
        for (family, entity), series in self.fleet.gauges.items():
            if family != "device_util":
                continue
            value = (series.ewma.value or 0.0) if smoothed else series.last
            if value >= threshold:
                out.append((entity, value))
        out.sort(key=lambda kv: (-kv[1], kv[0]))
        return out

    # -- pools and links ---------------------------------------------------

    def stranding(self, pool: str = "nic") -> float:
        """Time-averaged stranded fraction of one pool (Fig 2 definition)."""
        gauge = self.fleet.stranding_gauges.get(pool)
        return gauge.stranded_fraction if gauge is not None else 0.0

    def stranding_now(self, pool: str = "nic") -> float:
        gauge = self.fleet.stranding_gauges.get(pool)
        return gauge.stranded_now if gauge is not None else 0.0

    def saturation(self, link: Optional[str] = None):
        """CXL link saturation per host link (or one host's level)."""
        table = {entity: series.last
                 for (family, entity), series in self.fleet.gauges.items()
                 if family == "link_saturation"}
        return table if link is None else table.get(link, 0.0)

    def queue_saturation(self, device: Optional[str] = None):
        table = {entity: series.last
                 for (family, entity), series in self.fleet.gauges.items()
                 if family == "queue_saturation"}
        return table if device is None else table.get(device, 0.0)

    # -- tenants (multi-tenant serving) ------------------------------------

    def tenant_slo_burn(self, tenant: Optional[str] = None):
        """EWMA'd fraction of each tenant's completions blowing its SLO."""
        table = {entity: series.last
                 for (family, entity), series in self.fleet.gauges.items()
                 if family == "tenant_slo_burn"}
        return table if tenant is None else table.get(tenant, 0.0)

    def tenant_shed_rate(self, tenant: Optional[str] = None):
        table = {entity: series.last
                 for (family, entity), series in self.fleet.gauges.items()
                 if family == "tenant_shed_rate"}
        return table if tenant is None else table.get(tenant, 0.0)

    # -- alerts ------------------------------------------------------------

    def alerts(self, active_only: bool = True) -> List[dict]:
        """Firing alerts (or, with ``active_only=False``, the full log)."""
        if active_only:
            return [
                {"rule": rule, "entity": entity, "since": state["since"],
                 "value": state["value"]}
                for (rule, entity), state in sorted(
                    self.fleet.alerts.active.items())
            ]
        return [
            {"t": e.t, "rule": e.rule, "entity": e.entity, "kind": e.kind,
             "value": e.value}
            for e in self.fleet.alerts.log
        ]

    # -- dashboards --------------------------------------------------------

    def as_dict(self) -> dict:
        """The full JSON document ``python -m repro top --json`` emits."""
        fleet = self.fleet
        devices = {}
        for (family, entity), series in sorted(fleet.gauges.items()):
            if family != "device_util":
                continue
            devices[entity] = {
                "kind": fleet.device_kind.get(entity, "nic"),
                "host": fleet.device_host.get(entity, ""),
                "util": series.as_dict(),
                "queue_saturation": self.queue_saturation(entity),
            }
        hosts = {}
        for (family, entity), series in sorted(fleet.gauges.items()):
            if family == "host_util":
                hosts.setdefault(entity, {})["util"] = series.as_dict()
            elif family == "link_saturation":
                hosts.setdefault(entity, {})["link_saturation"] = \
                    series.as_dict()
        pools = {}
        for kind, gauge in sorted(fleet.stranding_gauges.items()):
            info = dict(fleet.pools.get(kind, {}))
            info["stranded"] = gauge.stranded_fraction
            info["stranded_now"] = gauge.stranded_now
            pools[kind] = info
        lease = fleet.gauges.get(("lease_expiry_rate", "pod"))
        slo = fleet.gauges.get(("slo_burn", "pod"))
        return {
            "time": fleet.time,
            "ticks": fleet.ticks,
            "hosts": hosts,
            "devices": devices,
            "pools": pools,
            "lease_expiry_rate": lease.last if lease is not None else 0.0,
            "slo_burn": slo.last if slo is not None else 0.0,
            "alerts": {
                "active": self.alerts(active_only=True),
                "fired": fleet.alerts.fired,
                "cleared": fleet.alerts.cleared,
                "log": fleet.alerts.log_json(),
            },
        }
