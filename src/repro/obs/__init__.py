"""Unified observability layer: metrics registry, sim-time tracer, scraper.

* :mod:`repro.obs.metrics` -- named/labelled counters, gauges, histograms
  plus snapshot/delta semantics (:class:`MetricsRegistry`).
* :mod:`repro.obs.trace` -- typed span/instant events against the virtual
  clock with Chrome-trace/Perfetto JSON export (:class:`Tracer`).
* :mod:`repro.obs.scraper` -- a sim-time process sampling the registry into
  time-series buffers (:class:`TelemetryScraper`).
* :mod:`repro.obs.bindings` -- collectors that expose the pre-existing
  ad-hoc counter classes (``LinkStats``, ``CacheStats``, ...) through the
  registry without mutating them.
"""

from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsSnapshot,
    Sample,
    labels_key,
)
from .scraper import TelemetryScraper
from .trace import NULL_TRACER, TraceEvent, Tracer
from . import bindings

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsSnapshot",
    "Sample",
    "labels_key",
    "TelemetryScraper",
    "Tracer",
    "TraceEvent",
    "NULL_TRACER",
    "bindings",
]
