"""Unified observability layer: metrics registry, sim-time tracer, scraper.

* :mod:`repro.obs.metrics` -- named/labelled counters, gauges, histograms
  plus snapshot/delta semantics (:class:`MetricsRegistry`).
* :mod:`repro.obs.trace` -- typed span/instant events against the virtual
  clock with Chrome-trace/Perfetto JSON export (:class:`Tracer`).
* :mod:`repro.obs.scraper` -- a sim-time process sampling the registry into
  time-series buffers (:class:`TelemetryScraper`).
* :mod:`repro.obs.flow` -- end-to-end per-request flow tracing: a
  :class:`FlowContext` rides each request through every hop, yielding
  latency records whose stage segments sum to the end-to-end total.
* :mod:`repro.obs.attribution` -- the bottleneck profiler on top of flow
  records: streaming per-stage percentiles, queueing-vs-service splits,
  critical-path summaries and SLO checks.
* :mod:`repro.obs.bindings` -- collectors that expose the pre-existing
  ad-hoc counter classes (``LinkStats``, ``CacheStats``, ...) through the
  registry without mutating them.
* :mod:`repro.obs.fleet` -- the streaming fleet-health pipeline on top of
  the scraper: bounded per-entity gauges (EWMA + p50/p99 sketches), live
  pool-stranding gauges matching the Figure 2 offline definition, a
  declarative :class:`AlertEngine`, and the :class:`HealthView` query API
  behind ``python -m repro top``.
"""

from .attribution import (
    FlowAttribution,
    SLOChecker,
    SLOViolation,
    critical_path,
    render_waterfall,
)
from .fleet import (
    DEFAULT_ALERT_RULES,
    AlertEngine,
    AlertEvent,
    AlertRule,
    FleetHealth,
    HealthSeries,
    HealthView,
    StrandingGauge,
)
from .flow import NULL_FLOWS, FlowContext, FlowRecord, FlowRegistry, FlowSegment
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsSnapshot,
    Sample,
    labels_key,
)
from .scraper import TelemetryScraper
from .trace import NULL_TRACER, TraceEvent, Tracer
from . import bindings

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsSnapshot",
    "Sample",
    "labels_key",
    "TelemetryScraper",
    "Tracer",
    "TraceEvent",
    "NULL_TRACER",
    "FlowContext",
    "FlowSegment",
    "FlowRecord",
    "FlowRegistry",
    "NULL_FLOWS",
    "FlowAttribution",
    "SLOChecker",
    "SLOViolation",
    "critical_path",
    "render_waterfall",
    "FleetHealth",
    "HealthView",
    "HealthSeries",
    "StrandingGauge",
    "AlertEngine",
    "AlertRule",
    "AlertEvent",
    "DEFAULT_ALERT_RULES",
    "bindings",
]
