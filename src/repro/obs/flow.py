"""End-to-end flow tracing: per-request latency attribution (Fig 11's lens).

Aggregate metrics (``repro.obs.metrics``) say *how much* each component did;
spans (``repro.obs.trace``) say *when* components were busy.  Neither can
answer the paper's central latency question -- where do the ~4 us of Oasis
datapath overhead on *one request* actually go?  Flow tracing does:

* a :class:`FlowContext` is attached at the request's origin (the workload
  layer: an echo client send, a block-I/O submission) and rides the request
  through every hop it crosses;
* each hop calls :meth:`FlowContext.stage` exactly when the request *enters*
  it, recording a named, causally-ordered timestamp (optionally annotated
  with the queue depth observed on entry);
* when the request completes, :meth:`FlowRegistry.complete` turns the mark
  sequence into a :class:`FlowRecord` whose stage segments telescope --
  segment ``i`` spans mark ``i`` to mark ``i+1`` -- so they sum to the
  end-to-end latency *by construction* (the conservation invariant).

Propagation crosses two kinds of boundary:

* **object hops** (switch forwarding, instance delivery, transport replies):
  the context travels in ``Frame.meta["flow"]`` by reference;
* **memory hops** (a frame packed into a shared CXL buffer and later
  DMA-read/unpacked by a device, or a 64 B storage command naming a buffer):
  object identity is lost, so the producer stashes the context in the
  registry keyed by the buffer address and the consumer picks it back up
  (:meth:`FlowRegistry.stash` / :meth:`peek` / :meth:`pop`).

A disabled registry (the default in :class:`~repro.core.pod.CXLPod`) makes
``start`` return ``None`` and every instrumented hot path guard on that (or
on an empty ``frame.meta``), so flow tracing costs a boolean/dict check per
hop unless a run opts in -- the same NULL-object discipline as
:data:`~repro.obs.trace.NULL_TRACER`.
"""

from __future__ import annotations

import heapq
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from .trace import NULL_TRACER

__all__ = [
    "FlowContext",
    "FlowSegment",
    "FlowRecord",
    "FlowRegistry",
    "NULL_FLOWS",
]


class FlowContext:
    """One in-flight request's identity and causally-ordered stage marks."""

    __slots__ = ("flow_id", "kind", "origin", "t0", "marks", "meta", "done",
                 "_registry")

    def __init__(self, registry: "FlowRegistry", flow_id: int, kind: str,
                 origin: str, t0: float, first_stage: str,
                 meta: Optional[dict] = None):
        self._registry = registry
        self.flow_id = flow_id
        self.kind = kind
        self.origin = origin
        self.t0 = t0
        #: (stage name, entry sim-time, queue depth observed at entry or None)
        self.marks: List[Tuple[str, float, Optional[int]]] = [
            (first_stage, t0, None)
        ]
        self.meta = meta or {}
        self.done = False

    def stage(self, name: str, depth: Optional[int] = None) -> None:
        """Mark that this request is entering stage ``name`` *now*.

        ``depth`` is the queue/ring occupancy seen on entry (excluding this
        request), which feeds the queueing-vs-service split in
        :mod:`repro.obs.attribution`.
        """
        if self.done:
            return
        self.marks.append((name, self._registry.sim.now, depth))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<FlowContext #{self.flow_id} {self.kind} "
                f"marks={[m[0] for m in self.marks]}>")


@dataclass(frozen=True)
class FlowSegment:
    """One attributed latency segment: the time spent in a named stage."""

    name: str
    start: float
    dur: float
    depth: Optional[int] = None

    @property
    def queue_s(self) -> float:
        """Estimated queueing share of this segment.

        With ``d`` same-class requests already queued at entry and FIFO
        service, this request waits roughly ``d`` service times before its
        own: queueing is ``dur * d / (d + 1)``.  Segments without a depth
        annotation are treated as pure service.
        """
        if not self.depth:
            return 0.0
        return self.dur * self.depth / (self.depth + 1)

    @property
    def service_s(self) -> float:
        return self.dur - self.queue_s


class FlowRecord:
    """A completed flow: end-to-end latency decomposed into stage segments."""

    __slots__ = ("flow_id", "kind", "origin", "start", "end", "status",
                 "segments", "meta")

    def __init__(self, flow_id: int, kind: str, origin: str, start: float,
                 end: float, status: str, segments: Tuple[FlowSegment, ...],
                 meta: dict):
        self.flow_id = flow_id
        self.kind = kind
        self.origin = origin
        self.start = start
        self.end = end
        self.status = status
        self.segments = segments
        self.meta = meta

    @property
    def total_s(self) -> float:
        return self.end - self.start

    @property
    def total_us(self) -> float:
        return self.total_s * 1e6

    def by_stage(self) -> Dict[str, float]:
        """Seconds per stage name (repeated stages -- e.g. the switch on both
        legs of an echo -- are summed)."""
        out: Dict[str, float] = {}
        for seg in self.segments:
            out[seg.name] = out.get(seg.name, 0.0) + seg.dur
        return out

    def conservation_error_s(self) -> float:
        """|sum(segments) - total|; zero up to float rounding by design."""
        return abs(sum(s.dur for s in self.segments) - self.total_s)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<FlowRecord #{self.flow_id} {self.kind} "
                f"{self.total_us:.2f}us {len(self.segments)} segments>")


class FlowRegistry:
    """Pod-wide flow bookkeeping: open contexts, the address stash, records.

    The registry also feeds two consumers on completion:

    * :class:`~repro.obs.attribution.FlowAttribution` -- streaming per-stage
      histograms (so percentile attribution survives the record cap);
    * the pod :class:`~repro.obs.trace.Tracer` (when enabled) -- each segment
      becomes a ``category="flow"`` span carrying Perfetto flow-arrow
      metadata, so Chrome/Perfetto draws arrows along the request's path.
    """

    def __init__(self, sim, enabled: bool = False, max_records: int = 100_000,
                 max_stash: int = 65_536):
        self.sim = sim
        self.enabled = enabled
        self.max_records = max_records
        self.max_stash = max_stash
        self.records: List[FlowRecord] = []
        self.dropped_records = 0
        self.started = 0
        self.completed = 0
        self.stash_evicted = 0
        self.tracer = NULL_TRACER
        self._next_id = 1
        self._stash: "OrderedDict[Any, FlowContext]" = OrderedDict()
        # Lazy import avoids a cycle (attribution builds on metrics only,
        # but flow is imported from obs.__init__ before attribution).
        from .attribution import FlowAttribution

        self.attribution = FlowAttribution()

    # -- lifecycle -----------------------------------------------------------

    def start(self, kind: str, origin: str = "", stage: str = "origin",
              **meta) -> Optional[FlowContext]:
        """Open a flow at the current sim time; ``None`` when disabled."""
        if not self.enabled:
            return None
        ctx = FlowContext(self, self._next_id, kind, origin, self.sim.now,
                          stage, meta or None)
        self._next_id += 1
        self.started += 1
        return ctx

    def complete(self, ctx: Optional[FlowContext],
                 status: str = "ok") -> Optional[FlowRecord]:
        """Close ``ctx`` now; build, store and publish its record."""
        if ctx is None or ctx.done:
            return None
        ctx.done = True
        end = self.sim.now
        marks = ctx.marks
        segments = []
        for i, (name, ts, depth) in enumerate(marks):
            seg_end = marks[i + 1][1] if i + 1 < len(marks) else end
            segments.append(FlowSegment(name, ts, max(seg_end - ts, 0.0),
                                        depth))
        record = FlowRecord(ctx.flow_id, ctx.kind, ctx.origin, ctx.t0, end,
                            status, tuple(segments), ctx.meta)
        self.completed += 1
        if len(self.records) < self.max_records:
            self.records.append(record)
        else:
            self.dropped_records += 1
        self.attribution.observe(record)
        if self.tracer.enabled:
            self._emit_trace(record)
        return record

    def _emit_trace(self, record: FlowRecord) -> None:
        last = len(record.segments) - 1
        for i, seg in enumerate(record.segments):
            step = "s" if i == 0 else ("f" if i == last else "t")
            self.tracer.span(
                seg.name, seg.start, seg.dur, category="flow",
                track=f"flow/{seg.name}", flow_id=record.flow_id,
                flow_step=step, kind=record.kind,
            )

    # -- cross-boundary propagation (buffer-address stash) --------------------

    def stash(self, addr: Any, ctx: Optional[FlowContext]) -> None:
        """Park ``ctx`` under a buffer address until the consumer picks it up."""
        if ctx is None:
            return
        self._stash[addr] = ctx
        while len(self._stash) > self.max_stash:
            self._stash.popitem(last=False)
            self.stash_evicted += 1

    def peek(self, addr: Any) -> Optional[FlowContext]:
        return self._stash.get(addr)

    def pop(self, addr: Any) -> Optional[FlowContext]:
        return self._stash.pop(addr, None)

    # -- reading -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.records)

    def top_slowest(self, n: int = 10,
                    kind: Optional[str] = None) -> List[FlowRecord]:
        records = (r for r in self.records
                   if kind is None or r.kind == kind)
        return heapq.nlargest(n, records, key=lambda r: r.total_s)

    def check_conservation(self, tol_s: float = 1e-9) -> List[FlowRecord]:
        """Records violating the segments-sum-to-total invariant (should be
        empty; exposed so tests assert it on real workloads)."""
        return [r for r in self.records if r.conservation_error_s() > tol_s]

    def clear(self) -> None:
        from .attribution import FlowAttribution

        self.records.clear()
        self._stash.clear()
        self.dropped_records = 0
        self.stash_evicted = 0
        self.started = 0
        self.completed = 0
        self.attribution = FlowAttribution()


class _NullFlowRegistry(FlowRegistry):
    """A permanently disabled registry usable as a default class attribute."""

    def __init__(self):
        super().__init__(sim=None, enabled=False)

    def stash(self, addr, ctx):  # pragma: no cover - never reached when off
        return None


#: shared no-op registry; components default to this until a pod wires one
NULL_FLOWS = _NullFlowRegistry()
