"""``python -m repro report`` / ``python -m repro trace`` / ``python -m repro flows``.

``report`` runs a short echo workload on a two-host pod with telemetry
scraping enabled and prints registry-backed summaries: pod-wide CXL link
traffic by category, NIC/channel/cache activity, and the scraped bandwidth
time series.  ``report --json`` emits the full registry snapshot as
machine-readable JSON instead, so benchmarks and CI can diff runs.

``trace`` runs the Figure 13 failover scenario with the tracer recording the
failover phases, exports Chrome-trace JSON (loadable in ``chrome://tracing``
or Perfetto) and prints the phase breakdown plus a plain-text timeline.

``flows`` runs the UDP echo workload with end-to-end flow tracing enabled and
prints the bottleneck profile: the per-stage attribution table (p50/p99/p999,
queue share), the critical path per latency percentile bucket, a waterfall of
the slowest request, and the top-N slowest flows.  ``flows <out.json>``
additionally exports a Chrome trace whose flow arrows follow each request
across components in Perfetto.

``top`` runs a seeded echo workload with the fleet-health pipeline enabled
and renders a live rack dashboard (per-host/per-device utilization bars,
pool stranding, firing alerts); ``top --once --json`` emits the final
:meth:`~repro.obs.fleet.HealthView.as_dict` document for CI artifacts.
"""

from __future__ import annotations

import json
import sys
import time as _time
from typing import Optional

from ..analysis.report import render_series, render_table

__all__ = ["report", "trace", "flows", "top", "render_bar",
           "render_dashboard", "main_report", "main_trace", "main_flows",
           "main_top"]


def report(duration_s: float = 0.3, rate_pps: float = 20_000.0,
           packet_size: int = 256, scrape_period_s: float = 0.01,
           sim_gauges: bool = False) -> dict:
    """Run an echo pod with telemetry scraping; return the summary data.

    ``sim_gauges=True`` additionally binds the event kernel's own gauges
    (:func:`~repro.obs.bindings.bind_sim`) into the registry before the run,
    so the snapshot carries ``sim_processed_events``/``sim_pending_events``/
    ``sim_now_seconds``.  Off by default: the extra samples would change the
    report bytes the replay suite pins.
    """
    from ..experiments.common import SERVER_IP, build_echo_pod
    from ..workloads.echo import EchoClient

    pod, inst, client_ep, nic0 = build_echo_pod("oasis", remote=True)
    if sim_gauges:
        from . import bindings

        bindings.bind_sim(pod.metrics, pod.sim)
    pod.start_telemetry(period_s=scrape_period_s)
    client = EchoClient(pod.sim, client_ep, SERVER_IP,
                        packet_size=packet_size, rate_pps=rate_pps,
                        metrics=pod.metrics)
    client.start(duration_s)
    pod.run(duration_s + 0.02)
    pod.stop()

    snapshot = pod.scraper.sample_now()
    times, rates = pod.scraper.rates("cxl_link_bytes")
    return {
        "pod": pod,
        "snapshot": snapshot,
        "rtt_hist": client.rtt_hist,
        "bw_times": times,
        "bw_rates": rates,
    }


def snapshot_json(snapshot) -> dict:
    """A machine-readable rendering of a :class:`MetricsSnapshot`."""
    return {
        "time": snapshot.time,
        "samples": [
            {"name": name, "labels": dict(labels), "value": value}
            for (name, labels), value in sorted(snapshot.values.items())
        ],
    }


def main_report(as_json: bool = False, sim_gauges: bool = False) -> dict:
    data = report(sim_gauges=sim_gauges)
    snapshot = data["snapshot"]

    if as_json:
        print(json.dumps(snapshot_json(snapshot), indent=1))
        return data

    by_cat = snapshot.aggregate("cxl_link_bytes", by=("category",))
    print(render_table(
        ["category", "bytes"],
        sorted(((cat, int(v)) for (cat,), v in by_cat.items()),
               key=lambda r: -r[1]),
        title="CXL link traffic by category (registry: cxl_link_bytes)",
    ))
    print()

    by_host_dir = snapshot.aggregate("cxl_link_bytes", by=("host", "direction"))
    print(render_table(
        ["host", "direction", "bytes"],
        sorted((h, d, int(v)) for (h, d), v in by_host_dir.items()),
        title="CXL link traffic by host link",
    ))
    print()

    nic_rows = []
    for (device, direction), frames in sorted(
            snapshot.aggregate("nic_frames", by=("device", "direction")).items()):
        nbytes = snapshot.aggregate("nic_bytes", by=("device", "direction"))
        nic_rows.append((device, direction, int(frames),
                         int(nbytes.get((device, direction), 0))))
    print(render_table(["nic", "dir", "frames", "bytes"], nic_rows,
                       title="NIC activity (registry: nic_frames/nic_bytes)"))
    print()

    chan = snapshot.aggregate("channel_ops", by=("op",))
    print(render_table(
        ["channel op", "count"],
        [(op, int(v)) for (op,), v in sorted(chan.items())],
        title="Message-channel operations, all channels "
              "(registry: channel_ops)",
    ))
    print()

    cache = snapshot.aggregate("cache_ops", by=("op",))
    print(render_table(
        ["cache op", "count"],
        [(op, int(v)) for (op,), v in sorted(cache.items()) if v],
        title="Host-cache operations, all hosts (registry: cache_ops)",
    ))
    print()

    hist = data["rtt_hist"]
    if hist is not None and hist.count:
        import numpy as np

        obs = np.asarray(hist.observations)
        print(render_table(
            ["metric", "value"],
            [("echo RTT p50 (us)", round(float(np.percentile(obs, 50)), 2)),
             ("echo RTT p99 (us)", round(float(np.percentile(obs, 99)), 2)),
             ("echo RTT mean (us)", round(hist.mean, 2)),
             ("echoes", hist.count)],
            title="Echo RTT (registry: echo_rtt_us histogram)",
        ))
        print()

    if data["bw_rates"]:
        print(render_series(
            "Scraped CXL bandwidth per scrape interval",
            [round(t, 3) for t in data["bw_times"]],
            [r / 1e9 for r in data["bw_rates"]],
            x_label="time s", y_label="GB/s", digits=3,
        ))
    scraper = data["pod"].scraper
    print(f"\n{len(scraper)} snapshots scraped "
          f"({scraper.dropped} evicted from the ring), "
          f"{data['pod'].metrics.collector_count} collectors, "
          f"{len(snapshot)} samples in the last snapshot")
    tracer = data["pod"].tracer
    recorded = int(snapshot.get("tracer_events_recorded"))
    dropped = int(snapshot.get("tracer_events_dropped"))
    line = f"tracer: {recorded} events recorded, {dropped} dropped"
    if dropped:
        line += (f" -- max_events={tracer.max_events} reached; raise it or "
                 f"restrict categories to keep the tail")
    print(line)
    return data


def trace(out_path: Optional[str] = "oasis-failover-trace.json") -> dict:
    """Run the Fig 13 failover with tracing; export Chrome-trace JSON."""
    from ..experiments import fig13

    return fig13.run(duration_s=1.2, rate_pps=3000.0, fail_at_s=0.602,
                     trace_path=out_path)


def flows(duration_s: float = 0.1, rate_pps: float = 20_000.0,
          packet_size: int = 256, mode: str = "oasis",
          trace_path: Optional[str] = None) -> dict:
    """Run the UDP echo workload with flow tracing; return the registry."""
    from ..experiments.common import SERVER_IP, build_echo_pod
    from ..workloads.echo import EchoClient

    pod, inst, client_ep, nic0 = build_echo_pod(mode, remote=True)
    pod.enable_flow_tracing()
    if trace_path:
        # Record only flow spans so the export stays small and arrow-dense.
        pod.enable_tracing(categories={"flow"})
    client = EchoClient(pod.sim, client_ep, SERVER_IP,
                        packet_size=packet_size, rate_pps=rate_pps,
                        metrics=pod.metrics, flows=pod.flows)
    client.start(duration_s)
    pod.run(duration_s + 0.02)
    pod.stop()
    trace_events = pod.tracer.export_chrome(trace_path) if trace_path else 0
    return {
        "pod": pod,
        "flows": pod.flows,
        "client": client,
        "trace_events": trace_events,
    }


def main_flows(trace_path: Optional[str] = None, top_n: int = 5) -> dict:
    from .attribution import critical_path, render_waterfall

    data = flows(trace_path=trace_path)
    registry = data["flows"]
    attribution = registry.attribution

    print(f"{registry.completed} flows completed "
          f"({registry.started - registry.completed} still open), "
          f"{len(registry.check_conservation())} conservation violations\n")

    print(render_table(
        ["stage", "flows", "p50 us", "p99 us", "p99.9 us", "avg depth",
         "queue share"],
        attribution.table(),
        title="Per-stage latency attribution (UDP echo, oasis mode)",
    ))
    print()

    print(render_table(
        ["bucket", "flows", "mean total us", "dominant stage", "share"],
        [(row["bucket"], row["flows"], round(row["mean_total_us"], 3),
          row["dominant_stage"], round(row["dominant_share"], 3))
         for row in critical_path(registry.records)],
        title="Critical path by latency percentile bucket",
    ))
    print()

    slowest = registry.top_slowest(top_n)
    if slowest:
        print("Slowest request waterfall:")
        print(render_waterfall(slowest[0]))
        print()
        rows = []
        for r in slowest:
            stage, dur = max(r.by_stage().items(), key=lambda kv: kv[1])
            rows.append((r.flow_id, r.kind, round(r.total_us, 3), stage,
                         round(dur * 1e6, 3)))
        print(render_table(
            ["flow", "kind", "total us", "slowest stage", "stage us"],
            rows, title=f"Top {len(slowest)} slowest flows",
        ))
    if trace_path:
        print(f"\n{data['trace_events']} Chrome-trace records (with flow "
              f"arrows) written to {trace_path} -- open in Perfetto and "
              f"enable flow events to follow requests across tracks")
    return data


# -- fleet dashboard ----------------------------------------------------------


def _build_top_pod(n_hosts: int, seed: int, packet_size: int,
                   rate_pps: float):
    """A seeded pod sized for the dashboard.

    ``n_hosts <= 2`` reproduces the paper's two-host fig10 echo testbed
    (remote instance, pooled NIC); larger values build an ``n_hosts``-host
    rack slice with one pooled NIC + echo instance + seeded client per host.
    Returns ``(pod, clients)``.
    """
    from ..config import OasisConfig
    from ..experiments.common import SERVER_IP, build_echo_pod
    from ..net.packet import make_ip
    from ..workloads.echo import EchoClient, EchoServer

    config = OasisConfig().with_(seed=seed)
    if n_hosts <= 2:
        pod, inst, client_ep, _ = build_echo_pod("oasis", remote=True,
                                                 config=config)
        client = EchoClient(pod.sim, client_ep, SERVER_IP,
                            packet_size=packet_size, rate_pps=rate_pps,
                            rng=pod.rng.get("echo-client"), poisson=True,
                            metrics=pod.metrics, flows=pod.flows)
        return pod, [client]

    from ..core.pod import CXLPod

    pod = CXLPod(config=config, mode="oasis")
    hosts = [pod.add_host() for _ in range(n_hosts)]
    nics = [pod.add_nic(host) for host in hosts]
    clients = []
    for i, host in enumerate(hosts):
        server_ip = make_ip(10, 0, 0, i + 1)
        # Pin each instance to the *next* host's NIC so every echo crosses
        # the pool (the interesting case for link/device gauges).
        inst = pod.add_instance(host, ip=server_ip,
                                nic=nics[(i + 1) % n_hosts])
        EchoServer(pod.sim, inst)
        client_ep = pod.add_external_client(ip=make_ip(10, 0, 9, i + 1))
        clients.append(EchoClient(
            pod.sim, client_ep, server_ip, packet_size=packet_size,
            rate_pps=rate_pps, rng=pod.rng.get(f"echo-client-{i}"),
            poisson=True, metrics=pod.metrics))
    return pod, clients


def render_bar(fraction: float, width: int = 24) -> str:
    """``[#####....]``-style utilization bar, clamped to [0, 1]."""
    fraction = min(max(fraction, 0.0), 1.0)
    filled = int(round(fraction * width))
    return "#" * filled + "." * (width - filled)


def render_dashboard(doc: dict) -> str:
    """Render a :meth:`HealthView.as_dict` document as the rack dashboard."""
    lines = [f"oasis top -- sim t={doc['time'] * 1e3:8.1f} ms, "
             f"{doc['ticks']} scrape ticks"]
    lines.append("")
    lines.append("hosts")
    for host, info in sorted(doc["hosts"].items()):
        util = info.get("util", {}).get("last", 0.0)
        link = info.get("link_saturation", {}).get("last", 0.0)
        lines.append(f"  {host:<10} util [{render_bar(util)}] {util:6.1%}   "
                     f"cxl [{render_bar(link)}] {link:6.1%}")
    lines.append("")
    lines.append("devices")
    for device, info in sorted(doc["devices"].items()):
        util = info["util"]
        lines.append(
            f"  {device:<14} {info['kind']:<4} @{info['host']:<8} "
            f"[{render_bar(util['last'])}] {util['last']:6.1%}  "
            f"p99 {util['p99']:6.1%}  peak {util['peak']:6.1%}  "
            f"q {info['queue_saturation']:5.1%}")
    if doc["pools"]:
        lines.append("")
        lines.append("pools")
        for kind, info in sorted(doc["pools"].items()):
            lines.append(
                f"  {kind:<4} stranded [{render_bar(info['stranded'])}] "
                f"{info['stranded']:6.1%} (now {info['stranded_now']:6.1%})  "
                f"{info.get('devices', 0)} devices, "
                f"{info.get('failed', 0)} failed")
    lines.append("")
    lines.append(f"lease expiries {doc['lease_expiry_rate']:.1f}/s   "
                 f"slo burn {doc['slo_burn']:.2f}   "
                 f"alerts fired {doc['alerts']['fired']} "
                 f"cleared {doc['alerts']['cleared']}")
    active = doc["alerts"]["active"]
    if active:
        lines.append("firing:")
        for alert in active:
            lines.append(f"  !! {alert['rule']:<20} {alert['entity']:<14} "
                         f"value {alert['value']:.3f} "
                         f"since {alert['since'] * 1e3:.1f} ms")
    else:
        lines.append("no alerts firing")
    return "\n".join(lines)


def top(duration_s: float = 0.3, rate_pps: float = 20_000.0,
        packet_size: int = 256, n_hosts: int = 2,
        scrape_period_s: float = 0.01, seed: int = 17,
        once: bool = False, refresh_s: float = 0.05,
        stream=None) -> dict:
    """Run a seeded echo workload with fleet telemetry; return the view doc.

    Live mode advances the sim ``refresh_s`` of virtual time per frame and
    redraws the dashboard in place; ``once=True`` runs to completion
    silently and leaves rendering to the caller.  Same seed, same document.
    """
    pod, clients = _build_top_pod(n_hosts, seed, packet_size, rate_pps)
    fleet = pod.enable_fleet_telemetry(period_s=scrape_period_s)
    for client in clients:
        client.start(duration_s)
    if once:
        pod.run(duration_s + 0.02)
    else:
        stream = stream or sys.stdout
        now = pod.sim.now
        end = now + duration_s + 0.02
        while now < end:
            pod.run(min(refresh_s, end - now))
            now = pod.sim.now
            stream.write("\x1b[2J\x1b[H"
                         + render_dashboard(fleet.view().as_dict()) + "\n")
            stream.flush()
            _time.sleep(0.02)
    pod.stop()
    return {"pod": pod, "fleet": fleet, "view": fleet.view(),
            "doc": fleet.view().as_dict()}


def main_top(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro top",
        description="live fleet-health dashboard over a seeded echo run")
    parser.add_argument("--once", action="store_true",
                        help="run to completion and print one final frame")
    parser.add_argument("--json", action="store_true",
                        help="with --once: emit the HealthView JSON document")
    parser.add_argument("--hosts", type=int, default=2,
                        help="pod size (2 = the paper's testbed; more builds "
                             "a rack slice with one NIC+instance per host)")
    parser.add_argument("--duration", type=float, default=0.3,
                        help="simulated seconds of load (default 0.3)")
    parser.add_argument("--rate", type=float, default=20_000.0,
                        help="per-client echo load in pps (default 20000)")
    parser.add_argument("--size", type=int, default=256,
                        help="echo packet size in bytes (default 256)")
    parser.add_argument("--seed", type=int, default=17,
                        help="root seed (default 17, the replay suite's)")
    parser.add_argument("--period", type=float, default=0.01,
                        help="scrape period in sim seconds (default 0.01)")
    args = parser.parse_args(argv)

    data = top(duration_s=args.duration, rate_pps=args.rate,
               packet_size=args.size, n_hosts=args.hosts,
               scrape_period_s=args.period, seed=args.seed,
               once=args.once or args.json)
    if args.json:
        print(json.dumps(data["doc"], indent=1, sort_keys=True))
    else:
        print(render_dashboard(data["doc"]))
    return 0


def main_trace(out_path: Optional[str] = "oasis-failover-trace.json") -> dict:
    results = trace(out_path)
    print(render_table(
        ["phase", "ms"],
        [(name, round(ms, 3))
         for name, ms in results["failover_phases_ms"].items()]
        + [("sum of phases", round(results["failover_phase_sum_ms"], 3)),
           ("measured interruption", round(results["interruption_ms"], 3))],
        title="Failover phases (traced, §3.3.3)",
    ))
    print("\nTimeline:")
    print(results["trace_timeline"])
    if out_path:
        print(f"\n{results['trace_events']} Chrome-trace records written to "
              f"{out_path} (open in chrome://tracing or Perfetto)")
    return results
