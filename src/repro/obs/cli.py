"""``python -m repro report`` / ``python -m repro trace`` / ``python -m repro flows``.

``report`` runs a short echo workload on a two-host pod with telemetry
scraping enabled and prints registry-backed summaries: pod-wide CXL link
traffic by category, NIC/channel/cache activity, and the scraped bandwidth
time series.  ``report --json`` emits the full registry snapshot as
machine-readable JSON instead, so benchmarks and CI can diff runs.

``trace`` runs the Figure 13 failover scenario with the tracer recording the
failover phases, exports Chrome-trace JSON (loadable in ``chrome://tracing``
or Perfetto) and prints the phase breakdown plus a plain-text timeline.

``flows`` runs the UDP echo workload with end-to-end flow tracing enabled and
prints the bottleneck profile: the per-stage attribution table (p50/p99/p999,
queue share), the critical path per latency percentile bucket, a waterfall of
the slowest request, and the top-N slowest flows.  ``flows <out.json>``
additionally exports a Chrome trace whose flow arrows follow each request
across components in Perfetto.
"""

from __future__ import annotations

import json
from typing import Optional

from ..analysis.report import render_series, render_table

__all__ = ["report", "trace", "flows", "main_report", "main_trace",
           "main_flows"]


def report(duration_s: float = 0.3, rate_pps: float = 20_000.0,
           packet_size: int = 256, scrape_period_s: float = 0.01) -> dict:
    """Run an echo pod with telemetry scraping; return the summary data."""
    from ..experiments.common import SERVER_IP, build_echo_pod
    from ..workloads.echo import EchoClient

    pod, inst, client_ep, nic0 = build_echo_pod("oasis", remote=True)
    pod.start_telemetry(period_s=scrape_period_s)
    client = EchoClient(pod.sim, client_ep, SERVER_IP,
                        packet_size=packet_size, rate_pps=rate_pps,
                        metrics=pod.metrics)
    client.start(duration_s)
    pod.run(duration_s + 0.02)
    pod.stop()

    snapshot = pod.scraper.sample_now()
    times, rates = pod.scraper.rates("cxl_link_bytes")
    return {
        "pod": pod,
        "snapshot": snapshot,
        "rtt_hist": client.rtt_hist,
        "bw_times": times,
        "bw_rates": rates,
    }


def snapshot_json(snapshot) -> dict:
    """A machine-readable rendering of a :class:`MetricsSnapshot`."""
    return {
        "time": snapshot.time,
        "samples": [
            {"name": name, "labels": dict(labels), "value": value}
            for (name, labels), value in sorted(snapshot.values.items())
        ],
    }


def main_report(as_json: bool = False) -> dict:
    data = report()
    snapshot = data["snapshot"]

    if as_json:
        print(json.dumps(snapshot_json(snapshot), indent=1))
        return data

    by_cat = snapshot.aggregate("cxl_link_bytes", by=("category",))
    print(render_table(
        ["category", "bytes"],
        sorted(((cat, int(v)) for (cat,), v in by_cat.items()),
               key=lambda r: -r[1]),
        title="CXL link traffic by category (registry: cxl_link_bytes)",
    ))
    print()

    by_host_dir = snapshot.aggregate("cxl_link_bytes", by=("host", "direction"))
    print(render_table(
        ["host", "direction", "bytes"],
        sorted((h, d, int(v)) for (h, d), v in by_host_dir.items()),
        title="CXL link traffic by host link",
    ))
    print()

    nic_rows = []
    for (device, direction), frames in sorted(
            snapshot.aggregate("nic_frames", by=("device", "direction")).items()):
        nbytes = snapshot.aggregate("nic_bytes", by=("device", "direction"))
        nic_rows.append((device, direction, int(frames),
                         int(nbytes.get((device, direction), 0))))
    print(render_table(["nic", "dir", "frames", "bytes"], nic_rows,
                       title="NIC activity (registry: nic_frames/nic_bytes)"))
    print()

    chan = snapshot.aggregate("channel_ops", by=("op",))
    print(render_table(
        ["channel op", "count"],
        [(op, int(v)) for (op,), v in sorted(chan.items())],
        title="Message-channel operations, all channels "
              "(registry: channel_ops)",
    ))
    print()

    cache = snapshot.aggregate("cache_ops", by=("op",))
    print(render_table(
        ["cache op", "count"],
        [(op, int(v)) for (op,), v in sorted(cache.items()) if v],
        title="Host-cache operations, all hosts (registry: cache_ops)",
    ))
    print()

    hist = data["rtt_hist"]
    if hist is not None and hist.count:
        import numpy as np

        obs = np.asarray(hist.observations)
        print(render_table(
            ["metric", "value"],
            [("echo RTT p50 (us)", round(float(np.percentile(obs, 50)), 2)),
             ("echo RTT p99 (us)", round(float(np.percentile(obs, 99)), 2)),
             ("echo RTT mean (us)", round(hist.mean, 2)),
             ("echoes", hist.count)],
            title="Echo RTT (registry: echo_rtt_us histogram)",
        ))
        print()

    if data["bw_rates"]:
        print(render_series(
            "Scraped CXL bandwidth per scrape interval",
            [round(t, 3) for t in data["bw_times"]],
            [r / 1e9 for r in data["bw_rates"]],
            x_label="time s", y_label="GB/s", digits=3,
        ))
    scraper = data["pod"].scraper
    print(f"\n{len(scraper)} snapshots scraped, "
          f"{data['pod'].metrics.collector_count} collectors, "
          f"{len(snapshot)} samples in the last snapshot")
    tracer = data["pod"].tracer
    recorded = int(snapshot.get("tracer_events_recorded"))
    dropped = int(snapshot.get("tracer_events_dropped"))
    line = f"tracer: {recorded} events recorded, {dropped} dropped"
    if dropped:
        line += (f" -- max_events={tracer.max_events} reached; raise it or "
                 f"restrict categories to keep the tail")
    print(line)
    return data


def trace(out_path: Optional[str] = "oasis-failover-trace.json") -> dict:
    """Run the Fig 13 failover with tracing; export Chrome-trace JSON."""
    from ..experiments import fig13

    return fig13.run(duration_s=1.2, rate_pps=3000.0, fail_at_s=0.602,
                     trace_path=out_path)


def flows(duration_s: float = 0.1, rate_pps: float = 20_000.0,
          packet_size: int = 256, mode: str = "oasis",
          trace_path: Optional[str] = None) -> dict:
    """Run the UDP echo workload with flow tracing; return the registry."""
    from ..experiments.common import SERVER_IP, build_echo_pod
    from ..workloads.echo import EchoClient

    pod, inst, client_ep, nic0 = build_echo_pod(mode, remote=True)
    pod.enable_flow_tracing()
    if trace_path:
        # Record only flow spans so the export stays small and arrow-dense.
        pod.enable_tracing(categories={"flow"})
    client = EchoClient(pod.sim, client_ep, SERVER_IP,
                        packet_size=packet_size, rate_pps=rate_pps,
                        metrics=pod.metrics, flows=pod.flows)
    client.start(duration_s)
    pod.run(duration_s + 0.02)
    pod.stop()
    trace_events = pod.tracer.export_chrome(trace_path) if trace_path else 0
    return {
        "pod": pod,
        "flows": pod.flows,
        "client": client,
        "trace_events": trace_events,
    }


def main_flows(trace_path: Optional[str] = None, top_n: int = 5) -> dict:
    from .attribution import critical_path, render_waterfall

    data = flows(trace_path=trace_path)
    registry = data["flows"]
    attribution = registry.attribution

    print(f"{registry.completed} flows completed "
          f"({registry.started - registry.completed} still open), "
          f"{len(registry.check_conservation())} conservation violations\n")

    print(render_table(
        ["stage", "flows", "p50 us", "p99 us", "p99.9 us", "avg depth",
         "queue share"],
        attribution.table(),
        title="Per-stage latency attribution (UDP echo, oasis mode)",
    ))
    print()

    print(render_table(
        ["bucket", "flows", "mean total us", "dominant stage", "share"],
        [(row["bucket"], row["flows"], round(row["mean_total_us"], 3),
          row["dominant_stage"], round(row["dominant_share"], 3))
         for row in critical_path(registry.records)],
        title="Critical path by latency percentile bucket",
    ))
    print()

    slowest = registry.top_slowest(top_n)
    if slowest:
        print("Slowest request waterfall:")
        print(render_waterfall(slowest[0]))
        print()
        rows = []
        for r in slowest:
            stage, dur = max(r.by_stage().items(), key=lambda kv: kv[1])
            rows.append((r.flow_id, r.kind, round(r.total_us, 3), stage,
                         round(dur * 1e6, 3)))
        print(render_table(
            ["flow", "kind", "total us", "slowest stage", "stage us"],
            rows, title=f"Top {len(slowest)} slowest flows",
        ))
    if trace_path:
        print(f"\n{data['trace_events']} Chrome-trace records (with flow "
              f"arrows) written to {trace_path} -- open in Perfetto and "
              f"enable flow events to follow requests across tracks")
    return data


def main_trace(out_path: Optional[str] = "oasis-failover-trace.json") -> dict:
    results = trace(out_path)
    print(render_table(
        ["phase", "ms"],
        [(name, round(ms, 3))
         for name, ms in results["failover_phases_ms"].items()]
        + [("sum of phases", round(results["failover_phase_sum_ms"], 3)),
           ("measured interruption", round(results["interruption_ms"], 3))],
        title="Failover phases (traced, §3.3.3)",
    ))
    print("\nTimeline:")
    print(results["trace_timeline"])
    if out_path:
        print(f"\n{results['trace_events']} Chrome-trace records written to "
              f"{out_path} (open in chrome://tracing or Perfetto)")
    return results
