"""Latency attribution on top of flow records: the bottleneck profiler.

Consumes :class:`~repro.obs.flow.FlowRecord` streams and answers the
questions Fig 11 asks of the real system:

* :class:`FlowAttribution` -- streaming per-stage
  :class:`~repro.obs.metrics.Histogram` percentiles (p50/p99/p999) plus the
  queueing-vs-service split derived from the queue depth each stage saw at
  enqueue;
* :func:`critical_path` -- which stage dominates end-to-end latency in each
  percentile bucket (the p50 bottleneck is often not the p999 bottleneck);
* :class:`SLOChecker` -- configurable per-stage / end-to-end latency
  thresholds evaluated against the streamed percentiles;
* :func:`render_waterfall` -- a per-request text waterfall for terminals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .metrics import Histogram, labels_key

__all__ = [
    "FlowAttribution",
    "StageStats",
    "SLOChecker",
    "SLOViolation",
    "critical_path",
    "render_waterfall",
]

#: microsecond-scale buckets for stage/total histograms
_US_BUCKETS = (0.1, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0,
               256.0, 512.0, 1024.0, float("inf"))


def _percentile(hist: Histogram, q: float) -> float:
    if not hist.observations:
        return float("nan")
    return float(np.percentile(np.asarray(hist.observations), q))


class StageStats:
    """Streaming statistics for one named stage across all observed flows."""

    __slots__ = ("name", "hist", "depth_sum", "depth_n", "queue_us", "service_us")

    def __init__(self, name: str):
        self.name = name
        self.hist = Histogram("flow_stage_us", labels_key({"stage": name}),
                              help="per-flow time in stage (us)",
                              buckets=_US_BUCKETS, keep_raw=True)
        self.depth_sum = 0.0
        self.depth_n = 0
        self.queue_us = 0.0
        self.service_us = 0.0

    @property
    def count(self) -> int:
        return self.hist.count

    @property
    def mean_us(self) -> float:
        return self.hist.mean

    @property
    def mean_depth(self) -> float:
        return self.depth_sum / self.depth_n if self.depth_n else 0.0

    @property
    def queue_share(self) -> float:
        total = self.queue_us + self.service_us
        return self.queue_us / total if total else 0.0

    def percentile(self, q: float) -> float:
        return _percentile(self.hist, q)


class FlowAttribution:
    """Streaming per-stage attribution fed by ``FlowRegistry.complete``."""

    def __init__(self):
        self.stages: Dict[str, StageStats] = {}
        self.total = Histogram("flow_total_us", labels_key({}),
                               help="end-to-end flow latency (us)",
                               buckets=_US_BUCKETS, keep_raw=True)
        self.flows = 0

    def observe(self, record) -> None:
        self.flows += 1
        self.total.observe(record.total_us)
        # Sum repeated stages (e.g. switch.wire on both echo legs) within a
        # flow so a stage contributes once per request to its distribution.
        per_stage: Dict[str, List] = {}
        for seg in record.segments:
            per_stage.setdefault(seg.name, []).append(seg)
        for name, segs in per_stage.items():
            stats = self.stages.get(name)
            if stats is None:
                stats = self.stages[name] = StageStats(name)
            stats.hist.observe(sum(s.dur for s in segs) * 1e6)
            for seg in segs:
                if seg.depth is not None:
                    stats.depth_sum += seg.depth
                    stats.depth_n += 1
                stats.queue_us += seg.queue_s * 1e6
                stats.service_us += seg.service_s * 1e6

    # -- reading -------------------------------------------------------------

    def percentile(self, stage: str, q: float) -> float:
        stats = self.stages.get(stage)
        return stats.percentile(q) if stats is not None else float("nan")

    def total_percentile(self, q: float) -> float:
        return _percentile(self.total, q)

    def stage_p50s(self) -> Dict[str, float]:
        return {name: stats.percentile(50.0)
                for name, stats in self.stages.items()}

    def table(self, percentiles: Sequence[float] = (50.0, 99.0, 99.9)
              ) -> List[tuple]:
        """Rows ``(stage, count, pXX..., mean_depth, queue_share)`` sorted by
        descending p50 contribution (the attribution table of the CLI)."""
        rows = []
        for name, stats in self.stages.items():
            rows.append((
                name, stats.count,
                *(round(stats.percentile(q), 3) for q in percentiles),
                round(stats.mean_depth, 2),
                round(stats.queue_share, 3),
            ))
        rows.sort(key=lambda r: -(r[2] if r[2] == r[2] else 0.0))
        return rows


_DEFAULT_BUCKETS = ((0.0, 50.0), (50.0, 90.0), (90.0, 99.0), (99.0, 100.0))


def critical_path(records, buckets: Sequence[Tuple[float, float]] = _DEFAULT_BUCKETS
                  ) -> List[dict]:
    """Name the dominant stage per total-latency percentile bucket.

    For every bucket ``(lo, hi)`` of the end-to-end latency distribution,
    sums each stage's time across the flows whose total falls in that
    bucket and reports the stage with the largest share -- the answer to
    "what should I optimise to move the pXX?".
    """
    records = list(records)
    if not records:
        return []
    totals = np.asarray([r.total_s for r in records])
    out = []
    for lo, hi in buckets:
        t_lo = np.percentile(totals, lo)
        t_hi = np.percentile(totals, hi)
        selected = [r for r in records
                    if t_lo <= r.total_s <= t_hi]
        if not selected:
            continue
        stage_sums: Dict[str, float] = {}
        for record in selected:
            for name, dur in record.by_stage().items():
                stage_sums[name] = stage_sums.get(name, 0.0) + dur
        grand = sum(stage_sums.values()) or 1.0
        dominant, dom_time = max(stage_sums.items(), key=lambda kv: kv[1])
        out.append({
            "bucket": f"p{lo:g}-p{hi:g}",
            "flows": len(selected),
            "mean_total_us": float(np.mean([r.total_us for r in selected])),
            "dominant_stage": dominant,
            "dominant_share": dom_time / grand,
        })
    return out


@dataclass(frozen=True)
class SLOViolation:
    """One threshold breach found by :class:`SLOChecker`."""

    scope: str          # "total" or a stage name
    q: float
    limit_us: float
    measured_us: float

    def __str__(self) -> str:
        return (f"{self.scope}: p{self.q:g} = {self.measured_us:.2f} us "
                f"exceeds SLO {self.limit_us:.2f} us")


@dataclass
class SLOChecker:
    """Configurable latency objectives checked against an attribution.

    ``total_us`` bounds the end-to-end percentile; ``stage_us`` maps stage
    names to per-stage bounds.  Both are evaluated at percentile ``q``.
    """

    total_us: Optional[float] = None
    stage_us: Dict[str, float] = field(default_factory=dict)
    q: float = 99.0

    def check(self, attribution: FlowAttribution) -> List[SLOViolation]:
        violations = []
        if self.total_us is not None:
            measured = attribution.total_percentile(self.q)
            if measured == measured and measured > self.total_us:
                violations.append(SLOViolation("total", self.q, self.total_us,
                                               measured))
        for stage, limit in self.stage_us.items():
            measured = attribution.percentile(stage, self.q)
            if measured == measured and measured > limit:
                violations.append(SLOViolation(stage, self.q, limit, measured))
        return violations

    @property
    def configured(self) -> bool:
        return self.total_us is not None or bool(self.stage_us)


def render_waterfall(record, width: int = 50) -> str:
    """A per-request text waterfall: one bar per segment, offset in time."""
    total = record.total_s or 1e-12
    lines = [f"flow #{record.flow_id} [{record.kind}] "
             f"total {record.total_us:.3f} us ({len(record.segments)} segments)"]
    for seg in record.segments:
        offset = int((seg.start - record.start) / total * width)
        length = max(1, int(round(seg.dur / total * width)))
        offset = min(offset, width - 1)
        length = min(length, width - offset)
        bar = " " * offset + "#" * length
        depth = f" depth={seg.depth}" if seg.depth is not None else ""
        lines.append(f"  {seg.name:<14} |{bar:<{width}}| "
                     f"{seg.dur * 1e6:9.3f} us{depth}")
    return "\n".join(lines)
