"""Sim-time tracer: typed span/instant events with Chrome-trace export.

The tracer records what the metrics registry cannot: *when* things happened
in virtual time and how long they took.  Components emit

* **instants** -- point events (a channel doorbell, an allocator decision,
  a Raft term change);
* **spans** -- durations, either explicit (:meth:`Tracer.span`, when the
  caller already knows start and duration, e.g. a DMA transfer) or paired
  (:meth:`Tracer.begin` / :meth:`Tracer.end`, e.g. the failover phases that
  stretch across several scheduled callbacks).

Exports:

* :meth:`Tracer.chrome_trace` / :meth:`Tracer.export_chrome` -- the Chrome
  trace-event JSON array format (loadable in ``chrome://tracing`` and
  Perfetto); timestamps are virtual microseconds, tracks map to thread
  names;
* :meth:`Tracer.timeline` -- a plain-text timeline for terminals and logs.

A disabled tracer (the default in :class:`~repro.core.pod.CXLPod`) turns
every emit into a cheap boolean check, so instrumented hot paths cost
nothing unless a run opts in.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["TraceEvent", "Tracer", "NULL_TRACER"]


@dataclass
class TraceEvent:
    """One recorded event.  Times are virtual seconds."""

    name: str
    category: str
    ts: float
    kind: str = "instant"            # "instant" | "span"
    dur: float = 0.0                 # spans only
    track: str = "sim"
    args: Dict[str, Any] = field(default_factory=dict)

    @property
    def end(self) -> float:
        return self.ts + self.dur


class Tracer:
    """Records typed events against a simulator clock."""

    def __init__(self, sim, enabled: bool = True, max_events: int = 2_000_000,
                 categories: Optional[set] = None):
        self.sim = sim
        self.enabled = enabled
        self.max_events = max_events
        #: when non-None, only events in these categories are recorded --
        #: long runs can keep e.g. just the failover phases without paying
        #: for per-message channel events.
        self.categories = set(categories) if categories is not None else None
        self.events: List[TraceEvent] = []
        self.dropped = 0
        self._open: Dict[Tuple[str, Any], TraceEvent] = {}

    # -- emitting ----------------------------------------------------------

    def _want(self, category: str) -> bool:
        return self.categories is None or category in self.categories

    def _record(self, event: TraceEvent) -> Optional[TraceEvent]:
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return None
        self.events.append(event)
        return event

    def instant(self, name: str, category: str = "event", track: str = "sim",
                **args) -> Optional[TraceEvent]:
        """Record a point event at the current sim time."""
        if not self.enabled or not self._want(category):
            return None
        return self._record(TraceEvent(name, category, self.sim.now,
                                       kind="instant", track=track, args=args))

    def span(self, name: str, start: float, duration: float,
             category: str = "span", track: str = "sim",
             **args) -> Optional[TraceEvent]:
        """Record a complete span with a known start and duration."""
        if not self.enabled or not self._want(category):
            return None
        return self._record(TraceEvent(name, category, start, kind="span",
                                       dur=max(duration, 0.0), track=track,
                                       args=args))

    def begin(self, name: str, key: Any = None, category: str = "span",
              track: str = "sim", **args) -> None:
        """Open a span; close it later with :meth:`end` using the same key."""
        if not self.enabled or not self._want(category):
            return
        self._open[(name, key)] = TraceEvent(name, category, self.sim.now,
                                             kind="span", track=track,
                                             args=args)

    def end(self, name: str, key: Any = None, **args) -> Optional[TraceEvent]:
        """Close a span opened with :meth:`begin`.  Unmatched ends are ignored."""
        if not self.enabled:
            return None
        event = self._open.pop((name, key), None)
        if event is None:
            return None
        event.dur = max(self.sim.now - event.ts, 0.0)
        event.args.update(args)
        return self._record(event)

    # -- querying -----------------------------------------------------------

    def spans(self, category: Optional[str] = None,
              name: Optional[str] = None) -> List[TraceEvent]:
        return [e for e in self.events
                if e.kind == "span"
                and (category is None or e.category == category)
                and (name is None or e.name == name)]

    def instants(self, category: Optional[str] = None,
                 name: Optional[str] = None) -> List[TraceEvent]:
        return [e for e in self.events
                if e.kind == "instant"
                and (category is None or e.category == category)
                and (name is None or e.name == name)]

    def clear(self) -> None:
        self.events.clear()
        self._open.clear()
        self.dropped = 0

    # -- export ---------------------------------------------------------------

    def chrome_trace(self) -> List[dict]:
        """The Chrome trace-event JSON array (``ph`` X/i complete/instant).

        Timestamps and durations are virtual microseconds.  Each distinct
        track becomes a named thread under one "oasis-sim" process, so
        Perfetto/chrome://tracing lays events out per component.

        Spans whose args carry ``flow_id``/``flow_step`` (emitted by
        :class:`~repro.obs.flow.FlowRegistry`) additionally produce Chrome
        flow-event records (``ph`` s/t/f sharing ``id=flow_id``), so the
        viewer draws arrows connecting each request's stage spans along its
        path through the pod.
        """
        tracks = sorted({e.track for e in self.events})
        tids = {track: i + 1 for i, track in enumerate(tracks)}
        out: List[dict] = [{
            "name": "process_name", "ph": "M", "pid": 1, "tid": 0,
            "args": {"name": "oasis-sim"},
        }]
        for track, tid in tids.items():
            out.append({"name": "thread_name", "ph": "M", "pid": 1,
                        "tid": tid, "args": {"name": track}})
        for event in self.events:
            record = {
                "name": event.name,
                "cat": event.category or "event",
                "ts": event.ts * 1e6,
                "pid": 1,
                "tid": tids[event.track],
                "args": event.args,
            }
            if event.kind == "span":
                record["ph"] = "X"
                record["dur"] = event.dur * 1e6
            else:
                record["ph"] = "i"
                # Alert instants get process scope so they draw a full-height
                # marker across every track (an alert concerns the whole
                # pod); everything else stays thread-scoped.
                record["s"] = "p" if event.category == "alert" else "t"
            out.append(record)
            flow_step = event.args.get("flow_step")
            if flow_step in ("s", "t", "f") and "flow_id" in event.args:
                arrow = {
                    "name": f"flow-{event.args.get('kind', 'request')}",
                    "cat": "flow",
                    "ph": flow_step,
                    "id": event.args["flow_id"],
                    "ts": event.ts * 1e6,
                    "pid": 1,
                    "tid": tids[event.track],
                }
                if flow_step == "f":
                    arrow["bp"] = "e"    # bind the arrow to the enclosing slice
                out.append(arrow)
        return out

    def export_chrome(self, path: str) -> int:
        """Write the Chrome-trace JSON to ``path``; returns event count."""
        records = self.chrome_trace()
        with open(path, "w") as f:
            json.dump(records, f)
        return len(records)

    def timeline(self, limit: Optional[int] = None,
                 category: Optional[str] = None) -> str:
        """Plain-text timeline, one event per line, time-ordered."""
        events = [e for e in self.events
                  if category is None or e.category == category]
        events.sort(key=lambda e: e.ts)
        if limit is not None:
            events = events[:limit]
        lines = []
        for e in events:
            stamp = f"{e.ts * 1e3:12.6f} ms"
            if e.kind == "span":
                body = f"{e.name} [{e.dur * 1e3:.6f} ms]"
            else:
                body = e.name
            extra = (" " + " ".join(f"{k}={v}" for k, v in e.args.items())
                     if e.args else "")
            lines.append(f"{stamp}  {e.track:<20} {e.category:<10} {body}{extra}")
        if self.dropped:
            lines.append(f"... {self.dropped} events dropped (max_events reached)")
        return "\n".join(lines)


class _NullTracer(Tracer):
    """A permanently disabled tracer usable as a default attribute."""

    def __init__(self):
        super().__init__(sim=None, enabled=False)


#: shared no-op tracer; components default to this until a pod wires a real one
NULL_TRACER = _NullTracer()
