"""Instances: the containers/VMs that consume pooled PCIe resources.

An instance sees a VirtIO-like packet interface (the Junction runtime's
virtual NIC): :meth:`Instance.send_frame` hands frames to whatever vNIC the
Oasis frontend driver attached, and received frames are dispatched to
registered handlers (the transports in :mod:`repro.net.transport`).

The resource request (:class:`ResourceSpec`) is what the pod-wide allocator
bin-packs in the Figure 2 stranding study and uses for NIC/SSD placement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from ..errors import ReproError
from ..net.packet import Frame
from ..sim.core import Simulator

__all__ = ["Instance", "ResourceSpec"]


@dataclass(frozen=True)
class ResourceSpec:
    """Per-instance resource allocation request (cores, GB, Gbps, TB)."""

    cores: float = 2.0
    memory_gb: float = 8.0
    nic_gbps: float = 2.0
    ssd_tb: float = 0.5

    def scaled(self, factor: float) -> "ResourceSpec":
        return ResourceSpec(
            cores=self.cores * factor,
            memory_gb=self.memory_gb * factor,
            nic_gbps=self.nic_gbps * factor,
            ssd_tb=self.ssd_tb * factor,
        )


class Instance:
    """A container running on a host, networked through Oasis."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        host,
        ip: int,
        spec: Optional[ResourceSpec] = None,
    ):
        self.sim = sim
        self.name = name
        self.host = host
        self.ip = ip
        self.spec = spec or ResourceSpec()
        self._vnic = None
        self._handlers: List[Callable[[Frame], None]] = []
        self.tx_frames = 0
        self.rx_frames = 0

    # -- vNIC wiring (done by the frontend driver at registration) -------------

    def attach_vnic(self, vnic) -> None:
        self._vnic = vnic

    @property
    def vnic(self):
        return self._vnic

    # -- packet I/O -----------------------------------------------------------------

    def send_frame(self, frame: Frame) -> None:
        """Transmit through the attached vNIC (fills in src IP if unset)."""
        if self._vnic is None:
            raise ReproError(f"instance {self.name} has no vNIC attached")
        if frame.src_ip == 0:
            frame.src_ip = self.ip
        self.tx_frames += 1
        self._vnic.transmit(frame)

    def add_handler(self, handler: Callable[[Frame], None]) -> None:
        """Register a received-frame handler (called for every RX frame)."""
        self._handlers.append(handler)

    def deliver_frame(self, frame: Frame) -> None:
        """Called by the frontend driver when an RX packet reaches us."""
        if frame.meta:
            flow = frame.meta.get("flow")
            if flow is not None:
                flow.stage("app")
        self.rx_frames += 1
        for handler in self._handlers:
            handler(frame)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Instance {self.name} on {self.host.name}>"
