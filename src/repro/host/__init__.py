"""Hosts, memory domains, and instances."""

from .host import Host, MemDomain
from .instance import Instance, ResourceSpec

__all__ = ["Host", "MemDomain", "Instance", "ResourceSpec"]
