"""Hosts and their memory domains.

A host owns two memory domains:

* the **shared** domain -- a window onto the pod's CXL memory pool, accessed
  through the host's non-coherent :class:`~repro.mem.cache.HostCache`;
* the **local** domain -- the host's own DDR, modelled as a private pool with
  DDR timings.  Baseline (Junction-with-local-NIC) configurations place I/O
  buffers here; the "baseline + CXL buffers" ablation of Figure 11 moves the
  buffers to the shared domain while keeping signalling local.

Devices attached to a host DMA through :meth:`Host.dma_read` /
:meth:`Host.dma_write`, which snoop the *local host's* cache (intra-host
coherence, as real PCIe does) but never touch other hosts' caches -- the
non-coherence that Oasis's datapath is designed around (§3.2.1).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional

from ..config import CacheTimings, OasisConfig
from ..mem.cache import HostCache
from ..mem.cxl import CXLMemoryPool
from ..sim.core import Simulator

__all__ = ["MemDomain", "Host"]


class MemDomain:
    """One addressable memory (a pool) as seen from one host (a cache)."""

    def __init__(self, pool: CXLMemoryPool, cache: HostCache, name: str,
                 is_shared: bool):
        self.pool = pool
        self.cache = cache
        self.name = name
        self.is_shared = is_shared

    def transfer_time(self, nbytes: int) -> float:
        return self.pool.transfer_time_s(nbytes, host=self.cache.host)


class Host:
    """A server in the CXL pod."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        shared_pool: CXLMemoryPool,
        config: Optional[OasisConfig] = None,
        index: int = 0,
    ):
        self.sim = sim
        self.name = name
        self.index = index
        self.config = config or OasisConfig()
        self.devices: List = []

        cache = HostCache(shared_pool, name, timings=shared_pool.timings)
        self.shared = MemDomain(shared_pool, cache, f"{name}-cxl", is_shared=True)

        # Local DDR: same pool machinery, DDR latency, ample DMA bandwidth.
        ddr_timings = replace(
            shared_pool.timings,
            cxl_load_ns=shared_pool.timings.ddr_load_ns,
            cxl_stream_ns=2.0,
            cxl_write_ns=shared_pool.timings.ddr_load_ns / 2,
        )
        local_cfg = replace(
            self.config.cxl,
            timings=ddr_timings,
            lanes_per_host=64,          # PCIe DMA to DDR is not the bottleneck
            pool_bytes=16 << 30,
        )
        local_pool = CXLMemoryPool(local_cfg)
        local_cache = HostCache(local_pool, name, timings=ddr_timings)
        self.local = MemDomain(local_pool, local_cache, f"{name}-ddr", is_shared=False)

        # Per-direction CXL link occupancy (§6 QoS): DMA transfers and any
        # colocated bandwidth-intensive use cases queue on the same x8 link.
        self._link_busy = {"read": 0.0, "write": 0.0}

    # -- device attachment -------------------------------------------------------

    def attach_device(self, device) -> None:
        self.devices.append(device)

    # -- DMA (device-initiated) -----------------------------------------------------

    def domain_of(self, local: bool) -> MemDomain:
        return self.local if local else self.shared

    def dma_read(self, addr: int, size: int, category: str = "payload",
                 local: bool = False, account_bytes: Optional[int] = None) -> bytes:
        """Device read; snoops this host's cache, bypasses all others."""
        domain = self.domain_of(local)
        domain.cache.snoop_dma_read(addr, size)
        return domain.pool.dma_read(addr, size, host=self.name, category=category,
                                    account_bytes=account_bytes)

    def dma_write(self, addr: int, data: bytes, category: str = "payload",
                  local: bool = False, account_bytes: Optional[int] = None) -> None:
        """Device write; invalidates this host's cached copies."""
        domain = self.domain_of(local)
        domain.cache.snoop_dma_write(addr, len(data))
        domain.pool.dma_write(addr, data, host=self.name, category=category,
                              account_bytes=account_bytes)

    def cxl_transfer_time(self, nbytes: int, local: bool = False) -> float:
        return self.domain_of(local).transfer_time(nbytes)

    def link_transfer_delay(self, nbytes: int, direction: str = "read",
                            local: bool = False) -> float:
        """Queue ``nbytes`` on this host's CXL link; return the total delay
        until the transfer completes (serialization + any backlog).

        Local-DDR transfers do not touch the CXL link.  Colocated use cases
        (e.g. an OLAP scan, §2.3/§6) can occupy the link via
        :meth:`occupy_link`, delaying device DMA exactly as shared bandwidth
        would.
        """
        if local:
            return self.local.transfer_time(nbytes)
        serialize = self.shared.transfer_time(nbytes)
        start = max(self.sim.now, self._link_busy[direction])
        self._link_busy[direction] = start + serialize
        return self._link_busy[direction] - self.sim.now

    def occupy_link(self, seconds: float, direction: str = "read") -> None:
        """Reserve link time for a non-Oasis use case (QoS experiments)."""
        start = max(self.sim.now, self._link_busy[direction])
        self._link_busy[direction] = start + seconds

    def link_backlog_s(self, direction: str = "read") -> float:
        return max(0.0, self._link_busy[direction] - self.sim.now)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Host {self.name} devices={[d.name for d in self.devices]}>"
