"""Simulated datacenter NVMe SSD (§3.4's storage substrate).

The backend driver posts 64 B NVMe commands to the submission queue; the SSD
DMA-reads (writes) data buffers in shared CXL memory directly -- the backend
CPU never touches them -- and posts completions.  Blocks are stored sparsely,
so a 4 TB namespace costs memory only for blocks actually written, while
reads of unwritten blocks return zeros like a freshly formatted drive.

Timing: fixed media latency per op (read 90 us / write 25 us by default,
Table 1) plus serialisation of the transfer at the drive's bandwidth, with
commands overlapping up to the configured queue depth.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..config import SSDConfig
from ..errors import DeviceError
from ..obs.flow import NULL_FLOWS
from ..obs.trace import NULL_TRACER
from ..sim.core import Simulator, USEC
from .device import PCIeDevice
from .queues import Completion, DescriptorRing, NVMeCommand

__all__ = ["SimSSD", "NVME_OP_WRITE", "NVME_OP_READ", "NVME_STATUS_OK",
           "NVME_STATUS_FAILED", "NVME_STATUS_MEDIA"]

NVME_OP_WRITE = 0x01
NVME_OP_READ = 0x02
NVME_STATUS_OK = 0
NVME_STATUS_MEDIA = 0x02   # unrecovered media error (transient: retriable)
NVME_STATUS_FAILED = 0x06  # internal device error
NVME_STATUS_LBA_RANGE = 0x80


class SimSSD(PCIeDevice):
    """A host-attached NVMe SSD pooled by the Oasis storage engine."""

    tracer = NULL_TRACER
    flows = NULL_FLOWS
    # Precomputed dispatch: None while the facility is disabled; rebound by
    # set_tracer()/set_flows() when the pod enables tracing / flow tracing.
    _trace = None
    _flows = None

    def set_tracer(self, tracer) -> None:
        """Bind a tracer; the command hot path keeps a None-or-tracer alias."""
        self.tracer = tracer
        self._trace = tracer if tracer.enabled else None

    def set_flows(self, flows) -> None:
        """Bind a flow registry; the hot path keeps a None-or-registry alias."""
        self.flows = flows
        self._flows = flows if flows.enabled else None

    def __init__(
        self,
        sim: Simulator,
        host,
        config: Optional[SSDConfig] = None,
        name: str = "ssd",
    ):
        super().__init__(sim, host, name)
        self.config = config or SSDConfig()
        self.sq = DescriptorRing(self.config.queue_depth, f"{name}-sq")
        self._blocks: Dict[int, bytes] = {}
        self._media_busy_until = 0.0
        self.on_completion: Optional[Callable[[Completion], None]] = None
        self.reads = 0
        self.writes = 0
        self.read_bytes = 0
        self.write_bytes = 0
        self.completions = 0
        self.media_errors = 0
        self._media_error_next = 0   # armed by fault injection
        self._pending = 0

    @property
    def num_blocks(self) -> int:
        return self.config.capacity_bytes // self.config.block_size

    def inject_media_error(self, count: int = 1) -> None:
        """Arm a media fault: the next ``count`` commands fail with
        :data:`NVME_STATUS_MEDIA` after paying the normal media latency."""
        if count <= 0:
            raise DeviceError("media error count must be positive")
        self._media_error_next += count

    # -- submission ------------------------------------------------------------

    def submit(self, cmd: NVMeCommand) -> None:
        """Ring the SQ doorbell with one command."""
        self._check_alive()
        if cmd.opcode not in (NVME_OP_READ, NVME_OP_WRITE):
            raise DeviceError(f"unknown NVMe opcode {cmd.opcode:#x}")
        self.sq.post(cmd)
        self._pending += 1
        self.sim.call_after(0.0, self._process_one)

    def _process_one(self) -> None:
        if self.sq.empty:
            return
        cmd: NVMeCommand = self.sq.pop()
        if self.failed:
            self._complete(cmd, NVME_STATUS_FAILED, 0.0)
            return
        if cmd.nlb <= 0 or cmd.slba < 0 or cmd.slba + cmd.nlb > self.num_blocks:
            self._complete(cmd, NVME_STATUS_LBA_RANGE, 0.0)
            return
        flows = self._flows
        if flows is not None:
            flow = flows.peek(cmd.addr)
            if flow is not None:
                flow.stage("ssd.media", depth=len(self.sq))
        config = self.config
        nbytes = cmd.nlb * config.block_size
        if cmd.opcode == NVME_OP_WRITE:
            media_us = config.write_latency_us
        else:
            media_us = config.read_latency_us
        transfer_s = nbytes / config.bytes_per_sec
        # Transfers serialise on the drive's internal bandwidth; media latency
        # overlaps across queued commands.
        now = self.sim.now
        busy = self._media_busy_until
        start = busy if busy > now else now
        self._media_busy_until = start + transfer_s
        done = start + transfer_s + media_us * USEC
        if self._trace is not None:
            self._trace.span(
                "ssd.write" if cmd.opcode == NVME_OP_WRITE else "ssd.read",
                start, done - start, category="dma", track=self.name,
                bytes=nbytes, slba=cmd.slba)
        media_fault = False
        if self._media_error_next > 0:
            self._media_error_next -= 1
            media_fault = True
        self.sim.call_at(done, self._execute, cmd, nbytes, media_fault)

    def _execute(self, cmd: NVMeCommand, nbytes: int,
                 media_fault: bool = False) -> None:
        if self.failed:
            self._complete(cmd, NVME_STATUS_FAILED, 0.0)
            return
        if media_fault:
            # The command paid its media latency but the read/program failed;
            # no data moved (a correctable, retriable AER event).
            self.media_errors += 1
            self.aer.non_fatal += 1
            if self._trace is not None:
                self._trace.instant("ssd.media_error", category="fault",
                                    track=self.name, slba=cmd.slba)
            self._complete(cmd, NVME_STATUS_MEDIA, 0.0)
            return
        bs = self.config.block_size
        if cmd.opcode == NVME_OP_WRITE:
            data = self.host.dma_read(cmd.addr, nbytes, category="payload")
            for i in range(cmd.nlb):
                self._blocks[cmd.slba + i] = data[i * bs:(i + 1) * bs]
            self.writes += 1
            self.write_bytes += nbytes
        else:
            chunks = [
                self._blocks.get(cmd.slba + i, b"\x00" * bs) for i in range(cmd.nlb)
            ]
            self.host.dma_write(cmd.addr, b"".join(chunks), category="payload")
            self.reads += 1
            self.read_bytes += nbytes
        self._complete(cmd, NVME_STATUS_OK, nbytes)

    def _complete(self, cmd: NVMeCommand, status: int, nbytes: float) -> None:
        self._pending -= 1
        self.completions += 1
        if self.on_completion is not None:
            self.on_completion(
                Completion(descriptor=cmd, status=status, length=int(nbytes),
                           timestamp=self.sim.now)
            )

    def fail(self, reason: str = "injected") -> None:
        """Failing the drive errors out everything still queued (§3.4)."""
        super().fail(reason)
        for cmd in self.sq.drain():
            self._complete(cmd, NVME_STATUS_FAILED, 0.0)
