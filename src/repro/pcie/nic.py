"""Simulated 100 Gbit NIC (the Mellanox CX5 stand-in).

Operating flow mirrors the mlx5/DPDK model the paper builds on (§3.3.1):

* TX: the backend driver posts a WQE pointing at a TX buffer in shared CXL
  memory; the NIC DMA-reads the buffer (bypassing CPU caches), serialises the
  frame at line rate and hands it to its switch port, then raises a TX
  completion carrying the driver's cookie.
* RX: the driver posts RX descriptors pointing into the per-NIC RX buffer
  area; on frame arrival the NIC matches the destination IP against its flow
  table (flow tagging, rte_flow-style), DMA-writes the frame into the next
  posted buffer and raises an RX completion with the matched tag (or ``None``
  so the driver falls back to header inspection, footnote 6).
* MAC borrowing: :meth:`send_raw` transmits a frame with an arbitrary source
  MAC, which is how the backup NIC takes over a failed NIC's address
  (§3.3.3) -- the switch relearns the mapping from the frame.

The NIC's link state is the AND of its own health and the switch port state,
so disabling the switch port (the paper's failure injection) is observed by
the backend driver's link monitor.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..config import NICConfig
from ..errors import DeviceError
from ..net.packet import Frame
from ..net.switch import SwitchPort
from ..obs.flow import NULL_FLOWS
from ..obs.trace import NULL_TRACER
from ..sim.core import Simulator
from .device import PCIeDevice
from .queues import Completion, DescriptorRing, RxDescriptor, TxDescriptor

__all__ = ["SimNIC", "TX_STATUS_OK", "TX_STATUS_LINK_ERROR", "TX_STATUS_DMA_ABORT"]

TX_STATUS_OK = 0
TX_STATUS_LINK_ERROR = 1    # NIC dead or link down: not retriable at the NIC
TX_STATUS_DMA_ABORT = 2     # DMA aborted mid-transfer: retriable (repost)


class SimNIC(PCIeDevice):
    """A host-attached NIC pooled by the Oasis network engine."""

    tracer = NULL_TRACER
    flows = NULL_FLOWS
    # Precomputed dispatch: None while the facility is disabled; rebound by
    # set_tracer()/set_flows() when the pod enables tracing / flow tracing.
    _trace = None
    _flows = None

    def set_tracer(self, tracer) -> None:
        """Bind a tracer; the DMA hot path keeps a None-or-tracer alias."""
        self.tracer = tracer
        self._trace = tracer if tracer.enabled else None

    def set_flows(self, flows) -> None:
        """Bind a flow registry; the hot path keeps a None-or-registry alias."""
        self.flows = flows
        self._flows = flows if flows.enabled else None

    def __init__(
        self,
        sim: Simulator,
        host,
        mac: int,
        config: Optional[NICConfig] = None,
        name: Optional[str] = None,
    ):
        super().__init__(sim, host, name or f"nic-{mac:x}")
        self.mac = mac
        self.config = config or NICConfig()
        self.tx_ring = DescriptorRing(self.config.tx_queue_depth, f"{self.name}-txq")
        self.rx_ring = DescriptorRing(self.config.rx_queue_depth, f"{self.name}-rxq")
        self.flow_table: Dict[int, int] = {}
        self._next_tag = 1
        self.port: Optional[SwitchPort] = None
        self._tx_busy_until = 0.0
        self._tx_scheduled = False
        # Driver callbacks (set by the backend driver).
        self.on_tx_complete: Optional[Callable[[Completion], None]] = None
        self.on_rx: Optional[Callable[[Completion], None]] = None
        # Counters.
        self.tx_frames = 0
        self.tx_bytes = 0
        self.rx_frames = 0
        self.rx_bytes = 0
        self.rx_dropped_no_buffer = 0
        self.rx_dropped_down = 0
        self.tx_completions = 0
        self.dma_aborts = 0
        self._abort_tx_next = 0     # armed by fault injection

    # -- wiring ------------------------------------------------------------------

    def connect(self, port: SwitchPort) -> None:
        """Cable the NIC to a switch port."""
        self.port = port
        port.attach(self._on_wire_rx)
        port.on_link_change(lambda up: self._notify_link(self.link_up))

    @property
    def link_up(self) -> bool:
        return not self.failed and self.port is not None and self.port.enabled

    # -- flow tagging (rte_flow) ---------------------------------------------------

    def add_flow_tag(self, dst_ip: int) -> int:
        """Steer frames for ``dst_ip`` to a tag; returns the tag."""
        if not self.config.supports_flow_tagging:
            raise DeviceError(f"{self.name} does not support flow tagging")
        if dst_ip in self.flow_table:
            return self.flow_table[dst_ip]
        if len(self.flow_table) >= self.config.max_flow_tags:
            raise DeviceError(f"{self.name} flow table full")
        tag = self._next_tag
        self._next_tag += 1
        self.flow_table[dst_ip] = tag
        return tag

    def remove_flow_tag(self, dst_ip: int) -> None:
        self.flow_table.pop(dst_ip, None)

    # -- TX path ----------------------------------------------------------------------

    def post_tx(self, descriptor: TxDescriptor) -> None:
        """Post a WQE; the NIC processes the ring in order at line rate."""
        self._check_alive()
        self.tx_ring.post(descriptor)
        self._kick_tx()

    def _kick_tx(self) -> None:
        if self._tx_scheduled or self.tx_ring.empty:
            return
        self._tx_scheduled = True
        now = self.sim.now
        busy = self._tx_busy_until
        self.sim.call_at(busy if busy > now else now, self._tx_process_one)

    def inject_dma_abort(self, count: int = 1) -> None:
        """Arm a mid-transfer fault: the next ``count`` TX descriptors abort
        their buffer DMA and complete with :data:`TX_STATUS_DMA_ABORT`
        (a correctable AER event; the driver may repost them)."""
        if count <= 0:
            raise DeviceError("dma abort count must be positive")
        self._abort_tx_next += count

    def _tx_process_one(self) -> None:
        self._tx_scheduled = False
        if self.tx_ring.empty:
            return
        desc: TxDescriptor = self.tx_ring.pop()
        if self.failed:
            self._complete_tx(desc, status=TX_STATUS_LINK_ERROR)
            self._kick_tx()
            return
        if self._abort_tx_next > 0:
            self._abort_tx_next -= 1
            self.dma_aborts += 1
            self.aer.non_fatal += 1
            if self._trace is not None:
                self._trace.instant("nic.tx.dma_abort", category="fault",
                                    track=self.name, addr=desc.addr)
            self._complete_tx(desc, status=TX_STATUS_DMA_ABORT)
            self._kick_tx()
            return
        # WQE fetch + DMA read of the buffer over the host's CXL link.
        data = self.host.dma_read(desc.addr, desc.length, category="payload",
                                  local=desc.local)
        frame = Frame.unpack(data)
        flows = self._flows
        if flows is not None:
            # The TX buffer address is the flow's bridge across pack()/DMA;
            # pop it (the buffer is freed after completion) and ride the
            # in-sim frame object from here to the wire.
            flow = flows.pop(desc.addr)
            if flow is not None:
                flow.stage("nic.tx.dma")
                frame.meta["flow"] = flow
        wire_size = frame.wire_size
        dma_s = self.config.dma_setup_ns * 1e-9 + self.host.link_transfer_delay(
            wire_size, direction="read", local=desc.local)
        serialize_s = wire_size / self.config.bytes_per_sec
        sim = self.sim
        done = sim.now + dma_s + serialize_s
        self._tx_busy_until = done
        if self._trace is not None:
            self._trace.span("nic.tx", sim.now, dma_s + serialize_s,
                             category="dma", track=self.name,
                             bytes=wire_size)
        sim.call_at(done, self._tx_emit, frame, desc)
        self._kick_tx_at(done)

    def _kick_tx_at(self, when: float) -> None:
        if not self._tx_scheduled and not self.tx_ring.empty:
            self._tx_scheduled = True
            self.sim.call_at(when, self._tx_process_one)

    def _tx_emit(self, frame: Frame, desc: TxDescriptor) -> None:
        if self.link_up and self.port is not None:
            self.tx_frames += 1
            self.tx_bytes += frame.wire_size
            self.port.receive(frame)
            self._complete_tx(desc, status=TX_STATUS_OK)
        else:
            self._complete_tx(desc, status=TX_STATUS_LINK_ERROR)
        self._kick_tx()

    def _complete_tx(self, desc: TxDescriptor, status: int) -> None:
        self.tx_completions += 1
        if self.on_tx_complete is not None:
            self.on_tx_complete(
                Completion(descriptor=desc, status=status, length=desc.length,
                           timestamp=self.sim.now)
            )

    def fail(self, reason: str = "injected") -> None:
        """Hard-failing the NIC error-completes everything still queued, so
        the driver can release the TX buffers instead of leaking them."""
        if self.failed:
            return
        super().fail(reason)
        for desc in self.tx_ring.drain():
            self._complete_tx(desc, status=TX_STATUS_LINK_ERROR)

    def send_raw(self, frame: Frame) -> None:
        """Transmit a driver-crafted frame immediately (MAC borrowing)."""
        self._check_alive()
        if self.link_up and self.port is not None:
            self.tx_frames += 1
            self.tx_bytes += frame.wire_size
            self.port.receive(frame)

    # -- RX path -------------------------------------------------------------------------

    def post_rx(self, descriptor: RxDescriptor) -> None:
        self.rx_ring.post(descriptor)

    def _on_wire_rx(self, frame: Frame) -> None:
        if self.failed:
            self.rx_dropped_down += 1
            return
        if self.rx_ring.empty:
            self.rx_dropped_no_buffer += 1
            return
        desc: RxDescriptor = self.rx_ring.pop()
        data = frame.pack()
        if len(data) > desc.capacity:
            raise DeviceError(
                f"{self.name}: frame of {len(data)} B exceeds RX buffer "
                f"capacity {desc.capacity} B"
            )
        tag = self.flow_table.get(frame.dst_ip)
        if frame.meta:
            flow = frame.meta.get("flow")
            if flow is not None:
                flow.stage("nic.rx.dma")
                # The frame object dies here (only bytes land in the RX
                # buffer); park the context under the buffer address for the
                # backend/frontend to pick up.
                self.flows.stash(desc.addr, flow)
        # DMA write into the RX buffer area (bypassing CPU caches), then
        # complete after the CXL link transfer.
        wire_size = frame.wire_size
        self.host.dma_write(desc.addr, data, category="payload", local=desc.local,
                            account_bytes=wire_size)
        self.rx_frames += 1
        self.rx_bytes += wire_size
        sim = self.sim
        done = sim.now + self.host.link_transfer_delay(
            wire_size, direction="write", local=desc.local)
        if self._trace is not None:
            self._trace.span("nic.rx", sim.now, done - sim.now,
                             category="dma", track=self.name,
                             bytes=wire_size)
        completion = Completion(descriptor=desc, status=0, length=len(data),
                                tag=tag, timestamp=done)
        sim.call_at(done, self._deliver_rx, completion)

    def _deliver_rx(self, completion: Completion) -> None:
        if self.on_rx is not None:
            self.on_rx(completion)
