"""Base machinery shared by simulated PCIe devices."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List

from ..errors import DeviceFailedError
from ..sim.core import Simulator

__all__ = ["PCIeDevice", "AERCounters"]


@dataclass
class AERCounters:
    """PCIe Advanced Error Reporting counters (reported in telemetry, §3.5)."""

    correctable: int = 0
    non_fatal: int = 0
    fatal: int = 0

    def total(self) -> int:
        return self.correctable + self.non_fatal + self.fatal


class PCIeDevice:
    """A host-attached PCIe device with link state and failure injection."""

    def __init__(self, sim: Simulator, host, name: str):
        self.sim = sim
        self.host = host
        self.name = name
        self.failed = False
        self.aer = AERCounters()
        self._link_listeners: List[Callable[[bool], None]] = []
        if host is not None:
            host.attach_device(self)

    # -- link state -----------------------------------------------------------

    @property
    def link_up(self) -> bool:
        """Override in subclasses that also depend on external link state."""
        return not self.failed

    def on_link_change(self, listener: Callable[[bool], None]) -> None:
        self._link_listeners.append(listener)

    def _notify_link(self, up: bool) -> None:
        for listener in self._link_listeners:
            listener(up)

    # -- failure injection ---------------------------------------------------------

    def fail(self, reason: str = "injected") -> None:
        """Hard-fail the device (hardware fault)."""
        if self.failed:
            return
        self.failed = True
        self.aer.fatal += 1
        self._notify_link(False)

    def restore(self) -> None:
        """Bring a failed device back (e.g. after repair/replacement)."""
        if not self.failed:
            return
        self.failed = False
        self._notify_link(self.link_up)

    def _check_alive(self) -> None:
        if self.failed:
            raise DeviceFailedError(f"{self.name} has failed")
