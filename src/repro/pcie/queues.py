"""Descriptor rings: the WQE/CQE (NIC) and SQ/CQ (NVMe) abstractions.

The backend driver talks to devices exactly the way DPDK/SPDK do: it posts
descriptors that point at buffers in shared CXL memory and receives
completions.  The CPU never touches the buffer contents (§3.2.1) -- devices
DMA them directly.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Optional

from ..errors import DeviceError

__all__ = ["TxDescriptor", "RxDescriptor", "NVMeCommand", "Completion", "DescriptorRing"]


@dataclass
class TxDescriptor:
    """A work-queue entry: transmit ``length`` bytes at pool address ``addr``."""

    addr: int
    length: int
    cookie: Any = None          # opaque driver context, echoed in the completion
    local: bool = False         # buffer lives in host-local DDR (baseline mode)
    retries: int = 0            # times the driver reposted after a DMA abort
    epoch: int = 0              # fencing epoch stamp carried from the message


@dataclass
class RxDescriptor:
    """A posted receive buffer in the per-NIC RX area."""

    addr: int
    capacity: int
    local: bool = False         # buffer lives in host-local DDR (baseline mode)


@dataclass
class NVMeCommand:
    """A 64 B NVMe command as seen by the SSD's submission queue."""

    opcode: int                 # 0x01 write, 0x02 read (NVMe NVM command set)
    slba: int                   # starting logical block address
    nlb: int                    # number of logical blocks
    addr: int                   # data buffer address in shared CXL memory
    cid: int = 0                # command identifier
    cookie: Any = None
    epoch: int = 0              # fencing epoch stamp carried from the message


@dataclass
class Completion:
    """A completion-queue entry handed back to the backend driver."""

    descriptor: Any
    status: int = 0             # 0 = success
    length: int = 0
    tag: Optional[int] = None   # NIC flow tag (None when unmatched)
    timestamp: float = 0.0


class DescriptorRing:
    """A bounded FIFO of descriptors, as exposed by the device's doorbell."""

    def __init__(self, depth: int, name: str = "ring"):
        if depth <= 0:
            raise DeviceError("ring depth must be positive")
        self.depth = depth
        self.name = name
        self._entries: Deque[Any] = deque()
        self.posted = 0
        self.rejected = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.depth

    @property
    def empty(self) -> bool:
        return not self._entries

    def post(self, entry: Any) -> None:
        """Post a descriptor; raises :class:`DeviceError` when full."""
        if self.full:
            self.rejected += 1
            raise DeviceError(f"{self.name} full ({self.depth} entries)")
        self._entries.append(entry)
        self.posted += 1

    def try_post(self, entry: Any) -> bool:
        try:
            self.post(entry)
        except DeviceError:
            return False
        return True

    def pop(self) -> Any:
        if not self._entries:
            raise DeviceError(f"{self.name} empty")
        return self._entries.popleft()

    def drain(self) -> list:
        entries = list(self._entries)
        self._entries.clear()
        return entries
