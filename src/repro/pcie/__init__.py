"""Simulated PCIe devices: NICs and NVMe SSDs."""

from .device import AERCounters, PCIeDevice
from .nic import SimNIC
from .queues import Completion, DescriptorRing, NVMeCommand, RxDescriptor, TxDescriptor
from .ssd import (
    NVME_OP_READ,
    NVME_OP_WRITE,
    NVME_STATUS_FAILED,
    NVME_STATUS_OK,
    SimSSD,
)

__all__ = [
    "PCIeDevice",
    "AERCounters",
    "SimNIC",
    "SimSSD",
    "TxDescriptor",
    "RxDescriptor",
    "NVMeCommand",
    "Completion",
    "DescriptorRing",
    "NVME_OP_READ",
    "NVME_OP_WRITE",
    "NVME_STATUS_OK",
    "NVME_STATUS_FAILED",
]
