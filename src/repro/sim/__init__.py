"""Discrete-event simulation substrate."""

from .core import MSEC, NSEC, SEC, USEC, Event, Process, Signal, SimulationError, Simulator
from .resources import QueueFull, SimQueue
from .rng import RngFactory, derive_seed

__all__ = [
    "NSEC",
    "USEC",
    "MSEC",
    "SEC",
    "Event",
    "Signal",
    "Process",
    "Simulator",
    "SimulationError",
    "SimQueue",
    "QueueFull",
    "RngFactory",
    "derive_seed",
]
