"""Discrete-event simulation core.

The whole reproduction runs on this simulator: hosts, device drivers, NICs,
switches and workloads are all simulation processes exchanging events in
virtual time.  Time is a ``float`` measured in **seconds**; helper constants
(:data:`NSEC`, :data:`USEC`, :data:`MSEC`) make call sites readable.

Two programming styles are supported:

* callback style -- ``sim.schedule(delay, fn, *args)``;
* coroutine style -- generator functions spawned with :meth:`Simulator.spawn`
  that ``yield`` delays, :class:`Signal` objects, or other processes.

Busy-polling device drivers are modelled with O(#messages) events (wake on
data arrival plus explicit per-operation CPU costs) rather than
O(time / poll-interval) events, which keeps multi-second experiments tractable
in Python.

Scheduler layout
----------------

The event queue is split three ways, chosen at ``schedule`` time from the
requested delay; the dispatch loop always fires the global ``(time, seq)``
minimum across all three, so the split is invisible to callers:

* a **now queue** (FIFO deque) for zero-delay events -- the dominant case:
  process wakeups, doorbell rings and yield-the-floor reschedules.  Entries
  fire at the current time in sequence order without touching a heap;
* a **near-future heap** for sub-:data:`_NEAR_WINDOW` delays -- per-hop
  channel latencies and per-operation CPU costs.  It stays small (only the
  current window's events live there), so pushes and pops are cheap;
* a **far heap** for everything else -- packet arrivals, device latencies,
  periodic telemetry.

Process wakeups are *slotted*: each :class:`Process` owns one reusable
:class:`Event` for its (at most one) pending resume, so the steady-state
event flow allocates no Event objects.  Fire-and-forget callbacks scheduled
through :meth:`Simulator.call_after` / :meth:`Simulator.call_at` draw from a
small free list and are recycled after firing; events returned by
:meth:`Simulator.schedule` escape to callers (who may hold and cancel them
later) and are never recycled.

Cancellation tombstones the queue entry in O(1); the simulator separately
tracks the **live** (non-tombstoned) event count so :attr:`Simulator.pending`
does not over-count.
"""

from __future__ import annotations

import heapq
import itertools
import math
from collections import deque
from typing import Any, Callable, Generator, Optional

NSEC = 1e-9
USEC = 1e-6
MSEC = 1e-3
SEC = 1.0

# Delays below this go to the near-future heap; at or above it, the far heap.
_NEAR_WINDOW = 4 * USEC

# Upper bound on the fire-and-forget Event free list.
_POOL_LIMIT = 256

__all__ = [
    "NSEC",
    "USEC",
    "MSEC",
    "SEC",
    "Event",
    "Signal",
    "Process",
    "Simulator",
    "SimulationError",
]


class SimulationError(RuntimeError):
    """Raised for scheduling misuse (e.g. scheduling in the past)."""


class Event:
    """A scheduled callback.  Returned by :meth:`Simulator.schedule`.

    Events may be cancelled before they fire; cancellation is O(1) (the queue
    entry is tombstoned, not removed) and immediately drops the event from
    the simulator's live-event count.
    """

    __slots__ = ("time", "fn", "args", "cancelled", "_sim", "_live", "_pooled",
                 "_seqno")

    def __init__(self, sim: "Simulator", time: float, fn: Callable[..., Any], args: tuple):
        self.time = time
        self.fn = fn
        self.args = args
        self.cancelled = False
        self._sim = sim
        self._live = True      # counted in sim._live_events (pending, not fired)
        self._pooled = False   # recycled onto sim._pool after firing
        self._seqno = 0        # queue order; now-queue entries carry it inline

    def cancel(self) -> None:
        """Prevent the event from firing.  Safe to call multiple times."""
        self.cancelled = True
        if self._live:
            self._live = False
            self._sim._live_events -= 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<Event t={self.time:.9f} {getattr(self.fn, '__name__', self.fn)} {state}>"


class Signal:
    """A one-shot or auto-reset wakeup primitive for coroutine processes.

    Processes wait on a signal by ``yield``-ing it.  A plain signal is
    level-triggered: :meth:`set` wakes every waiter with an optional value
    (delivered as the result of the ``yield``) and stays set for late
    arrivals until :meth:`clear`.

    With ``auto_reset=True`` the signal is a **doorbell**: each :meth:`set`
    delivers exactly one wakeup.  With waiters present the oldest waiter
    (FIFO) is woken; with none, one wakeup is latched for the next waiter.
    Consuming the latch clears both the set flag and the latched value, so a
    stale payload is never re-delivered.
    """

    __slots__ = ("sim", "auto_reset", "_set", "_value", "_waiters")

    def __init__(self, sim: "Simulator", auto_reset: bool = False):
        self.sim = sim
        self.auto_reset = auto_reset
        self._set = False
        self._value: Any = None
        self._waiters: list[Process] = []

    @property
    def is_set(self) -> bool:
        return self._set

    def set(self, value: Any = None) -> None:
        """Deliver a wakeup (immediately, at the current simulation time).

        Level-triggered signals wake all waiters and latch; auto-reset
        signals wake exactly one waiter, or latch one wakeup when nobody is
        waiting (doorbell semantics).
        """
        waiters = self._waiters
        if self.auto_reset:
            if waiters:
                waiters.pop(0)._wake(0.0, value)
            else:
                self._set = True
                self._value = value
        else:
            self._set = True
            self._value = value
            if waiters:
                self._waiters = []
                for proc in waiters:
                    proc._wake(0.0, value)

    def clear(self) -> None:
        self._set = False
        self._value = None

    def _subscribe(self, proc: "Process") -> bool:
        """Register ``proc``; return True if already set (no wait needed)."""
        if self._set:
            if self.auto_reset:
                self._set = False
            return True
        self._waiters.append(proc)
        return False

    def _unsubscribe(self, proc: "Process") -> None:
        try:
            self._waiters.remove(proc)
        except ValueError:
            pass


class Process:
    """A coroutine process driven by the simulator.

    The generator may yield:

    * ``float`` / ``int`` -- sleep for that many seconds;
    * :class:`Signal` -- block until the signal is set (the signal's value is
      sent back into the generator);
    * :class:`Process` -- block until that process terminates;
    * ``None`` -- yield the floor (resume at the same time, after other
      pending events).

    A process has at most one pending resume at any moment, so all its
    wakeups reuse a single slot :class:`Event` instead of allocating.
    """

    __slots__ = ("sim", "name", "_gen", "_done", "_done_signal", "_waiting_on",
                 "result", "_slot")

    def __init__(self, sim: "Simulator", gen: Generator, name: str = "proc"):
        self.sim = sim
        self.name = name
        self._gen = gen
        self._done = False
        self._done_signal = Signal(sim)
        self._waiting_on: Optional[Signal] = None
        self.result: Any = None
        slot = Event(sim, 0.0, self._resume, ())
        slot._live = False
        self._slot = slot

    @property
    def done(self) -> bool:
        return self._done

    def interrupt(self) -> None:
        """Terminate the process at the current time without running it.

        A pending sleep timer is cancelled so the interrupted process leaves
        nothing live behind in the event queue.
        """
        if self._done:
            return
        if self._waiting_on is not None:
            self._waiting_on._unsubscribe(self)
            self._waiting_on = None
        if self._slot._live:
            self._slot.cancel()
        self._gen.close()
        self._finish(None)

    def _finish(self, result: Any) -> None:
        self._done = True
        self.result = result
        self._done_signal.set(result)

    def _wake(self, delay: float, value: Any) -> None:
        """Schedule this process's resume through its reusable slot event."""
        sim = self.sim
        slot = self._slot
        slot.args = (value,)
        slot._live = True
        sim._live_events += 1
        seq = next(sim._seq)
        if delay == 0.0:
            slot.time = sim.now
            slot._seqno = seq
            sim._now_q.append(slot)
        else:
            slot.time = t = sim.now + delay
            if delay < _NEAR_WINDOW:
                heapq.heappush(sim._near, (t, seq, slot))
            else:
                heapq.heappush(sim._far, (t, seq, slot))

    def _resume(self, value: Any = None) -> None:
        if self._done:
            return
        self._waiting_on = None
        try:
            yielded = self._gen.send(value)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        self._handle_yield(yielded)

    def _handle_yield(self, yielded: Any) -> None:
        if yielded is None:
            self._wake(0.0, None)
        elif isinstance(yielded, (int, float)):
            if yielded < 0:
                raise SimulationError(f"process {self.name} yielded negative delay {yielded}")
            self._wake(float(yielded), None)
        elif isinstance(yielded, Signal):
            if yielded._subscribe(self):
                value = yielded._value
                if yielded.auto_reset:
                    yielded._value = None
                self._wake(0.0, value)
            else:
                self._waiting_on = yielded
        elif isinstance(yielded, Process):
            if yielded._done:
                self._wake(0.0, yielded.result)
            else:
                if yielded._done_signal._subscribe(self):
                    self._wake(0.0, yielded.result)
                else:
                    self._waiting_on = yielded._done_signal
        else:
            raise SimulationError(
                f"process {self.name} yielded unsupported value {yielded!r}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self._done else "running"
        return f"<Process {self.name} {state}>"


class Simulator:
    """The event loop: a tiered, time-ordered queue of :class:`Event` objects.

    See the module docstring for the scheduler layout.  The dispatch loop
    always fires the global ``(time, seq)`` minimum across the now queue and
    the two heaps, so callers observe a single totally-ordered event queue.
    """

    __slots__ = ("_now_q", "_near", "_far", "_seq", "_pool", "now",
                 "_processed", "_live_events")

    def __init__(self):
        self._now_q: deque[Event] = deque()
        self._near: list[tuple[float, int, Event]] = []
        self._far: list[tuple[float, int, Event]] = []
        self._seq = itertools.count()
        self._pool: list[Event] = []
        self.now: float = 0.0
        self._processed = 0
        self._live_events = 0

    # -- scheduling -------------------------------------------------------

    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay} s in the past")
        event = Event(self, self.now + delay, fn, args)
        self._live_events += 1
        seq = next(self._seq)
        if delay == 0.0:
            event._seqno = seq
            self._now_q.append(event)
        elif delay < _NEAR_WINDOW:
            heapq.heappush(self._near, (event.time, seq, event))
        else:
            heapq.heappush(self._far, (event.time, seq, event))
        return event

    def at(self, time: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute simulation time ``time``."""
        return self.schedule(time - self.now, fn, *args)

    def call_after(self, delay: float, fn: Callable[..., Any], *args: Any) -> None:
        """Fire-and-forget :meth:`schedule`: no Event is returned.

        The backing Event is drawn from a free list and recycled after it
        fires, so hot call sites that never cancel pay no allocation.  Use
        :meth:`schedule` whenever the caller needs to cancel.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay} s in the past")
        pool = self._pool
        if pool:
            event = pool.pop()
            event.time = t = self.now + delay
            event.fn = fn
            event.args = args
            event._live = True
        else:
            event = Event(self, self.now + delay, fn, args)
            event._pooled = True
            t = event.time
        self._live_events += 1
        seq = next(self._seq)
        if delay == 0.0:
            event._seqno = seq
            self._now_q.append(event)
        elif delay < _NEAR_WINDOW:
            heapq.heappush(self._near, (t, seq, event))
        else:
            heapq.heappush(self._far, (t, seq, event))

    def call_at(self, time: float, fn: Callable[..., Any], *args: Any) -> None:
        """Fire-and-forget :meth:`at`; see :meth:`call_after`.

        Open-coded (not delegated) because device completion paths call it
        once per DMA/IO hop.
        """
        delay = time - self.now
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay} s in the past")
        pool = self._pool
        if pool:
            event = pool.pop()
            event.time = t = self.now + delay
            event.fn = fn
            event.args = args
            event._live = True
        else:
            event = Event(self, self.now + delay, fn, args)
            event._pooled = True
            t = event.time
        self._live_events += 1
        seq = next(self._seq)
        if delay == 0.0:
            event._seqno = seq
            self._now_q.append(event)
        elif delay < _NEAR_WINDOW:
            heapq.heappush(self._near, (t, seq, event))
        else:
            heapq.heappush(self._far, (t, seq, event))

    def spawn(self, gen: Generator, name: str = "proc") -> Process:
        """Start a coroutine process; it first runs at the current time."""
        proc = Process(self, gen, name=name)
        proc._wake(0.0, None)
        return proc

    def signal(self, auto_reset: bool = False) -> Signal:
        """Convenience constructor for a :class:`Signal` bound to this sim."""
        return Signal(self, auto_reset=auto_reset)

    # -- running ----------------------------------------------------------

    @property
    def pending(self) -> int:
        """Number of live (non-cancelled, not-yet-fired) events."""
        return self._live_events

    @property
    def processed_events(self) -> int:
        return self._processed

    def _peek(self) -> Optional[tuple]:
        """Return the queue holding the next event, or None when drained.

        The result is ``(queue, time, seq)`` where ``queue`` is the now
        queue or one of the heaps; tombstones are *not* skipped (matching
        the dispatch loops, which discard them pop-by-pop).
        """
        near, far = self._near, self._far
        head = None
        src = None
        if near:
            head = near[0]
            src = near
            if far and far[0] < head:
                head = far[0]
                src = far
        elif far:
            head = far[0]
            src = far
        nq = self._now_q
        if nq and (head is None or head[0] > self.now or head[1] > nq[0]._seqno):
            return (nq, self.now, nq[0]._seqno)
        if head is None:
            return None
        return (src, head[0], head[1])

    def step(self) -> bool:
        """Run the next event.  Returns False when the queue is empty."""
        while True:
            picked = self._peek()
            if picked is None:
                return False
            src, time, _ = picked
            if src is self._now_q:
                event = src.popleft()
            else:
                _, _, event = heapq.heappop(src)
            if event.cancelled:
                continue
            if time < self.now - 1e-15:
                raise SimulationError("event queue went backwards")
            if time > self.now:
                self.now = time
            self._live_events -= 1
            self._processed += 1
            event._live = False
            fn, args = event.fn, event.args
            if event._pooled:
                event.fn = event.args = None
                if len(self._pool) < _POOL_LIMIT:
                    self._pool.append(event)
            fn(*args)
            return True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run events until the queue drains, ``until`` is reached, or
        ``max_events`` have fired.

        When ``until`` is given, the clock is advanced to exactly ``until``
        even if the queue drains earlier, so back-to-back ``run`` calls
        behave like wall-clock segments.
        """
        fired = 0
        nq = self._now_q
        near = self._near
        far = self._far
        pool = self._pool
        heappop = heapq.heappop
        popleft = nq.popleft
        pool_append = pool.append
        # Bound sentinels: one float/int compare per event instead of an
        # ``is not None`` test plus a compare.
        until_v = math.inf if until is None else until
        max_f = (1 << 62) if max_events is None else max_events
        # The live/processed counters are flushed once on exit rather than
        # updated per event; nothing reads them mid-run (verified: only the
        # post-run report and tests do), and the per-event saving is real.
        # ``self.now`` is mirrored in a local (callbacks only ever read it,
        # and only run/step write it) and both are updated together.
        now = self.now
        try:
            while True:
                # Select the (time, seq) minimum across the three queues.  A
                # heap entry can precede the now-queue head only when it is
                # due at exactly the current time with an earlier sequence
                # number.
                if near:
                    head = near[0]
                    src = near
                    if far:
                        f = far[0]
                        if f < head:
                            head = f
                            src = far
                elif far:
                    head = far[0]
                    src = far
                else:
                    head = None
                if nq and (head is None or head[0] > now or head[1] > nq[0]._seqno):
                    # fast path: zero-delay event due at the current time
                    if now > until_v:
                        break
                    if fired >= max_f:
                        return
                    event = popleft()
                    if event.cancelled:
                        continue
                else:
                    if head is None:
                        break
                    time = head[0]
                    if time > until_v:
                        break
                    if fired >= max_f:
                        return
                    heappop(src)
                    event = head[2]
                    if event.cancelled:
                        continue
                    if time > now:
                        self.now = now = time
                event._live = False
                fn = event.fn
                args = event.args
                if event._pooled:
                    event.fn = event.args = None
                    if len(pool) < _POOL_LIMIT:
                        pool_append(event)
                fn(*args)
                fired += 1
        finally:
            self._processed += fired
            self._live_events -= fired
        if until is not None and self.now < until:
            self.now = until

    def run_all(self, limit: int = 50_000_000) -> None:
        """Run until the queue is empty (with a runaway-loop backstop)."""
        fired = 0
        while self.step():
            fired += 1
            if fired > limit:
                raise SimulationError(f"exceeded {limit} events; runaway simulation?")

    # -- periodic helpers --------------------------------------------------

    def every(
        self,
        interval: float,
        fn: Callable[..., Any],
        *args: Any,
        start_after: Optional[float] = None,
        jitter: float = 0.0,
        rng=None,
    ) -> "PeriodicTask":
        """Run ``fn(*args)`` every ``interval`` seconds until cancelled."""
        return PeriodicTask(self, interval, fn, args, start_after, jitter, rng)


class PeriodicTask:
    """A repeating callback; cancel with :meth:`cancel`.

    Each firing is scheduled off an unjittered base timeline
    (``start + n * interval``); jitter only offsets the individual firing
    from its base tick.  Adding jitter to every gap instead would inflate
    the mean period to ``interval + jitter/2`` and drift the task
    unboundedly late -- a 100 ms telemetry task would silently sample
    slower than configured.

    When ``jitter >= interval`` a firing can land past the next base tick.
    Base ticks the firing overran are skipped (the task samples slower for
    that window) rather than clamped to zero delay, which would fire
    back-to-back bursts at the same timestamp.
    """

    __slots__ = ("sim", "interval", "fn", "args", "jitter", "rng",
                 "_next_base", "_event", "_cancelled")

    def __init__(self, sim, interval, fn, args, start_after, jitter, rng):
        self.sim = sim
        self.interval = interval
        self.fn = fn
        self.args = args
        self.jitter = jitter
        self.rng = rng
        self._cancelled = False
        delay = interval if start_after is None else start_after
        self._next_base = sim.now + delay
        self._event = sim.schedule(self._jittered_delay(), self._fire)

    def _jittered_delay(self) -> float:
        when = self._next_base
        if self.jitter and self.rng is not None:
            when += float(self.rng.uniform(0, self.jitter))
        return max(when - self.sim.now, 0.0)

    def _fire(self) -> None:
        if self._cancelled:
            return
        self.fn(*self.args)
        if not self._cancelled:
            base = self._next_base + self.interval
            now = self.sim.now
            while base <= now:
                base += self.interval
            self._next_base = base
            self._event = self.sim.schedule(self._jittered_delay(), self._fire)

    def cancel(self) -> None:
        self._cancelled = True
        self._event.cancel()
