"""Discrete-event simulation core.

The whole reproduction runs on this simulator: hosts, device drivers, NICs,
switches and workloads are all simulation processes exchanging events in
virtual time.  Time is a ``float`` measured in **seconds**; helper constants
(:data:`NSEC`, :data:`USEC`, :data:`MSEC`) make call sites readable.

Two programming styles are supported:

* callback style -- ``sim.schedule(delay, fn, *args)``;
* coroutine style -- generator functions spawned with :meth:`Simulator.spawn`
  that ``yield`` delays, :class:`Signal` objects, or other processes.

Busy-polling device drivers are modelled with O(#messages) events (wake on
data arrival plus explicit per-operation CPU costs) rather than
O(time / poll-interval) events, which keeps multi-second experiments tractable
in Python.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, Iterable, Optional

NSEC = 1e-9
USEC = 1e-6
MSEC = 1e-3
SEC = 1.0

__all__ = [
    "NSEC",
    "USEC",
    "MSEC",
    "SEC",
    "Event",
    "Signal",
    "Process",
    "Simulator",
    "SimulationError",
]


class SimulationError(RuntimeError):
    """Raised for scheduling misuse (e.g. scheduling in the past)."""


class Event:
    """A scheduled callback.  Returned by :meth:`Simulator.schedule`.

    Events may be cancelled before they fire; cancellation is O(1) (the heap
    entry is tombstoned, not removed).
    """

    __slots__ = ("time", "fn", "args", "cancelled")

    def __init__(self, time: float, fn: Callable[..., Any], args: tuple):
        self.time = time
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing.  Safe to call multiple times."""
        self.cancelled = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<Event t={self.time:.9f} {getattr(self.fn, '__name__', self.fn)} {state}>"


class Signal:
    """A one-shot or auto-reset wakeup primitive for coroutine processes.

    Processes wait on a signal by ``yield``-ing it.  :meth:`set` wakes every
    waiter with an optional value (delivered as the result of the ``yield``).
    With ``auto_reset=True`` the signal re-arms after each :meth:`set`, which
    makes it usable as a doorbell.
    """

    __slots__ = ("sim", "auto_reset", "_set", "_value", "_waiters")

    def __init__(self, sim: "Simulator", auto_reset: bool = False):
        self.sim = sim
        self.auto_reset = auto_reset
        self._set = False
        self._value: Any = None
        self._waiters: list[Process] = []

    @property
    def is_set(self) -> bool:
        return self._set

    def set(self, value: Any = None) -> None:
        """Wake all waiters (immediately, at the current simulation time).

        An auto-reset signal with no waiters latches one wakeup (doorbell
        semantics): the next waiter proceeds immediately.
        """
        self._value = value
        waiters, self._waiters = self._waiters, []
        if not self.auto_reset:
            self._set = True
        elif not waiters:
            self._set = True
        for proc in waiters:
            self.sim.schedule(0.0, proc._resume, value)

    def clear(self) -> None:
        self._set = False
        self._value = None

    def _subscribe(self, proc: "Process") -> bool:
        """Register ``proc``; return True if already set (no wait needed)."""
        if self._set:
            if self.auto_reset:
                self._set = False
            return True
        self._waiters.append(proc)
        return False

    def _unsubscribe(self, proc: "Process") -> None:
        try:
            self._waiters.remove(proc)
        except ValueError:
            pass


class Process:
    """A coroutine process driven by the simulator.

    The generator may yield:

    * ``float`` / ``int`` -- sleep for that many seconds;
    * :class:`Signal` -- block until the signal is set (the signal's value is
      sent back into the generator);
    * :class:`Process` -- block until that process terminates;
    * ``None`` -- yield the floor (resume at the same time, after other
      pending events).
    """

    __slots__ = ("sim", "name", "_gen", "_done", "_done_signal", "_waiting_on", "result")

    def __init__(self, sim: "Simulator", gen: Generator, name: str = "proc"):
        self.sim = sim
        self.name = name
        self._gen = gen
        self._done = False
        self._done_signal = Signal(sim)
        self._waiting_on: Optional[Signal] = None
        self.result: Any = None

    @property
    def done(self) -> bool:
        return self._done

    def interrupt(self) -> None:
        """Terminate the process at the current time without running it."""
        if self._done:
            return
        if self._waiting_on is not None:
            self._waiting_on._unsubscribe(self)
            self._waiting_on = None
        self._gen.close()
        self._finish(None)

    def _finish(self, result: Any) -> None:
        self._done = True
        self.result = result
        self._done_signal.set(result)

    def _resume(self, value: Any = None) -> None:
        if self._done:
            return
        self._waiting_on = None
        try:
            yielded = self._gen.send(value)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        self._handle_yield(yielded)

    def _handle_yield(self, yielded: Any) -> None:
        if yielded is None:
            self.sim.schedule(0.0, self._resume, None)
        elif isinstance(yielded, (int, float)):
            if yielded < 0:
                raise SimulationError(f"process {self.name} yielded negative delay {yielded}")
            self.sim.schedule(float(yielded), self._resume, None)
        elif isinstance(yielded, Signal):
            if yielded._subscribe(self):
                self.sim.schedule(0.0, self._resume, yielded._value)
            else:
                self._waiting_on = yielded
        elif isinstance(yielded, Process):
            if yielded._done:
                self.sim.schedule(0.0, self._resume, yielded.result)
            else:
                if yielded._done_signal._subscribe(self):
                    self.sim.schedule(0.0, self._resume, yielded.result)
                else:
                    self._waiting_on = yielded._done_signal
        else:
            raise SimulationError(
                f"process {self.name} yielded unsupported value {yielded!r}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self._done else "running"
        return f"<Process {self.name} {state}>"


class Simulator:
    """The event loop: a time-ordered heap of :class:`Event` objects."""

    def __init__(self):
        self._heap: list[tuple[float, int, Event]] = []
        self._seq = itertools.count()
        self.now: float = 0.0
        self._processed = 0

    # -- scheduling -------------------------------------------------------

    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay} s in the past")
        event = Event(self.now + delay, fn, args)
        heapq.heappush(self._heap, (event.time, next(self._seq), event))
        return event

    def at(self, time: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute simulation time ``time``."""
        return self.schedule(time - self.now, fn, *args)

    def spawn(self, gen: Generator, name: str = "proc") -> Process:
        """Start a coroutine process; it first runs at the current time."""
        proc = Process(self, gen, name=name)
        self.schedule(0.0, proc._resume, None)
        return proc

    def signal(self, auto_reset: bool = False) -> Signal:
        """Convenience constructor for a :class:`Signal` bound to this sim."""
        return Signal(self, auto_reset=auto_reset)

    # -- running ----------------------------------------------------------

    @property
    def pending(self) -> int:
        """Number of events still in the heap (including tombstones)."""
        return len(self._heap)

    @property
    def processed_events(self) -> int:
        return self._processed

    def step(self) -> bool:
        """Run the next event.  Returns False when the heap is empty."""
        while self._heap:
            time, _, event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            if time < self.now - 1e-15:
                raise SimulationError("event heap went backwards")
            self.now = max(self.now, time)
            self._processed += 1
            event.fn(*event.args)
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run events until the heap drains, ``until`` is reached, or
        ``max_events`` have fired.

        When ``until`` is given, the clock is advanced to exactly ``until``
        even if the heap drains earlier, so back-to-back ``run`` calls behave
        like wall-clock segments.
        """
        fired = 0
        while self._heap:
            time, _, event = self._heap[0]
            if until is not None and time > until:
                break
            if max_events is not None and fired >= max_events:
                return
            heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self.now = max(self.now, time)
            self._processed += 1
            event.fn(*event.args)
            fired += 1
        if until is not None and self.now < until:
            self.now = until

    def run_all(self, limit: int = 50_000_000) -> None:
        """Run until the heap is empty (with a runaway-loop backstop)."""
        fired = 0
        while self.step():
            fired += 1
            if fired > limit:
                raise SimulationError(f"exceeded {limit} events; runaway simulation?")

    # -- periodic helpers --------------------------------------------------

    def every(
        self,
        interval: float,
        fn: Callable[..., Any],
        *args: Any,
        start_after: Optional[float] = None,
        jitter: float = 0.0,
        rng=None,
    ) -> "PeriodicTask":
        """Run ``fn(*args)`` every ``interval`` seconds until cancelled."""
        return PeriodicTask(self, interval, fn, args, start_after, jitter, rng)


class PeriodicTask:
    """A repeating callback; cancel with :meth:`cancel`.

    Each firing is scheduled off an unjittered base timeline
    (``start + n * interval``); jitter only offsets the individual firing
    from its base tick.  Adding jitter to every gap instead would inflate
    the mean period to ``interval + jitter/2`` and drift the task
    unboundedly late -- a 100 ms telemetry task would silently sample
    slower than configured.
    """

    __slots__ = ("sim", "interval", "fn", "args", "jitter", "rng",
                 "_next_base", "_event", "_cancelled")

    def __init__(self, sim, interval, fn, args, start_after, jitter, rng):
        self.sim = sim
        self.interval = interval
        self.fn = fn
        self.args = args
        self.jitter = jitter
        self.rng = rng
        self._cancelled = False
        delay = interval if start_after is None else start_after
        self._next_base = sim.now + delay
        self._event = sim.schedule(self._jittered_delay(), self._fire)

    def _jittered_delay(self) -> float:
        when = self._next_base
        if self.jitter and self.rng is not None:
            when += float(self.rng.uniform(0, self.jitter))
        return max(when - self.sim.now, 0.0)

    def _fire(self) -> None:
        if self._cancelled:
            return
        self.fn(*self.args)
        if not self._cancelled:
            self._next_base += self.interval
            self._event = self.sim.schedule(self._jittered_delay(), self._fire)

    def cancel(self) -> None:
        self._cancelled = True
        self._event.cancel()
