"""Deterministic random-number streams.

Every stochastic component (trace generators, service-time models, jittered
timers) draws from a named substream derived from one root seed, so whole
experiments replay bit-identically while components stay statistically
independent.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["RngFactory", "derive_seed"]


def derive_seed(root_seed: int, name: str) -> int:
    """Derive a 64-bit seed for substream ``name`` from ``root_seed``."""
    digest = hashlib.sha256(f"{root_seed}:{name}".encode()).digest()
    return int.from_bytes(digest[:8], "little")


class RngFactory:
    """Hands out independent, reproducible ``numpy`` generators by name."""

    def __init__(self, root_seed: int = 0):
        self.root_seed = root_seed
        self._streams: dict[str, np.random.Generator] = {}

    def get(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use."""
        if name not in self._streams:
            self._streams[name] = np.random.default_rng(derive_seed(self.root_seed, name))
        return self._streams[name]

    def fresh(self, name: str) -> np.random.Generator:
        """Return a brand-new generator for ``name`` (ignores the cache)."""
        return np.random.default_rng(derive_seed(self.root_seed, name))
