"""Blocking queues for coroutine processes.

These model the intra-host IPC channels (instance <-> frontend driver) that
the real Oasis implements over local-DDR shared memory; cross-host channels
use :mod:`repro.channel` instead, which models the non-coherent CXL path.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Generator, Optional

from .core import Signal, Simulator

__all__ = ["SimQueue", "QueueFull"]


class QueueFull(RuntimeError):
    """Raised by :meth:`SimQueue.put_nowait` on a bounded, full queue."""


class SimQueue:
    """FIFO queue with blocking ``get`` for simulation processes.

    ``put`` is always immediate (the producer side of the Oasis IPC rings is
    lossy at the instance layer, modelled by ``put_nowait`` raising
    :class:`QueueFull` when ``capacity`` is set).
    """

    def __init__(self, sim: Simulator, capacity: Optional[int] = None, name: str = "queue"):
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._items: deque[Any] = deque()
        self._data_ready = Signal(sim, auto_reset=True)
        self.dropped = 0
        self.total_put = 0

    def __len__(self) -> int:
        return len(self._items)

    @property
    def empty(self) -> bool:
        return not self._items

    @property
    def full(self) -> bool:
        return self.capacity is not None and len(self._items) >= self.capacity

    def put_nowait(self, item: Any) -> None:
        """Enqueue; raises :class:`QueueFull` when bounded and full."""
        if self.full:
            self.dropped += 1
            raise QueueFull(self.name)
        self._items.append(item)
        self.total_put += 1
        self._data_ready.set()

    def try_put(self, item: Any) -> bool:
        """Enqueue; returns False (and counts a drop) instead of raising."""
        try:
            self.put_nowait(item)
        except QueueFull:
            return False
        return True

    def get_nowait(self) -> Any:
        if not self._items:
            raise IndexError(f"queue {self.name} empty")
        return self._items.popleft()

    def get(self) -> Generator:
        """Coroutine: block until an item is available, then return it."""
        while not self._items:
            yield self._data_ready
        return self._items.popleft()

    def drain(self) -> list[Any]:
        """Remove and return all queued items without blocking."""
        items = list(self._items)
        self._items.clear()
        return items
