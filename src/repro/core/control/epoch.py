"""Per-device fencing epochs with a CXL-resident mirror (§3.3.3).

Ownership of a pooled device is arbitrated by the allocator, but the
*enforcement* point must sit on the device side of the channel: a frontend
whose failover notification is late keeps posting through the revoked
device until it learns better.  The classic fix is a fencing token -- a
monotonically increasing epoch minted by the allocator on every grant,
revoke, failover and migration.  Frontends stamp each channel message with
the low byte of their epoch; backends compare one integer against the
published entry and reject mismatches with ``FENCED`` before touching
device state.

The table's authoritative copy lives with the allocator; when a CXL pool
region is attached, each device's epoch is additionally mirrored into one
64-byte line of pool memory (the "CXL-resident device metadata" a real
implementation would map into the backend's BAR-adjacent space).  The
mirror is written through the pool's raw line interface so fencing metadata
never perturbs the accounted data-path traffic.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ...mem.cxl import line_index

__all__ = ["EPOCH_LINE_BYTES", "EpochTable"]

#: One cacheline of CXL-resident metadata per device.
EPOCH_LINE_BYTES = 64


class EpochTable:
    """Fencing epochs: per-device counters plus per-(device, instance) entries."""

    def __init__(self, pool=None, region=None):
        #: Highest epoch ever granted or revoked on each device.
        self.device_epoch: Dict[str, int] = {}
        #: The currently valid epoch for each (device, instance ip) pair.
        self._entries: Dict[Tuple[str, int], int] = {}
        self._pool = pool
        self._region = region
        self._slots: Dict[str, int] = {}   # device -> line slot in the mirror
        self.grants = 0
        self.revokes = 0

    # -- CXL mirror ----------------------------------------------------------------

    def attach_mirror(self, pool, region) -> None:
        """Mirror device epochs into ``region`` of ``pool`` (one line each)."""
        self._pool = pool
        self._region = region
        for device in self.device_epoch:
            self._write_mirror(device)

    def _write_mirror(self, device: str) -> None:
        if self._pool is None or self._region is None:
            return
        slot = self._slots.get(device)
        if slot is None:
            slot = len(self._slots)
            self._slots[device] = slot
        if (slot + 1) * EPOCH_LINE_BYTES > self._region.size:
            return   # mirror full: authoritative copy still enforces
        line = line_index(self._region.base) + slot
        payload = self.device_epoch.get(device, 0).to_bytes(8, "little")
        self._pool.write_line(line, payload + bytes(EPOCH_LINE_BYTES - 8))

    def resident_epoch(self, device: str) -> Optional[int]:
        """Read a device's epoch back from the CXL-resident mirror."""
        slot = self._slots.get(device)
        if self._pool is None or self._region is None or slot is None:
            return None
        line = line_index(self._region.base) + slot
        data = self._pool.read_line(line)
        return int.from_bytes(data[:8], "little")

    # -- publication (allocator side) ----------------------------------------------

    def publish_device(self, device: str, epoch: int) -> None:
        """Advance a device's epoch without touching per-instance entries
        (failover of a device with no live grants still fences newcomers)."""
        if epoch > self.device_epoch.get(device, 0):
            self.device_epoch[device] = epoch
            self._write_mirror(device)

    def publish_grant(self, device: str, instance_ip: int, epoch: int) -> None:
        self._entries[(device, instance_ip)] = epoch
        if epoch > self.device_epoch.get(device, 0):
            self.device_epoch[device] = epoch
        self.grants += 1
        self._write_mirror(device)

    def publish_revoke(self, device: str, instance_ip: int,
                       min_epoch: int) -> None:
        """Invalidate ``(device, instance)`` entries older than ``min_epoch``.

        The guard matters for delayed revokes (migration grace periods): if
        the instance was re-granted on the device in the meantime, the newer
        entry must survive the stale revoke.
        """
        current = self._entries.get((device, instance_ip))
        if current is not None and current < min_epoch:
            del self._entries[(device, instance_ip)]
        if min_epoch > self.device_epoch.get(device, 0):
            self.device_epoch[device] = min_epoch
        self.revokes += 1
        self._write_mirror(device)

    # -- enforcement (backend side) --------------------------------------------------

    def entry(self, device: str, instance_ip: int) -> Optional[int]:
        return self._entries.get((device, instance_ip))

    def stamp(self, device: str, instance_ip: int) -> int:
        """The 8-bit stamp a frontend should put on the wire right now."""
        return self._entries.get((device, instance_ip), 0) & 0xFF

    def check(self, device: str, instance_ip: int, stamp: int) -> bool:
        """Would a post stamped ``stamp`` be accepted on ``device``?"""
        entry = self._entries.get((device, instance_ip))
        if entry is None:
            # No grant on record.  A device that has never minted an epoch
            # predates fencing (direct-wired test rigs): accept.  A device
            # with fencing history rejects unknown writers.
            return self.device_epoch.get(device, 0) == 0
        return (entry & 0xFF) == (stamp & 0xFF)
