"""The allocator's replicated state machine (§3.5).

Every control-plane decision is a *command*: a plain dict carrying an
``op``, a command ID (``cid``), the decision's inputs resolved at decide
time (chosen devices, minted epochs, the decide-time clock ``now``) and
nothing else.  Commands are applied deterministically -- same command
sequence, same state -- on the canonical (service-side) machine and on one
replica machine per Raft node, so a replica that crashes and rejoins (or a
follower promoted after a leader crash) converges to the same allocator
state.  Application is deduplicated by ``cid``: re-proposed commands and
duplicate log entries are harmless.

State mutation happens on every replica; external side effects (frontend
notification, MAC borrowing, epoch publication) are the allocator
*service*'s job and happen exactly once, keyed by the same ``cid``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..allocator.leases import Lease, LeaseTable
from ..allocator.policy import DeviceState

__all__ = ["ControlState", "AllocatorStateMachine", "copy_device"]


def copy_device(device: DeviceState) -> DeviceState:
    clone = DeviceState(name=device.name, host=device.host,
                        capacity=device.capacity, is_backup=device.is_backup)
    clone.allocated = device.allocated
    clone.failed = device.failed
    return clone


@dataclass
class ControlState:
    """Everything the allocator must not lose across a crash."""

    lease_ttl_s: float
    devices: Dict[str, DeviceState] = field(default_factory=dict)
    storage_devices: Dict[str, DeviceState] = field(default_factory=dict)
    leases: LeaseTable = field(init=False)
    assignments: Dict[int, str] = field(default_factory=dict)
    backup_assignments: Dict[int, str] = field(default_factory=dict)
    storage_assignments: Dict[int, str] = field(default_factory=dict)
    demands: Dict[int, float] = field(default_factory=dict)
    storage_demands: Dict[int, float] = field(default_factory=dict)
    hosts: Dict[int, str] = field(default_factory=dict)   # ip -> host name
    #: Instances whose device failed with no backup available: ip -> (host,
    #: demand).  Re-placed when capacity appears (§ graceful degradation).
    parked: Dict[int, Tuple[Optional[str], float]] = field(default_factory=dict)
    applied_cids: Set[str] = field(default_factory=set)
    failovers_executed: int = 0
    migrations_executed: int = 0
    lease_expirations: int = 0
    #: How many failover commands have been applied per device -- the
    #: exactly-once invariant asserts every value is 1.
    failover_log: Dict[str, int] = field(default_factory=dict)
    #: Highest fencing epoch applied per device (monotonicity witness).
    epochs_seen: Dict[str, int] = field(default_factory=dict)

    def __post_init__(self):
        self.leases = LeaseTable(self.lease_ttl_s)

    # -- convergence ---------------------------------------------------------------

    def signature(self) -> tuple:
        """A deterministic digest of replicated state for convergence checks.

        Deliberately excludes wall-clock-dependent fields that legitimately
        differ between the canonical machine and replicas (lease expiry
        times renewed by frontend telemetry, measured load from telemetry).
        """
        leases = tuple(sorted(
            (ip, dev, lease.epoch, lease.revoked)
            for (ip, dev), lease in self.leases._by_key.items()
        ))
        devices = tuple(sorted(
            (d.name, d.failed, d.is_backup, round(d.allocated, 6))
            for d in self.devices.values()
        ))
        storage = tuple(sorted(
            (d.name, d.failed, round(d.allocated, 6))
            for d in self.storage_devices.values()
        ))
        return (
            devices, storage, leases,
            tuple(sorted(self.assignments.items())),
            tuple(sorted(self.storage_assignments.items())),
            tuple(sorted(self.parked.items())),
            self.failovers_executed, self.migrations_executed,
            tuple(sorted(self.failover_log.items())),
            tuple(sorted(self.epochs_seen.items())),
        )

    # -- snapshot / restore ---------------------------------------------------------

    def snapshot(self) -> dict:
        """A JSON-able snapshot; :meth:`restore` rebuilds an identical state."""
        return {
            "lease_ttl_s": self.lease_ttl_s,
            "devices": [[d.name, d.host, d.capacity, d.allocated,
                         d.is_backup, d.failed]
                        for d in self.devices.values()],
            "storage_devices": [[d.name, d.host, d.capacity, d.allocated,
                                 d.is_backup, d.failed]
                                for d in self.storage_devices.values()],
            "leases": [[ip, dev, lease.granted_at, lease.expires_at,
                        lease.epoch, lease.revoked]
                       for (ip, dev), lease in self.leases._by_key.items()],
            "assignments": sorted(self.assignments.items()),
            "backup_assignments": sorted(self.backup_assignments.items()),
            "storage_assignments": sorted(self.storage_assignments.items()),
            "demands": sorted(self.demands.items()),
            "storage_demands": sorted(self.storage_demands.items()),
            "hosts": sorted(self.hosts.items()),
            "parked": [[ip, host, demand]
                       for ip, (host, demand) in sorted(self.parked.items())],
            "applied_cids": sorted(self.applied_cids),
            "failovers_executed": self.failovers_executed,
            "migrations_executed": self.migrations_executed,
            "lease_expirations": self.lease_expirations,
            "failover_log": sorted(self.failover_log.items()),
            "epochs_seen": sorted(self.epochs_seen.items()),
        }

    @classmethod
    def restore(cls, snap: dict) -> "ControlState":
        state = cls(lease_ttl_s=snap["lease_ttl_s"])
        for name, host, capacity, allocated, is_backup, failed in snap["devices"]:
            device = DeviceState(name=name, host=host, capacity=capacity,
                                 is_backup=is_backup)
            device.allocated = allocated
            device.failed = failed
            state.devices[name] = device
        for name, host, capacity, allocated, is_backup, failed in \
                snap["storage_devices"]:
            device = DeviceState(name=name, host=host, capacity=capacity,
                                 is_backup=is_backup)
            device.allocated = allocated
            device.failed = failed
            state.storage_devices[name] = device
        for ip, dev, granted_at, expires_at, epoch, revoked in snap["leases"]:
            lease = Lease(ip, dev, granted_at, state.lease_ttl_s, epoch=epoch)
            lease.expires_at = expires_at
            lease.revoked = revoked
            state.leases._by_key[(ip, dev)] = lease
        state.assignments = dict((ip, d) for ip, d in snap["assignments"])
        state.backup_assignments = dict(
            (ip, d) for ip, d in snap["backup_assignments"])
        state.storage_assignments = dict(
            (ip, d) for ip, d in snap["storage_assignments"])
        state.demands = dict((ip, d) for ip, d in snap["demands"])
        state.storage_demands = dict(
            (ip, d) for ip, d in snap["storage_demands"])
        state.hosts = dict((ip, h) for ip, h in snap["hosts"])
        state.parked = {ip: (host, demand)
                        for ip, host, demand in snap["parked"]}
        state.applied_cids = set(snap["applied_cids"])
        state.failovers_executed = snap["failovers_executed"]
        state.migrations_executed = snap["migrations_executed"]
        state.lease_expirations = snap.get("lease_expirations", 0)
        state.failover_log = dict(
            (nic, count) for nic, count in snap["failover_log"])
        state.epochs_seen = dict((dev, e) for dev, e in snap["epochs_seen"])
        return state


class AllocatorStateMachine:
    """Applies commands to a :class:`ControlState`, exactly once per ``cid``."""

    def __init__(self, state: ControlState):
        self.state = state
        #: Decisions the last applied failover actually took (the effective
        #: backup may differ from the proposed one if it failed in between);
        #: the service reads this to run matching side effects.
        self.last_failover: Optional[dict] = None

    def apply(self, command: dict) -> bool:
        """Apply ``command``; returns False for duplicates and unknown ops."""
        cid = command.get("cid")
        if cid is not None and cid in self.state.applied_cids:
            return False
        handler = getattr(self, "_op_" + command.get("op", "?").replace(
            "-", "_"), None)
        if handler is None:
            return False
        handler(command)
        if cid is not None:
            self.state.applied_cids.add(cid)
        return True

    # -- helpers ----------------------------------------------------------------

    def _force_grant(self, ip: int, device: str, now: float,
                     epoch: int) -> None:
        # Replicas must never crash on a stray pre-existing lease; the
        # service's decide path is what enforces no-double-grant.
        self.state.leases.revoke(ip, device)
        self.state.leases.grant(ip, device, now, epoch=epoch)

    def _note_epoch(self, device: str, epoch: int) -> None:
        if epoch > self.state.epochs_seen.get(device, 0):
            self.state.epochs_seen[device] = epoch

    # -- placement family -------------------------------------------------------

    def _op_place(self, cmd: dict) -> None:
        state = self.state
        nic, ip = cmd["nic"], cmd["ip"]
        demand = cmd.get("demand", 0.0)
        device = state.devices.get(nic)
        # Re-acquisition on the same device keeps its existing accounting.
        if device is not None and state.assignments.get(ip) != nic:
            device.allocated += demand
        state.assignments[ip] = nic
        state.demands[ip] = demand
        state.hosts[ip] = cmd.get("host")
        if cmd.get("backup"):
            state.backup_assignments[ip] = cmd["backup"]
        self._force_grant(ip, nic, cmd["now"], cmd.get("epoch", 0))
        self._note_epoch(nic, cmd.get("epoch", 0))
        state.parked.pop(ip, None)

    _op_reacquire = _op_place

    def _op_place_storage(self, cmd: dict) -> None:
        state = self.state
        ssd, ip = cmd["ssd"], cmd["ip"]
        demand = cmd.get("demand", 0.0)
        device = state.storage_devices.get(ssd)
        if device is not None and state.storage_assignments.get(ip) != ssd:
            device.allocated += demand
        state.storage_assignments[ip] = ssd
        state.storage_demands[ip] = demand
        state.hosts.setdefault(ip, cmd.get("host"))
        self._force_grant(ip, ssd, cmd["now"], cmd.get("epoch", 0))
        self._note_epoch(ssd, cmd.get("epoch", 0))

    _op_reacquire_storage = _op_place_storage

    def _op_release(self, cmd: dict) -> None:
        state = self.state
        nic, ip = cmd["nic"], cmd["ip"]
        demand = cmd.get("demand", state.demands.get(ip, 0.0))
        state.assignments.pop(ip, None)
        state.backup_assignments.pop(ip, None)
        state.demands.pop(ip, None)
        state.parked.pop(ip, None)
        device = state.devices.get(nic)
        if device is not None:
            device.allocated -= demand
        state.leases.revoke(ip, nic)
        self._note_epoch(nic, cmd.get("revoke_epoch", 0))

    def _op_release_storage(self, cmd: dict) -> None:
        state = self.state
        ssd, ip = cmd["ssd"], cmd["ip"]
        demand = cmd.get("demand", state.storage_demands.get(ip, 0.0))
        state.storage_assignments.pop(ip, None)
        state.storage_demands.pop(ip, None)
        device = state.storage_devices.get(ssd)
        if device is not None:
            device.allocated -= demand
        state.leases.revoke(ip, ssd)
        self._note_epoch(ssd, cmd.get("revoke_epoch", 0))

    # -- migration --------------------------------------------------------------

    def _op_migrate(self, cmd: dict) -> None:
        state = self.state
        ip, old, new = cmd["ip"], cmd["old"], cmd["new"]
        demand = cmd.get("demand", 0.0)
        state.leases.revoke(ip, old)
        self._force_grant(ip, new, cmd["now"], cmd.get("grant_epoch", 0))
        state.assignments[ip] = new
        old_device = state.devices.get(old)
        if old_device is not None:
            old_device.allocated -= demand
        new_device = state.devices.get(new)
        if new_device is not None:
            new_device.allocated += demand
        state.migrations_executed += 1
        self._note_epoch(old, cmd.get("revoke_epoch", 0))
        self._note_epoch(new, cmd.get("grant_epoch", 0))

    # -- recovery ---------------------------------------------------------------

    def _op_failover(self, cmd: dict) -> None:
        state = self.state
        nic = cmd["nic"]
        now = cmd["now"]
        device = state.devices.get(nic)
        if device is None:
            self.last_failover = None
            return
        device.failed = True
        state.failover_log[nic] = state.failover_log.get(nic, 0) + 1
        self._note_epoch(nic, cmd.get("revoke_epoch", 0))
        state.leases.revoke_device(nic)
        moved: List[Tuple[int, int]] = [
            (ip, epoch) for ip, epoch in cmd.get("moved", [])
        ]
        backup_name = cmd.get("backup")
        backup = state.devices.get(backup_name) if backup_name else None
        if backup is not None and backup.failed:
            # The chosen backup died between decide and apply (double
            # failure): fall back to parking, never grant on a dead device.
            backup = None
            backup_name = None
        if backup is None:
            for ip, _epoch in moved:
                state.assignments.pop(ip, None)
                state.parked[ip] = (state.hosts.get(ip),
                                    state.demands.get(ip, 0.0))
            device.allocated = 0.0
            self.last_failover = {"nic": nic, "backup": None,
                                  "moved": [ip for ip, _ in moved]}
            return
        for ip, epoch in moved:
            self._force_grant(ip, backup_name, now, epoch)
            state.assignments[ip] = backup_name
            if state.backup_assignments.get(ip) == backup_name:
                state.backup_assignments.pop(ip, None)
            self._note_epoch(backup_name, epoch)
        backup.allocated += device.allocated
        device.allocated = 0.0
        state.failovers_executed += 1
        self.last_failover = {"nic": nic, "backup": backup_name,
                              "moved": [ip for ip, _ in moved]}

    # -- group commit -----------------------------------------------------------

    def _op_batch(self, cmd: dict) -> None:
        """One Raft log entry carrying several commands (group commit).

        Sub-commands apply in decide order with their own cid dedup, so a
        batch that lands in the log twice (leader crash between append and
        ack, then a re-proposed batch) is as harmless as a duplicated
        single-command entry.
        """
        for sub in cmd.get("cmds", []):
            self.apply(sub)

    def _op_expire(self, cmd: dict) -> None:
        state = self.state
        for ip, dev, revoke_epoch, kind in cmd.get("entries", []):
            lease = state.leases.get(ip, dev)
            if lease is None:
                continue
            state.leases.revoke(ip, dev)
            state.lease_expirations += 1
            self._note_epoch(dev, revoke_epoch)
            if kind == "nic":
                if state.assignments.get(ip) == dev:
                    state.assignments.pop(ip, None)
                    state.parked[ip] = (state.hosts.get(ip),
                                        state.demands.get(ip, 0.0))
                device = state.devices.get(dev)
                if device is not None:
                    device.allocated -= state.demands.get(ip, 0.0)
            # Storage has no failover path: the assignment (and its capacity
            # reservation) stays; the instance must re-acquire a fresh epoch
            # before its posts are accepted again.


def replica_for(state: ControlState) -> AllocatorStateMachine:
    """A fresh machine over a deep copy of ``state`` (for new Raft nodes)."""
    return AllocatorStateMachine(ControlState.restore(state.snapshot()))
