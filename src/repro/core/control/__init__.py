"""Crash-recoverable control plane primitives (§3.3.3/§3.5).

Three pieces the allocator composes:

- :class:`~repro.core.control.epoch.EpochTable` -- per-device fencing epochs,
  mirrored into CXL-resident metadata, checked by NIC/SSD backends on every
  post so a stale writer (a frontend whose failover notification was delayed
  or dropped) is rejected with a ``FENCED`` status instead of corrupting
  post-failover state.
- :class:`~repro.core.control.state.ControlState` /
  :class:`~repro.core.control.state.AllocatorStateMachine` -- the
  deterministic, snapshot-able state machine replicated through Raft; every
  command carries a command ID and is applied exactly once per replica.
- :class:`~repro.core.control.notify.NotificationBus` -- the
  allocator-to-frontend notification path, made explicit so chaos schedules
  can delay or drop individual hosts' notifications.
"""

from .epoch import EPOCH_LINE_BYTES, EpochTable
from .notify import NotificationBus
from .state import AllocatorStateMachine, ControlState

__all__ = [
    "EPOCH_LINE_BYTES",
    "EpochTable",
    "NotificationBus",
    "AllocatorStateMachine",
    "ControlState",
]
