"""Allocator-to-frontend notification path, fault-injectable per host.

Failover/resync notifications used to be bare ``sim.schedule`` calls; the
bus keeps the same latency model but gives chaos schedules a handle: extra
per-host delay (``notify.delay``) and one-shot drops (``notify.drop``)
model the delayed or lost notifications that epoch fencing exists to make
harmless.
"""

from __future__ import annotations

from typing import Dict

__all__ = ["NotificationBus"]


class NotificationBus:
    """Delivers control-plane notifications to hosts, with injectable faults."""

    def __init__(self, sim):
        self.sim = sim
        self._extra: Dict[str, float] = {}
        self._drop: Dict[str, int] = {}
        self.delivered = 0
        self.delayed = 0
        self.dropped = 0

    def send(self, host_name: str, delay_s: float, fn, *args) -> None:
        drops = self._drop.get(host_name, 0)
        if drops > 0:
            self._drop[host_name] = drops - 1
            self.dropped += 1
            return
        extra = self._extra.get(host_name, 0.0)
        if extra > 0.0:
            self.delayed += 1
        self.delivered += 1
        self.sim.schedule(delay_s + extra, fn, *args)

    # -- fault hooks (chaos injector) ---------------------------------------------

    def delay_extra(self, host_name: str, extra_s: float) -> None:
        self._extra[host_name] = extra_s

    def clear_delay(self, host_name: str) -> None:
        self._extra.pop(host_name, None)

    def drop_next(self, host_name: str, count: int = 1) -> None:
        self._drop[host_name] = self._drop.get(host_name, 0) + count

    def clear_drops(self, host_name: str) -> None:
        self._drop.pop(host_name, None)
