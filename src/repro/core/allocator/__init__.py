"""Pod-wide allocator: leases, telemetry, placement, failure management."""

from .allocator import AllocatorClient, PodAllocator
from .balancer import LoadBalancer
from .leases import Lease, LeaseTable
from .policy import DeviceState, PlacementPolicy
from .sharded import ShardedAllocator
from .telemetry import TelemetryStore

__all__ = [
    "PodAllocator",
    "ShardedAllocator",
    "AllocatorClient",
    "LoadBalancer",
    "Lease",
    "LeaseTable",
    "DeviceState",
    "PlacementPolicy",
    "TelemetryStore",
]
