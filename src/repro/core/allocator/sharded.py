"""Pool-sharded control plane for rack-scale pods.

A 2-host pod runs one :class:`~repro.core.allocator.allocator.PodAllocator`.
At rack scale (32 hosts, hundreds of devices behind several CXL pools) a
single sequencer becomes the bottleneck, and -- more fundamentally -- a
placement is only valid inside one pool: the datapath needs shared buffers,
and a host can only reach devices whose rx/tx regions live in a pool it is
attached to.  The pool is therefore the natural shard unit.

:class:`ShardedAllocator` runs one full ``PodAllocator`` (state machine,
epoch table, notification bus, optional Raft cluster) per pool and routes
every control operation to the owning shard:

* by **host** for placements, frontend telemetry and resyncs (an instance's
  devices always live in its host's pool);
* by **device** for backend telemetry, failure reports and migrations;
* by **instance** for releases (the shard holding the assignment).

Shards never exchange commands, so a leader crash in one pool's Raft
cluster stalls only that pool's recovery ops -- sibling shards keep
admitting placements (pinned by ``tests/test_control_plane.py``).  Merged
read-only views (devices, leases, assignments, epochs, counters) present
the rack as one control plane to the metrics bindings and the invariant
checker; ``signature()`` is the tuple of per-shard signatures so replica
convergence stays checkable per shard.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ...config import OasisConfig
from ...sim.core import Simulator
from .allocator import PodAllocator
from .policy import PlacementPolicy

__all__ = ["ShardedAllocator"]


class _MergedEpochs:
    """Read/route view over the per-shard epoch tables."""

    def __init__(self, owner: "ShardedAllocator"):
        self._owner = owner

    def _table_for(self, device: str):
        return self._owner.shard_for_device(device).epochs

    def entry(self, device: str, ip: int):
        return self._table_for(device).entry(device, ip)

    def check(self, device: str, ip: int, stamp: int) -> bool:
        return self._table_for(device).check(device, ip, stamp)

    @property
    def device_epoch(self) -> Dict[str, int]:
        merged: Dict[str, int] = {}
        for shard in self._owner.shards.values():
            merged.update(shard.epochs.device_epoch)
        return merged

    @property
    def grants(self) -> int:
        return sum(s.epochs.grants for s in self._owner.shards.values())

    @property
    def revokes(self) -> int:
        return sum(s.epochs.revokes for s in self._owner.shards.values())


class _MergedNotify:
    """Fault hooks route by host; delivery counters aggregate."""

    def __init__(self, owner: "ShardedAllocator"):
        self._owner = owner

    def delay_extra(self, host_name: str, extra_s: float) -> None:
        self._owner.shard_for_host(host_name).notify.delay_extra(
            host_name, extra_s)

    def clear_delay(self, host_name: str) -> None:
        self._owner.shard_for_host(host_name).notify.clear_delay(host_name)

    def drop_next(self, host_name: str, count: int = 1) -> None:
        self._owner.shard_for_host(host_name).notify.drop_next(
            host_name, count)

    def clear_drops(self, host_name: str) -> None:
        self._owner.shard_for_host(host_name).notify.clear_drops(host_name)

    @property
    def delivered(self) -> int:
        return sum(s.notify.delivered for s in self._owner.shards.values())

    @property
    def delayed(self) -> int:
        return sum(s.notify.delayed for s in self._owner.shards.values())

    @property
    def dropped(self) -> int:
        return sum(s.notify.dropped for s in self._owner.shards.values())


class _MergedLeases:
    """The invariant checker's lease views, merged across shards."""

    def __init__(self, owner: "ShardedAllocator"):
        self._owner = owner

    @property
    def _by_key(self) -> dict:
        merged = {}
        for shard in self._owner.shards.values():
            merged.update(shard.leases._by_key)
        return merged

    def leases_on(self, device: str):
        return self._owner.shard_for_device(device).leases.leases_on(device)

    def get(self, ip: int, device: str):
        return self._owner.shard_for_device(device).leases.get(ip, device)


class _MergedState:
    """Just enough of ``ControlState`` for convergence checks."""

    def __init__(self, owner: "ShardedAllocator"):
        self._owner = owner

    def signature(self) -> tuple:
        return tuple(
            (name, shard.state.signature())
            for name, shard in sorted(self._owner.shards.items())
        )


class _MergedTelemetry:
    def __init__(self, owner: "ShardedAllocator"):
        self._owner = owner

    @property
    def records_ingested(self) -> int:
        return sum(s.telemetry_store.records_ingested
                   for s in self._owner.shards.values())


class ShardedAllocator:
    """One ``PodAllocator`` shard per CXL pool, behind a routing facade."""

    def __init__(
        self,
        sim: Simulator,
        config: Optional[OasisConfig] = None,
        shard_names: Optional[List[str]] = None,
        port_limit: Optional[int] = None,
    ):
        self.sim = sim
        self.config = config or OasisConfig()
        self.port_limit = port_limit
        self.shards: Dict[str, PodAllocator] = {}
        for name in (shard_names or ["pool0"]):
            policy = PlacementPolicy(allow_oversubscription=4.0,
                                     port_limit=port_limit)
            self.shards[name] = PodAllocator(sim, self.config, policy=policy)
        self._host_shard: Dict[str, str] = {}
        self._device_shard: Dict[str, str] = {}
        self.epochs = _MergedEpochs(self)
        self.notify = _MergedNotify(self)
        self.leases = _MergedLeases(self)
        self.state = _MergedState(self)
        self.telemetry_store = _MergedTelemetry(self)

    # -- routing -------------------------------------------------------------------

    def assign_host(self, host_name: str, shard_name: str) -> None:
        """Bind ``host_name`` to its pool's shard (topology wiring)."""
        if shard_name not in self.shards:
            raise KeyError(f"unknown shard {shard_name!r}")
        self._host_shard[host_name] = shard_name

    def shard_name_of_host(self, host_name: str) -> str:
        return self._host_shard[host_name]

    def shard_for_host(self, host_name: str) -> PodAllocator:
        return self.shards[self._host_shard[host_name]]

    def shard_for_device(self, device_name: str) -> PodAllocator:
        return self.shards[self._device_shard[device_name]]

    def _shard_of_ip(self, ip: int) -> Optional[PodAllocator]:
        for shard in self.shards.values():
            if (ip in shard.state.assignments or ip in shard.state.parked
                    or ip in shard.state.storage_assignments):
                return shard
        return None

    # -- wiring --------------------------------------------------------------------

    def register_frontend(self, host_name: str, frontend) -> None:
        self.shard_for_host(host_name).register_frontend(host_name, frontend)

    def register_storage_frontend(self, host_name: str, frontend) -> None:
        self.shard_for_host(host_name).register_storage_frontend(
            host_name, frontend)

    def register_backend(self, backend, capacity_gbps: float,
                         is_backup: bool = False) -> None:
        shard_name = self._host_shard[backend.host.name]
        self._device_shard[backend.nic.name] = shard_name
        self.shards[shard_name].register_backend(backend, capacity_gbps,
                                                 is_backup=is_backup)

    def register_storage_backend(self, backend, capacity_tb: float) -> None:
        shard_name = self._host_shard[backend.host.name]
        self._device_shard[backend.ssd.name] = shard_name
        self.shards[shard_name].register_storage_backend(backend, capacity_tb)

    def start_host_monitor(self) -> None:
        for shard in self.shards.values():
            shard.start_host_monitor()

    def start_lease_sweeper(self, interval_s: Optional[float] = None) -> None:
        for shard in self.shards.values():
            shard.start_lease_sweeper(interval_s)

    def stop(self) -> None:
        for shard in self.shards.values():
            shard.stop()

    @property
    def tracer(self):
        return next(iter(self.shards.values())).tracer

    @tracer.setter
    def tracer(self, tracer) -> None:
        for shard in self.shards.values():
            shard.tracer = tracer

    @property
    def on_failover(self):
        return next(iter(self.shards.values())).on_failover

    @on_failover.setter
    def on_failover(self, callback) -> None:
        for shard in self.shards.values():
            shard.on_failover = callback

    # -- placement -----------------------------------------------------------------

    def choose_backup_name(self, exclude: str) -> Optional[str]:
        return self.shard_for_device(exclude).choose_backup_name(exclude)

    def place_instance(self, ip: int, host_name: str,
                       nic_demand_gbps: float) -> tuple:
        return self.shard_for_host(host_name).place_instance(
            ip, host_name, nic_demand_gbps)

    def place_pinned(self, ip: int, host_name: str, nic_name: str,
                     nic_demand_gbps: float = 0.0,
                     backup: Optional[str] = None) -> int:
        shard = self.shard_for_device(nic_name)
        if shard is not self.shard_for_host(host_name):
            raise ValueError(
                f"{nic_name} is not reachable from {host_name}: instance "
                "and device must share a CXL pool")
        return shard.place_pinned(ip, host_name, nic_name,
                                  nic_demand_gbps, backup=backup)

    def place_storage(self, ip: int, host_name: str,
                      ssd_demand_tb: float) -> str:
        return self.shard_for_host(host_name).place_storage(
            ip, host_name, ssd_demand_tb)

    def place_pinned_storage(self, ip: int, host_name: str, ssd_name: str,
                             ssd_demand_tb: float = 0.0) -> int:
        shard = self.shard_for_device(ssd_name)
        if shard is not self.shard_for_host(host_name):
            raise ValueError(
                f"{ssd_name} is not reachable from {host_name}: instance "
                "and device must share a CXL pool")
        return shard.place_pinned_storage(ip, host_name, ssd_name,
                                          ssd_demand_tb)

    def release_instance(self, ip: int, nic_demand_gbps: float) -> None:
        shard = self._shard_of_ip(ip)
        if shard is not None:
            shard.release_instance(ip, nic_demand_gbps)

    def release_storage(self, ip: int, ssd_demand_tb: float) -> None:
        shard = self._shard_of_ip(ip)
        if shard is not None:
            shard.release_storage(ip, ssd_demand_tb)

    def migrate(self, ip: int, new_nic: str, demand_gbps: float = 0.0) -> None:
        self.shard_for_device(new_nic).migrate(ip, new_nic, demand_gbps)

    # -- telemetry / failure routing ------------------------------------------------

    def on_failure_report(self, nic_name: str) -> None:
        shard_name = self._device_shard.get(nic_name)
        if shard_name is not None:
            self.shards[shard_name].on_failure_report(nic_name)

    def on_telemetry(self, record: dict) -> None:
        shard_name = self._device_shard.get(record.get("nic"))
        if shard_name is not None:
            self.shards[shard_name].on_telemetry(record)

    def on_storage_telemetry(self, record: dict) -> None:
        shard_name = self._device_shard.get(record.get("nic"))
        if shard_name is not None:
            self.shards[shard_name].on_storage_telemetry(record)

    def on_frontend_telemetry(self, record: dict) -> None:
        host = record.get("host")
        if host is not None and host in self._host_shard:
            self.shard_for_host(host).on_frontend_telemetry(record)
        else:
            # No host tag: lease renewal is a per-ip no-op in shards that
            # don't hold the assignment, so fan out.
            for shard in self.shards.values():
                shard.on_frontend_telemetry(record)

    def resync_instance(self, ip: int, host_name: str) -> None:
        self.shard_for_host(host_name).resync_instance(ip, host_name)

    def resync_storage(self, ip: int, host_name: str) -> None:
        self.shard_for_host(host_name).resync_storage(ip, host_name)

    # -- merged read views ------------------------------------------------------------

    def _merged(self, attr: str) -> dict:
        merged: dict = {}
        for shard in self.shards.values():
            merged.update(getattr(shard, attr))
        return merged

    @property
    def devices(self) -> dict:
        return self._merged("devices")

    @property
    def storage_devices(self) -> dict:
        return self._merged("storage_devices")

    @property
    def assignments(self) -> dict:
        return self._merged("assignments")

    @property
    def backup_assignments(self) -> dict:
        return self._merged("backup_assignments")

    @property
    def storage_assignments(self) -> dict:
        return self._merged("storage_assignments")

    @property
    def parked(self) -> dict:
        return self._merged("parked")

    @property
    def failover_log(self) -> dict:
        return self._merged("failover_log")

    def _total(self, attr: str) -> int:
        return sum(getattr(shard, attr) for shard in self.shards.values())

    @property
    def failovers_executed(self) -> int:
        return self._total("failovers_executed")

    @property
    def migrations_executed(self) -> int:
        return self._total("migrations_executed")

    @property
    def lease_expirations(self) -> int:
        return self._total("lease_expirations")

    @property
    def duplicate_reports(self) -> int:
        return self._total("duplicate_reports")

    @property
    def failover_no_backup(self) -> int:
        return self._total("failover_no_backup")

    @property
    def batches_proposed(self) -> int:
        return self._total("batches_proposed")

    @property
    def pending_commands(self) -> int:
        # Each command is pending in exactly one shard (commands never cross
        # shards), so the rack-wide backlog is a plain sum.
        return self._total("pending_commands")

    @property
    def commit_latencies(self) -> list:
        merged: list = []
        for _name, shard in sorted(self.shards.items()):
            merged.extend(shard.commit_latencies)
        return merged

    # -- replication views ------------------------------------------------------------

    @property
    def replicated(self) -> bool:
        return any(shard.replicated for shard in self.shards.values())

    def leader_node(self):
        """A representative leader, only when *every* replicated shard has
        one (the rack-wide 'leaderless window over' signal)."""
        leader = None
        for shard in self.shards.values():
            if not shard.replicated:
                continue
            node = shard.leader_node()
            if node is None:
                return None
            if leader is None:
                leader = node
        return leader

    def _shard_of_node(self, node_id: str) -> Optional[PodAllocator]:
        for shard in self.shards.values():
            if node_id in shard.replicas:
                return shard
        return None

    def replica_signature(self, node_id: str):
        """The rack signature with ``node_id``'s shard seen through that
        replica -- equal to ``state.signature()`` iff the replica converged."""
        owner = self._shard_of_node(node_id)
        if owner is None:
            return None
        return tuple(
            (name, (shard.replica_signature(node_id) if shard is owner
                    else shard.state.signature()))
            for name, shard in sorted(self.shards.items())
        )

    def convergence_ok(self) -> bool:
        """Every replica of every replicated shard matches its canonical
        shard state (used by the rack CLI's end-of-run check)."""
        for shard in self.shards.values():
            canonical = shard.state.signature()
            for node_id in shard.replicas:
                if shard.replica_signature(node_id) != canonical:
                    return False
        return True
