"""Renewable leases binding instances to pooled devices (§3.5).

All allocator state is lease-based: an instance holds one lease per device it
uses; leases are renewed implicitly by telemetry and revoked in bulk when a
device or host fails.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ...errors import LeaseError

__all__ = ["Lease", "LeaseTable"]


@dataclass
class Lease:
    """One instance-to-device binding."""

    instance_ip: int
    device: str
    granted_at: float
    ttl_s: float
    expires_at: float = field(init=False)
    revoked: bool = False
    #: Fencing epoch minted when the lease was granted (§3.3.3); stamped on
    #: every post through the device and checked by the backend.
    epoch: int = 0

    def __post_init__(self):
        self.expires_at = self.granted_at + self.ttl_s

    def renew(self, now: float) -> None:
        if self.revoked:
            raise LeaseError(f"lease {self.instance_ip}->{self.device} is revoked")
        self.expires_at = now + self.ttl_s

    def valid(self, now: float) -> bool:
        return not self.revoked and now <= self.expires_at


class LeaseTable:
    """All live leases in the pod, indexed both ways."""

    def __init__(self, ttl_s: float):
        self.ttl_s = ttl_s
        self._by_key: Dict[Tuple[int, str], Lease] = {}

    def grant(self, instance_ip: int, device: str, now: float,
              epoch: int = 0) -> Lease:
        key = (instance_ip, device)
        existing = self._by_key.get(key)
        if existing is not None and existing.valid(now):
            raise LeaseError(f"lease already held: instance {instance_ip} on {device}")
        lease = Lease(instance_ip, device, now, self.ttl_s, epoch=epoch)
        self._by_key[key] = lease
        return lease

    def get(self, instance_ip: int, device: str) -> Optional[Lease]:
        return self._by_key.get((instance_ip, device))

    def renew_device(self, device: str, now: float) -> int:
        """Renew every live lease on ``device`` (driven by telemetry)."""
        count = 0
        for (ip, dev), lease in self._by_key.items():
            if dev == device and lease.valid(now):
                lease.renew(now)
                count += 1
        return count

    def revoke(self, instance_ip: int, device: str) -> None:
        lease = self._by_key.pop((instance_ip, device), None)
        if lease is not None:
            lease.revoked = True

    def revoke_device(self, device: str) -> List[Lease]:
        """Revoke all leases on ``device``; returns the affected leases."""
        revoked = []
        for key in [k for k in self._by_key if k[1] == device]:
            lease = self._by_key.pop(key)
            lease.revoked = True
            revoked.append(lease)
        return revoked

    def leases_on(self, device: str) -> List[Lease]:
        return [l for (ip, dev), l in self._by_key.items() if dev == device]

    def expired(self, now: float) -> List[Lease]:
        return [l for l in self._by_key.values() if not l.valid(now)]

    def __len__(self) -> int:
        return len(self._by_key)
