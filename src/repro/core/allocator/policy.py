"""Device placement policy (§3.5).

"When an instance is placed, the allocator first tries to satisfy its
allocations with host-local NIC bandwidth and SSD capacity.  If this is not
possible, the allocator greedily selects the devices with the lowest load."

Backup devices (§3.3.3) are kept underutilised: only node-local instances may
be placed on a backup NIC; remote instances never are.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ...errors import AllocationError

__all__ = ["DeviceState", "PlacementPolicy"]


@dataclass
class DeviceState:
    """Allocator-side view of one pooled device."""

    name: str
    host: str
    capacity: float               # Gbps for NICs, TB for SSDs
    allocated: float = 0.0
    is_backup: bool = False
    failed: bool = False
    measured_load: float = 0.0    # refreshed from telemetry

    @property
    def free(self) -> float:
        return self.capacity - self.allocated

    def utilization(self) -> float:
        return self.allocated / self.capacity if self.capacity else 0.0


class PlacementPolicy:
    """Local-first, then least-loaded greedy placement."""

    def __init__(self, allow_oversubscription: float = 1.0,
                 port_limit: Optional[int] = None):
        """``allow_oversubscription`` > 1 lets allocated demand exceed
        capacity (the whole point of pooling bursty traffic, §2.2).

        ``port_limit`` models the multi-headed device's finite head count: a
        device already serving instances from ``port_limit`` distinct hosts
        is ineligible for any further host (the head map is passed per call
        via ``choose(..., heads=...)``).
        """
        self.allow_oversubscription = allow_oversubscription
        self.port_limit = port_limit

    def _fits(self, device: DeviceState, demand: float) -> bool:
        limit = device.capacity * self.allow_oversubscription
        return device.allocated + demand <= limit

    def _eligible(self, device: DeviceState, host: str) -> bool:
        if device.failed:
            return False
        if device.is_backup and device.host != host:
            return False  # backups serve only node-local instances
        return True

    def _within_ports(self, device: DeviceState, host: str,
                      heads: Optional[Dict[str, set]]) -> bool:
        if self.port_limit is None or heads is None:
            return True
        current = heads.get(device.name)
        if not current or host in current:
            return True
        return len(current) < self.port_limit

    def choose(
        self,
        devices: Dict[str, DeviceState],
        host: str,
        demand: float,
        heads: Optional[Dict[str, set]] = None,
    ) -> DeviceState:
        """Pick a device for an instance on ``host`` needing ``demand``."""
        # 1. Host-local devices first.
        local = [
            d for d in devices.values()
            if d.host == host and self._eligible(d, host) and self._fits(d, demand)
            and self._within_ports(d, host, heads)
        ]
        if local:
            return min(local, key=lambda d: d.utilization())
        # 2. Greedy least-loaded remote device.
        remote = [
            d for d in devices.values()
            if self._eligible(d, host) and self._fits(d, demand)
            and self._within_ports(d, host, heads)
        ]
        if remote:
            return min(remote, key=lambda d: d.utilization())
        raise AllocationError(
            f"no device can satisfy demand {demand} for host {host}"
        )

    def choose_backup(
        self,
        devices: Dict[str, DeviceState],
        exclude: Optional[str] = None,
    ) -> Optional[DeviceState]:
        """Pick the failover target: the designated backup if alive, else the
        least-loaded healthy device."""
        backups = [
            d for d in devices.values()
            if d.is_backup and not d.failed and d.name != exclude
        ]
        if backups:
            return min(backups, key=lambda d: d.utilization())
        others = [
            d for d in devices.values() if not d.failed and d.name != exclude
        ]
        if not others:
            return None
        return min(others, key=lambda d: d.utilization())
