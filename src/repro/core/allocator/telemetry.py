"""Telemetry ingestion for the pod-wide allocator (§3.5).

Every backend driver reports a record every 100 ms (load, link status, AER
counters).  The store keeps the latest record per device plus a liveness
clock per host: a host that misses ``host_failure_missed_telemetry``
consecutive reports is declared dead and its devices failed over.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

__all__ = ["TelemetryStore"]


class TelemetryStore:
    """Latest-record store with host liveness inference."""

    def __init__(self, interval_s: float, missed_threshold: int = 3):
        self.interval_s = interval_s
        self.missed_threshold = missed_threshold
        self._latest: Dict[str, dict] = {}       # nic name -> record
        self._host_last_seen: Dict[str, float] = {}
        self.records_ingested = 0

    def ingest(self, record: dict) -> None:
        self._latest[record["nic"]] = record
        self._host_last_seen[record["host"]] = record["time"]
        self.records_ingested += 1

    def latest(self, nic: str) -> Optional[dict]:
        return self._latest.get(nic)

    def load_of(self, nic: str) -> float:
        """Most recent tx+rx bandwidth in bytes/s (0 if never reported)."""
        record = self._latest.get(nic)
        if record is None:
            return 0.0
        return record.get("tx_bw", 0.0) + record.get("rx_bw", 0.0)

    def host_alive(self, host: str, now: float) -> bool:
        last = self._host_last_seen.get(host)
        if last is None:
            return True  # never reported: give it the benefit of the doubt
        return (now - last) <= self.missed_threshold * self.interval_s

    def dead_hosts(self, now: float) -> List[str]:
        return [
            host for host, last in self._host_last_seen.items()
            if (now - last) > self.missed_threshold * self.interval_s
        ]

    def mark_seen(self, host: str, now: float) -> None:
        self._host_last_seen[host] = now
