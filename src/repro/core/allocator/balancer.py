"""Telemetry-driven load balancing (§6, "Load balancing policies").

The paper rebalances only at instance start or failure time, but notes that
the allocator's fine-grained telemetry "opens up the possibility for
advanced load balancing policies that exploit the bursty nature of network
traffic".  This module implements that extension: a periodic balancer that
watches each NIC's measured bandwidth and gracefully migrates instances off
NICs that stay above a high-water mark onto the least-loaded NIC, using the
§3.3.4 migration flow (GARP, dual-registration grace period, no packet
loss).

Hysteresis and a per-instance cooldown prevent migration storms on bursty
traffic.
"""

from __future__ import annotations

from typing import Dict, Optional

from ...config import OasisConfig
from ...sim.core import MSEC, Simulator

__all__ = ["LoadBalancer"]


class LoadBalancer:
    """Periodic high/low-water-mark balancer over the pod allocator."""

    def __init__(
        self,
        sim: Simulator,
        allocator,
        interval_ms: float = 500.0,
        high_water: float = 0.7,    # fraction of NIC line rate
        low_water: float = 0.4,
        cooldown_s: float = 5.0,
        config: Optional[OasisConfig] = None,
    ):
        self.sim = sim
        self.allocator = allocator
        self.config = config or OasisConfig()
        self.interval_s = interval_ms * MSEC
        self.high_water = high_water
        self.low_water = low_water
        self.cooldown_s = cooldown_s
        self._last_moved: Dict[int, float] = {}   # instance ip -> time
        self._task = None
        self.migrations = 0

    def start(self) -> None:
        if self._task is None:
            self._task = self.sim.every(self.interval_s, self._tick)

    def stop(self) -> None:
        if self._task is not None:
            self._task.cancel()
            self._task = None

    # -- policy -----------------------------------------------------------------

    def _line_rate(self) -> float:
        return self.config.nic.bytes_per_sec

    def _tick(self) -> None:
        devices = self.allocator.devices
        candidates = [d for d in devices.values()
                      if not d.failed and not d.is_backup]
        if len(candidates) < 2:
            return
        line = self._line_rate()
        hot = [d for d in candidates if d.measured_load > self.high_water * line]
        if not hot:
            return
        cold = min(candidates, key=lambda d: d.measured_load)
        if cold.measured_load > self.low_water * line:
            return   # nowhere quiet enough to move to
        hottest = max(hot, key=lambda d: d.measured_load)
        if hottest.name == cold.name:
            return
        victim = self._pick_victim(hottest.name)
        if victim is None:
            return
        self.allocator.migrate(victim, cold.name)
        self._last_moved[victim] = self.sim.now
        self.migrations += 1

    def _pick_victim(self, nic_name: str) -> Optional[int]:
        """An instance on the hot NIC that hasn't been moved recently."""
        now = self.sim.now
        for ip, nic in self.allocator.assignments.items():
            if nic != nic_name:
                continue
            if now - self._last_moved.get(ip, -1e9) < self.cooldown_s:
                continue
            return ip
        return None
