"""The pod-wide allocator: Oasis's control plane (§3.5).

A logically centralised service, never on the data path.  It owns the
authoritative instance-to-device mapping (leases), ingests 100 ms telemetry,
places new instances (local-first, then least-loaded), and mitigates
failures: a reported NIC failure revokes the affected leases, reassigns the
instances to the backup NIC, notifies every involved frontend driver and
triggers MAC borrowing at the backup backend -- the sequence whose end-to-end
latency is the ~38 ms interruption of Figure 13.

State lives in a :class:`~repro.core.control.state.ControlState` applied
through an :class:`~repro.core.control.state.AllocatorStateMachine`, so the
whole control plane is a deterministic command stream.  Two command classes:

- **Admission ops** (place, release, migrate, re-acquire, lease expiry) are
  applied synchronously at decide time -- the service is the sequencer --
  and replicated asynchronously through Raft, deduplicated by command ID.
- **Recovery ops** (failover) are *commit-gated*: proposed through Raft and
  executed only when a leader applies the committed entry.  If the leader
  crashes mid-failover, the command stays queued, is re-proposed to the new
  leader after re-election, and the state machine's command-ID dedup makes
  the failover exactly-once no matter how many times it lands in the log.

Every grant, revoke, failover and migration mints a per-device fencing
epoch (:class:`~repro.core.control.epoch.EpochTable`); backends reject
stale-epoch posts with ``FENCED`` so a frontend with a delayed or dropped
notification cannot corrupt post-failover state.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ...config import OasisConfig
from ...errors import AllocationError
from ...obs.trace import NULL_TRACER
from ...sim.core import MSEC, Simulator, USEC
from ..control import (AllocatorStateMachine, ControlState, EpochTable,
                       NotificationBus)
from ..control.state import copy_device
from .policy import DeviceState, PlacementPolicy
from .telemetry import TelemetryStore

__all__ = ["PodAllocator", "AllocatorClient"]


class PodAllocator:
    """The control plane service."""

    tracer = NULL_TRACER

    def __init__(
        self,
        sim: Simulator,
        config: Optional[OasisConfig] = None,
        policy: Optional[PlacementPolicy] = None,
    ):
        self.sim = sim
        self.config = config or OasisConfig()
        cfg = self.config.failover
        self.policy = policy or PlacementPolicy(allow_oversubscription=4.0)
        self.state = ControlState(lease_ttl_s=cfg.lease_ttl_ms * MSEC)
        self.machine = AllocatorStateMachine(self.state)
        self.epochs = EpochTable()
        self.notify = NotificationBus(sim)
        self.backends: Dict[str, object] = {}     # nic name -> backend driver
        self.frontends: Dict[str, object] = {}    # host name -> frontend driver
        self.storage_frontends: Dict[str, object] = {}
        self.nic_macs: Dict[str, int] = {}
        self.telemetry_store = TelemetryStore(cfg.telemetry_interval_ms * MSEC,
                                              cfg.host_failure_missed_telemetry)
        self.on_failover: Optional[Callable[[str, Optional[str]], None]] = None
        self._host_check_task = None
        self._lease_sweep_task = None
        self.storage_backends: Dict[str, object] = {}
        # Replication: either a single legacy-attached node or a full
        # cluster with one replica state machine per node.
        self._raft = None
        self._raft_nodes: list = []
        self.replicas: Dict[str, AllocatorStateMachine] = {}
        self._pending: Dict[str, dict] = {}    # cid -> command awaiting commit
        self._proposed_at: Dict[str, float] = {}
        self._effected: set = set()            # cids whose side effects ran
        self._retry_task = None
        self._epoch_seq: Dict[str, int] = {}
        self._cid_seq = 0
        self._failover_inflight: set = set()
        self.duplicate_reports = 0
        self.failover_no_backup = 0
        # Group commit (rack scale): commands buffered inside the flush
        # window ride a single Raft entry.  Off (window 0) by default.
        self._batch_buf: list = []
        self._batch_timer_armed = False
        self._batch_seq = 0
        self.batches_proposed = 0
        # Decide -> leader-applied latency samples (seconds), for the rack
        # benchmark; bounded so long runs cannot grow without limit.
        self._decided_at: Dict[str, float] = {}
        self.commit_latencies: list = []
        self._commit_latency_cap = 200_000

    # -- replicated-state views ----------------------------------------------------

    @property
    def devices(self) -> Dict[str, DeviceState]:
        return self.state.devices

    @property
    def storage_devices(self) -> Dict[str, DeviceState]:
        return self.state.storage_devices

    @property
    def leases(self):
        return self.state.leases

    @property
    def assignments(self) -> Dict[int, str]:
        return self.state.assignments

    @property
    def backup_assignments(self) -> Dict[int, str]:
        return self.state.backup_assignments

    @property
    def storage_assignments(self) -> Dict[int, str]:
        return self.state.storage_assignments

    @property
    def parked(self) -> Dict[int, tuple]:
        return self.state.parked

    @property
    def failovers_executed(self) -> int:
        return self.state.failovers_executed

    @property
    def migrations_executed(self) -> int:
        return self.state.migrations_executed

    @property
    def lease_expirations(self) -> int:
        return self.state.lease_expirations

    @property
    def failover_log(self) -> Dict[str, int]:
        return self.state.failover_log

    @property
    def pending_commands(self) -> int:
        return len(self._pending)

    @property
    def replicated(self) -> bool:
        return self._raft is not None or bool(self._raft_nodes)

    def leader_node(self):
        if self._raft_nodes:
            for node in self._raft_nodes:
                if node.alive and node.is_leader:
                    return node
            return None
        if self._raft is not None and self._raft.is_leader:
            return self._raft
        return None

    # -- wiring --------------------------------------------------------------------

    def attach_raft(self, raft_node) -> None:
        """Replicate decisions through ``raft_node`` (apply_cb must be us)."""
        self._raft = raft_node
        self._start_commit_retry()

    def attach_raft_cluster(self, nodes) -> None:
        """Replicate through a full cluster: one state-machine replica per
        node, seeded from a snapshot of the current state; the canonical
        machine (and its side effects) advance wherever the leader applies."""
        self._raft = None
        self._raft_nodes = list(nodes)
        snap = self.state.snapshot()
        self.replicas = {}
        for node in nodes:
            replica = AllocatorStateMachine(ControlState.restore(snap))
            self.replicas[node.node_id] = replica
            node.apply_cb = self._make_apply_cb(node, replica)
        self._start_commit_retry()

    def _make_apply_cb(self, node, replica):
        def _apply(index: int, command: dict) -> None:
            replica.apply(command)
            if node.is_leader:
                self._service_apply(command)
        return _apply

    def register_backend(self, backend, capacity_gbps: float,
                         is_backup: bool = False) -> None:
        nic = backend.nic
        device = DeviceState(
            name=nic.name, host=backend.host.name, capacity=capacity_gbps,
            is_backup=is_backup,
        )
        self.devices[nic.name] = device
        for replica in self.replicas.values():
            replica.state.devices[nic.name] = copy_device(device)
        self.backends[nic.name] = backend
        self.nic_macs[nic.name] = nic.mac
        if self.state.parked:
            self.sim.schedule(0.0, self._retry_parked)

    def register_frontend(self, host_name: str, frontend) -> None:
        self.frontends[host_name] = frontend

    def register_storage_frontend(self, host_name: str, frontend) -> None:
        self.storage_frontends[host_name] = frontend

    def start_host_monitor(self) -> None:
        """Infer host failures from missing telemetry records (§3.5)."""
        interval = self.config.failover.telemetry_interval_ms * MSEC
        self._host_check_task = self.sim.every(interval, self._check_hosts)

    def start_lease_sweeper(self, interval_s: Optional[float] = None) -> None:
        """Periodically revoke expired leases (lease lifecycle enforcement)."""
        if self._lease_sweep_task is not None:
            return
        if interval_s is None:
            interval_s = self.config.failover.lease_sweep_interval_ms * MSEC
        self._lease_sweep_task = self.sim.every(interval_s, self._sweep_leases)

    def stop(self) -> None:
        for task in (self._host_check_task, self._lease_sweep_task,
                     self._retry_task):
            if task is not None:
                task.cancel()
        self._host_check_task = None
        self._lease_sweep_task = None
        self._retry_task = None

    # -- command plumbing ----------------------------------------------------------

    def _next_cid(self) -> str:
        self._cid_seq += 1
        return f"c{self._cid_seq:06d}"

    def _next_epoch(self, device: str) -> int:
        nxt = max(self._epoch_seq.get(device, 0),
                  self.epochs.device_epoch.get(device, 0)) + 1
        self._epoch_seq[device] = nxt
        return nxt

    def _stamp(self, command: dict) -> dict:
        command = dict(command)
        command["cid"] = self._next_cid()
        command["now"] = self.sim.now
        return command

    def _service_apply(self, command: dict) -> None:
        """Canonical apply: mutate state once, run side effects once."""
        if command.get("op") == "batch":
            # Group-commit entry: apply + effect each sub-command in decide
            # order, exactly once per batch cid (duplicate log entries of the
            # same batch are skipped wholesale; re-batched duplicates of a
            # sub-command dedup on the sub-command's own cid below).
            bcid = command.get("cid")
            if bcid is not None and bcid in self._effected:
                return
            if bcid is not None:
                self._effected.add(bcid)
            for sub in command.get("cmds", []):
                self._service_apply(sub)
            return
        cid = command.get("cid")
        if cid is None or cid not in self._effected:
            if self.machine.apply(command):
                if cid is not None:
                    self._effected.add(cid)
                self._execute_effects(command)
        if cid is not None:
            if cid in self._pending:
                decided = self._decided_at.pop(cid, None)
                if (decided is not None
                        and len(self.commit_latencies) < self._commit_latency_cap):
                    self.commit_latencies.append(self.sim.now - decided)
            self._pending.pop(cid, None)
            self._proposed_at.pop(cid, None)

    def _decide_commit(self, command: dict) -> dict:
        """Admission ops: apply at decide time, replicate asynchronously."""
        command = self._stamp(command)
        self._service_apply(command)
        if self.replicated:
            self._pending[command["cid"]] = command
            self._decided_at[command["cid"]] = self.sim.now
            self._replicate(command)
        return command

    def _commit(self, command: dict) -> dict:
        """Recovery ops: queue until a leader commits and applies the entry."""
        command = self._stamp(command)
        if not self.replicated:
            self._service_apply(command)
            return command
        self._pending[command["cid"]] = command
        self._decided_at[command["cid"]] = self.sim.now
        self._replicate(command)
        return command

    def _replicate(self, command: dict) -> None:
        """Hand a pending command to Raft: direct, or via the batch buffer."""
        window_ms = self.config.failover.commit_batch_window_ms
        if window_ms <= 0:
            self._try_propose(command)
            return
        self._batch_buf.append(command)
        if len(self._batch_buf) >= self.config.failover.commit_batch_max:
            self._flush_batch()
        elif not self._batch_timer_armed:
            # One-shot flush timer, re-armed by the next buffered command
            # after each flush (a stuck always-armed flag would strand every
            # command buffered after the first window -- see the regression
            # in tests/test_control_plane.py).
            self._batch_timer_armed = True
            self.sim.schedule(window_ms * MSEC, self._flush_batch)

    def _flush_batch(self) -> None:
        self._batch_timer_armed = False
        if not self._batch_buf:
            return
        cmds, self._batch_buf = self._batch_buf, []
        # A command can leave _pending before its flush fires (an earlier
        # duplicate entry already applied it); don't re-propose those.
        cmds = [cmd for cmd in cmds if cmd["cid"] in self._pending]
        if not cmds:
            return
        leader = self.leader_node()
        if leader is None:
            # Leaderless flush window (e.g. the leader crashed after decide):
            # the commands are already in _pending with no proposal stamp, so
            # the commit-retry task re-batches them after the next election.
            return
        self._propose_batch(leader, cmds)

    def _propose_batch(self, leader, cmds: list) -> None:
        self._batch_seq += 1
        leader.propose({"op": "batch", "cid": f"b{self._batch_seq:06d}",
                        "cmds": list(cmds)})
        self.batches_proposed += 1
        now = self.sim.now
        for cmd in cmds:
            self._proposed_at[cmd["cid"]] = now

    def _try_propose(self, command: dict) -> None:
        leader = self.leader_node()
        if leader is not None:
            leader.propose(command)
            self._proposed_at[command["cid"]] = self.sim.now

    def _start_commit_retry(self) -> None:
        if self._retry_task is not None:
            return
        interval = self.config.failover.commit_retry_ms * MSEC
        self._retry_task = self.sim.every(interval, self._retry_pending)

    def _retry_pending(self) -> None:
        """Re-propose queued commands (e.g. after a leader crash) in decide
        order; duplicate log entries are deduplicated by cid at apply."""
        if not self._pending:
            return
        leader = self.leader_node()
        if leader is None:
            return
        interval = self.config.failover.commit_retry_ms * MSEC
        due = [cid for cid in sorted(self._pending)
               if self.sim.now - self._proposed_at.get(cid, -1.0)
               >= interval * 0.99]
        if not due:
            return
        if self.config.failover.commit_batch_window_ms > 0:
            # Group commit: the whole overdue backlog rides one entry.
            self._propose_batch(leader, [self._pending[cid] for cid in due])
        else:
            for cid in due:
                leader.propose(self._pending[cid])
                self._proposed_at[cid] = self.sim.now

    def apply(self, index: int, command: dict) -> None:
        """State-machine apply (legacy Raft callback or direct)."""
        if self._raft is None or self._raft.is_leader:
            self._service_apply(command)

    def replica_signature(self, node_id: str):
        replica = self.replicas.get(node_id)
        return None if replica is None else replica.state.signature()

    # -- placement --------------------------------------------------------------------

    def _device_heads(self, storage: bool = False) -> Optional[Dict[str, set]]:
        """Hosts currently attached per device (the multi-headed-device port
        map).  Only materialised when the policy enforces a port limit."""
        if self.policy.port_limit is None:
            return None
        table = (self.state.storage_assignments if storage
                 else self.state.assignments)
        heads: Dict[str, set] = {}
        for ip, device in table.items():
            host = self.state.hosts.get(ip)
            if host is not None:
                heads.setdefault(device, set()).add(host)
        return heads

    def choose_backup_name(self, exclude: str) -> Optional[str]:
        """Pick a backup device name for a pinned placement (pod helper)."""
        backup = self.policy.choose_backup(self.devices, exclude=exclude)
        return backup.name if backup else None

    def place_instance(self, ip: int, host_name: str, nic_demand_gbps: float) -> tuple:
        """Allocate a (primary, backup) NIC pair for a new instance."""
        device = self.policy.choose(self.devices, host_name, nic_demand_gbps,
                                    heads=self._device_heads())
        backup = self.policy.choose_backup(self.devices, exclude=device.name)
        self._decide_commit({
            "op": "place", "ip": ip, "host": host_name, "nic": device.name,
            "backup": backup.name if backup else None,
            "demand": nic_demand_gbps, "epoch": self._next_epoch(device.name),
        })
        return device.name, backup.name if backup else None

    def place_pinned(self, ip: int, host_name: str, nic_name: str,
                     nic_demand_gbps: float = 0.0,
                     backup: Optional[str] = None) -> int:
        """Grant ``ip`` on an operator-chosen NIC; returns the minted epoch."""
        epoch = self._next_epoch(nic_name)
        self._decide_commit({
            "op": "place", "ip": ip, "host": host_name, "nic": nic_name,
            "backup": backup, "demand": nic_demand_gbps, "epoch": epoch,
        })
        return epoch

    # -- storage placement (§3.4) -----------------------------------------------

    def register_storage_backend(self, backend, capacity_tb: float) -> None:
        ssd = backend.ssd
        device = DeviceState(
            name=ssd.name, host=backend.host.name, capacity=capacity_tb,
        )
        self.storage_devices[ssd.name] = device
        for replica in self.replicas.values():
            replica.state.storage_devices[ssd.name] = copy_device(device)
        self.storage_backends[ssd.name] = backend

    def place_storage(self, ip: int, host_name: str, ssd_demand_tb: float) -> str:
        """Allocate an SSD for a new instance; returns the device name."""
        device = self.policy.choose(self.storage_devices, host_name,
                                    ssd_demand_tb,
                                    heads=self._device_heads(storage=True))
        self._decide_commit({
            "op": "place-storage", "ip": ip, "host": host_name,
            "ssd": device.name, "demand": ssd_demand_tb,
            "epoch": self._next_epoch(device.name),
        })
        return device.name

    def place_pinned_storage(self, ip: int, host_name: str, ssd_name: str,
                             ssd_demand_tb: float = 0.0) -> int:
        """Grant ``ip`` on an operator-chosen SSD; returns the minted epoch."""
        epoch = self._next_epoch(ssd_name)
        self._decide_commit({
            "op": "place-storage", "ip": ip, "host": host_name,
            "ssd": ssd_name, "demand": ssd_demand_tb, "epoch": epoch,
        })
        return epoch

    def release_storage(self, ip: int, ssd_demand_tb: float) -> None:
        ssd = self.storage_assignments.get(ip)
        if ssd is not None:
            self._decide_commit({
                "op": "release-storage", "ip": ip, "ssd": ssd,
                "demand": ssd_demand_tb,
                "revoke_epoch": self._next_epoch(ssd),
            })

    def on_storage_telemetry(self, record: dict) -> None:
        self.telemetry_store.ingest(record)
        device = self.storage_devices.get(record["nic"])
        if device is not None:
            device.measured_load = record.get("tx_bw", 0.0) + record.get("rx_bw", 0.0)

    def release_instance(self, ip: int, nic_demand_gbps: float) -> None:
        nic = self.assignments.get(ip)
        if nic is not None:
            self._decide_commit({
                "op": "release", "ip": ip, "nic": nic,
                "demand": nic_demand_gbps,
                "revoke_epoch": self._next_epoch(nic),
            })

    # -- telemetry ----------------------------------------------------------------------

    def on_telemetry(self, record: dict) -> None:
        self.telemetry_store.ingest(record)
        device = self.devices.get(record["nic"])
        if device is not None:
            device.measured_load = record.get("tx_bw", 0.0) + record.get("rx_bw", 0.0)

    def on_frontend_telemetry(self, record: dict) -> None:
        """Frontends renew their instances' leases; device backends cannot
        vouch for the writers, only for themselves."""
        now = self.sim.now
        for ip in record.get("ips", []):
            for table in (self.assignments, self.storage_assignments):
                device = table.get(ip)
                if device is None:
                    continue
                lease = self.state.leases.get(ip, device)
                if lease is not None and lease.valid(now):
                    lease.renew(now)

    def _check_hosts(self) -> None:
        for host in self.telemetry_store.dead_hosts(self.sim.now):
            for device in list(self.devices.values()):
                if device.host == host and not device.failed:
                    self.on_failure_report(device.name)
            # Avoid re-triggering every tick.
            self.telemetry_store.mark_seen(host, self.sim.now)

    # -- failure management (§3.3.3) --------------------------------------------------------

    def on_failure_report(self, nic_name: str) -> None:
        """A backend reported its NIC down (or a host went silent)."""
        device = self.devices.get(nic_name)
        if device is None:
            return
        if device.failed or nic_name in self._failover_inflight:
            self.duplicate_reports += 1
            return
        device.failed = True
        self._failover_inflight.add(nic_name)
        # Close the backend's report span (no-op for the silent-host path,
        # which never opened one) and open the allocator-processing span.
        self.tracer.end("failover.report", key=nic_name)
        self.tracer.begin("failover.process", key=nic_name,
                          category="failover", track="failover", nic=nic_name)
        processing = self.config.failover.allocator_processing_ms * MSEC
        self.sim.schedule(processing, self._commit_failover, nic_name)

    def _commit_failover(self, nic_name: str) -> None:
        device = self.devices.get(nic_name)
        if device is None:
            return
        backup = self.policy.choose_backup(self.devices, exclude=nic_name)
        moved_ips = sorted(ip for ip, nic in self.assignments.items()
                           if nic == nic_name)
        self._commit({
            "op": "failover", "nic": nic_name,
            "backup": backup.name if backup else None,
            "revoke_epoch": self._next_epoch(nic_name),
            "moved": [[ip, self._next_epoch(backup.name) if backup else 0]
                      for ip in moved_ips],
        })

    # -- side effects (leader-only, exactly once per cid) ---------------------------

    def _execute_effects(self, command: dict) -> None:
        op = command.get("op", "")
        handler = getattr(self, "_effects_" + op.replace("-", "_"), None)
        if handler is not None:
            handler(command)

    def _effects_place(self, cmd: dict) -> None:
        self.epochs.publish_grant(cmd["nic"], cmd["ip"], cmd.get("epoch", 0))
        self.tracer.instant("alloc.place", category="allocator",
                            track="allocator", ip=cmd["ip"], nic=cmd["nic"],
                            backup=cmd.get("backup"))

    def _effects_reacquire(self, cmd: dict) -> None:
        cfg = self.config.failover
        self.epochs.publish_grant(cmd["nic"], cmd["ip"], cmd.get("epoch", 0))
        host = cmd.get("host")
        backend = self.backends.get(cmd["nic"])
        if backend is not None and host is not None:
            backend.register_instance(cmd["ip"], host)
        frontend = self.frontends.get(host)
        if frontend is not None:
            self.notify.send(host, cfg.notify_frontend_ms * MSEC,
                             frontend.sync_instance, cmd["ip"], cmd["nic"],
                             cmd.get("epoch", 0))
        self.tracer.instant("failover.reacquire", category="failover",
                            track="failover", ip=cmd["ip"], nic=cmd["nic"])

    def _effects_place_storage(self, cmd: dict) -> None:
        self.epochs.publish_grant(cmd["ssd"], cmd["ip"], cmd.get("epoch", 0))

    def _effects_reacquire_storage(self, cmd: dict) -> None:
        cfg = self.config.failover
        self.epochs.publish_grant(cmd["ssd"], cmd["ip"], cmd.get("epoch", 0))
        host = cmd.get("host")
        frontend = self.storage_frontends.get(host)
        if frontend is not None:
            self.notify.send(host, cfg.notify_frontend_ms * MSEC,
                             frontend.set_stamp, cmd["ssd"], cmd["ip"],
                             cmd.get("epoch", 0))

    def _effects_release(self, cmd: dict) -> None:
        self.epochs.publish_revoke(cmd["nic"], cmd["ip"],
                                   cmd.get("revoke_epoch", 0))

    def _effects_release_storage(self, cmd: dict) -> None:
        self.epochs.publish_revoke(cmd["ssd"], cmd["ip"],
                                   cmd.get("revoke_epoch", 0))

    def _effects_migrate(self, cmd: dict) -> None:
        ip, old, new = cmd["ip"], cmd["old"], cmd["new"]
        backend = self.backends.get(new)
        frontend = self.frontends.get(cmd.get("host"))
        self.epochs.publish_grant(new, ip, cmd.get("grant_epoch", 0))
        if backend is not None and frontend is not None:
            backend.register_instance(ip, frontend.host.name)
            frontend.migrate_instance(ip, frontend.link(new),
                                      epoch=cmd.get("grant_epoch", 0))
        # The old NIC keeps accepting this instance until the dual-RX grace
        # window closes; the min-epoch guard keeps a re-grant alive.
        grace = self.config.failover.migration_grace_period_s
        self.sim.schedule(grace, self.epochs.publish_revoke, old, ip,
                          cmd.get("revoke_epoch", 0))
        self.tracer.instant("alloc.migrate", category="allocator",
                            track="allocator", ip=ip, old=old, new=new)

    def _effects_failover(self, cmd: dict) -> None:
        cfg = self.config.failover
        nic_name = cmd["nic"]
        info = self.machine.last_failover or {"backup": None, "moved": []}
        self._failover_inflight.discard(nic_name)
        backup_name = info.get("backup")
        revoke_epoch = cmd.get("revoke_epoch", 0)
        self.epochs.publish_device(nic_name, revoke_epoch)
        for ip, _epoch in cmd.get("moved", []):
            self.epochs.publish_revoke(nic_name, ip, revoke_epoch)
        self.tracer.end("failover.process", key=nic_name, backup=backup_name)
        if backup_name is None:
            # Graceful degradation: no backup available.  Instances are
            # parked; they re-acquire when a backend registers (or the
            # sweeper retries).
            self.failover_no_backup += 1
            self.tracer.instant("failover.no_backup", category="failover",
                                track="failover", nic=nic_name,
                                parked=len(info.get("moved", [])))
            for host, frontend in self.frontends.items():
                self.notify.send(host, cfg.notify_frontend_ms * MSEC,
                                 frontend.fail_over, nic_name, None, {})
            if self.on_failover is not None:
                self.on_failover(nic_name, None)
            return
        self.tracer.begin("failover.reroute", key=nic_name,
                          category="failover", track="failover",
                          nic=nic_name, backup=backup_name)
        # The reroute phase ends once the slower of the two parallel legs
        # (frontend notification / MAC borrowing) has landed.
        reroute_ms = max(cfg.notify_frontend_ms, cfg.mac_borrow_ms)
        self.sim.schedule(reroute_ms * MSEC, self.tracer.end,
                          "failover.reroute", nic_name)
        epoch_map = {ip: epoch for ip, epoch in cmd.get("moved", [])}
        for ip, epoch in cmd.get("moved", []):
            self.epochs.publish_grant(backup_name, ip, epoch)
        backup_backend = self.backends.get(backup_name)
        if backup_backend is not None:
            for ip in info.get("moved", []):
                host = self.state.hosts.get(ip)
                if host is not None:
                    backup_backend.register_instance(ip, host)
        # Notify every frontend using the failed NIC; they atomically reroute
        # TX traffic (buffers are already in shared CXL memory) to the
        # replacement we picked, adopting the new fencing epochs.
        for host, frontend in self.frontends.items():
            self.notify.send(host, cfg.notify_frontend_ms * MSEC,
                             frontend.fail_over, nic_name, backup_name,
                             epoch_map)
        # The backup NIC borrows the failed NIC's MAC so the switch reroutes
        # RX packets without application involvement.
        failed_mac = self.nic_macs.get(nic_name)
        if backup_backend is not None and failed_mac is not None:
            self.sim.schedule(cfg.mac_borrow_ms * MSEC,
                              backup_backend.borrow_mac, failed_mac)
        if self.on_failover is not None:
            self.on_failover(nic_name, backup_name)

    def _effects_expire(self, cmd: dict) -> None:
        for ip, device, revoke_epoch, _kind in cmd.get("entries", []):
            self.epochs.publish_revoke(device, ip, revoke_epoch)
            self.tracer.instant("lease.expire", category="allocator",
                                track="allocator", ip=ip, device=device)

    # -- lease lifecycle ----------------------------------------------------------

    def _sweep_leases(self) -> None:
        now = self.sim.now
        entries = []
        for lease in self.state.leases.expired(now):
            device = lease.device
            if device in self.devices:
                kind = "nic"
            elif device in self.storage_devices:
                kind = "ssd"
            else:
                continue
            entries.append([lease.instance_ip, device,
                            self._next_epoch(device), kind])
        if entries:
            entries.sort()
            self._decide_commit({"op": "expire", "entries": entries})
        if self.state.parked:
            self._retry_parked()

    def _retry_parked(self) -> None:
        for ip, (host, demand) in sorted(self.state.parked.items()):
            self._reacquire(ip, host)

    def _reacquire(self, ip: int, host_name: Optional[str]) -> bool:
        entry = self.state.parked.get(ip)
        demand = entry[1] if entry is not None else self.state.demands.get(ip, 0.0)
        host = (entry[0] if entry is not None and entry[0] else host_name) or ""
        try:
            device = self.policy.choose(self.devices, host, demand,
                                        heads=self._device_heads())
        except AllocationError:
            return False
        backup = self.policy.choose_backup(self.devices, exclude=device.name)
        self._decide_commit({
            "op": "reacquire", "ip": ip, "host": host, "nic": device.name,
            "backup": backup.name if backup else None, "demand": demand,
            "epoch": self._next_epoch(device.name),
        })
        return True

    def resync_instance(self, ip: int, host_name: str) -> None:
        """A fenced frontend asked where instance ``ip`` lives now."""
        cfg = self.config.failover
        now = self.sim.now
        nic = self.assignments.get(ip)
        if nic is not None and not self.devices[nic].failed:
            lease = self.state.leases.get(ip, nic)
            if lease is not None and lease.valid(now):
                # The frontend just missed a notification: resend it.
                frontend = self.frontends.get(host_name)
                if frontend is not None:
                    epoch = self.epochs.entry(nic, ip) or lease.epoch
                    self.notify.send(host_name, cfg.notify_frontend_ms * MSEC,
                                     frontend.sync_instance, ip, nic, epoch)
                return
            # Expired under the frontend: revoke, then re-acquire fresh --
            # never silently reuse a dead lease.
            self._decide_commit({"op": "expire", "entries": [
                [ip, nic, self._next_epoch(nic), "nic"]]})
            self._reacquire(ip, host_name)
            return
        if nic is None or ip in self.state.parked:
            self._reacquire(ip, host_name)
        # Otherwise the device failed but its failover has not applied yet;
        # the failover (or a later resync) will re-home the instance.

    def resync_storage(self, ip: int, host_name: str) -> None:
        """A fenced storage frontend asked for a fresh grant."""
        cfg = self.config.failover
        now = self.sim.now
        ssd = self.storage_assignments.get(ip)
        if ssd is None:
            return
        lease = self.state.leases.get(ip, ssd)
        if lease is not None and lease.valid(now):
            frontend = self.storage_frontends.get(host_name)
            if frontend is not None:
                epoch = self.epochs.entry(ssd, ip) or lease.epoch
                self.notify.send(host_name, cfg.notify_frontend_ms * MSEC,
                                 frontend.set_stamp, ssd, ip, epoch)
            return
        self._decide_commit({
            "op": "reacquire-storage", "ip": ip, "host": host_name,
            "ssd": ssd, "demand": self.state.storage_demands.get(ip, 0.0),
            "epoch": self._next_epoch(ssd),
        })

    # -- load balancing (§3.3.4) ------------------------------------------------------------------

    def migrate(self, ip: int, new_nic: str, demand_gbps: float = 0.0) -> None:
        """Gracefully migrate one instance's traffic to ``new_nic``."""
        old_nic = self.assignments.get(ip)
        if old_nic == new_nic or old_nic is None:
            return
        frontend = self._frontend_of(ip)
        self._decide_commit({
            "op": "migrate", "ip": ip, "old": old_nic, "new": new_nic,
            "host": frontend.host.name, "demand": demand_gbps,
            "revoke_epoch": self._next_epoch(old_nic),
            "grant_epoch": self._next_epoch(new_nic),
        })

    def rebalance_once(self, demand_gbps: float = 0.0) -> Optional[tuple]:
        """Move one instance from the most- to the least-loaded NIC."""
        candidates = [d for d in self.devices.values()
                      if not d.failed and not d.is_backup]
        if len(candidates) < 2:
            return None
        hottest = max(candidates, key=lambda d: d.measured_load)
        coldest = min(candidates, key=lambda d: d.measured_load)
        if hottest.name == coldest.name:
            return None
        victims = [ip for ip, nic in self.assignments.items()
                   if nic == hottest.name]
        if not victims:
            return None
        ip = victims[0]
        self.migrate(ip, coldest.name, demand_gbps)
        return ip, hottest.name, coldest.name

    def _frontend_of(self, ip: int):
        for frontend in self.frontends.values():
            if ip in frontend._records:
                return frontend
        raise AllocationError(f"no frontend knows instance {ip}")


class AllocatorClient:
    """Driver-side stub: models the channel hop to the allocator (§3.2.2).

    ``storage=True`` routes telemetry to the storage-device table.
    """

    def __init__(self, sim: Simulator, allocator: PodAllocator,
                 latency_us: float = 5.0, storage: bool = False):
        self.sim = sim
        self.allocator = allocator
        self.latency_s = latency_us * USEC
        self.storage = storage

    def report_failure(self, backend) -> None:
        self.sim.schedule(self.latency_s, self.allocator.on_failure_report,
                          backend.nic.name)

    def telemetry(self, backend, record: dict) -> None:
        target = (self.allocator.on_storage_telemetry if self.storage
                  else self.allocator.on_telemetry)
        self.sim.schedule(self.latency_s, target, record)

    def frontend_telemetry(self, record: dict) -> None:
        self.sim.schedule(self.latency_s, self.allocator.on_frontend_telemetry,
                          record)

    def request_resync(self, ip: int, host_name: str) -> None:
        self.sim.schedule(self.latency_s, self.allocator.resync_instance,
                          ip, host_name)

    def request_storage_resync(self, ip: int, host_name: str) -> None:
        self.sim.schedule(self.latency_s, self.allocator.resync_storage,
                          ip, host_name)
