"""The pod-wide allocator: Oasis's control plane (§3.5).

A logically centralised service, never on the data path.  It owns the
authoritative instance-to-device mapping (leases), ingests 100 ms telemetry,
places new instances (local-first, then least-loaded), and mitigates
failures: a reported NIC failure revokes the affected leases, reassigns the
instances to the backup NIC, notifies every involved frontend driver and
triggers MAC borrowing at the backup backend -- the sequence whose end-to-end
latency is the ~38 ms interruption of Figure 13.

Decisions are committed through a Raft cluster when one is attached
(:meth:`attach_raft`); side effects run only where the command commits on the
leader, so a replicated allocator survives leader loss without double-acting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ...config import OasisConfig
from ...errors import AllocationError
from ...obs.trace import NULL_TRACER
from ...sim.core import MSEC, Simulator, USEC
from .leases import LeaseTable
from .policy import DeviceState, PlacementPolicy
from .telemetry import TelemetryStore

__all__ = ["PodAllocator", "AllocatorClient"]


class PodAllocator:
    """The control plane service."""

    tracer = NULL_TRACER

    def __init__(
        self,
        sim: Simulator,
        config: Optional[OasisConfig] = None,
        policy: Optional[PlacementPolicy] = None,
    ):
        self.sim = sim
        self.config = config or OasisConfig()
        cfg = self.config.failover
        self.policy = policy or PlacementPolicy(allow_oversubscription=4.0)
        self.devices: Dict[str, DeviceState] = {}
        self.backends: Dict[str, object] = {}     # nic name -> backend driver
        self.frontends: Dict[str, object] = {}    # host name -> frontend driver
        self.nic_macs: Dict[str, int] = {}
        self.assignments: Dict[int, str] = {}     # instance ip -> nic name
        self.backup_assignments: Dict[int, str] = {}
        self.leases = LeaseTable(cfg.lease_ttl_ms * MSEC)
        self.telemetry_store = TelemetryStore(cfg.telemetry_interval_ms * MSEC,
                                              cfg.host_failure_missed_telemetry)
        self._raft = None
        self.failovers_executed = 0
        self.migrations_executed = 0
        self.on_failover: Optional[Callable[[str, str], None]] = None
        self._host_check_task = None
        # Storage pooling (§3.4): SSDs are placed with the same local-first /
        # least-loaded policy, tracked separately from NICs.
        self.storage_devices: Dict[str, DeviceState] = {}
        self.storage_backends: Dict[str, object] = {}
        self.storage_assignments: Dict[int, str] = {}

    # -- wiring --------------------------------------------------------------------

    def attach_raft(self, raft_node) -> None:
        """Replicate decisions through ``raft_node`` (apply_cb must be us)."""
        self._raft = raft_node

    def register_backend(self, backend, capacity_gbps: float,
                         is_backup: bool = False) -> None:
        nic = backend.nic
        self.devices[nic.name] = DeviceState(
            name=nic.name, host=backend.host.name, capacity=capacity_gbps,
            is_backup=is_backup,
        )
        self.backends[nic.name] = backend
        self.nic_macs[nic.name] = nic.mac

    def register_frontend(self, host_name: str, frontend) -> None:
        self.frontends[host_name] = frontend

    def start_host_monitor(self) -> None:
        """Infer host failures from missing telemetry records (§3.5)."""
        interval = self.config.failover.telemetry_interval_ms * MSEC
        self._host_check_task = self.sim.every(interval, self._check_hosts)

    # -- placement --------------------------------------------------------------------

    def place_instance(self, ip: int, host_name: str, nic_demand_gbps: float) -> tuple:
        """Allocate a (primary, backup) NIC pair for a new instance."""
        device = self.policy.choose(self.devices, host_name, nic_demand_gbps)
        device.allocated += nic_demand_gbps
        backup = self.policy.choose_backup(self.devices, exclude=device.name)
        self.assignments[ip] = device.name
        if backup is not None:
            self.backup_assignments[ip] = backup.name
        self.leases.grant(ip, device.name, self.sim.now)
        self.tracer.instant("alloc.place", category="allocator",
                            track="allocator", ip=ip, nic=device.name,
                            backup=backup.name if backup else None)
        self._commit({"op": "place", "ip": ip, "nic": device.name,
                      "backup": backup.name if backup else None})
        return device.name, backup.name if backup else None

    # -- storage placement (§3.4) -----------------------------------------------

    def register_storage_backend(self, backend, capacity_tb: float) -> None:
        ssd = backend.ssd
        self.storage_devices[ssd.name] = DeviceState(
            name=ssd.name, host=backend.host.name, capacity=capacity_tb,
        )
        self.storage_backends[ssd.name] = backend

    def place_storage(self, ip: int, host_name: str, ssd_demand_tb: float) -> str:
        """Allocate an SSD for a new instance; returns the device name."""
        device = self.policy.choose(self.storage_devices, host_name,
                                    ssd_demand_tb)
        device.allocated += ssd_demand_tb
        self.storage_assignments[ip] = device.name
        self.leases.grant(ip, device.name, self.sim.now)
        self._commit({"op": "place-storage", "ip": ip, "ssd": device.name})
        return device.name

    def release_storage(self, ip: int, ssd_demand_tb: float) -> None:
        ssd = self.storage_assignments.pop(ip, None)
        if ssd is not None:
            self.storage_devices[ssd].allocated -= ssd_demand_tb
            self.leases.revoke(ip, ssd)
            self._commit({"op": "release-storage", "ip": ip, "ssd": ssd})

    def on_storage_telemetry(self, record: dict) -> None:
        self.telemetry_store.ingest(record)
        device = self.storage_devices.get(record["nic"])
        if device is not None:
            device.measured_load = record.get("tx_bw", 0.0) + record.get("rx_bw", 0.0)
        self.leases.renew_device(record["nic"], self.sim.now)

    def release_instance(self, ip: int, nic_demand_gbps: float) -> None:
        nic = self.assignments.pop(ip, None)
        self.backup_assignments.pop(ip, None)
        if nic is not None:
            self.devices[nic].allocated -= nic_demand_gbps
            self.leases.revoke(ip, nic)
            self._commit({"op": "release", "ip": ip, "nic": nic})

    # -- telemetry ----------------------------------------------------------------------

    def on_telemetry(self, record: dict) -> None:
        self.telemetry_store.ingest(record)
        device = self.devices.get(record["nic"])
        if device is not None:
            device.measured_load = record.get("tx_bw", 0.0) + record.get("rx_bw", 0.0)
        self.leases.renew_device(record["nic"], self.sim.now)

    def _check_hosts(self) -> None:
        for host in self.telemetry_store.dead_hosts(self.sim.now):
            for device in list(self.devices.values()):
                if device.host == host and not device.failed:
                    self.on_failure_report(device.name)
            # Avoid re-triggering every tick.
            self.telemetry_store.mark_seen(host, self.sim.now)

    # -- failure management (§3.3.3) --------------------------------------------------------

    def on_failure_report(self, nic_name: str) -> None:
        """A backend reported its NIC down (or a host went silent)."""
        device = self.devices.get(nic_name)
        if device is None or device.failed:
            return
        device.failed = True
        # Close the backend's report span (no-op for the silent-host path,
        # which never opened one) and open the allocator-processing span.
        self.tracer.end("failover.report", key=nic_name)
        self.tracer.begin("failover.process", key=nic_name,
                          category="failover", track="failover", nic=nic_name)
        processing = self.config.failover.allocator_processing_ms * MSEC
        self.sim.schedule(processing, self._commit_failover, nic_name)

    def _commit_failover(self, nic_name: str) -> None:
        self._commit({"op": "failover", "nic": nic_name})

    def _commit(self, command: dict) -> None:
        """Run ``command`` through Raft when attached, else apply directly."""
        if self._raft is not None and self._raft.is_leader:
            self._raft.propose(command)
        else:
            self.apply(0, command)

    def apply(self, index: int, command: dict) -> None:
        """State-machine apply (Raft callback or direct)."""
        if command.get("op") == "failover":
            # Side effects only where the leader applies (or unreplicated).
            if self._raft is None or self._raft.is_leader:
                self._execute_failover(command["nic"])

    def _execute_failover(self, nic_name: str) -> None:
        cfg = self.config.failover
        device = self.devices[nic_name]
        device.failed = True
        backup = self.policy.choose_backup(self.devices, exclude=nic_name)
        if backup is None:
            raise AllocationError(f"no backup available for failed {nic_name}")
        self.failovers_executed += 1
        self.tracer.end("failover.process", key=nic_name, backup=backup.name)
        self.tracer.begin("failover.reroute", key=nic_name,
                          category="failover", track="failover",
                          nic=nic_name, backup=backup.name)
        # The reroute phase ends once the slower of the two parallel legs
        # (frontend notification / MAC borrowing) has landed.
        reroute_ms = max(cfg.notify_frontend_ms, cfg.mac_borrow_ms)
        self.sim.schedule(reroute_ms * MSEC, self.tracer.end,
                          "failover.reroute", nic_name)

        # Revoke all leases on the failed device; re-grant on the backup.
        moved = 0
        for lease in self.leases.revoke_device(nic_name):
            self.leases.grant(lease.instance_ip, backup.name, self.sim.now)
            self.assignments[lease.instance_ip] = backup.name
            moved += 1
        backup.allocated += device.allocated
        device.allocated = 0.0

        # Notify every frontend using the failed NIC; they atomically reroute
        # TX traffic (buffers are already in shared CXL memory) to the
        # replacement we picked.
        for frontend in self.frontends.values():
            self.sim.schedule(
                cfg.notify_frontend_ms * MSEC, frontend.fail_over, nic_name,
                backup.name,
            )
        # The backup NIC borrows the failed NIC's MAC so the switch reroutes
        # RX packets without application involvement.
        backup_backend = self.backends[backup.name]
        failed_mac = self.nic_macs[nic_name]
        self.sim.schedule(
            cfg.mac_borrow_ms * MSEC, backup_backend.borrow_mac, failed_mac
        )
        if self.on_failover is not None:
            self.on_failover(nic_name, backup.name)

    # -- load balancing (§3.3.4) ------------------------------------------------------------------

    def migrate(self, ip: int, new_nic: str, demand_gbps: float = 0.0) -> None:
        """Gracefully migrate one instance's traffic to ``new_nic``."""
        old_nic = self.assignments.get(ip)
        if old_nic == new_nic or old_nic is None:
            return
        frontend = self._frontend_of(ip)
        new_backend = self.backends[new_nic]
        new_backend.register_instance(ip, frontend.host.name)
        new_link = frontend.link(new_nic)
        frontend.migrate_instance(ip, new_link)
        self.leases.revoke(ip, old_nic)
        self.leases.grant(ip, new_nic, self.sim.now)
        self.assignments[ip] = new_nic
        self.devices[old_nic].allocated -= demand_gbps
        self.devices[new_nic].allocated += demand_gbps
        self.migrations_executed += 1
        self.tracer.instant("alloc.migrate", category="allocator",
                            track="allocator", ip=ip, old=old_nic, new=new_nic)
        self._commit({"op": "migrate", "ip": ip, "nic": new_nic})

    def rebalance_once(self, demand_gbps: float = 0.0) -> Optional[tuple]:
        """Move one instance from the most- to the least-loaded NIC."""
        candidates = [d for d in self.devices.values()
                      if not d.failed and not d.is_backup]
        if len(candidates) < 2:
            return None
        hottest = max(candidates, key=lambda d: d.measured_load)
        coldest = min(candidates, key=lambda d: d.measured_load)
        if hottest.name == coldest.name:
            return None
        victims = [ip for ip, nic in self.assignments.items()
                   if nic == hottest.name]
        if not victims:
            return None
        ip = victims[0]
        self.migrate(ip, coldest.name, demand_gbps)
        return ip, hottest.name, coldest.name

    def _frontend_of(self, ip: int):
        for frontend in self.frontends.values():
            if ip in frontend._records:
                return frontend
        raise AllocationError(f"no frontend knows instance {ip}")


class AllocatorClient:
    """Driver-side stub: models the channel hop to the allocator (§3.2.2).

    ``storage=True`` routes telemetry to the storage-device table.
    """

    def __init__(self, sim: Simulator, allocator: PodAllocator,
                 latency_us: float = 5.0, storage: bool = False):
        self.sim = sim
        self.allocator = allocator
        self.latency_s = latency_us * USEC
        self.storage = storage

    def report_failure(self, backend) -> None:
        self.sim.schedule(self.latency_s, self.allocator.on_failure_report,
                          backend.nic.name)

    def telemetry(self, backend, record: dict) -> None:
        target = (self.allocator.on_storage_telemetry if self.storage
                  else self.allocator.on_telemetry)
        self.sim.schedule(self.latency_s, target, record)
