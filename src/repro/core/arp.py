"""Pod-wide IP-to-MAC resolution.

Instances share their allocated NIC's MAC address; peers resolve an
instance's IP to that MAC.  Failover does *not* change this mapping (the
backup NIC borrows the failed MAC at the switch, §3.3.3); graceful migration
does, announced by Gratuitous ARP (§3.3.4).

The registry is the usual datacenter simplification of ARP: a shared,
instantly consistent table, with GARP announcements counted so tests can
assert the §3.3.4 flow.
"""

from __future__ import annotations

from typing import Dict

from ..net.packet import BROADCAST_MAC

__all__ = ["ArpRegistry"]


class ArpRegistry:
    """IP -> MAC table shared by every endpoint in the experiment."""

    def __init__(self):
        self._table: Dict[int, int] = {}
        self.garp_count = 0

    def announce(self, ip: int, mac: int, garp: bool = False) -> None:
        self._table[ip] = mac
        if garp:
            self.garp_count += 1

    def lookup(self, ip: int) -> int:
        """Resolve; unknown IPs get the broadcast MAC (flooded by the switch)."""
        return self._table.get(ip, BROADCAST_MAC)

    def forget(self, ip: int) -> None:
        self._table.pop(ip, None)

    def __contains__(self, ip: int) -> bool:
        return ip in self._table

    def __len__(self) -> int:
        return len(self._table)
