"""Network engine frontend driver (§3.3).

Runs on every host.  Exposes a packet I/O interface (:class:`VirtualNIC`) to
local instances over IPC, forwards TX packets and receives RX packets from
the backend drivers of the NICs its instances are allocated to, and enforces
the §3.2.1 coherence rules on the frontend side:

* TX: write back (CLWB) the instance's TX buffer before signalling the
  backend, so the device's DMA read sees the bytes;
* RX: copy the packet from the per-NIC RX buffer area into instance-local
  memory, then invalidate (CLFLUSHOPT) the RX buffer lines so a recycled
  buffer is never read stale.

Failover (§3.3.3) and graceful migration (§3.3.4) both happen here: the
frontend atomically reroutes an instance's TX traffic to a different backend
link, while RX traffic is steered by the switch (MAC borrowing) or dual
registration (migration grace period).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Optional

from ...config import OasisConfig
from ...errors import AllocationError, ChannelFullError
from ...host.host import Host, MemDomain
from ...host.instance import Instance
from ...mem.layout import Region, RegionAllocator
from ...net.packet import Frame
from ...obs.flow import NULL_FLOWS
from ...sim.core import MSEC, NSEC, USEC, Simulator
from ..engine import Driver
from .messages import (OP_RX, OP_RX_COMP, OP_TX, OP_TX_COMP, OP_TX_FENCED,
                       NetMessage)

__all__ = ["NetFrontend", "VirtualNIC", "BackendLink"]


@dataclass
class BackendLink:
    """Frontend's view of one backend driver it can reach."""

    name: str                   # backend/NIC identifier (e.g. "nic-h0")
    tx: object                  # channel endpoint: frontend -> backend
    rx: object                  # channel endpoint: backend -> frontend
    rx_domain: MemDomain        # where this NIC's RX buffer area lives
    nic_mac: int
    remote: bool = True         # False for the colocated-baseline link


@dataclass
class _InstanceRecord:
    instance: Instance
    tx_area: RegionAllocator
    primary: BackendLink
    backup: Optional[BackendLink] = None
    current_mac: int = 0
    extra_rx: set = field(default_factory=set)   # migration grace-period links
    tx_dropped: int = 0
    epoch: int = 0   # fencing epoch stamped on every post (§3.3.3)


class VirtualNIC:
    """The per-instance packet interface (Junction's vNIC equivalent)."""

    def __init__(self, frontend: "NetFrontend", instance: Instance):
        self.frontend = frontend
        self.instance = instance

    @property
    def mac(self) -> int:
        return self.frontend._records[self.instance.ip].current_mac

    def transmit(self, frame: Frame) -> None:
        self.frontend._instance_tx(self.instance, frame)


class NetFrontend(Driver):
    """One frontend driver per host, on a dedicated busy-polling core."""

    flows = NULL_FLOWS
    # Precomputed dispatch: None while flow tracing is disabled; rebound by
    # set_flows() when the pod enables it.
    _flows = None
    # Overload control (same None-alias pattern): enable_overload() binds
    # the config so the TX admission gate and brownout shedding turn on.
    _overload = None
    brownout_level = 0
    # Multi-tenant serving: enable_multi_tenant() swaps the FIFO TX queue
    # for a per-tenant weighted-fair scheduler keyed off the ``tenant``
    # field riding Frame.meta; None keeps the legacy paths byte-identical.
    _tx_wfq = None

    def set_flows(self, flows) -> None:
        """Bind a flow registry; hot paths keep a None-or-registry alias."""
        self.flows = flows
        self._flows = flows if flows.enabled else None

    def enable_overload(self, overload_cfg, rng_factory=None) -> None:
        """Arm the TX admission gate and brownout frame shedding."""
        self._overload = overload_cfg

    def enable_multi_tenant(self, tenants) -> None:
        """Per-tenant weighted-fair TX scheduling (needs overload armed).

        Frames tagged with ``frame.meta["tenant"]`` get their own bounded
        TX lane (depth cap + CoDel sojourn drop) and are forwarded to the
        backend in virtual-time weighted-fair order; untagged frames share
        a weight-1 lane.  Off by default -- the plain FIFO path is
        untouched until this is called.
        """
        if self._overload is None:
            raise RuntimeError("enable_overload() must be armed before "
                               "enable_multi_tenant()")
        from ...overload import WeightedFairScheduler

        cfg = self._overload
        self._tx_wfq = WeightedFairScheduler(
            cfg.admission_depth,
            cfg.codel_target_ms * 1e-3,
            cfg.codel_interval_ms * 1e-3,
            tenants=dict(tenants))

    def tenant_stats(self):
        """Per-tenant TX scheduling counters (empty until armed)."""
        return {} if self._tx_wfq is None else self._tx_wfq.per_tenant()

    def set_brownout(self, level: int) -> None:
        """Brownout hook: level >= 1 sheds low-priority frames first."""
        self.brownout_level = level

    @property
    def admission_saturation(self) -> float:
        """Worst congestion signal the brownout controller should see.

        Max of TX-queue fullness vs the admission depth and the cached
        occupancy of each backend IPC ring (zero-cost, conservatively
        biased full).  0.0 with overload control off, so disabled pods
        never pay for the scan.
        """
        if self._overload is None:
            return 0.0
        if self._tx_wfq is not None:
            worst = self._tx_wfq.saturation
        else:
            worst = len(self._tx_queue) / self._overload.admission_depth
        for link in self._links.values():
            occupancy = getattr(link.tx, "occupancy_cached", 0.0)
            if occupancy > worst:
                worst = occupancy
        return worst

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        buffer_domain: MemDomain,
        tx_region: Region,
        arp,
        config: Optional[OasisConfig] = None,
    ):
        super().__init__(sim, f"fe-{host.name}", config)
        self.host = host
        self.domain = buffer_domain
        self.arp = arp
        self._tx_space = RegionAllocator(tx_region)
        self._records: Dict[int, _InstanceRecord] = {}
        self._links: Dict[str, BackendLink] = {}
        # Per-link drain tuples (link, rx, counter_view, queue_view, timed),
        # rebuilt on connect: the drain loop runs once per wakeup and these
        # four attribute chains are invariant for a link's lifetime.
        self._drain_links: list = []
        self._tx_queue: deque = deque()          # (ip, Region, packed_size, wire)
        self._tx_pending: Dict[int, tuple] = {}  # buffer addr -> (Region, ip)
        self._retry: deque = deque()             # (link, NetMessage) on full ring
        # Control-plane client (set by the pod): lease renewal + resync.
        self.control = None
        self._telemetry_task = None
        self._resync_inflight: set = set()
        # Counters.
        self.tx_forwarded = 0
        self.rx_delivered = 0
        self.rx_unknown_instance = 0
        self.tx_no_buffer = 0
        self.tx_fenced = 0
        self.resyncs = 0
        # Overload control: frames refused at the TX admission gate.
        self.tx_shed = 0
        self.tx_shed_queue_full = 0
        self.tx_shed_brownout = 0
        self.tx_shed_sojourn = 0     # CoDel drops off a tenant TX lane

    # -- wiring -----------------------------------------------------------------

    def connect_backend(self, link: BackendLink) -> None:
        """Attach a backend link; its RX channel wakes this driver."""
        self._links[link.name] = link
        link.rx.bind(self.work)
        self._drain_links = [
            (lk, lk.rx, lk.rx.counter_view, lk.rx.queue_view, lk.rx.timed)
            for lk in self._links.values()
        ]

    def link(self, name: str) -> BackendLink:
        return self._links[name]

    def register_instance(
        self,
        instance: Instance,
        primary: BackendLink,
        backup: Optional[BackendLink] = None,
        epoch: int = 0,
    ) -> VirtualNIC:
        """Attach an instance to this frontend with its allocated NIC."""
        if instance.ip in self._records:
            raise AllocationError(f"instance IP {instance.ip} already registered")
        area = self._tx_space.alloc(
            self.config.datapath.instance_tx_area_bytes, f"txarea-{instance.name}"
        )
        record = _InstanceRecord(
            instance=instance,
            tx_area=RegionAllocator(area),
            primary=primary,
            backup=backup,
            current_mac=primary.nic_mac,
            epoch=epoch,
        )
        self._records[instance.ip] = record
        vnic = VirtualNIC(self, instance)
        instance.attach_vnic(vnic)
        self.arp.announce(instance.ip, primary.nic_mac)
        return vnic

    # -- TX: instance side (runs in instance context) ------------------------------

    def _instance_tx(self, instance: Instance, frame: Frame) -> None:
        record = self._records.get(instance.ip)
        if record is None:
            raise AllocationError(f"instance {instance.name} not registered")
        if (self._overload is not None and self.brownout_level
                and frame.meta and frame.meta.get("prio", 1) < 1):
            # Brownout: low-priority frames are shed before buying a buffer,
            # keeping the TX area and queue for foreground traffic.
            self.tx_shed += 1
            self.tx_shed_brownout += 1
            record.tx_dropped += 1
            return
        # The instance's network stack fills the Ethernet header.
        frame.src_mac = record.current_mac
        if frame.dst_mac == 0:
            frame.dst_mac = self.arp.lookup(frame.dst_ip)
        data = frame.pack()
        try:
            region = record.tx_area.alloc(len(data))
        except Exception:
            record.tx_dropped += 1
            self.tx_no_buffer += 1
            return
        if frame.meta:
            flow = frame.meta.get("flow")
            if flow is not None:
                # The packed bytes drop frame identity; bridge the DMA/IPC
                # boundary by parking the context under the buffer address.
                flow.stage("inst.tx")
                self.flows.stash(region.base, flow)
        store_ns = self.domain.cache.store(region.base, data, category="payload")
        delay = self.config.datapath.ipc_hop_us * USEC + store_ns * NSEC
        if self._tx_wfq is None:
            self.sim.call_after(delay, self._ipc_tx_arrive, instance.ip,
                                region, len(data), frame.wire_size)
        else:
            # Multi-tenant: the tenant tag rides Frame.meta across the IPC
            # hop (the packed bytes drop frame identity).
            self.sim.call_after(delay, self._ipc_tx_arrive, instance.ip,
                                region, len(data), frame.wire_size,
                                frame.meta.get("tenant") if frame.meta
                                else None)

    def _ipc_tx_arrive(self, ip: int, region: Region, packed: int, wire: int,
                       tenant=None) -> None:
        if self._tx_wfq is not None:
            if not self._tx_wfq.push(self.sim.now, (ip, region, packed, wire),
                                     tenant):
                # The tenant's own TX lane is full: only its excess sheds.
                self.tx_shed += 1
                self.tx_shed_queue_full += 1
                self._drop_tx_frame(ip, region)
                return
            if self._flows is not None:
                flow = self._flows.peek(region.base)
                if flow is not None:
                    flow.stage("fe.tx", depth=len(self._tx_wfq))
            self.kick()
            return
        if (self._overload is not None
                and len(self._tx_queue) >= self._overload.admission_depth):
            # Bounded admission: the frontend queue is standing-room only,
            # so shed this frame instead of growing an unbounded backlog.
            self.tx_shed += 1
            self.tx_shed_queue_full += 1
            self._drop_tx_frame(ip, region)
            return
        flows = self._flows
        if flows is not None:
            flow = flows.peek(region.base)
            if flow is not None:
                flow.stage("fe.tx", depth=len(self._tx_queue))
        self._tx_queue.append((ip, region, packed, wire))
        self.kick()

    def _drop_tx_frame(self, ip: int, region: Region) -> None:
        """Release a shed frame's flow context and TX buffer."""
        if self._flows is not None:
            self._flows.pop(region.base)
        record = self._records.get(ip)
        if record is not None:
            record.tx_area.free(region)
            record.tx_dropped += 1

    # -- driver loop ---------------------------------------------------------------------

    #: per-item frontend CPU costs, ns
    TX_ITEM_NS = 120.0
    RX_ITEM_NS = 150.0

    def _process(self) -> tuple:
        # Guard the optional stages on their queues so an idle wakeup does
        # not pay calls that return ``(0, 0.0)``; the backend-message drain
        # always runs (it is what discovers new work) and is inlined below
        # with its own cost accumulator (same float grouping as the call).
        items = 0
        cost = 0.0
        if self._tx_queue or (self._tx_wfq is not None and len(self._tx_wfq)):
            n, c = self._process_tx()
            items += n
            cost += c
        bcost = 0.0
        bitems = 0
        unpack = NetMessage.unpack
        now_eps = self.sim.now + 1e-12
        for link, rx, cv, qv, timed in self._drain_links:
            if cv._consumed_since_update == 0:
                if not qv or (timed and qv[0] > now_eps):
                    continue   # drain() would be a no-op
            payloads, drain_cost = rx.drain()
            bcost += drain_cost
            bitems += len(payloads)
            comp_batch = []
            for raw in payloads:
                message = unpack(raw)
                if message.opcode == OP_TX_COMP:
                    bcost += self._handle_tx_comp(message)
                elif message.opcode == OP_TX_FENCED:
                    bcost += self._handle_tx_fenced(message)
                elif message.opcode == OP_RX:
                    bcost += self._handle_rx(link, message)
                    comp_batch.append(
                        NetMessage(OP_RX_COMP, 0, message.instance_ip,
                                   message.buffer_addr)
                    )
                else:
                    bcost += 20.0
            if comp_batch:
                __, c = self._send_link(link, comp_batch)
                bcost += c
        items += bitems
        cost += bcost
        if self._retry:
            n, c = self._process_retries()
            items += n
            cost += c
        return items, cost

    def _process_tx(self, batch: int = 64) -> tuple:
        cost = 0.0
        per_link: Dict[str, list] = {}
        count = 0
        tx_queue = self._tx_queue
        records = self._records
        tx_pending = self._tx_pending
        clwb_range = self.domain.cache.clwb_range
        flows = self._flows
        wfq = self._tx_wfq
        now = self.sim.now
        while count < batch:
            if wfq is not None:
                item, dropped = wfq.pop(now)
                for dip, dregion, _dpacked, _dwire in dropped:
                    # CoDel front-drop off an overlong tenant TX lane.
                    self.tx_shed += 1
                    self.tx_shed_sojourn += 1
                    self._drop_tx_frame(dip, dregion)
                if item is None:
                    break
                ip, region, packed, wire = item
            elif tx_queue:
                ip, region, packed, wire = tx_queue.popleft()
            else:
                break
            record = records.get(ip)
            if record is None:
                continue
            # Write back the TX buffer so the remote NIC's DMA sees it.
            cost += clwb_range(region.base, packed, category="payload")
            tx_pending[region.base] = (region, ip)
            message = NetMessage(OP_TX, packed, ip, region.base,
                                 epoch=record.epoch & 0xFF)
            if flows is not None:
                flow = flows.peek(region.base)
                if flow is not None:
                    flow.stage("chan.fe2be",
                               depth=getattr(record.primary.tx, "pending", None))
            per_link.setdefault(record.primary.name, []).append(message)
            cost += self.TX_ITEM_NS
            count += 1
        for link_name, messages in per_link.items():
            __, c = self._send_link(self._links[link_name], messages)
            cost += c
            self.tx_forwarded += len(messages)
        return count, cost

    def _send_link(self, link: BackendLink, messages) -> tuple:
        try:
            return True, link.tx.send_many([m.pack() for m in messages])
        except ChannelFullError:
            for message in messages:
                self._retry.append((link, message))
            return False, 200.0

    def _process_retries(self) -> tuple:
        if not self._retry:
            return 0, 0.0
        cost = 0.0
        sent = 0
        pending, self._retry = self._retry, deque()
        for link, message in pending:
            ok, c = self._send_link(link, [message])
            cost += c
            if ok:
                sent += 1
        if self._retry:
            # Ring still full: back off instead of spinning.
            self.sim.call_after(5e-6, self.kick)
        return sent, cost

    def _process_backend_messages(self) -> tuple:
        cost = 0.0
        items = 0
        unpack = NetMessage.unpack
        now_eps = self.sim.now + 1e-12
        for link, rx, cv, qv, timed in self._drain_links:
            if cv._consumed_since_update == 0:
                if not qv or (timed and qv[0] > now_eps):
                    continue   # drain() would be a no-op
            payloads, drain_cost = rx.drain()
            cost += drain_cost
            items += len(payloads)
            comp_batch = []
            for raw in payloads:
                message = unpack(raw)
                if message.opcode == OP_TX_COMP:
                    cost += self._handle_tx_comp(message)
                elif message.opcode == OP_TX_FENCED:
                    cost += self._handle_tx_fenced(message)
                elif message.opcode == OP_RX:
                    cost += self._handle_rx(link, message)
                    comp_batch.append(
                        NetMessage(OP_RX_COMP, 0, message.instance_ip,
                                   message.buffer_addr)
                    )
                else:
                    cost += 20.0
            if comp_batch:
                __, c = self._send_link(link, comp_batch)
                cost += c
        return items, cost

    def _handle_tx_comp(self, message: NetMessage) -> float:
        entry = self._tx_pending.pop(message.buffer_addr, None)
        if entry is None:
            return 20.0
        if self._flows is not None:
            # Drop any leftover stash entry before the buffer is recycled
            # (the NIC pops it on the normal path; error completions don't).
            self._flows.pop(message.buffer_addr)
        region, ip = entry
        record = self._records.get(ip)
        if record is not None:
            record.tx_area.free(region)
        return 40.0

    def _handle_tx_fenced(self, message: NetMessage) -> float:
        """The backend rejected our post as stale: free the buffer and ask
        the allocator where the instance lives now (never keep writing)."""
        cost = self._handle_tx_comp(message)
        self.tx_fenced += 1
        self._request_resync(message.instance_ip)
        return cost

    def _request_resync(self, ip: int) -> None:
        if ip in self._resync_inflight or self.control is None:
            return
        self._resync_inflight.add(ip)
        self.control.request_resync(ip, self.host.name)

    def sync_instance(self, ip: int, device_name: str, epoch: int) -> None:
        """Allocator push: adopt the authoritative (device, epoch) binding."""
        record = self._records.get(ip)
        self._resync_inflight.discard(ip)
        if record is None:
            return
        link = self._links.get(device_name)
        if link is not None and record.primary.name != device_name:
            record.primary = link
        record.epoch = epoch
        self.resyncs += 1
        self.kick()

    # -- control-plane telemetry (lease renewal) -----------------------------------

    def start_monitors(self) -> None:
        """Renew this host's instance leases with the allocator (§3.5)."""
        if self.control is None or self._telemetry_task is not None:
            return
        interval = self.config.failover.telemetry_interval_ms * MSEC
        self._telemetry_task = self.sim.every(interval, self._send_telemetry)

    def stop_monitors(self) -> None:
        if self._telemetry_task is not None:
            self._telemetry_task.cancel()
            self._telemetry_task = None

    def _send_telemetry(self) -> None:
        if self.control is None:
            return
        self.control.frontend_telemetry({
            "host": self.host.name,
            "ips": sorted(self._records),
            "time": self.sim.now,
        })

    def _handle_rx(self, link: BackendLink, message: NetMessage) -> float:
        """Copy an RX packet out of the shared buffer and hand it over IPC."""
        record = self._records.get(message.instance_ip)
        cost = self.RX_ITEM_NS
        # Read the packet through *this host's* cache, then invalidate the
        # buffer lines: a recycled buffer must never be read stale (§3.3.1).
        # (Shared RX areas are read through our own cache; a baseline-mode
        # local RX area is the colocated NIC host's DDR.)
        if link.rx_domain.is_shared:
            rx_cache = self.host.shared.cache
        else:
            rx_cache = link.rx_domain.cache
        data, load_ns = rx_cache.load(
            message.buffer_addr, message.size, category="payload"
        )
        cost += load_ns
        cost += rx_cache.clflush_range(
            message.buffer_addr, message.size, category="payload"
        )
        if record is None:
            self.rx_unknown_instance += 1
            return cost
        frame = Frame.unpack(data)
        flows = self._flows
        if flows is not None:
            # Pop, not peek: RX buffers are recycled, so a stale context must
            # never greet the next packet landing at the same address.
            flow = flows.pop(message.buffer_addr)
            if flow is not None:
                flow.stage("fe.rx")
                frame.meta["flow"] = flow
        self.rx_delivered += 1
        self.sim.call_after(
            self.config.datapath.ipc_hop_us * USEC,
            record.instance.deliver_frame,
            frame,
        )
        return cost

    # -- failover & migration (called by the pod-wide allocator client) ---------------

    def fail_over(self, failed_link_name: str,
                  replacement_link_name: Optional[str] = None,
                  epochs: Optional[Dict[int, int]] = None) -> int:
        """Reroute every instance on ``failed_link_name`` to the allocator's
        chosen replacement NIC (falling back to the instance's pre-registered
        backup when no replacement is named).

        TX buffers already in shared CXL memory need no copying (§3.3.3).
        The per-instance backup registration makes the switch instant, but
        the *authoritative* target comes from the allocator: an instance's
        stale backup choice may itself be the failed NIC (e.g. after a
        migration), which must never be selected.  ``epochs`` carries the
        fresh per-instance fencing epochs minted by the failover; an
        instance moved without one keeps its stale epoch and will be fenced
        into a resync on first post.  Returns the number of instances moved.
        """
        replacement = (self._links.get(replacement_link_name)
                       if replacement_link_name else None)
        epochs = epochs or {}
        moved = 0
        for ip, record in self._records.items():
            if record.primary.name != failed_link_name:
                continue
            target = replacement
            if target is None or target.name == failed_link_name:
                target = record.backup
            if target is None or target.name == failed_link_name:
                continue   # nowhere safe to go; allocator will retry
            record.primary = target
            if ip in epochs:
                record.epoch = epochs[ip]
            if record.backup is not None and \
                    record.backup.name in (failed_link_name, target.name):
                record.backup = None
            # MAC borrowing keeps the instance's MAC unchanged.
            moved += 1
        return moved

    def migrate_instance(self, ip: int, new_link: BackendLink,
                         grace_period_s: Optional[float] = None,
                         epoch: Optional[int] = None) -> None:
        """Gracefully move an instance's traffic to ``new_link`` (§3.3.4)."""
        record = self._records[ip]
        old = record.primary
        record.extra_rx.add(old.name)
        record.primary = new_link
        record.current_mac = new_link.nic_mac
        if epoch is not None:
            record.epoch = epoch
        # The instance's stack broadcasts GARP announcing the new MAC.
        self.arp.announce(ip, new_link.nic_mac, garp=True)
        grace = (grace_period_s if grace_period_s is not None
                 else self.config.failover.migration_grace_period_s)
        self.sim.schedule(grace, self._finish_migration, ip, old.name)

    def _finish_migration(self, ip: int, old_link_name: str) -> None:
        record = self._records.get(ip)
        if record is not None:
            record.extra_rx.discard(old_link_name)
        handler = getattr(self, "on_unregister", None)
        if handler is not None:
            handler(ip, old_link_name)

    @property
    def instance_count(self) -> int:
        return len(self._records)

    def record_of(self, ip: int) -> _InstanceRecord:
        return self._records[ip]
