"""Network engine backend driver (§3.3).

Runs only on hosts with a local NIC.  It moves packets between frontend
drivers (over Oasis message channels) and the NIC's queue pairs (through the
native driver model in :mod:`repro.pcie.nic`), never inspecting packet
buffers on the normal path (§3.2.1): TX buffers go straight from the message
pointer to a WQE, and RX packets are demultiplexed by NIC flow tag.  Only
when the NIC cannot tag a packet does the backend fall back to reading the
header -- and then immediately invalidates the touched lines (footnote 6).

The backend also runs the two periodic control tasks of §3.5: the link-status
monitor that detects NIC/cable/switch failures, and the 100 ms telemetry
reports to the pod-wide allocator.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, Optional

from ...config import OasisConfig
from ...errors import ChannelFullError, DeviceError
from ...host.host import Host, MemDomain
from ...mem.layout import FixedPool, Region
from ...net.packet import BROADCAST_MAC, Frame
from ...obs.flow import NULL_FLOWS
from ...obs.trace import NULL_TRACER
from ...pcie.nic import TX_STATUS_DMA_ABORT, SimNIC
from ...pcie.queues import Completion, RxDescriptor, TxDescriptor
from ...sim.core import MSEC, Simulator
from ..engine import Driver
from .messages import (OP_RX, OP_RX_COMP, OP_TX, OP_TX_COMP, OP_TX_FENCED,
                       NetMessage)

__all__ = ["NetBackend", "FrontendLink"]


@dataclass
class FrontendLink:
    """Backend's view of one frontend driver it serves."""

    name: str        # frontend host name
    tx: object       # channel endpoint: backend -> frontend
    rx: object       # channel endpoint: frontend -> backend


class NetBackend(Driver):
    """One backend driver per pooled NIC, on a dedicated busy-polling core."""

    TX_ITEM_NS = 100.0
    RX_ITEM_NS = 120.0
    COMP_ITEM_NS = 60.0

    tracer = NULL_TRACER
    flows = NULL_FLOWS
    # Precomputed dispatch: None while the facility is disabled; rebound by
    # set_tracer()/set_flows() when the pod enables tracing / flow tracing.
    _trace = None
    _flows = None
    # Overload control (same pattern): enable_overload() binds a retry
    # budget so DMA-abort reposts can never exceed a fraction of fresh TX.
    _overload = None
    _retry_rng = None

    def set_tracer(self, tracer) -> None:
        """Bind a tracer; hot paths keep a None-or-tracer fast alias."""
        self.tracer = tracer
        self._trace = tracer if tracer.enabled else None

    def set_flows(self, flows) -> None:
        """Bind a flow registry; hot paths keep a None-or-registry alias."""
        self.flows = flows
        self._flows = flows if flows.enabled else None

    def enable_overload(self, overload_cfg, rng_factory) -> None:
        """Arm the TX retry budget (funded by fresh posts, spent by reposts).

        Backoff jitter, when configured, comes from a dedicated substream
        (``overload/<name>/retry``) so it never touches workload RNG draws.
        """
        from ...overload import RetryBudget

        self._ovl_cfg = overload_cfg
        self._budget = RetryBudget(
            overload_cfg.retry_budget_ratio,
            overload_cfg.retry_budget_min,
            overload_cfg.retry_budget_cap)
        if overload_cfg.retry_jitter_frac > 0:
            self._retry_rng = rng_factory.get(f"overload/{self.name}/retry")
        self._overload = self._budget

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        nic: SimNIC,
        rx_domain: MemDomain,
        rx_region: Region,
        config: Optional[OasisConfig] = None,
        tx_buffers_local: bool = False,
    ):
        super().__init__(sim, f"be-{nic.name}", config)
        self.host = host
        self.nic = nic
        self.rx_domain = rx_domain
        self.tx_buffers_local = tx_buffers_local
        self.rx_pool = FixedPool(rx_region, self.config.datapath.rx_buffer_bytes)
        self._links: Dict[str, FrontendLink] = {}
        # Per-link drain tuples (link, rx, counter_view, queue_view, timed),
        # rebuilt on connect: the drain loop runs once per wakeup and these
        # four attribute chains are invariant for a link's lifetime.
        self._drain_links: list = []
        self._registry: Dict[int, str] = {}      # instance ip -> frontend name
        self._tag_to_ip: Dict[int, int] = {}     # NIC flow tag -> instance ip
        self._tx_pending: deque = deque()        # descriptors awaiting ring space
        self._tx_comps: deque = deque()
        self._rx_comps: deque = deque()
        self._fe_retry: deque = deque()          # (fe_name, message) on full ring
        self.control = None                       # allocator client, set by pod
        self.epochs = None                        # EpochTable, set by pod
        self.fencing_enabled = True
        self._monitor_task = None
        self._telemetry_task = None
        self._failure_reported = False
        self._link_down_at: Optional[float] = None
        self._last_tx_bytes = 0
        self._last_rx_bytes = 0
        # Counters.
        self.tx_posted = 0
        self.rx_forwarded = 0
        self.rx_fallback_inspections = 0
        self.rx_dropped_unknown = 0
        self.tx_retries = 0       # DMA-aborted descriptors reposted
        self.tx_giveups = 0       # aborted descriptors surfaced as errors
        self.retry_budget_denied = 0   # reposts refused by the retry budget
        self.fence_rejects = 0    # stale-epoch posts answered OP_TX_FENCED
        self.stale_accepted = 0   # stale posts let through (fencing disabled)

        nic.on_tx_complete = self._on_nic_tx_comp
        nic.on_rx = self._on_nic_rx
        nic.on_link_change(self._on_link_change)
        self._fill_rx_ring()

    # -- wiring --------------------------------------------------------------------

    def connect_frontend(self, link: FrontendLink) -> None:
        self._links[link.name] = link
        link.rx.bind(self.work)
        self._drain_links = [
            (lk, lk.rx, lk.rx.counter_view, lk.rx.queue_view, lk.rx.timed)
            for lk in self._links.values()
        ]

    def register_instance(self, ip: int, frontend_name: str) -> Optional[int]:
        """Register an instance's IP with this NIC (flow tagging, §3.3.1)."""
        self._registry[ip] = frontend_name
        if self.nic.config.supports_flow_tagging:
            try:
                tag = self.nic.add_flow_tag(ip)
            except DeviceError:
                return None
            self._tag_to_ip[tag] = ip
            return tag
        return None

    def unregister_instance(self, ip: int) -> None:
        self._registry.pop(ip, None)
        tag = self.nic.flow_table.get(ip)
        if tag is not None:
            self._tag_to_ip.pop(tag, None)
        self.nic.remove_flow_tag(ip)

    @property
    def registered_ips(self) -> set:
        return set(self._registry)

    @property
    def device_name(self) -> str:
        return self.nic.name

    @property
    def queue_depth(self) -> int:
        """Outstanding TX work: ring occupancy plus overflow backlog."""
        return len(self.nic.tx_ring) + len(self._tx_pending)

    # -- RX ring management ---------------------------------------------------------------

    def _fill_rx_ring(self) -> None:
        while not self.nic.rx_ring.full:
            addr = self.rx_pool.alloc()
            if addr is None:
                break
            self.nic.post_rx(
                RxDescriptor(addr=addr, capacity=self.rx_pool.buffer_size,
                             local=not self.rx_domain.is_shared)
            )

    # -- NIC callbacks (interrupt-less completion queues) -----------------------------------

    def _on_nic_tx_comp(self, completion: Completion) -> None:
        self._tx_comps.append(completion)
        self.work.set()

    def _on_nic_rx(self, completion: Completion) -> None:
        flows = self._flows
        if flows is not None:
            flow = flows.peek(completion.descriptor.addr)
            if flow is not None:
                flow.stage("be.rx", depth=len(self._rx_comps))
        self._rx_comps.append(completion)
        self.work.set()

    # -- driver loop ---------------------------------------------------------------------------

    def _process(self) -> tuple:
        # The frontend-message drain (the only part that must always run) is
        # inlined; the other parts are guarded on their queues so an idle
        # wakeup does not pay four calls that return ``(0, 0.0)``.
        cost = 0.0
        items = 0
        unpack = NetMessage.unpack
        now_eps = self.sim.now + 1e-12
        for link, rx, cv, qv, timed in self._drain_links:
            if cv._consumed_since_update == 0:
                if not qv or (timed and qv[0] > now_eps):
                    continue   # drain() would be a no-op
            payloads, drain_cost = rx.drain()
            cost += drain_cost
            items += len(payloads)
            for raw in payloads:
                message = unpack(raw)
                if message.opcode == OP_TX:
                    cost += self._handle_tx(link, message)
                elif message.opcode == OP_RX_COMP:
                    cost += self._handle_rx_comp(message)
                else:
                    cost += 20.0
        if self._tx_pending:
            n, c = self._process_tx_pending()
            items += n
            cost += c
        if self._tx_comps:
            n, c = self._process_tx_comps()
            items += n
            cost += c
        if self._rx_comps:
            n, c = self._process_rx_comps()
            items += n
            cost += c
        if self._fe_retry:
            n, c = self._process_fe_retries()
            items += n
            cost += c
        return items, cost

    def _process_fe_retries(self) -> tuple:
        """Re-send messages that hit a full frontend ring earlier."""
        if not self._fe_retry:
            return 0, 0.0
        cost = 0.0
        sent = 0
        pending, self._fe_retry = self._fe_retry, deque()
        for fe_name, message in pending:
            cost += self._send_to_frontend(fe_name, message)
            if not self._fe_retry or self._fe_retry[-1][1] is not message:
                sent += 1
        if self._fe_retry:
            # Still full: back off and try again shortly.
            self.sim.call_after(5e-6, self.kick)
        return sent, cost

    def _process_frontend_messages(self) -> tuple:
        cost = 0.0
        items = 0
        unpack = NetMessage.unpack
        for link in self._links.values():
            payloads, drain_cost = link.rx.drain()
            cost += drain_cost
            items += len(payloads)
            for raw in payloads:
                message = unpack(raw)
                if message.opcode == OP_TX:
                    cost += self._handle_tx(link, message)
                elif message.opcode == OP_RX_COMP:
                    cost += self._handle_rx_comp(message)
                else:
                    cost += 20.0
        return items, cost

    def _handle_tx(self, link: FrontendLink, message: NetMessage) -> float:
        if (self.epochs is not None
                and not self.epochs.check(self.nic.name, message.instance_ip,
                                          message.epoch)):
            # Stale-epoch writer (§3.3.3): reject before touching the device.
            if self.fencing_enabled:
                self.fence_rejects += 1
                if self._flows is not None:
                    flow = self._flows.peek(message.buffer_addr)
                    if flow is not None:
                        flow.stage("be.fence", depth=len(self.nic.tx_ring))
                self._send_to_frontend(
                    link.name,
                    NetMessage(OP_TX_FENCED, message.size, message.instance_ip,
                               message.buffer_addr, epoch=message.epoch),
                )
                return self.TX_ITEM_NS
            self.stale_accepted += 1
        flows = self._flows
        if flows is not None:
            flow = flows.peek(message.buffer_addr)
            if flow is not None:
                flow.stage("be.tx", depth=len(self.nic.tx_ring))
        descriptor = TxDescriptor(
            addr=message.buffer_addr,
            length=message.size,
            cookie=(message, link.name),
            epoch=message.epoch,
        )
        descriptor.local = self.tx_buffers_local
        if self._overload is not None:
            self._budget.deposit()    # fresh posts fund the retry budget
        if self.nic.tx_ring.full or self.nic.failed:
            self._tx_pending.append(descriptor)
        else:
            self.nic.post_tx(descriptor)
            self.tx_posted += 1
        return self.TX_ITEM_NS

    def _process_tx_pending(self) -> tuple:
        cost = 0.0
        items = 0
        while self._tx_pending and not self.nic.tx_ring.full:
            if self.nic.failed:
                # Complete with error so the frontend frees the buffers.
                descriptor = self._tx_pending.popleft()
                message, fe_name = descriptor.cookie
                cost += self._send_to_frontend(
                    fe_name,
                    NetMessage(OP_TX_COMP, message.size, message.instance_ip,
                               message.buffer_addr),
                )
                items += 1
                continue
            self.nic.post_tx(self._tx_pending.popleft())
            self.tx_posted += 1
            items += 1
            cost += self.TX_ITEM_NS / 2
        return items, cost

    def _handle_rx_comp(self, message: NetMessage) -> float:
        """Frontend consumed an RX buffer: recycle and repost it."""
        self.rx_pool.free(message.buffer_addr)
        self._fill_rx_ring()
        return self.COMP_ITEM_NS

    def _process_tx_comps(self) -> tuple:
        cost = 0.0
        items = 0
        while self._tx_comps:
            items += 1
            completion = self._tx_comps.popleft()
            descriptor = completion.descriptor
            if (completion.status == TX_STATUS_DMA_ABORT
                    and descriptor.retries < self.config.retry.tx_max_retries
                    and (self._overload is None or self._budget.try_spend())):
                # A DMA abort left the buffer untouched and owned by us:
                # repost the same WQE after a short backoff instead of
                # surfacing a loss to the frontend.
                descriptor.retries += 1
                self.tx_retries += 1
                backoff_s = (self.config.retry.tx_retry_backoff_us * 1e-6
                             * 2 ** (descriptor.retries - 1))
                if self._retry_rng is not None:
                    # Jitter from the dedicated overload substream only.
                    frac = self._ovl_cfg.retry_jitter_frac
                    backoff_s *= 1.0 + frac * float(
                        self._retry_rng.uniform(-1.0, 1.0))
                self.sim.call_after(backoff_s, self._repost_tx, descriptor)
                cost += self.COMP_ITEM_NS
                continue
            if completion.status == TX_STATUS_DMA_ABORT:
                if (self._overload is not None
                        and descriptor.retries < self.config.retry.tx_max_retries):
                    self.retry_budget_denied += 1
                self.tx_giveups += 1
            message, fe_name = descriptor.cookie
            cost += self.COMP_ITEM_NS
            cost += self._send_to_frontend(
                fe_name,
                NetMessage(OP_TX_COMP, message.size, message.instance_ip,
                           message.buffer_addr),
            )
        return items, cost

    def _repost_tx(self, descriptor: TxDescriptor) -> None:
        """Repost a DMA-aborted WQE (or give the buffer back if the NIC died)."""
        if self.nic.failed:
            message, fe_name = descriptor.cookie
            self.tx_giveups += 1
            self._send_to_frontend(
                fe_name,
                NetMessage(OP_TX_COMP, message.size, message.instance_ip,
                           message.buffer_addr),
            )
            return
        self._tx_pending.append(descriptor)
        self.kick()

    def _process_rx_comps(self) -> tuple:
        cost = 0.0
        items = 0
        while self._rx_comps:
            items += 1
            completion = self._rx_comps.popleft()
            cost += self.RX_ITEM_NS
            addr = completion.descriptor.addr
            ip = self._ip_for_tag(completion.tag)
            if ip is None:
                ip, inspect_cost = self._inspect_buffer(addr)
                cost += inspect_cost
            fe_name = self._registry.get(ip)
            if fe_name is None:
                self.rx_dropped_unknown += 1
                self.rx_pool.free(addr)
                self._fill_rx_ring()
                continue
            self.rx_forwarded += 1
            if self._flows is not None:
                flow = self._flows.peek(addr)
                if flow is not None:
                    fe_link = self._links.get(fe_name)
                    depth = (getattr(fe_link.tx, "pending", None)
                             if fe_link is not None else None)
                    flow.stage("chan.be2fe", depth=depth)
            cost += self._send_to_frontend(
                fe_name, NetMessage(OP_RX, completion.length, ip, addr)
            )
        return items, cost

    def _ip_for_tag(self, tag: Optional[int]) -> Optional[int]:
        if tag is None:
            return None
        return self._tag_to_ip.get(tag)

    def _inspect_buffer(self, addr: int) -> tuple:
        """Footnote 6 fallback: parse the header, then invalidate the lines."""
        self.rx_fallback_inspections += 1
        from ...net.packet import HEADER_SIZE

        data, load_ns = self.rx_domain.cache.load(addr, HEADER_SIZE,
                                                  category="payload")
        cost = load_ns
        cost += self.rx_domain.cache.clflush_range(addr, HEADER_SIZE,
                                                   category="payload")
        frame = Frame.unpack(data)
        return frame.dst_ip, cost

    def _send_to_frontend(self, fe_name: str, message: NetMessage) -> float:
        link = self._links.get(fe_name)
        if link is None:
            return 20.0
        try:
            return link.tx.send(message.pack())
        except ChannelFullError:
            # Ring full: queue for retry (the real ring would backpressure
            # the polling loop the same way).
            self._fe_retry.append((fe_name, message))
            self.sim.call_after(5e-6, self.kick)
            return 50.0

    # -- control plane (§3.3.3, §3.5) -----------------------------------------------------------

    def start_monitors(self) -> None:
        """Start the link monitor and telemetry reporting."""
        cfg = self.config.failover
        self._monitor_task = self.sim.every(
            cfg.link_monitor_interval_ms * MSEC, self._check_link
        )
        self._telemetry_task = self.sim.every(
            cfg.telemetry_interval_ms * MSEC, self._send_telemetry
        )

    def stop_monitors(self) -> None:
        if self._monitor_task is not None:
            self._monitor_task.cancel()
        if self._telemetry_task is not None:
            self._telemetry_task.cancel()

    def _on_link_change(self, up: bool) -> None:
        # Timestamp the physical failure so the detection span covers the
        # whole dead time until the periodic monitor notices (§3.3.3).
        if not up and self._link_down_at is None:
            self._link_down_at = self.sim.now
        elif up:
            self._link_down_at = None

    def _check_link(self) -> None:
        if self.nic.link_up:
            self._failure_reported = False
            return
        if self._failure_reported or self.control is None:
            return
        self._failure_reported = True
        down_at = self._link_down_at if self._link_down_at is not None else self.sim.now
        self.tracer.span("failover.detect", down_at, self.sim.now - down_at,
                         category="failover", track="failover",
                         nic=self.nic.name)
        self.tracer.begin("failover.report", key=self.nic.name,
                          category="failover", track="failover",
                          nic=self.nic.name)
        self.control.report_failure(self)

    def _send_telemetry(self) -> None:
        if self.control is None:
            return
        tx_delta = self.nic.tx_bytes - self._last_tx_bytes
        rx_delta = self.nic.rx_bytes - self._last_rx_bytes
        self._last_tx_bytes = self.nic.tx_bytes
        self._last_rx_bytes = self.nic.rx_bytes
        interval = self.config.failover.telemetry_interval_ms * MSEC
        self.control.telemetry(
            backend=self,
            record={
                "nic": self.nic.name,
                "host": self.host.name,
                "link_up": self.nic.link_up,
                "tx_bw": tx_delta / interval,
                "rx_bw": rx_delta / interval,
                "instances": len(self._registry),
                "aer": self.nic.aer.total(),
                "queue_depth": self.queue_depth,
                "time": self.sim.now,
            },
        )

    def borrow_mac(self, mac: int) -> None:
        """Take over a failed NIC's MAC by teaching the switch (§3.3.3)."""
        self.nic.send_raw(
            Frame(dst_mac=BROADCAST_MAC, src_mac=mac, wire_size=64)
        )
