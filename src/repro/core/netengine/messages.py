"""The network engine's 16 B message format (§3.3.1).

Every frontend<->backend signal is one fixed 16 B message: an 8 B buffer
pointer, a 2 B packet size, a 1 B opcode and a 4 B instance IP (plus one pad
byte).  The epoch bit lives in the opcode's MSB, so opcodes stay below 0x80.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from ...errors import ChannelError

__all__ = [
    "NetMessage",
    "OP_TX",
    "OP_TX_COMP",
    "OP_RX",
    "OP_RX_COMP",
    "NET_MESSAGE_SIZE",
]

OP_TX = 0x01        # frontend -> backend: transmit buffer
OP_TX_COMP = 0x02   # backend -> frontend: TX buffer done, free it
OP_RX = 0x03        # backend -> frontend: RX packet for instance
OP_RX_COMP = 0x04   # frontend -> backend: RX buffer consumed, recycle it

_FMT = struct.Struct("<BHIQx")   # opcode, size, instance ip, buffer pointer
NET_MESSAGE_SIZE = _FMT.size     # 16 bytes

_VALID_OPS = {OP_TX, OP_TX_COMP, OP_RX, OP_RX_COMP}


@dataclass(frozen=True)
class NetMessage:
    """One decoded network-engine message."""

    opcode: int
    size: int
    instance_ip: int
    buffer_addr: int

    def pack(self) -> bytes:
        if self.opcode not in _VALID_OPS:
            raise ChannelError(f"invalid network-engine opcode {self.opcode:#x}")
        if not 0 <= self.size <= 0xFFFF:
            raise ChannelError(f"packet size {self.size} does not fit in 2 bytes")
        return _FMT.pack(self.opcode, self.size, self.instance_ip, self.buffer_addr)

    @classmethod
    def unpack(cls, data: bytes) -> "NetMessage":
        opcode, size, ip, addr = _FMT.unpack(data)
        if opcode not in _VALID_OPS:
            raise ChannelError(f"invalid network-engine opcode {opcode:#x}")
        return cls(opcode=opcode, size=size, instance_ip=ip, buffer_addr=addr)
