"""The network engine's 16 B message format (§3.3.1).

Every frontend<->backend signal is one fixed 16 B message: an 8 B buffer
pointer, a 2 B packet size, a 1 B opcode, a 4 B instance IP and a 1 B
fencing epoch stamp (§3.3.3).  The stamp is the low byte of the sender's
lease epoch; backends compare it against the published epoch table and
answer stale posts with ``OP_TX_FENCED`` instead of touching the device.
"""

from __future__ import annotations

import struct

from ...errors import ChannelError

__all__ = [
    "NetMessage",
    "OP_TX",
    "OP_TX_COMP",
    "OP_RX",
    "OP_RX_COMP",
    "OP_TX_FENCED",
    "NET_MESSAGE_SIZE",
]

OP_TX = 0x01        # frontend -> backend: transmit buffer
OP_TX_COMP = 0x02   # backend -> frontend: TX buffer done, free it
OP_RX = 0x03        # backend -> frontend: RX packet for instance
OP_RX_COMP = 0x04   # frontend -> backend: RX buffer consumed, recycle it
OP_TX_FENCED = 0x05  # backend -> frontend: stale epoch, post rejected

_FMT = struct.Struct("<BHIQB")   # opcode, size, instance ip, buffer ptr, epoch
NET_MESSAGE_SIZE = _FMT.size     # 16 bytes
assert NET_MESSAGE_SIZE == 16

_VALID_OPS = {OP_TX, OP_TX_COMP, OP_RX, OP_RX_COMP, OP_TX_FENCED}


class NetMessage:
    """One decoded network-engine message.

    A plain slotted class rather than a dataclass: these are created and
    unpacked once per message hop on the driver cores' hottest loop, where
    a frozen dataclass pays ``object.__setattr__`` per field.  Value
    semantics (eq/hash/repr over the five fields) are preserved.
    """

    __slots__ = ("opcode", "size", "instance_ip", "buffer_addr", "epoch")

    def __init__(self, opcode: int, size: int, instance_ip: int,
                 buffer_addr: int, epoch: int = 0):
        self.opcode = opcode
        self.size = size
        self.instance_ip = instance_ip
        self.buffer_addr = buffer_addr
        self.epoch = epoch

    def pack(self) -> bytes:
        if self.opcode not in _VALID_OPS:
            raise ChannelError(f"invalid network-engine opcode {self.opcode:#x}")
        if not 0 <= self.size <= 0xFFFF:
            raise ChannelError(f"packet size {self.size} does not fit in 2 bytes")
        return _FMT.pack(self.opcode, self.size, self.instance_ip,
                         self.buffer_addr, self.epoch & 0xFF)

    @classmethod
    def unpack(cls, data: bytes) -> "NetMessage":
        message = cls.__new__(cls)
        (message.opcode, message.size, message.instance_ip,
         message.buffer_addr, message.epoch) = _FMT.unpack(data)
        if message.opcode not in _VALID_OPS:
            raise ChannelError(f"invalid network-engine opcode {message.opcode:#x}")
        return message

    def _key(self) -> tuple:
        return (self.opcode, self.size, self.instance_ip, self.buffer_addr,
                self.epoch)

    def __eq__(self, other) -> bool:
        if other.__class__ is NetMessage:
            return self._key() == other._key()
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._key())

    def __repr__(self) -> str:
        return (f"NetMessage(opcode={self.opcode!r}, size={self.size!r}, "
                f"instance_ip={self.instance_ip!r}, "
                f"buffer_addr={self.buffer_addr!r}, epoch={self.epoch!r})")
