"""Oasis network engine: NIC pooling (§3.3)."""

from .backend import FrontendLink, NetBackend
from .frontend import BackendLink, NetFrontend, VirtualNIC
from .messages import (
    NET_MESSAGE_SIZE,
    OP_RX,
    OP_RX_COMP,
    OP_TX,
    OP_TX_COMP,
    NetMessage,
)

__all__ = [
    "NetFrontend",
    "NetBackend",
    "VirtualNIC",
    "BackendLink",
    "FrontendLink",
    "NetMessage",
    "OP_TX",
    "OP_TX_COMP",
    "OP_RX",
    "OP_RX_COMP",
    "NET_MESSAGE_SIZE",
]
