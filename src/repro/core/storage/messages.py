"""The storage engine's 64 B message format (§3.4).

Each frontend<->backend storage message mirrors the fields of a 64 B NVMe
command: opcode, command id, namespace, starting LBA, block count and the
data buffer pointer in shared CXL memory, plus a status field for
completions and a one-byte fencing epoch stamp (§3.3.3).  Backends compare
the stamp against the allocator-published epoch table and answer stale
requests with ``STATUS_FENCED`` instead of touching the drive.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from ...errors import ChannelError

__all__ = [
    "StorageMessage",
    "SOP_READ",
    "SOP_WRITE",
    "SOP_COMPLETION",
    "SOP_FLUSH",
    "STATUS_FENCED",
    "STORAGE_MESSAGE_SIZE",
]

SOP_WRITE = 0x01       # mirrors NVMe NVM write
SOP_READ = 0x02        # mirrors NVMe NVM read
SOP_FLUSH = 0x03
SOP_COMPLETION = 0x10  # backend -> frontend CQE

#: Synthetic completion status: the request carried a stale fencing epoch
#: and was rejected before reaching the drive (§3.3.3).
STATUS_FENCED = 0xFD

# opcode, flags, cid, nsid, slba, nlb, buffer addr, instance ip, status,
# fencing epoch stamp + pad
_FMT = struct.Struct("<BBHIQIQIHB")
_PAD = 64 - _FMT.size
STORAGE_MESSAGE_SIZE = 64

_VALID_OPS = {SOP_READ, SOP_WRITE, SOP_FLUSH, SOP_COMPLETION}


@dataclass(frozen=True)
class StorageMessage:
    """One decoded 64 B storage-engine message."""

    opcode: int
    cid: int
    slba: int
    nlb: int
    buffer_addr: int
    instance_ip: int
    status: int = 0
    nsid: int = 1
    flags: int = 0
    epoch: int = 0

    def pack(self) -> bytes:
        if self.opcode not in _VALID_OPS:
            raise ChannelError(f"invalid storage opcode {self.opcode:#x}")
        raw = _FMT.pack(self.opcode, self.flags, self.cid, self.nsid, self.slba,
                        self.nlb, self.buffer_addr, self.instance_ip,
                        self.status, self.epoch & 0xFF)
        return raw + b"\x00" * _PAD

    @classmethod
    def unpack(cls, data: bytes) -> "StorageMessage":
        (opcode, flags, cid, nsid, slba, nlb, addr, ip, status,
         epoch) = _FMT.unpack_from(data)
        if opcode not in _VALID_OPS:
            raise ChannelError(f"invalid storage opcode {opcode:#x}")
        return cls(opcode=opcode, cid=cid, slba=slba, nlb=nlb, buffer_addr=addr,
                   instance_ip=ip, status=status, nsid=nsid, flags=flags,
                   epoch=epoch)
