"""The storage engine's 64 B message format (§3.4).

Each frontend<->backend storage message mirrors the fields of a 64 B NVMe
command: opcode, command id, namespace, starting LBA, block count and the
data buffer pointer in shared CXL memory, plus a status field for
completions and a one-byte fencing epoch stamp (§3.3.3).  Backends compare
the stamp against the allocator-published epoch table and answer stale
requests with ``STATUS_FENCED`` instead of touching the drive.
"""

from __future__ import annotations

import struct

from ...errors import ChannelError

__all__ = [
    "StorageMessage",
    "SOP_READ",
    "SOP_WRITE",
    "SOP_COMPLETION",
    "SOP_FLUSH",
    "STATUS_FENCED",
    "STORAGE_MESSAGE_SIZE",
]

SOP_WRITE = 0x01       # mirrors NVMe NVM write
SOP_READ = 0x02        # mirrors NVMe NVM read
SOP_FLUSH = 0x03
SOP_COMPLETION = 0x10  # backend -> frontend CQE

#: Synthetic completion status: the request carried a stale fencing epoch
#: and was rejected before reaching the drive (§3.3.3).
STATUS_FENCED = 0xFD

# opcode, flags, cid, nsid, slba, nlb, buffer addr, instance ip, status,
# fencing epoch stamp + pad
_FMT = struct.Struct("<BBHIQIQIHB")
_PAD = 64 - _FMT.size
STORAGE_MESSAGE_SIZE = 64

_VALID_OPS = {SOP_READ, SOP_WRITE, SOP_FLUSH, SOP_COMPLETION}


class StorageMessage:
    """One decoded 64 B storage-engine message.

    A plain slotted class rather than a dataclass: messages are created and
    unpacked once per hop on the storage drivers' polling loops, where a
    frozen dataclass pays ``object.__setattr__`` per field.  Value semantics
    (eq/hash/repr over all ten fields) are preserved.
    """

    __slots__ = ("opcode", "cid", "slba", "nlb", "buffer_addr", "instance_ip",
                 "status", "nsid", "flags", "epoch")

    def __init__(self, opcode: int, cid: int, slba: int, nlb: int,
                 buffer_addr: int, instance_ip: int, status: int = 0,
                 nsid: int = 1, flags: int = 0, epoch: int = 0):
        self.opcode = opcode
        self.cid = cid
        self.slba = slba
        self.nlb = nlb
        self.buffer_addr = buffer_addr
        self.instance_ip = instance_ip
        self.status = status
        self.nsid = nsid
        self.flags = flags
        self.epoch = epoch

    def pack(self) -> bytes:
        if self.opcode not in _VALID_OPS:
            raise ChannelError(f"invalid storage opcode {self.opcode:#x}")
        raw = _FMT.pack(self.opcode, self.flags, self.cid, self.nsid, self.slba,
                        self.nlb, self.buffer_addr, self.instance_ip,
                        self.status, self.epoch & 0xFF)
        return raw + b"\x00" * _PAD

    @classmethod
    def unpack(cls, data: bytes) -> "StorageMessage":
        message = cls.__new__(cls)
        (message.opcode, message.flags, message.cid, message.nsid,
         message.slba, message.nlb, message.buffer_addr, message.instance_ip,
         message.status, message.epoch) = _FMT.unpack_from(data)
        if message.opcode not in _VALID_OPS:
            raise ChannelError(f"invalid storage opcode {message.opcode:#x}")
        return message

    def _key(self) -> tuple:
        return (self.opcode, self.cid, self.slba, self.nlb, self.buffer_addr,
                self.instance_ip, self.status, self.nsid, self.flags,
                self.epoch)

    def __eq__(self, other) -> bool:
        if other.__class__ is StorageMessage:
            return self._key() == other._key()
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._key())

    def __repr__(self) -> str:
        return (f"StorageMessage(opcode={self.opcode!r}, cid={self.cid!r}, "
                f"slba={self.slba!r}, nlb={self.nlb!r}, "
                f"buffer_addr={self.buffer_addr!r}, "
                f"instance_ip={self.instance_ip!r}, status={self.status!r}, "
                f"nsid={self.nsid!r}, flags={self.flags!r}, "
                f"epoch={self.epoch!r})")
