"""Storage engine frontend driver (§3.4).

Provides local instances with a block-device interface
(:class:`VirtualBlockDevice`) and forwards I/O requests/completions to the
backend driver of the SSD each instance is allocated to, over 64 B message
channels.  Buffer handling mirrors the network engine: data buffers live in
shared CXL memory, are written back (CLWB) before the request is signalled,
and read buffers are invalidated after the copy-out so recycled buffers are
never read stale.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from ...config import OasisConfig
from ...errors import AllocationError, ChannelFullError, DeviceFailedError
from ...host.host import Host, MemDomain
from ...mem.layout import Region, RegionAllocator
from ...obs.flow import NULL_FLOWS
from ...overload import (AdmissionQueue, CircuitBreaker, RetryBudget,
                         WeightedFairScheduler)
from ...pcie.ssd import NVME_STATUS_FAILED, NVME_STATUS_MEDIA
from ...sim.core import MSEC, NSEC, USEC, Simulator
from ..engine import Driver
from .messages import (SOP_COMPLETION, SOP_READ, SOP_WRITE, STATUS_FENCED,
                       StorageMessage)

__all__ = ["StorageFrontend", "VirtualBlockDevice", "STATUS_TIMEOUT",
           "STATUS_SHED"]

#: Synthetic status for a request the frontend gave up on after its
#: per-attempt deadline expired repeatedly (no NVMe completion ever came).
STATUS_TIMEOUT = 0xFE

#: Synthetic status for a request shed by overload control (admission queue
#: full, CoDel sojourn drop, open circuit breaker, or brownout).  The
#: request never reached the device; the instance hears back immediately.
STATUS_SHED = 0xFC

#: Statuses worth retrying: the device is still there, the command failed.
_TRANSIENT_STATUSES = frozenset({NVME_STATUS_MEDIA, NVME_STATUS_FAILED})


class VirtualBlockDevice:
    """Instance-facing block device backed by a pooled SSD."""

    def __init__(self, frontend: "StorageFrontend", instance, backend_name: str,
                 block_size: int):
        self.frontend = frontend
        self.instance = instance
        self.backend_name = backend_name
        self.block_size = block_size

    def read(self, lba: int, nblocks: int,
             callback: Callable[[int, bytes], None], flow=None,
             background: bool = False, tenant: Optional[str] = None) -> int:
        """Async read; ``callback(status, data)`` fires on completion.

        ``background=True`` marks shed-first work (read-ahead, scrubbing):
        under brownout the frontend drops it before any foreground request.
        ``tenant`` tags the request for per-tenant weighted-fair scheduling
        once the pod arms ``enable_multi_tenant()`` (inert otherwise).
        """
        return self.frontend.submit_read(self, lba, nblocks, callback,
                                         flow=flow, background=background,
                                         tenant=tenant)

    def write(self, lba: int, data: bytes,
              callback: Callable[[int], None], flow=None,
              background: bool = False, tenant: Optional[str] = None) -> int:
        """Async write; ``callback(status)`` fires on completion."""
        return self.frontend.submit_write(self, lba, data, callback,
                                          flow=flow, background=background,
                                          tenant=tenant)


class StorageFrontend(Driver):
    """One storage frontend per host, on its own busy-polling core."""

    ITEM_NS = 180.0
    flows = NULL_FLOWS
    # Precomputed dispatch: None while flow tracing is disabled; rebound by
    # set_flows() when the pod enables it.
    _flows = None
    # Same pattern for overload control: None until enable_overload() binds
    # the admission queue, so disabled runs take the legacy paths unchanged.
    _overload = None
    _retry_rng = None
    brownout_level = 0
    # Multi-tenant serving: None until enable_multi_tenant() swaps the
    # single admission queue for the per-tenant WFQ; then a dict of
    # per-tenant accounting (tenant -> counter dict).
    _tenants = None

    def set_flows(self, flows) -> None:
        """Bind a flow registry; hot paths keep a None-or-registry alias."""
        self.flows = flows
        self._flows = flows if flows.enabled else None

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        buffer_domain: MemDomain,
        buffer_region: Region,
        config: Optional[OasisConfig] = None,
    ):
        super().__init__(sim, f"sfe-{host.name}", config)
        self.host = host
        self.domain = buffer_domain
        self._space = RegionAllocator(buffer_region)
        self._links: Dict[str, object] = {}        # backend name -> ChannelPair endpoints
        self._pending: Dict[int, dict] = {}        # cid -> request state
        self._next_cid = 1
        self.submitted = 0
        self.completed_ok = 0
        self.completed_error = 0
        # Overload control (off by default): requests shed before reaching
        # the device, by reason.  Conservation under shedding:
        # submitted == completed + in_flight + shed + gave_up.
        self.shed = 0
        self.shed_queue_full = 0
        self.shed_sojourn = 0
        self.shed_breaker = 0
        self.shed_brownout = 0
        self.retry_budget_denied = 0
        self._breakers: Dict[str, CircuitBreaker] = {}
        self._launched = 0
        self._pumping = False
        # Fault tolerance (§ graceful degradation): transient device errors
        # and lost completions are retried with exponential backoff before
        # the error is surfaced to the instance.
        self.retries = 0
        self.timeouts = 0
        self.giveups = 0
        # Fencing (§3.3.3): per-(backend, instance) epoch stamps put on the
        # wire, refreshed through the allocator after a FENCED rejection.
        self.control = None                          # allocator client
        self._stamps: Dict[Tuple[str, int], int] = {}
        self._resync_inflight: set = set()
        self.fenced = 0
        self.resyncs = 0

    def connect_backend(self, name: str, tx, rx) -> None:
        self._links[name] = (tx, rx)
        rx.bind(self.work)

    def make_device(self, instance, backend_name: str, block_size: int
                    ) -> VirtualBlockDevice:
        if backend_name not in self._links:
            raise AllocationError(f"no storage backend link {backend_name}")
        return VirtualBlockDevice(self, instance, backend_name, block_size)

    # -- overload control: admission, retry budget, breakers, brownout -----

    def enable_overload(self, overload_cfg, rng_factory) -> None:
        """Arm admission control, the retry budget and per-device breakers.

        ``rng_factory`` supplies dedicated substreams for breaker probe
        jitter and (optional) retry backoff jitter -- workload RNG streams
        are never touched, so enabling overload control cannot perturb
        arrival processes.
        """
        self._ovl_cfg = overload_cfg
        self._ovl_rng = rng_factory
        self._admission = AdmissionQueue(
            overload_cfg.admission_depth,
            overload_cfg.codel_target_ms * 1e-3,
            overload_cfg.codel_interval_ms * 1e-3)
        self._budget = RetryBudget(
            overload_cfg.retry_budget_ratio,
            overload_cfg.retry_budget_min,
            overload_cfg.retry_budget_cap)
        if overload_cfg.retry_jitter_frac > 0:
            self._retry_rng = rng_factory.get(f"overload/{self.name}/retry")
        self._overload = self._admission    # non-None alias gates hot paths

    def enable_multi_tenant(self, tenants) -> None:
        """Swap the single admission queue for per-tenant WFQ.

        ``tenants`` maps tenant name to :class:`~repro.overload.TenantSpec`
        (weight + optional token-bucket rate guarantee).  Requires
        ``enable_overload()`` first -- the pod arms both.  Requests tagged
        with a ``tenant`` get their own admission lane; untagged traffic
        shares a weight-1 lane.
        """
        if self._overload is None:
            raise RuntimeError("enable_overload() must be armed before "
                               "enable_multi_tenant()")
        cfg = self._ovl_cfg
        self._admission = WeightedFairScheduler(
            cfg.admission_depth,
            cfg.codel_target_ms * 1e-3,
            cfg.codel_interval_ms * 1e-3,
            tenants=dict(tenants))
        self._overload = self._admission
        self._tenants = {}
        for name in tenants:
            self._tenant_stats(name)

    _TENANT_STAT_KEYS = (
        "submitted", "completed_ok", "completed_error", "shed",
        "shed_queue_full", "shed_sojourn", "shed_breaker", "shed_brownout",
        "gave_up", "retries", "retry_budget_denied",
    )

    def _tenant_stats(self, tenant: Optional[str]) -> dict:
        stats = self._tenants.get(tenant)
        if stats is None:
            stats = self._tenants[tenant] = {
                key: 0 for key in self._TENANT_STAT_KEYS}
        return stats

    def tenant_stats(self) -> Dict[str, dict]:
        """Per-tenant accounting (empty until multi-tenant is armed)."""
        if self._tenants is None:
            return {}
        return {name: dict(stats)
                for name, stats in sorted(self._tenants.items(),
                                          key=lambda kv: str(kv[0]))}

    def set_brownout(self, level: int) -> None:
        """Brownout hook: level >= 1 sheds background I/O at admission."""
        self.brownout_level = level

    @property
    def admission_saturation(self) -> float:
        """Admission-queue fullness in [0, 1] (0.0 with overload off)."""
        if self._overload is None:
            return 0.0
        if self._tenants is not None:
            return self._admission.saturation
        return len(self._admission) / self._ovl_cfg.admission_depth

    @property
    def breaker_trips(self) -> int:
        return sum(b.trips for b in self._breakers.values())

    @property
    def breakers_open(self) -> int:
        return sum(1 for b in self._breakers.values() if b.state != "closed")

    def _breaker_for(self, backend_name: str) -> CircuitBreaker:
        breaker = self._breakers.get(backend_name)
        if breaker is None:
            cfg = self._ovl_cfg
            breaker = CircuitBreaker(
                cfg.breaker_failure_threshold,
                cfg.breaker_open_ms * 1e-3,
                cfg.breaker_probe_jitter_ms * 1e-3,
                rng=self._ovl_rng.get(
                    f"overload/{self.name}/breaker/{backend_name}"),
                name=backend_name)
            self._breakers[backend_name] = breaker
        return breaker

    def _admit(self, cid: int, message: StorageMessage) -> None:
        """Overload-mode entry: request arrives at the admission queue."""
        state = self._pending.get(cid)
        if state is None:
            return
        if self.brownout_level and state["background"]:
            self._shed(cid, state, "brownout")
            return
        if self._tenants is None:
            admitted = self._admission.push(self.sim.now, (cid, message))
        else:
            admitted = self._admission.push(self.sim.now, (cid, message),
                                            state["tenant"])
        if not admitted:
            self._shed(cid, state, "queue_full")
            return
        self._pump()

    def _pump(self) -> None:
        """Launch admitted requests while the device window has room."""
        if self._pumping:
            return
        self._pumping = True
        try:
            while self._launched < self._ovl_cfg.launch_window:
                item, dropped = self._admission.pop(self.sim.now)
                for drop_cid, _msg in dropped:
                    drop_state = self._pending.get(drop_cid)
                    if drop_state is not None:
                        self._shed(drop_cid, drop_state, "sojourn")
                if item is None:
                    return
                cid, message = item
                state = self._pending.get(cid)
                if state is None:
                    continue
                if not self._breaker_for(state["backend"]).allow(self.sim.now):
                    self._shed(cid, state, "breaker")
                    continue
                state["launched"] = True
                self._launched += 1
                self._enqueue(state["backend"], message)
                self._arm_timeout(cid)
        finally:
            self._pumping = False

    def _shed(self, cid: int, state: dict, reason: str) -> None:
        """Refuse a request before the device sees it (load shedding)."""
        self.shed += 1
        if reason == "queue_full":
            self.shed_queue_full += 1
        elif reason == "sojourn":
            self.shed_sojourn += 1
        elif reason == "breaker":
            self.shed_breaker += 1
        else:
            self.shed_brownout += 1
        if self._tenants is not None:
            stats = self._tenant_stats(state["tenant"])
            stats["shed"] += 1
            stats["shed_" + reason] += 1
        self._retire(cid, state, STATUS_SHED, b"")

    # -- fencing epochs (§3.3.3) --------------------------------------------------

    def set_stamp(self, backend_name: str, ip: int, epoch: int) -> None:
        """Adopt a fresh fencing epoch for (backend, instance)."""
        self._stamps[(backend_name, ip)] = epoch
        if (backend_name, ip) in self._resync_inflight:
            self._resync_inflight.discard((backend_name, ip))
            self.resyncs += 1

    def _stamp_for(self, backend_name: str, ip: int) -> int:
        return self._stamps.get((backend_name, ip), 0) & 0xFF

    def _request_resync(self, backend_name: str, ip: int) -> None:
        if (backend_name, ip) in self._resync_inflight or self.control is None:
            return
        self._resync_inflight.add((backend_name, ip))
        self.control.request_storage_resync(ip, self.host.name)

    # -- submission (instance context) ------------------------------------------

    def _alloc_cid(self) -> int:
        cid = self._next_cid
        self._next_cid = (self._next_cid % 0xFFFF) + 1
        while self._next_cid in self._pending:
            self._next_cid = (self._next_cid % 0xFFFF) + 1
        return cid

    def submit_write(self, device: VirtualBlockDevice, lba: int, data: bytes,
                     callback: Callable[[int], None], flow=None,
                     background: bool = False,
                     tenant: Optional[str] = None) -> int:
        if len(data) % device.block_size:
            raise AllocationError("write size must be a multiple of block size")
        nlb = len(data) // device.block_size
        region = self._space.alloc(len(data), "wbuf")
        if flow is not None:
            flow.stage("sfe.submit", depth=len(self._pending))
            self.flows.stash(region.base, flow)
        store_ns = self.domain.cache.store(region.base, data, category="payload")
        store_ns += self.domain.cache.clwb_range(region.base, len(data),
                                                 category="payload")
        cid = self._alloc_cid()
        ip = device.instance.ip if device.instance else 0
        self.submitted += 1
        self._pending[cid] = {
            "op": SOP_WRITE, "region": region, "callback": callback,
            "nbytes": len(data), "backend": device.backend_name,
            "lba": lba, "nlb": nlb, "ip": ip, "retries": 0, "attempt": 0,
            "background": background, "tenant": tenant,
        }
        if self._tenants is not None:
            self._tenant_stats(tenant)["submitted"] += 1
        message = StorageMessage(SOP_WRITE, cid, lba, nlb, region.base, ip,
                                 epoch=self._stamp_for(device.backend_name, ip))
        delay = self.config.datapath.ipc_hop_us * USEC + store_ns * NSEC
        if self._overload is None:
            self.sim.schedule(delay, self._enqueue, device.backend_name,
                              message)
            self._arm_timeout(cid)
        else:
            # Fresh traffic funds the retry budget; launch goes through the
            # admission queue (the timeout is armed at launch, not here).
            self._budget.deposit()
            self.sim.schedule(delay, self._admit, cid, message)
        return cid

    def submit_read(self, device: VirtualBlockDevice, lba: int, nblocks: int,
                    callback: Callable[[int, bytes], None], flow=None,
                    background: bool = False,
                    tenant: Optional[str] = None) -> int:
        region = self._space.alloc(nblocks * device.block_size, "rbuf")
        if flow is not None:
            flow.stage("sfe.submit", depth=len(self._pending))
            self.flows.stash(region.base, flow)
        # The region may have been a recycled write buffer whose (clean)
        # lines are still in our cache; the SSD's DMA write on the remote
        # host will not snoop them (§3.2.1).  Invalidate before posting so
        # the completion copy reads the device's bytes, not stale ones.
        self.domain.cache.clflush_range(region.base,
                                        nblocks * device.block_size,
                                        category="payload")
        cid = self._alloc_cid()
        ip = device.instance.ip if device.instance else 0
        self.submitted += 1
        self._pending[cid] = {
            "op": SOP_READ, "region": region, "callback": callback,
            "nbytes": nblocks * device.block_size, "backend": device.backend_name,
            "lba": lba, "nlb": nblocks, "ip": ip, "retries": 0, "attempt": 0,
            "background": background, "tenant": tenant,
        }
        if self._tenants is not None:
            self._tenant_stats(tenant)["submitted"] += 1
        message = StorageMessage(SOP_READ, cid, lba, nblocks, region.base, ip,
                                 epoch=self._stamp_for(device.backend_name, ip))
        delay = self.config.datapath.ipc_hop_us * USEC
        if self._overload is None:
            self.sim.schedule(delay, self._enqueue, device.backend_name,
                              message)
            self._arm_timeout(cid)
        else:
            self._budget.deposit()
            self.sim.schedule(delay, self._admit, cid, message)
        return cid

    def _enqueue(self, backend_name: str, message: StorageMessage) -> None:
        tx, _ = self._links[backend_name]
        if self._flows is not None:
            flow = self._flows.peek(message.buffer_addr)
            if flow is not None:
                flow.stage("chan.sfe2sbe",
                           depth=getattr(tx, "pending", None))
        try:
            tx.send(message.pack())
        except ChannelFullError:
            self.sim.schedule(10e-6, self._enqueue, backend_name, message)

    # -- driver loop: completions -------------------------------------------------

    def _process(self) -> tuple:
        items = 0
        cost = 0.0
        now_eps = self.sim.now + 1e-12
        for name, (tx, rx) in self._links.items():
            if rx.counter_view._consumed_since_update == 0:
                qv = rx.queue_view
                if not qv or (rx.timed and qv[0] > now_eps):
                    continue   # drain() would be a no-op
            payloads, drain_cost = rx.drain()
            cost += drain_cost
            items += len(payloads)
            unpack = StorageMessage.unpack
            for raw in payloads:
                message = unpack(raw)
                if message.opcode == SOP_COMPLETION:
                    cost += self._handle_completion(message)
        return items, cost

    # -- fault tolerance: per-attempt deadlines and retries ------------------------

    def _arm_timeout(self, cid: int) -> None:
        """Start (or restart) the per-attempt deadline for ``cid``."""
        state = self._pending.get(cid)
        if state is None:
            return
        state["attempt"] += 1
        self.sim.schedule(self.config.retry.storage_timeout_ms * MSEC,
                          self._on_timeout, cid, state["attempt"])

    def _on_timeout(self, cid: int, attempt: int) -> None:
        state = self._pending.get(cid)
        if state is None or state["attempt"] != attempt:
            return   # completed, or already retried: the deadline is stale
        self.timeouts += 1
        if self._overload is not None:
            self._breaker_for(state["backend"]).record_failure(self.sim.now)
        if state["retries"] >= self.config.retry.storage_max_retries:
            self.giveups += 1
            if self._tenants is not None:
                self._tenant_stats(state["tenant"])["gave_up"] += 1
            self._finish(cid, state, STATUS_TIMEOUT, b"")
            return
        if self._overload is not None and not self._budget.try_spend():
            # Retry budget exhausted: fail fast instead of feeding the storm.
            self.retry_budget_denied += 1
            self.giveups += 1
            if self._tenants is not None:
                stats = self._tenant_stats(state["tenant"])
                stats["retry_budget_denied"] += 1
                stats["gave_up"] += 1
            self._finish(cid, state, STATUS_TIMEOUT, b"")
            return
        self._schedule_retry(cid, state)

    def _schedule_retry(self, cid: int, state: dict) -> None:
        state["retries"] += 1
        self.retries += 1
        if self._tenants is not None:
            self._tenant_stats(state["tenant"])["retries"] += 1
        if self._flows is not None:
            flow = self._flows.peek(state["region"].base)
            if flow is not None:
                flow.stage("sfe.retry", depth=state["retries"])
        backoff = (self.config.retry.storage_backoff_ms
                   * self.config.retry.storage_backoff_mult
                   ** (state["retries"] - 1))
        if self._retry_rng is not None:
            # Jitter comes from a dedicated substream (overload/<name>/retry)
            # so it can never perturb workload RNG draws.
            frac = self._ovl_cfg.retry_jitter_frac
            backoff *= 1.0 + frac * float(self._retry_rng.uniform(-1.0, 1.0))
        self.sim.schedule(backoff * MSEC, self._resubmit, cid)

    def _resubmit(self, cid: int) -> None:
        state = self._pending.get(cid)
        if state is None:
            return   # a late completion beat the retry: nothing to redo
        region: Region = state["region"]
        if state["op"] == SOP_READ:
            # The failed attempt may have left (zero/partial) lines cached;
            # invalidate so the repeated DMA write is read fresh.
            self.domain.cache.clflush_range(region.base, state["nbytes"],
                                            category="payload")
        # Re-read the stamp: a resync between attempts supplies the fresh epoch.
        message = StorageMessage(state["op"], cid, state["lba"], state["nlb"],
                                 region.base, state["ip"],
                                 epoch=self._stamp_for(state["backend"],
                                                       state["ip"]))
        self._enqueue(state["backend"], message)
        self._arm_timeout(cid)

    def _handle_completion(self, message: StorageMessage) -> float:
        state = self._pending.get(message.cid)
        if state is None:
            return 20.0   # duplicate or post-timeout completion: ignore
        if message.status == STATUS_FENCED:
            # Stale fencing epoch: refresh the lease through the allocator,
            # then retry -- the resubmission picks up the new stamp.
            self.fenced += 1
            self._request_resync(state["backend"], state["ip"])
            if state["retries"] < self.config.retry.storage_max_retries:
                self._schedule_retry(message.cid, state)
                return self.ITEM_NS
            self.giveups += 1
            if self._tenants is not None:
                self._tenant_stats(state["tenant"])["gave_up"] += 1
            self._finish(message.cid, state, STATUS_FENCED, b"")
            return self.ITEM_NS
        if self._overload is not None:
            breaker = self._breaker_for(state["backend"])
            if message.status == 0:
                breaker.record_success(self.sim.now)
            elif message.status in _TRANSIENT_STATUSES:
                breaker.record_failure(self.sim.now)
        if message.status in _TRANSIENT_STATUSES:
            if state["retries"] < self.config.retry.storage_max_retries:
                if self._overload is None or self._budget.try_spend():
                    self._schedule_retry(message.cid, state)
                    return self.ITEM_NS
                self.retry_budget_denied += 1
                if self._tenants is not None:
                    self._tenant_stats(
                        state["tenant"])["retry_budget_denied"] += 1
            self.giveups += 1
            if self._tenants is not None:
                self._tenant_stats(state["tenant"])["gave_up"] += 1
        cost = self.ITEM_NS
        region: Region = state["region"]
        if state["op"] == SOP_READ and message.status == 0:
            # Copy the data out of shared memory, then invalidate the lines.
            data, load_ns = self.domain.cache.load(region.base, state["nbytes"],
                                                   category="payload")
            cost += load_ns
            cost += self.domain.cache.clflush_range(region.base, state["nbytes"],
                                                    category="payload")
        else:
            data = b""
        self._finish(message.cid, state, message.status, data)
        return cost

    def _finish(self, cid: int, state: dict, status: int, data: bytes) -> None:
        """Retire a served request and count it completed (ok or error)."""
        if status == 0:
            self.completed_ok += 1
        else:
            self.completed_error += 1
        if self._tenants is not None:
            self._tenant_stats(state["tenant"])[
                "completed_ok" if status == 0 else "completed_error"] += 1
        self._retire(cid, state, status, data)

    def _retire(self, cid: int, state: dict, status: int, data: bytes) -> None:
        """Release a request's buffer and call the instance back."""
        self._pending.pop(cid, None)
        if state.pop("launched", False):
            self._launched -= 1
        region: Region = state["region"]
        if self._flows is not None:
            # Pop: the buffer region is freed below and will be recycled.
            flow = self._flows.pop(region.base)
            if flow is not None:
                flow.stage("sfe.comp")
        self._space.free(region)
        callback = state["callback"]
        ipc = self.config.datapath.ipc_hop_us * USEC
        if state["op"] == SOP_READ:
            self.sim.schedule(ipc, callback, status, data)
        else:
            self.sim.schedule(ipc, callback, status)
        if self._overload is not None and len(self._admission):
            self._pump()    # a freed window slot launches the next request

    @property
    def inflight(self) -> int:
        return len(self._pending)
