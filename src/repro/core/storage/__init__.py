"""Oasis storage engine: SSD pooling (§3.4).

The paper designs this engine but does not implement it; we implement it
fully, mirroring the network engine's structure with 64 B NVMe-style
messages.
"""

from .backend import StorageBackend
from .frontend import StorageFrontend, VirtualBlockDevice
from .messages import (
    SOP_COMPLETION,
    SOP_FLUSH,
    SOP_READ,
    SOP_WRITE,
    STORAGE_MESSAGE_SIZE,
    StorageMessage,
)

__all__ = [
    "StorageFrontend",
    "StorageBackend",
    "VirtualBlockDevice",
    "StorageMessage",
    "SOP_READ",
    "SOP_WRITE",
    "SOP_FLUSH",
    "SOP_COMPLETION",
    "STORAGE_MESSAGE_SIZE",
]
