"""Storage engine backend driver (§3.4).

Runs only on hosts with local SSDs.  Forwards 64 B I/O requests from
frontend drivers to the SSD's submission queue through the native driver
model (:mod:`repro.pcie.ssd`) and returns completions.  The backend never
inspects data buffers -- the SSD DMAs them directly from/to shared CXL
memory (§3.2.1).

Failure semantics: Oasis does not attempt transparent SSD failover (the
backup would need an identical copy of the namespace); a failed drive simply
completes everything with an error status that the frontend surfaces to the
guest as an I/O error.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Optional

from ...config import OasisConfig
from ...errors import ChannelFullError, DeviceError, DeviceFailedError
from ...host.host import Host
from ...obs.flow import NULL_FLOWS
from ...pcie.queues import Completion, NVMeCommand
from ...pcie.ssd import NVME_STATUS_FAILED, SimSSD
from ...sim.core import Simulator
from ..engine import Driver
from .messages import (SOP_COMPLETION, SOP_READ, SOP_WRITE, STATUS_FENCED,
                       StorageMessage)

__all__ = ["StorageBackend"]


class StorageBackend(Driver):
    """One backend driver per pooled SSD."""

    ITEM_NS = 150.0
    flows = NULL_FLOWS
    # Precomputed dispatch: None while flow tracing is disabled; rebound by
    # set_flows() when the pod enables it.
    _flows = None

    def set_flows(self, flows) -> None:
        """Bind a flow registry; hot paths keep a None-or-registry alias."""
        self.flows = flows
        self._flows = flows if flows.enabled else None

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        ssd: SimSSD,
        config: Optional[OasisConfig] = None,
    ):
        super().__init__(sim, f"sbe-{ssd.name}", config)
        self.host = host
        self.ssd = ssd
        self._links: Dict[str, tuple] = {}     # frontend host -> (tx, rx)
        self._inflight: Dict[int, str] = {}    # cid -> frontend name
        self._completions: deque = deque()
        self.submitted = 0
        self.errored = 0
        self.fence_rejects = 0    # stale-epoch requests answered STATUS_FENCED
        self.stale_accepted = 0   # stale requests let through (fencing disabled)
        self.control = None                    # allocator client (set by pod)
        self.epochs = None                     # EpochTable, set by pod
        self.fencing_enabled = True
        self._telemetry_task = None
        self._last_read_bytes = 0
        self._last_write_bytes = 0
        ssd.on_completion = self._on_ssd_completion

    def connect_frontend(self, name: str, tx, rx) -> None:
        self._links[name] = (tx, rx)
        rx.bind(self.work)

    @property
    def device_name(self) -> str:
        return self.ssd.name

    @property
    def queue_depth(self) -> int:
        """Outstanding I/O: submission-queue occupancy plus inflight cids."""
        return max(len(self.ssd.sq), len(self._inflight))

    # -- SSD callback ----------------------------------------------------------

    def _on_ssd_completion(self, completion: Completion) -> None:
        if self._flows is not None:
            flow = self._flows.peek(completion.descriptor.addr)
            if flow is not None:
                flow.stage("sbe.comp", depth=len(self._completions))
        self._completions.append(completion)
        self.kick()

    # -- driver loop -------------------------------------------------------------

    def _process(self) -> tuple:
        items = 0
        cost = 0.0
        now_eps = self.sim.now + 1e-12
        for name, (tx, rx) in self._links.items():
            if rx.counter_view._consumed_since_update == 0:
                qv = rx.queue_view
                if not qv or (rx.timed and qv[0] > now_eps):
                    continue   # drain() would be a no-op
            payloads, drain_cost = rx.drain()
            cost += drain_cost
            items += len(payloads)
            unpack = StorageMessage.unpack
            for raw in payloads:
                cost += self._handle_request(name, unpack(raw))
        if self._completions:
            n, c = self._process_completions()
            items += n
            cost += c
        return items, cost

    def _handle_request(self, fe_name: str, message: StorageMessage) -> float:
        if message.opcode not in (SOP_READ, SOP_WRITE):
            return 20.0
        if (self.epochs is not None
                and not self.epochs.check(self.ssd.name, message.instance_ip,
                                          message.epoch)):
            # Stale-epoch writer (§3.3.3): reject before touching the drive.
            if self.fencing_enabled:
                self.fence_rejects += 1
                if self._flows is not None:
                    flow = self._flows.peek(message.buffer_addr)
                    if flow is not None:
                        flow.stage("sbe.fence", depth=len(self.ssd.sq))
                self._send_completion(fe_name, message, STATUS_FENCED)
                return self.ITEM_NS
            self.stale_accepted += 1
        if self._flows is not None:
            flow = self._flows.peek(message.buffer_addr)
            if flow is not None:
                flow.stage("sbe.submit", depth=len(self.ssd.sq))
        self._inflight[message.cid] = fe_name
        command = NVMeCommand(
            opcode=message.opcode,  # SOP_READ/WRITE mirror NVMe opcodes
            slba=message.slba,
            nlb=message.nlb,
            addr=message.buffer_addr,
            cid=message.cid,
            cookie=message,
            epoch=message.epoch,
        )
        try:
            self.ssd.submit(command)
            self.submitted += 1
        except (DeviceError, DeviceFailedError):
            # SQ full or drive dead: error completion straight back (§3.4).
            self._inflight.pop(message.cid, None)
            self.errored += 1
            self._send_completion(fe_name, message, NVME_STATUS_FAILED)
        return self.ITEM_NS

    def _process_completions(self) -> tuple:
        items = 0
        cost = 0.0
        while self._completions:
            completion = self._completions.popleft()
            items += 1
            cost += self.ITEM_NS
            message: StorageMessage = completion.descriptor.cookie
            fe_name = self._inflight.pop(message.cid, None)
            if fe_name is None:
                continue
            if completion.status != 0:
                self.errored += 1
            self._send_completion(fe_name, message, completion.status)
        return items, cost

    # -- control plane: 100 ms telemetry to the allocator (§3.5) -----------------

    def start_monitors(self) -> None:
        from ...sim.core import MSEC

        interval = self.config.failover.telemetry_interval_ms * MSEC
        self._telemetry_task = self.sim.every(interval, self._send_telemetry)

    def stop_monitors(self) -> None:
        if self._telemetry_task is not None:
            self._telemetry_task.cancel()

    def _send_telemetry(self) -> None:
        if self.control is None:
            return
        from ...sim.core import MSEC

        interval = self.config.failover.telemetry_interval_ms * MSEC
        read_delta = self.ssd.read_bytes - self._last_read_bytes
        write_delta = self.ssd.write_bytes - self._last_write_bytes
        self._last_read_bytes = self.ssd.read_bytes
        self._last_write_bytes = self.ssd.write_bytes
        self.control.telemetry(self, {
            "nic": self.ssd.name,       # telemetry store keys by device name
            "host": self.host.name,
            "link_up": not self.ssd.failed,
            "tx_bw": write_delta / interval,
            "rx_bw": read_delta / interval,
            "instances": len(self._links),
            "aer": self.ssd.aer.total(),
            "queue_depth": self.queue_depth,
            "time": self.sim.now,
        })

    def _send_completion(self, fe_name: str, request: StorageMessage,
                         status: int) -> None:
        tx, _ = self._links[fe_name]
        if self._flows is not None:
            flow = self._flows.peek(request.buffer_addr)
            if flow is not None:
                flow.stage("chan.sbe2sfe",
                           depth=getattr(tx, "pending", None))
        completion = StorageMessage(
            SOP_COMPLETION, request.cid, request.slba, request.nlb,
            request.buffer_addr, request.instance_ip, status=status,
            epoch=request.epoch,
        )
        try:
            tx.send(completion.pack())
        except ChannelFullError:
            self.sim.schedule(10e-6, self._send_completion, fe_name, request,
                              status)
