"""The common Oasis datapath over shared CXL memory (§3.2).

Two pieces live here:

* :class:`SharedRegions` -- carves the pod's CXL pool into channel rings,
  per-host TX regions (subdivided into per-instance TX buffer areas) and
  per-NIC RX buffer areas;
* :class:`DoorbellChannel` / :class:`LocalChannel` -- the discrete-event
  adapters drivers use to signal each other.  A :class:`DoorbellChannel`
  wraps the functional non-coherent ring protocol (sender on one host's
  cache, an ④-design receiver on another's) and models the end-to-end
  signalling latency -- CLWB visibility plus busy-poll discovery -- as a
  configurable hop.  A :class:`LocalChannel` is the baseline's local-DDR IPC
  path (Junction's iokernel rings), with no CXL involvement.

The functional ring still moves real bytes through the shared pool, so the
CXL traffic counters behind Table 3 and all staleness invariants remain live
in full-system experiments.
"""

from __future__ import annotations

from collections import deque
from heapq import heappush
from typing import Callable, List, Optional, Tuple

from ..config import OasisConfig
from ..channel.designs import InvalidatePrefetchedReceiver
from ..channel.protocol import ChannelSender
from ..channel.ring import RingLayout
from ..errors import ChannelFullError
from ..mem.cxl import CXLMemoryPool
from ..mem.layout import Region, RegionAllocator
from ..obs.trace import NULL_TRACER
from ..sim.core import _NEAR_WINDOW, Event, Signal, Simulator, USEC

__all__ = ["SharedRegions", "DoorbellChannel", "LocalChannel", "ChannelPair"]


class SharedRegions:
    """Region bookkeeping for one CXL pod."""

    def __init__(self, pool: CXLMemoryPool, config: Optional[OasisConfig] = None):
        self.pool = pool
        self.config = config or OasisConfig()
        self._allocator = RegionAllocator(Region(0, pool.size, "pool"))

    def alloc(self, size: int, label: str) -> Region:
        return self._allocator.alloc(size, label)

    def free(self, region: Region) -> None:
        self._allocator.free(region)

    def alloc_ring(self, message_size: int, label: str,
                   slots: Optional[int] = None) -> RingLayout:
        slots = slots or self.config.datapath.channel_slots
        region = self.alloc(RingLayout.required_bytes(slots, message_size), label)
        return RingLayout(region, slots, message_size)

    def alloc_tx_region(self, host_name: str) -> Region:
        return self.alloc(self.config.datapath.tx_region_bytes, f"tx-{host_name}")

    def alloc_rx_region(self, nic_name: str) -> Region:
        return self.alloc(self.config.datapath.rx_region_bytes, f"rx-{nic_name}")

    @property
    def free_bytes(self) -> int:
        return self._allocator.free_bytes


class DoorbellChannel:
    """One-way cross-host channel: non-coherent ring + modelled hop latency.

    The *hop* covers what the microbenchmark measures end to end: the
    sender's posted-write flight time plus the time until the busy-polling
    receiver core discovers the message (§5.1 explains why this is larger
    than the bare 0.6 us one-way figure: the driver cores also do other
    work).
    """

    tracer = NULL_TRACER
    # Precomputed dispatch: None while tracing is disabled; rebound to the
    # live tracer by set_tracer() when the pod enables tracing.
    _trace = None
    #: queue_view holds visibility timestamps; a future head means drain()
    #: cannot deliver yet (engine loops use this to skip the call).
    timed = True

    def set_tracer(self, tracer) -> None:
        """Bind a tracer; the hot path keeps a None-or-tracer fast alias."""
        self.tracer = tracer
        self._trace = tracer if tracer.enabled else None

    def __init__(
        self,
        sim: Simulator,
        layout: RingLayout,
        sender_cache,
        receiver_cache,
        name: str,
        hop_us: float = 2.8,
        prefetch_depth: int = 4,
    ):
        self.sim = sim
        self.name = name
        self.layout = layout
        self.hop_s = hop_us * USEC
        self.sender = ChannelSender(layout, sender_cache)
        # Datapath channels use a shallow prefetch window: driver cores drain
        # several channels in small batches, so a deep window would be
        # invalidated and re-fetched on every drain, wasting CXL bandwidth
        # (the microbenchmark's dedicated single-channel receiver keeps the
        # paper's depth of 16).
        self.receiver = InvalidatePrefetchedReceiver(
            layout, receiver_cache, prefetch_depth=prefetch_depth
        )
        self._work_signal: Optional[Signal] = None
        # Per-message visibility times: a message can be drained only once
        # its CLWB flight + busy-poll discovery delay has elapsed, so a later
        # message never rides an earlier message's doorbell for free.
        self._visible_at: deque = deque()
        self._fire_scheduled_for: Optional[float] = None
        # Stable aliases the engine drain loops use to skip a drain() call
        # that would be a guaranteed no-op (nothing in flight, no counter
        # update owed).  Both objects are fixed for the channel's lifetime.
        self.queue_view = self._visible_at
        self.counter_view = self.receiver

    @property
    def pending(self) -> int:
        """Messages sent but not yet drained (ring occupancy for flow depth)."""
        return len(self._visible_at)

    @property
    def occupancy_cached(self) -> float:
        """Ring occupancy in [0, 1] as the sender's cached view sees it.

        Zero-cost congestion signal for admission control: no counter
        refresh, conservatively biased full (the ring can only be emptier
        than the sender's cache believes).
        """
        return self.sender.occupancy_cached

    # -- receiver side ----------------------------------------------------------

    def bind(self, work_signal: Signal) -> None:
        """Attach the receiving driver's wakeup signal."""
        self._work_signal = work_signal

    def drain(self, limit: int = 256) -> Tuple[List[bytes], float]:
        """Receive the messages already visible; returns (payloads, cpu_ns)."""
        visible = self._visible_at
        if not visible:
            # Idle drain: nothing in flight, just flush a pending counter
            # update so the sender is not starved of slots.
            receiver = self.receiver
            if receiver._consumed_since_update == 0:
                return [], 0.0
            return [], 0.0 + receiver._publish_counter()
        now = self.sim.now + 1e-12
        if visible[-1] <= now:
            # Common case: every in-flight message is already visible, so
            # the per-entry scan reduces to a length clamp.
            ready = len(visible)
            if ready > limit:
                ready = limit
        else:
            ready = 0
            for visible_at in visible:
                if visible_at > now or ready >= limit:
                    break
                ready += 1
        payloads, cost = self.receiver.poll_batch(ready) if ready else ([], 0.0)
        if payloads:
            if len(payloads) == len(visible):
                visible.clear()
            else:
                for _ in payloads:
                    visible.popleft()
            if self._trace is not None:
                self._trace.instant("chan.recv", category="channel",
                                    track=self.name, count=len(payloads))
        else:
            cost += self.receiver.force_publish_counter()
        if visible:
            head = visible[0]
            fired_for = self._fire_scheduled_for
            if fired_for is None or fired_for > head + 1e-12:
                self._schedule_fire(head)
        return payloads, cost

    # -- sender side ---------------------------------------------------------------

    def send(self, payload: bytes) -> float:
        """Send one message and ring the doorbell.  Returns sender cpu ns."""
        cost = self.sender.send(payload)
        self._mark_visible(1)
        return cost

    def send_many(self, payloads: List[bytes]) -> float:
        """Send a batch with one flush + one doorbell (driver batching)."""
        state = [0, 0.0]   # [sent, cost_ns], updated in place per payload
        try:
            if self.sender.try_send_batch(payloads, state):
                raise ChannelFullError(self.name)
        finally:
            cost = state[1] + self.sender.flush()
            self._mark_visible(state[0])
        return cost

    def _mark_visible(self, count: int) -> None:
        if count <= 0:
            return
        if self._trace is not None:
            self._trace.instant("chan.send", category="channel",
                                track=self.name, count=count)
        visible_at = self.sim.now + self.hop_s
        if count == 1:
            self._visible_at.append(visible_at)
        else:
            self._visible_at.extend([visible_at] * count)
        # _schedule_fire's no-op guard, inlined: back-to-back sends in one
        # drain pass all land on the already-scheduled doorbell.
        fired_for = self._fire_scheduled_for
        if fired_for is None or fired_for > visible_at + 1e-12:
            self._schedule_fire(visible_at)

    def _schedule_fire(self, when: float) -> None:
        if self._work_signal is None:
            return
        if self._fire_scheduled_for is not None and \
                self._fire_scheduled_for <= when + 1e-12:
            return
        self._fire_scheduled_for = when
        sim = self.sim
        now = sim.now
        # sim.call_at(max(when, now), self._fire), open-coded: one of these
        # runs per doorbell ring, right behind every message send.
        delay = when - now if when > now else 0.0
        pool = sim._pool
        if pool:
            event = pool.pop()
            event.time = t = now + delay
            event.fn = self._fire
            event.args = ()
            event._live = True
        else:
            event = Event(sim, now + delay, self._fire, ())
            event._pooled = True
            t = event.time
        sim._live_events += 1
        seq = next(sim._seq)
        if delay == 0.0:
            event._seqno = seq
            sim._now_q.append(event)
        elif delay < _NEAR_WINDOW:
            heappush(sim._near, (t, seq, event))
        else:
            heappush(sim._far, (t, seq, event))

    def _fire(self) -> None:
        self._fire_scheduled_for = None
        if self._work_signal is not None:
            self._work_signal.set()


class _NoCounter:
    """Stands in for a receiver on channels with no consumed counter."""

    _consumed_since_update = 0


class LocalChannel:
    """Baseline signalling path: a lock-free ring in local DDR (no CXL)."""

    tracer = NULL_TRACER
    _trace = None
    # Drain-skip views (see DoorbellChannel): a LocalChannel owes nothing
    # when its queue is empty.
    counter_view = _NoCounter
    #: queue_view holds payloads (no timestamps); any entry is drainable now.
    timed = False

    def set_tracer(self, tracer) -> None:
        """Bind a tracer; the hot path keeps a None-or-tracer fast alias."""
        self.tracer = tracer
        self._trace = tracer if tracer.enabled else None

    def __init__(self, sim: Simulator, name: str, hop_us: float = 0.25):
        self.sim = sim
        self.name = name
        self.hop_s = hop_us * USEC
        self._queue: deque = deque()
        self.queue_view = self._queue
        self._work_signal: Optional[Signal] = None
        self._notify_pending = False
        self.sent = 0

    @property
    def pending(self) -> int:
        """Messages queued but not yet drained (flow depth annotation)."""
        return len(self._queue)

    def bind(self, work_signal: Signal) -> None:
        self._work_signal = work_signal

    def drain(self, limit: int = 256) -> Tuple[List[bytes], float]:
        out = []
        while self._queue and len(out) < limit:
            out.append(self._queue.popleft())
        return out, 25.0 * len(out)  # ~25 ns per local ring entry

    def send(self, payload: bytes) -> float:
        self._queue.append(payload)
        self.sent += 1
        if self._trace is not None:
            self._trace.instant("chan.send", category="channel",
                                track=self.name, count=1)
        self._notify()
        return 25.0

    def send_many(self, payloads: List[bytes]) -> float:
        self._queue.extend(payloads)
        self.sent += len(payloads)
        if payloads:
            if self._trace is not None:
                self._trace.instant("chan.send", category="channel",
                                    track=self.name, count=len(payloads))
            self._notify()
        return 25.0 * len(payloads)

    def _notify(self) -> None:
        if self._work_signal is None or self._notify_pending:
            return
        self._notify_pending = True
        self.sim.call_after(self.hop_s, self._fire)

    def _fire(self) -> None:
        self._notify_pending = False
        if self._work_signal is not None:
            self._work_signal.set()


class ChannelPair:
    """A bidirectional link between two drivers (one channel each way)."""

    def __init__(self, a_to_b, b_to_a, name: str = "pair"):
        self.a_to_b = a_to_b
        self.b_to_a = b_to_a
        self.name = name

    @classmethod
    def over_cxl(
        cls,
        sim: Simulator,
        regions: SharedRegions,
        cache_a,
        cache_b,
        name: str,
        message_size: int = 16,
        hop_us: float = 2.8,
        slots: Optional[int] = None,
    ) -> "ChannelPair":
        """Allocate both rings in shared memory and wire the caches."""
        layout_ab = regions.alloc_ring(message_size, f"{name}-ab", slots)
        layout_ba = regions.alloc_ring(message_size, f"{name}-ba", slots)
        return cls(
            DoorbellChannel(sim, layout_ab, cache_a, cache_b, f"{name}-ab", hop_us),
            DoorbellChannel(sim, layout_ba, cache_b, cache_a, f"{name}-ba", hop_us),
            name,
        )

    @classmethod
    def local(cls, sim: Simulator, name: str, hop_us: float = 0.25) -> "ChannelPair":
        return cls(
            LocalChannel(sim, f"{name}-ab", hop_us),
            LocalChannel(sim, f"{name}-ba", hop_us),
            name,
        )
