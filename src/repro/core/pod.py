"""CXLPod: the top-level Oasis system wiring.

This is the library's main entry point.  A pod bundles:

* one shared :class:`~repro.mem.cxl.CXLMemoryPool` (the multi-headed device),
* hosts with non-coherent caches and network-engine frontend drivers,
* pooled NICs with backend drivers, cabled to one learning switch,
* the pod-wide allocator (optionally replicated with Raft),
* the shared-region bookkeeping and all frontend<->backend message channels.

Three datapath modes regenerate the paper's comparison points:

* ``"oasis"`` -- I/O buffers in shared CXL memory, signalling over
  cross-host non-coherent message channels (the full system);
* ``"local"`` -- the Junction baseline: local-DDR buffers, local signalling,
  each host uses its own NIC;
* ``"local-cxl-buffers"`` -- Figure 11's middle bar: buffers in CXL memory
  but signalling still local.

Typical use::

    pod = CXLPod(mode="oasis")
    h0, h1 = pod.add_host(), pod.add_host()
    nic = pod.add_nic(h0)
    pod.add_nic(h1, is_backup=True)
    inst = pod.add_instance(h1, ip=make_ip(10, 0, 0, 1))   # remote NIC!
    client = pod.add_external_client(ip=make_ip(10, 0, 9, 1))
    ...
    pod.run(1.0)
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..config import OasisConfig
from ..errors import ConfigError
from ..host.host import Host
from ..host.instance import Instance, ResourceSpec
from ..mem.cxl import CXLMemoryPool
from ..net.endpoint import ExternalEndpoint
from ..net.packet import make_ip, make_mac
from ..net.switch import LearningSwitch
from ..obs import FlowRegistry, MetricsRegistry, TelemetryScraper, Tracer, bindings
from ..pcie.nic import SimNIC
from ..sim.core import Simulator
from ..sim.rng import RngFactory
from .allocator import AllocatorClient, PodAllocator, ShardedAllocator
from .arp import ArpRegistry
from .datapath import ChannelPair, SharedRegions
from .netengine.backend import FrontendLink, NetBackend
from .netengine.frontend import BackendLink, NetFrontend
from .raft import DirectTransport, RaftNode

__all__ = ["CXLPod", "RackPod", "RackBuilder", "PoolGroup"]

_MODES = ("oasis", "local", "local-cxl-buffers")


class CXLPod:
    """A rack-scale CXL pod running the Oasis network engine."""

    def __init__(
        self,
        config: Optional[OasisConfig] = None,
        mode: str = "oasis",
        channel_hop_us: float = 2.8,
    ):
        if mode not in _MODES:
            raise ConfigError(f"mode must be one of {_MODES}, got {mode!r}")
        self.config = (config or OasisConfig()).validate()
        self.mode = mode
        self.channel_hop_us = channel_hop_us
        self.sim = Simulator()
        self.rng = RngFactory(self.config.seed)
        self.pool = CXLMemoryPool(self.config.cxl)
        self.regions = SharedRegions(self.pool, self.config)
        self.switch = LearningSwitch(self.sim)
        self.arp = ArpRegistry()
        self.allocator = self._build_allocator()
        self._attach_epoch_mirrors()
        self.hosts: List[Host] = []
        self.frontends: Dict[str, NetFrontend] = {}
        self.backends: Dict[str, NetBackend] = {}
        self.nics: Dict[str, SimNIC] = {}
        self.instances: Dict[int, Instance] = {}
        self.clients: Dict[int, ExternalEndpoint] = {}
        self.raft_nodes: List[RaftNode] = []
        self.storage_backends: Dict[str, object] = {}
        self.storage_frontends: Dict[str, object] = {}
        self._next_client_index = 200

        # Observability: every legacy counter object registers into the
        # pod-wide metrics registry via collectors (observation-only), the
        # tracer starts disabled (cheap boolean check on hot paths) and the
        # scraper samples the registry once started.
        self.metrics = MetricsRegistry()
        self.tracer = Tracer(self.sim, enabled=False)
        self.scraper = TelemetryScraper(self.sim, self.metrics)
        # Flow tracing starts disabled: instrumented hops pay a boolean/dict
        # check until enable_flow_tracing() opts a run in.
        self.flows = FlowRegistry(self.sim, enabled=False)
        self.flows.tracer = self.tracer
        # Fleet health pipeline (streaming utilization/stranding/alerts):
        # built lazily by enable_fleet_telemetry(), None while off.
        self.fleet = None
        # Overload control (bounded admission, retry budgets, breakers,
        # brownout): armed by enable_overload_control(), off by default so
        # existing runs replay byte-identically.
        self.brownout = None
        self._overload_on = False
        self._overload_cfg = None
        self._load_sources: list = []
        # Multi-tenant QoS serving (per-tenant WFQ at the frontends):
        # armed by enable_multi_tenant(), None while off.
        self._tenant_specs = None
        self._tenant_clients: list = []
        self.allocator.tracer = self.tracer
        bindings.bind_pool(self.metrics, self.pool)
        bindings.bind_scraper(self.metrics, self.scraper)
        bindings.bind_switch(self.metrics, self.switch)
        bindings.bind_allocator(self.metrics, self.allocator)
        bindings.bind_tracer(self.metrics, self.tracer)
        bindings.bind_flows(self.metrics, self.flows)
        # Components with precomputed obs dispatch (a _trace/_flows alias
        # that is None while the facility is off).  enable_tracing() /
        # enable_flow_tracing() re-run the set_* binding on each so aliases
        # computed while disabled are swapped for the live object.
        self._traced: list = []
        self._flowed: list = []

    # -- construction hooks (overridden by RackPod) ---------------------------------

    def _build_allocator(self):
        return PodAllocator(self.sim, self.config)

    def _attach_epoch_mirrors(self) -> None:
        # CXL-resident device metadata (§3.3.3): one 64 B line per pooled
        # device mirrors its fencing epoch into pool memory.
        self.allocator.epochs.attach_mirror(
            self.pool, self.regions.alloc(4096, "epoch-meta"))

    def _bind_tracer(self, component) -> None:
        component.set_tracer(self.tracer)
        self._traced.append(component)

    def _bind_flows(self, component) -> None:
        component.set_flows(self.flows)
        self._flowed.append(component)

    def _arm_overload(self, component, brownout_target: bool = False) -> None:
        """Late-join hook: thread overload control into a new driver."""
        if not self._overload_on:
            return
        component.enable_overload(self._overload_cfg, self.rng)
        if brownout_target and self.brownout is not None:
            self.brownout.register(component)
        if self._tenant_specs is not None and hasattr(component,
                                                      "enable_multi_tenant"):
            component.enable_multi_tenant(self._tenant_specs)

    # -- topology ------------------------------------------------------------------

    def add_host(self, name: Optional[str] = None) -> Host:
        """Add a host with a network-engine frontend driver."""
        index = len(self.hosts)
        host = Host(self.sim, name or f"h{index}", self.pool, self.config, index)
        self.hosts.append(host)

        buffer_domain = host.local if self.mode == "local" else host.shared
        if buffer_domain.is_shared:
            tx_region = self.regions.alloc_tx_region(host.name)
        else:
            # Baseline: TX region in host-local DDR.
            from ..mem.layout import Region, RegionAllocator

            tx_region = Region(1 << 30, self.config.datapath.tx_region_bytes,
                               f"tx-{host.name}-local")
        frontend = NetFrontend(self.sim, host, buffer_domain, tx_region,
                               self.arp, self.config)
        self._bind_flows(frontend)
        frontend.on_unregister = self._on_migration_unregister
        frontend.control = AllocatorClient(self.sim, self.allocator)
        self.frontends[host.name] = frontend
        self.allocator.register_frontend(host.name, frontend)
        frontend.start()
        frontend.start_monitors()
        bindings.bind_cache(self.metrics, host.shared.cache, host.name,
                            domain="cxl")
        bindings.bind_cache(self.metrics, host.local.cache, host.name,
                            domain="ddr")
        bindings.bind_driver(self.metrics, frontend)
        self._arm_overload(frontend, brownout_target=True)

        # Connect the new frontend to every existing backend (oasis mode).
        if self.mode == "oasis":
            for backend in self.backends.values():
                self._wire(frontend, backend)
        return host

    def add_nic(self, host: Host, is_backup: bool = False,
                name: Optional[str] = None) -> SimNIC:
        """Attach a NIC to ``host``, with its backend driver, and pool it."""
        mac = make_mac(host.index, len(host.devices))
        device_index = sum(1 for n in self.nics.values() if n.host is host)
        default_name = (f"nic-{host.name}" if device_index == 0
                        else f"nic-{host.name}-{device_index}")
        nic = SimNIC(self.sim, host, mac, self.config.nic,
                     name=name or default_name)
        nic.connect(self.switch.new_port())
        self.nics[nic.name] = nic

        rx_local = self.mode == "local"
        rx_domain = host.local if rx_local else host.shared
        if rx_local:
            from ..mem.layout import Region

            rx_region = Region(8 << 30, self.config.datapath.rx_region_bytes,
                               f"rx-{nic.name}-local")
        else:
            rx_region = self.regions.alloc_rx_region(nic.name)
        backend = NetBackend(self.sim, host, nic, rx_domain, rx_region,
                             self.config, tx_buffers_local=(self.mode == "local"))
        backend.control = AllocatorClient(self.sim, self.allocator)
        backend.epochs = self.allocator.epochs
        self._bind_tracer(nic)
        self._bind_tracer(backend)
        self._bind_flows(nic)
        self._bind_flows(backend)
        bindings.bind_nic(self.metrics, nic)
        bindings.bind_driver(self.metrics, backend)
        self._arm_overload(backend)
        self.backends[nic.name] = backend
        self.allocator.register_backend(backend, self.config.nic.bandwidth_gbps,
                                        is_backup=is_backup)
        backend.start()
        backend.start_monitors()

        if self.mode == "oasis":
            for frontend in self.frontends.values():
                self._wire(frontend, backend)
        else:
            # Baseline modes: only the colocated frontend talks to this NIC.
            self._wire(self.frontends[host.name], backend)
        return nic

    def _wire(self, frontend: NetFrontend, backend: NetBackend) -> None:
        """Create the per-(frontend, backend) channel pair (§3.2.2)."""
        name = f"{frontend.host.name}-{backend.nic.name}"
        if self.mode == "oasis":
            pair = ChannelPair.over_cxl(
                self.sim, self.regions,
                frontend.host.shared.cache, backend.host.shared.cache,
                name, message_size=self.config.datapath.net_message_bytes,
                hop_us=self.channel_hop_us,
                slots=self.config.datapath.channel_slots,
            )
        else:
            pair = ChannelPair.local(self.sim, name)
        self._bind_tracer(pair.a_to_b)
        self._bind_tracer(pair.b_to_a)
        bindings.bind_channel_pair(self.metrics, pair)
        frontend.connect_backend(BackendLink(
            name=backend.nic.name, tx=pair.a_to_b, rx=pair.b_to_a,
            rx_domain=backend.rx_domain, nic_mac=backend.nic.mac,
            remote=frontend.host is not backend.host,
        ))
        backend.connect_frontend(FrontendLink(
            name=frontend.host.name, tx=pair.b_to_a, rx=pair.a_to_b,
        ))

    # -- instances and clients ----------------------------------------------------------

    def add_instance(
        self,
        host: Host,
        ip: int,
        name: Optional[str] = None,
        spec: Optional[ResourceSpec] = None,
        nic: Optional[SimNIC] = None,
    ) -> Instance:
        """Launch an instance; the allocator picks its NIC unless given."""
        spec = spec or ResourceSpec()
        instance = Instance(self.sim, name or f"inst-{len(self.instances)}",
                            host, ip, spec)
        self.instances[ip] = instance
        frontend = self.frontends[host.name]

        if nic is not None:
            primary_name = nic.name
            backup_name = self.allocator.choose_backup_name(nic.name)
            self.allocator.place_pinned(ip, host.name, primary_name,
                                        spec.nic_gbps, backup=backup_name)
        else:
            primary_name, backup_name = self.allocator.place_instance(
                ip, host.name, spec.nic_gbps
            )
        epoch = self.allocator.epochs.entry(primary_name, ip) or 0

        primary_backend = self.backends[primary_name]
        primary_backend.register_instance(ip, host.name)
        backup_link = None
        if backup_name is not None and self.mode == "oasis":
            # Register with the backup NIC at launch so failover is instant.
            backup_backend = self.backends[backup_name]
            backup_backend.register_instance(ip, host.name)
            backup_link = frontend.link(backup_name)
        frontend.register_instance(instance, frontend.link(primary_name),
                                   backup=backup_link, epoch=epoch)
        return instance

    # -- storage engine (§3.4) ------------------------------------------------------

    def add_ssd(self, host: Host, name: Optional[str] = None):
        """Attach an NVMe SSD to ``host`` with a storage backend driver."""
        from ..pcie.ssd import SimSSD
        from .storage.backend import StorageBackend

        ssd = SimSSD(self.sim, host, self.config.ssd,
                     name=name or f"ssd-{host.name}-{len(host.devices)}")
        backend = StorageBackend(self.sim, host, ssd, self.config)
        self.storage_backends[ssd.name] = backend
        backend.control = AllocatorClient(self.sim, self.allocator,
                                          storage=True)
        backend.epochs = self.allocator.epochs
        self._bind_tracer(ssd)
        self._bind_flows(ssd)
        self._bind_flows(backend)
        bindings.bind_ssd(self.metrics, ssd)
        bindings.bind_driver(self.metrics, backend)
        self.allocator.register_storage_backend(
            backend, self.config.ssd.capacity_bytes / 1e12
        )
        backend.start()
        backend.start_monitors()
        return ssd

    def _storage_frontend(self, host: Host):
        from .storage.frontend import StorageFrontend

        frontend = self.storage_frontends.get(host.name)
        if frontend is None:
            domain = host.local if self.mode == "local" else host.shared
            if domain.is_shared:
                region = self.regions.alloc(256 << 20, f"sbuf-{host.name}")
            else:
                from ..mem.layout import Region

                region = Region(12 << 30, 256 << 20, f"sbuf-{host.name}-local")
            frontend = StorageFrontend(self.sim, host, domain, region, self.config)
            self._bind_flows(frontend)
            frontend.control = AllocatorClient(self.sim, self.allocator)
            frontend.start()
            bindings.bind_driver(self.metrics, frontend)
            self._arm_overload(frontend, brownout_target=True)
            self.storage_frontends[host.name] = frontend
            self.allocator.register_storage_frontend(host.name, frontend)
        return frontend

    def add_block_device(self, instance: Instance, ssd=None):
        """Give ``instance`` a block device backed by ``ssd``.

        When ``ssd`` is omitted the pod-wide allocator places the instance
        (host-local SSD first, then the least-loaded drive in the pod, §3.5).
        """
        if ssd is None:
            name = self.allocator.place_storage(
                instance.ip, instance.host.name, instance.spec.ssd_tb
            )
            ssd = self.storage_backends[name].ssd
        else:
            self.allocator.place_pinned_storage(
                instance.ip, instance.host.name, ssd.name,
                instance.spec.ssd_tb
            )
        epoch = self.allocator.epochs.entry(ssd.name, instance.ip) or 0
        frontend = self._storage_frontend(instance.host)
        frontend.set_stamp(ssd.name, instance.ip, epoch)
        backend = self.storage_backends[ssd.name]
        link_key = f"{instance.host.name}-{ssd.name}"
        if ssd.name not in frontend._links:
            if self.mode == "oasis":
                pair = ChannelPair.over_cxl(
                    self.sim, self.regions,
                    instance.host.shared.cache, ssd.host.shared.cache,
                    f"st-{link_key}",
                    message_size=self.config.datapath.storage_message_bytes,
                    hop_us=self.channel_hop_us,
                    slots=self.config.datapath.channel_slots,
                )
            else:
                pair = ChannelPair.local(self.sim, f"st-{link_key}")
            self._bind_tracer(pair.a_to_b)
            self._bind_tracer(pair.b_to_a)
            bindings.bind_channel_pair(self.metrics, pair)
            frontend.connect_backend(ssd.name, pair.a_to_b, pair.b_to_a)
            backend.connect_frontend(instance.host.name, pair.b_to_a, pair.a_to_b)
        return frontend.make_device(instance, ssd.name, self.config.ssd.block_size)

    def add_external_client(self, ip: int, name: Optional[str] = None,
                            stack_latency_us: float = 0.7) -> ExternalEndpoint:
        """Attach a bare-metal load driver straight to the switch (§5)."""
        index = self._next_client_index
        self._next_client_index += 1
        client = ExternalEndpoint(
            self.sim, name or f"client-{index}", make_mac(index), ip,
            self.switch.new_port(), stack_latency_us,
        )
        client.set_arp(self.arp)
        self.arp.announce(ip, client.mac)
        self.clients[ip] = client
        return client

    # -- control-plane replication --------------------------------------------------------

    def enable_raft(self, replicas: int = 3, latency_us: float = 5.0) -> None:
        """Replicate the allocator with Raft across ``replicas`` hosts.

        Each node carries a full replica of the allocator state machine;
        commands committed through the log apply on every replica, and the
        leader additionally runs the external side effects (exactly once,
        deduplicated by command ID across leader changes).
        """
        transport = DirectTransport(self.sim, latency_us)
        ids = [f"alloc-{i}" for i in range(replicas)]
        for i, node_id in enumerate(ids):
            # The allocator's colocated node gets a short election timeout so
            # it (deterministically) wins the first election.
            timeouts = (60.0, 90.0) if i == 0 else (150.0, 300.0)
            node = RaftNode(
                self.sim, node_id, ids, transport,
                apply_cb=None,
                election_timeout_ms=timeouts,
                rng=self.rng.get(f"raft-{node_id}"),
            )
            node.tracer = self.tracer
            # Pin each replica to a host so host-crash faults take its
            # control-plane replica down with it.  With more hosts than
            # replicas, stride the replicas evenly across the host list --
            # packing them onto the first few hosts (the old ``i % len``)
            # put a log majority on one rack slice, so a single host crash
            # could stall the whole control plane.
            node.host = self._replica_host(i, replicas, self.hosts)
            bindings.bind_raft_node(self.metrics, node)
            self.raft_nodes.append(node)
        self.allocator.attach_raft_cluster(self.raft_nodes)
        for node in self.raft_nodes:
            node.start()

    @staticmethod
    def _replica_host(i: int, replicas: int, hosts: List[Host]):
        if not hosts:
            return None
        if len(hosts) >= replicas:
            return hosts[(i * len(hosts)) // replicas]
        return hosts[i % len(hosts)]

    def set_fencing(self, enabled: bool) -> None:
        """Toggle epoch fencing at every backend (for overhead comparisons).

        Disabling detaches the epoch table entirely, so the data path pays
        zero extra cost; re-enabling re-attaches the live table.
        """
        table = self.allocator.epochs if enabled else None
        for backend in self.backends.values():
            backend.epochs = table
            backend.fencing_enabled = enabled
        for backend in self.storage_backends.values():
            backend.epochs = table
            backend.fencing_enabled = enabled

    # -- failure injection -------------------------------------------------------------------

    def _on_migration_unregister(self, ip: int, old_link_name: str) -> None:
        """Grace period over: release the instance's old-NIC registration."""
        backend = self.backends.get(old_link_name)
        if backend is not None:
            backend.unregister_instance(ip)

    def fail_switch_port(self, nic: SimNIC) -> None:
        """The paper's failure injection: disable the NIC's switch port."""
        nic.port.set_enabled(False)

    def fail_nic(self, nic: SimNIC) -> None:
        nic.fail()

    def inject_faults(self, plan):
        """Arm a :class:`~repro.faults.plan.FaultPlan` against this pod.

        Resolves the plan's fault times through the pod's seeded RNG, wires
        the injector's event counters into the metrics registry, and returns
        the armed :class:`~repro.faults.injector.FaultInjector`.
        """
        from ..faults.injector import FaultInjector

        injector = FaultInjector(self, plan)
        injector.arm()
        bindings.bind_injector(self.metrics, injector)
        self.fault_injector = injector
        return injector

    def check_invariants(self, interval_s: Optional[float] = None):
        """Install the chaos invariant probes; returns the checker.

        With ``interval_s`` the continuous invariants are also re-evaluated
        periodically; call ``finish()`` at the end of the run for the verdict.
        """
        from ..faults.invariants import InvariantChecker

        checker = InvariantChecker(self, getattr(self, "fault_injector", None))
        checker.install()
        if interval_s is not None:
            checker.start(interval_s)
        return checker

    # -- overload control (admission, retry budgets, breakers, brownout) ------------

    def enable_overload_control(self, overload=None):
        """Arm overload control across both engines (off by default).

        Threads bounded admission queues, the shared retry budget and
        per-device circuit breakers into every storage/net frontend and
        net backend (including ones added later), and -- once fleet
        telemetry is on -- starts the brownout controller that sheds
        low-priority work off the HealthView queue-saturation gauges.

        ``overload`` overrides ``config.overload``; either way the config
        is force-enabled for this pod.  Disabled pods pay only a ``None``
        check on the hot paths, so runs without this call replay
        byte-identically against older builds.
        """
        from dataclasses import replace

        cfg = overload if overload is not None else self.config.overload
        if not cfg.enabled:
            cfg = replace(cfg, enabled=True)
        cfg.validate()
        self._overload_cfg = cfg
        self._overload_on = True
        for frontend in self.storage_frontends.values():
            frontend.enable_overload(cfg, self.rng)
        for frontend in self.frontends.values():
            frontend.enable_overload(cfg, self.rng)
        for backend in self.backends.values():
            backend.enable_overload(cfg, self.rng)
        self._start_brownout()
        return cfg

    def _start_brownout(self) -> None:
        """Start the saturation-driven brownout loop (needs fleet health)."""
        if not self._overload_on or self.fleet is None or self.brownout is not None:
            return
        from ..overload import BrownoutController

        cfg = self._overload_cfg
        self.brownout = BrownoutController(
            self.sim, self.fleet.view(),
            high=cfg.brownout_high, low=cfg.brownout_low,
            period_s=cfg.brownout_period_s)
        for frontend in self.storage_frontends.values():
            self.brownout.register(frontend)
        for frontend in self.frontends.values():
            self.brownout.register(frontend)
        self.brownout.start()

    def register_load_source(self, client) -> None:
        """Register an open-loop generator as an ``overload.surge`` target."""
        self._load_sources.append(client)

    # -- multi-tenant QoS serving (per-tenant WFQ, rate guarantees) -----------------

    def enable_multi_tenant(self, tenants, overload=None):
        """Arm per-tenant weighted-fair queueing at every frontend.

        ``tenants`` maps tenant name to
        :class:`~repro.overload.TenantSpec` (weight, optional guaranteed
        rate).  Requires overload control -- it is armed implicitly when
        not already on -- because WFQ replaces the single admission queue.
        Frontends added later inherit the tenant set via the same
        late-join hook as overload control.  Off by default: pods that
        never call this keep the single shared queue and replay
        byte-identically.
        """
        from ..overload import TenantSpec

        specs = {}
        for name, spec in tenants.items():
            if not isinstance(spec, TenantSpec):
                spec = TenantSpec(**spec)
            spec.validate()
            specs[name] = spec
        if not self._overload_on:
            self.enable_overload_control(overload)
        self._tenant_specs = specs
        for frontend in self.storage_frontends.values():
            frontend.enable_multi_tenant(specs)
        for frontend in self.frontends.values():
            frontend.enable_multi_tenant(specs)
        return specs

    def register_tenant_client(self, client) -> None:
        """Register a tenant load generator for fleet telemetry export."""
        self._tenant_clients.append(client)
        self._load_sources.append(client)
        bindings.bind_tenant_client(self.metrics, client)

    # -- observability -----------------------------------------------------------------------

    def enable_tracing(self, max_events: int = 2_000_000,
                       categories=None) -> Tracer:
        """Turn on the pod tracer (optionally limited to some categories)."""
        self.tracer.enabled = True
        self.tracer.max_events = max_events
        self.tracer.categories = (set(categories) if categories is not None
                                  else None)
        # Swap the precomputed None-dispatch for the live tracer on every
        # component bound while tracing was still off.
        for component in self._traced:
            component.set_tracer(self.tracer)
        return self.tracer

    def enable_flow_tracing(self, max_records: int = 100_000) -> FlowRegistry:
        """Turn on end-to-end flow tracing: every request started with the
        pod's registry yields a record attributing its latency across hops."""
        self.flows.enabled = True
        self.flows.max_records = max_records
        # Swap the precomputed None-dispatch for the live registry on every
        # component bound while flow tracing was still off.
        for component in self._flowed:
            component.set_flows(self.flows)
        return self.flows

    def start_telemetry(self, period_s: Optional[float] = None) -> TelemetryScraper:
        """Start sampling the metrics registry at ``period_s`` of sim time."""
        return self.scraper.start(period_s)

    def enable_fleet_telemetry(self, period_s: float = 0.01, rules=None,
                               slo=None):
        """Turn on the streaming fleet-health pipeline (off by default).

        Builds a :class:`~repro.obs.fleet.FleetHealth` sized from this
        pod's configured device/link capacities, subscribes it to the
        scraper (it consumes deltas, never retains raw snapshots), exports
        its ``fleet_alert_*`` counters into the registry, and starts the
        scraper at ``period_s``.  Returns the pipeline; query it through
        ``pod.fleet.view()``.

        ``rules`` overrides :data:`~repro.obs.fleet.DEFAULT_ALERT_RULES`;
        ``slo`` is an optional :class:`~repro.obs.attribution.SLOChecker`
        evaluated against live flow attribution (needs
        ``enable_flow_tracing()``) for the burn-rate gauge.
        """
        from ..obs.fleet import FleetHealth

        if self.fleet is not None:
            return self.fleet
        self.fleet = FleetHealth(
            nic_bytes_per_sec=self.config.nic.bytes_per_sec,
            ssd_bytes_per_sec=self.config.ssd.bytes_per_sec,
            link_bytes_per_sec=self.config.cxl.link_bytes_per_sec,
            nic_queue_depth=self.config.nic.tx_queue_depth,
            ssd_queue_depth=self.config.ssd.queue_depth,
            rules=rules,
            tracer=self.tracer,
            registry=self.metrics,
            flows=self.flows,
            slo=slo,
        )
        self.scraper.subscribe(self.fleet.ingest)
        self.start_telemetry(period_s)
        self._start_brownout()
        return self.fleet

    # -- running -----------------------------------------------------------------------------

    def run(self, duration: float) -> None:
        """Advance the simulation by ``duration`` seconds."""
        self.sim.run(until=self.sim.now + duration)

    # -- measurement helpers --------------------------------------------------------------------

    def cxl_traffic_by_category(self) -> Dict[str, int]:
        """Pod-wide CXL link bytes by category (payload/message/counter)."""
        merged: Dict[str, int] = {}
        for stats in self.pool.link_stats.values():
            for category, nbytes in stats.by_category().items():
                merged[category] = merged.get(category, 0) + nbytes
        return merged

    def stop(self) -> None:
        for driver in (list(self.frontends.values())
                       + list(self.backends.values())
                       + list(self.storage_frontends.values())
                       + list(self.storage_backends.values())):
            driver.stop()
        for backend in self.backends.values():
            backend.stop_monitors()
        for backend in self.storage_backends.values():
            backend.stop_monitors()
        for frontend in self.frontends.values():
            frontend.stop_monitors()
        if self.brownout is not None:
            self.brownout.stop()
        self.allocator.stop()


# -- rack scale -----------------------------------------------------------------------


@dataclass
class PoolGroup:
    """One CXL pool's slice of a rack: memory, regions, member hosts."""

    name: str
    pool: CXLMemoryPool
    regions: SharedRegions
    hosts: List[Host] = field(default_factory=list)


class RackPod(CXLPod):
    """A rack-scale pod: N hosts across M CXL pools, sharded control plane.

    Each pool is an independent :class:`PoolGroup` -- its own
    :class:`~repro.mem.cxl.CXLMemoryPool`, shared regions and allocator
    shard (a full :class:`~repro.core.allocator.PodAllocator` with its own
    state machine, epoch table and optional Raft cluster).  Hosts belong to
    exactly one pool; frontends are wired only to same-pool backends, so a
    placement never crosses a pool boundary -- the datapath's shared
    buffers live in exactly one pool.

    ``port_limit`` models the multi-headed device's finite head count: the
    shard's placement policy refuses to attach a device to more than
    ``port_limit`` distinct hosts.  Always ``"oasis"`` mode -- the rack
    regime only exists with pooled devices.
    """

    def __init__(
        self,
        config: Optional[OasisConfig] = None,
        pools: int = 1,
        port_limit: Optional[int] = None,
        channel_hop_us: float = 2.8,
    ):
        if pools < 1:
            raise ConfigError(f"pools must be >= 1, got {pools}")
        self._n_pools = pools
        self._port_limit = port_limit
        self.groups: List[PoolGroup] = []
        self._host_group: Dict[str, PoolGroup] = {}
        super().__init__(config=config, mode="oasis",
                         channel_hop_us=channel_hop_us)

    # -- construction hooks ---------------------------------------------------------

    def _build_allocator(self):
        # Pool 0 wraps the base pod's pool/regions; the rest are fresh.
        self.groups = [PoolGroup("pool0", self.pool, self.regions)]
        for i in range(1, self._n_pools):
            pool = CXLMemoryPool(self.config.cxl)
            self.groups.append(
                PoolGroup(f"pool{i}", pool, SharedRegions(pool, self.config)))
        return ShardedAllocator(self.sim, self.config,
                                [g.name for g in self.groups],
                                port_limit=self._port_limit)

    def _attach_epoch_mirrors(self) -> None:
        for group in self.groups:
            self.allocator.shards[group.name].epochs.attach_mirror(
                group.pool, group.regions.alloc(4096, "epoch-meta"))

    @contextmanager
    def _in_group(self, group: PoolGroup):
        """Run base-class topology code against ``group``'s pool/regions."""
        prev = (self.pool, self.regions)
        self.pool, self.regions = group.pool, group.regions
        try:
            yield
        finally:
            self.pool, self.regions = prev

    # -- topology -------------------------------------------------------------------

    def add_host(self, name: Optional[str] = None,
                 pool: Optional[int] = None) -> Host:
        """Add a host to pool ``pool`` (default: pool 0)."""
        group = self.groups[(pool or 0) % len(self.groups)]
        host_name = name or f"h{len(self.hosts)}"
        # Routing must exist before the base class registers the frontend
        # and wires channels (both consult the host -> shard map).
        self._host_group[host_name] = group
        self.allocator.assign_host(host_name, group.name)
        with self._in_group(group):
            host = super().add_host(host_name)
        group.hosts.append(host)
        return host

    def add_nic(self, host: Host, is_backup: bool = False,
                name: Optional[str] = None) -> SimNIC:
        group = self._host_group[host.name]
        with self._in_group(group):
            nic = super().add_nic(host, is_backup=is_backup, name=name)
        # Hot path: the backend stamps/checks epochs per post -- hand it the
        # shard's real table instead of the per-call routing facade.
        self.backends[nic.name].epochs = self.allocator.shards[group.name].epochs
        return nic

    def add_ssd(self, host: Host, name: Optional[str] = None):
        group = self._host_group[host.name]
        with self._in_group(group):
            ssd = super().add_ssd(host, name=name)
        self.storage_backends[ssd.name].epochs = (
            self.allocator.shards[group.name].epochs)
        return ssd

    def _wire(self, frontend: NetFrontend, backend: NetBackend) -> None:
        gf = self._host_group.get(frontend.host.name)
        gb = self._host_group.get(backend.host.name)
        if gf is None or gb is None or gf is not gb:
            return  # never wire across pools: no shared buffers to post into
        with self._in_group(gf):
            super()._wire(frontend, backend)

    def _storage_frontend(self, host: Host):
        with self._in_group(self._host_group[host.name]):
            return super()._storage_frontend(host)

    def add_block_device(self, instance: Instance, ssd=None):
        with self._in_group(self._host_group[instance.host.name]):
            return super().add_block_device(instance, ssd=ssd)

    # -- control-plane replication --------------------------------------------------

    def enable_raft(self, replicas: int = 3, latency_us: float = 5.0) -> None:
        """One Raft cluster per pool shard.

        Replicas are strided across the shard's own hosts (distinct hosts
        whenever the pool has enough), so one host crash can never take a
        log majority down with it.
        """
        for group in self.groups:
            shard = self.allocator.shards[group.name]
            transport = DirectTransport(self.sim, latency_us)
            ids = [f"alloc-{group.name}-{i}" for i in range(replicas)]
            nodes = []
            for i, node_id in enumerate(ids):
                # The shard-colocated node deterministically wins the first
                # election (same convention as the 2-host pod).
                timeouts = (60.0, 90.0) if i == 0 else (150.0, 300.0)
                node = RaftNode(
                    self.sim, node_id, ids, transport,
                    apply_cb=None,
                    election_timeout_ms=timeouts,
                    rng=self.rng.get(f"raft-{node_id}"),
                )
                node.tracer = self.tracer
                node.host = self._replica_host(i, replicas,
                                               group.hosts or self.hosts)
                bindings.bind_raft_node(self.metrics, node)
                self.raft_nodes.append(node)
                nodes.append(node)
            shard.attach_raft_cluster(nodes)
            for node in nodes:
                node.start()

    def set_fencing(self, enabled: bool) -> None:
        for name, backend in self.backends.items():
            shard = self.allocator.shard_for_device(name)
            backend.epochs = shard.epochs if enabled else None
            backend.fencing_enabled = enabled
        for name, backend in self.storage_backends.items():
            shard = self.allocator.shard_for_device(name)
            backend.epochs = shard.epochs if enabled else None
            backend.fencing_enabled = enabled

    # -- measurement ----------------------------------------------------------------

    def cxl_traffic_by_category(self) -> Dict[str, int]:
        merged: Dict[str, int] = {}
        for group in self.groups:
            for stats in group.pool.link_stats.values():
                for category, nbytes in stats.by_category().items():
                    merged[category] = merged.get(category, 0) + nbytes
        return merged


class RackBuilder:
    """Declarative rack topology -> a fully wired :class:`RackPod`.

    Hosts are block-assigned to pools (hosts ``0..k-1`` to ``pool0`` and so
    on), every host gets ``nics_per_host`` pooled NICs and ``ssds_per_host``
    SSDs, and each pool designates ``backup_nics_per_pool`` additional NICs
    as failover backups.  The defaults build the ROADMAP's 32-host rack
    with 224 pooled devices::

        pod = RackBuilder().build()            # 32 hosts, 4 pools, K=4
        pod = RackBuilder(hosts=8, pools=2).build()   # CI-sized slice
    """

    def __init__(
        self,
        hosts: int = 32,
        pools: int = 4,
        nics_per_host: int = 2,
        ssds_per_host: int = 1,
        backup_nics_per_pool: int = 1,
        port_limit: Optional[int] = 4,
        config: Optional[OasisConfig] = None,
        channel_hop_us: float = 2.8,
    ):
        if hosts < 1:
            raise ConfigError(f"hosts must be >= 1, got {hosts}")
        if pools < 1 or pools > hosts:
            raise ConfigError(
                f"need 1 <= pools <= hosts, got pools={pools} hosts={hosts}")
        if nics_per_host < 1:
            raise ConfigError("nics_per_host must be >= 1")
        self.hosts = hosts
        self.pools = pools
        self.nics_per_host = nics_per_host
        self.ssds_per_host = ssds_per_host
        self.backup_nics_per_pool = backup_nics_per_pool
        self.port_limit = port_limit
        self.config = config
        self.channel_hop_us = channel_hop_us

    def device_count(self) -> int:
        return (self.hosts * (self.nics_per_host + self.ssds_per_host)
                + self.pools * self.backup_nics_per_pool)

    def build(self) -> RackPod:
        pod = RackPod(config=self.config, pools=self.pools,
                      port_limit=self.port_limit,
                      channel_hop_us=self.channel_hop_us)
        per_pool = (self.hosts + self.pools - 1) // self.pools
        for i in range(self.hosts):
            pod.add_host(pool=min(i // per_pool, self.pools - 1))
        for group in pod.groups:
            for host in group.hosts:
                for _ in range(self.nics_per_host):
                    pod.add_nic(host)
                for _ in range(self.ssds_per_host):
                    pod.add_ssd(host)
            for b in range(self.backup_nics_per_pool):
                if group.hosts:
                    pod.add_nic(group.hosts[b % len(group.hosts)],
                                is_backup=True)
        return pod
