"""Raft consensus substrate for the replicated pod-wide allocator."""

from .log import LogEntry, RaftLog
from .node import CANDIDATE, FOLLOWER, LEADER, RaftNode
from .rpc import ChannelRpcTransport, DirectTransport

__all__ = [
    "RaftNode",
    "RaftLog",
    "LogEntry",
    "FOLLOWER",
    "CANDIDATE",
    "LEADER",
    "DirectTransport",
    "ChannelRpcTransport",
]
