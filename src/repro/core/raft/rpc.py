"""Raft RPC transports.

Two implementations of the same interface:

* :class:`DirectTransport` -- point-to-point delivery with a configurable
  latency distribution; the default for pod-internal use where the message
  channels' end-to-end latency is what matters, not their byte layout.
* :class:`ChannelRpcTransport` -- RPCs carried over real Oasis message
  channels (§3.5: "using RPCs transmitted over the message channels"),
  fragmenting JSON-encoded messages into fixed 64 B control messages with a
  reassembly layer.  Slower to simulate; used by tests to show that the
  control plane genuinely runs over the non-coherent shared-memory datapath.
"""

from __future__ import annotations

import json
import struct
from typing import Any, Callable, Dict, Optional, Tuple

from ...errors import ChannelError, ChannelFullError
from ...sim.core import Simulator, USEC

__all__ = ["DirectTransport", "ChannelRpcTransport", "FRAGMENT_PAYLOAD"]


class DirectTransport:
    """In-pod message delivery with per-hop latency."""

    def __init__(self, sim: Simulator, latency_us: float = 5.0):
        self.sim = sim
        self.latency_s = latency_us * USEC
        self._nodes: Dict[str, Callable[[str, dict], None]] = {}
        self._partitioned: set = set()
        self.messages_sent = 0

    def register(self, node_id: str, deliver: Callable[[str, dict], None]) -> None:
        self._nodes[node_id] = deliver

    def partition(self, node_id: str) -> None:
        """Isolate a node (for leader-failure tests)."""
        self._partitioned.add(node_id)

    def heal(self, node_id: str) -> None:
        self._partitioned.discard(node_id)

    def send(self, src: str, dst: str, message: dict) -> None:
        if src in self._partitioned or dst in self._partitioned:
            return
        deliver = self._nodes.get(dst)
        if deliver is None:
            return
        self.messages_sent += 1
        self.sim.schedule(self.latency_s, deliver, src, message)


# 64 B control message: opcode 0x10, rpc id, fragment index, fragment count,
# payload length, then up to 48 B of JSON payload.
_FRAG_HEADER = struct.Struct("<BxHIIH")
FRAGMENT_PAYLOAD = 64 - _FRAG_HEADER.size
_OP_FRAGMENT = 0x10


class ChannelRpcTransport:
    """RPCs over Oasis 64 B message channels, with fragmentation."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._nodes: Dict[str, Callable[[str, dict], None]] = {}
        # (src, dst) -> DoorbellChannel-like endpoint (64 B messages)
        self._channels: Dict[Tuple[str, str], Any] = {}
        self._reassembly: Dict[Tuple[str, str, int], list] = {}
        self._next_rpc_id = 1
        self.messages_sent = 0
        self.fragments_sent = 0

    def register(self, node_id: str, deliver: Callable[[str, dict], None]) -> None:
        self._nodes[node_id] = deliver

    def add_channel(self, src: str, dst: str, channel) -> None:
        """Wire a one-way 64 B channel for src -> dst and pump it."""
        self._channels[(src, dst)] = channel
        pump = _ChannelPump(self.sim, self, src, dst, channel)
        channel.bind(pump.work)
        pump.start()

    def send(self, src: str, dst: str, message: dict) -> None:
        channel = self._channels.get((src, dst))
        if channel is None:
            raise ChannelError(f"no channel {src} -> {dst}")
        payload = json.dumps(message, separators=(",", ":")).encode()
        rpc_id = self._next_rpc_id
        self._next_rpc_id += 1
        nfrags = max(1, (len(payload) + FRAGMENT_PAYLOAD - 1) // FRAGMENT_PAYLOAD)
        self.messages_sent += 1
        for i in range(nfrags):
            chunk = payload[i * FRAGMENT_PAYLOAD:(i + 1) * FRAGMENT_PAYLOAD]
            frag = _FRAG_HEADER.pack(_OP_FRAGMENT, rpc_id & 0xFFFF, i, nfrags,
                                     len(chunk))
            frag += chunk.ljust(FRAGMENT_PAYLOAD, b"\x00")
            try:
                channel.send(frag)
            except ChannelFullError:
                return  # dropped; Raft retries on its own timers
            self.fragments_sent += 1

    def _on_fragment(self, src: str, dst: str, raw: bytes) -> None:
        opcode, rpc_id, index, nfrags, length = _FRAG_HEADER.unpack_from(raw)
        if opcode != _OP_FRAGMENT:
            return
        chunk = raw[_FRAG_HEADER.size:_FRAG_HEADER.size + length]
        key = (src, dst, rpc_id)
        frags = self._reassembly.setdefault(key, [None] * nfrags)
        if index >= len(frags):
            return
        frags[index] = chunk
        if all(f is not None for f in frags):
            del self._reassembly[key]
            message = json.loads(b"".join(frags).decode())
            deliver = self._nodes.get(dst)
            if deliver is not None:
                deliver(src, message)


class _ChannelPump:
    """Driver-lite: drains one control channel and feeds the transport."""

    def __init__(self, sim, transport: ChannelRpcTransport, src: str, dst: str,
                 channel):
        self.sim = sim
        self.transport = transport
        self.src = src
        self.dst = dst
        self.channel = channel
        self.work = sim.signal(auto_reset=True)
        self.running = False

    def start(self) -> None:
        self.running = True
        self.sim.spawn(self._loop(), name=f"rpc-{self.src}-{self.dst}")

    def _loop(self):
        while self.running:
            yield self.work
            payloads, cost = self.channel.drain()
            for raw in payloads:
                self.transport._on_fragment(self.src, self.dst, raw)
            if cost:
                yield cost * 1e-9
