"""Raft consensus (Ongaro & Ousterhout, ATC '14).

The pod-wide allocator replicates its state machine with Raft (§3.5).  This
is a complete single-decree-free implementation: randomized election
timeouts, leader election with the up-to-date check, log replication with
conflict truncation, commitment only of current-term entries, and state
machine application callbacks.  Messages travel over a pluggable transport
(see :mod:`repro.core.raft.rpc`).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

import numpy as np

from ...obs.trace import NULL_TRACER
from ...sim.core import MSEC, Simulator
from .log import LogEntry, RaftLog

__all__ = ["RaftNode", "FOLLOWER", "CANDIDATE", "LEADER"]

FOLLOWER = "follower"
CANDIDATE = "candidate"
LEADER = "leader"


class RaftNode:
    """One Raft peer."""

    tracer = NULL_TRACER

    def __init__(
        self,
        sim: Simulator,
        node_id: str,
        peers: List[str],
        transport,
        apply_cb: Optional[Callable[[int, Any], None]] = None,
        election_timeout_ms: tuple = (150.0, 300.0),
        heartbeat_ms: float = 50.0,
        rng: Optional[np.random.Generator] = None,
    ):
        self.sim = sim
        self.node_id = node_id
        self.peers = [p for p in peers if p != node_id]
        self.transport = transport
        self.apply_cb = apply_cb
        self.election_timeout_ms = election_timeout_ms
        self.heartbeat_ms = heartbeat_ms
        self.rng = rng if rng is not None else np.random.default_rng(hash(node_id) & 0xFFFF)

        self.state = FOLLOWER
        self.current_term = 0
        self.voted_for: Optional[str] = None
        self.log = RaftLog()
        self.commit_index = 0
        self.last_applied = 0
        self.leader_id: Optional[str] = None
        self._votes: set = set()
        self.next_index: Dict[str, int] = {}
        self.match_index: Dict[str, int] = {}
        self._election_timer = None
        self._heartbeat_timer = None
        self.alive = True

        transport.register(node_id, self._on_message)

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> None:
        self._reset_election_timer()

    def crash(self) -> None:
        """Stop participating (volatile state survives for restart tests)."""
        self.alive = False
        self._cancel_timers()

    def restart(self) -> None:
        self.alive = True
        self.state = FOLLOWER
        self.leader_id = None
        self._reset_election_timer()

    def _cancel_timers(self) -> None:
        for timer in (self._election_timer, self._heartbeat_timer):
            if timer is not None:
                timer.cancel()
        self._election_timer = None
        self._heartbeat_timer = None

    # -- timers ------------------------------------------------------------------

    def _reset_election_timer(self) -> None:
        if self._election_timer is not None:
            self._election_timer.cancel()
        lo, hi = self.election_timeout_ms
        timeout = float(self.rng.uniform(lo, hi)) * MSEC
        self._election_timer = self.sim.schedule(timeout, self._on_election_timeout)

    def _on_election_timeout(self) -> None:
        if not self.alive or self.state == LEADER:
            return
        self._start_election()

    def _start_heartbeats(self) -> None:
        if self._heartbeat_timer is not None:
            self._heartbeat_timer.cancel()
        self._broadcast_append()
        self._heartbeat_timer = self.sim.schedule(
            self.heartbeat_ms * MSEC, self._on_heartbeat
        )

    def _on_heartbeat(self) -> None:
        if not self.alive or self.state != LEADER:
            return
        self._broadcast_append()
        self._heartbeat_timer = self.sim.schedule(
            self.heartbeat_ms * MSEC, self._on_heartbeat
        )

    # -- elections ----------------------------------------------------------------

    def _start_election(self) -> None:
        self.state = CANDIDATE
        self.current_term += 1
        self.tracer.instant("raft.election", category="raft", track="raft",
                            node=self.node_id, term=self.current_term)
        self.voted_for = self.node_id
        self._votes = {self.node_id}
        self.leader_id = None
        self._reset_election_timer()
        for peer in self.peers:
            self._send(peer, {
                "type": "request_vote",
                "term": self.current_term,
                "candidate": self.node_id,
                "last_log_index": self.log.last_index,
                "last_log_term": self.log.last_term,
            })
        self._maybe_win()

    def _maybe_win(self) -> None:
        if self.state != CANDIDATE:
            return
        if len(self._votes) * 2 > len(self.peers) + 1:
            self._become_leader()

    def _become_leader(self) -> None:
        self.state = LEADER
        self.leader_id = self.node_id
        self.tracer.instant("raft.leader", category="raft", track="raft",
                            node=self.node_id, term=self.current_term)
        for peer in self.peers:
            self.next_index[peer] = self.log.last_index + 1
            self.match_index[peer] = 0
        if self._election_timer is not None:
            self._election_timer.cancel()
        self._start_heartbeats()

    # -- client interface ---------------------------------------------------------------

    @property
    def is_leader(self) -> bool:
        return self.alive and self.state == LEADER

    def propose(self, command: Any) -> Optional[int]:
        """Append a command; returns its log index, or None if not leader."""
        if not self.is_leader:
            return None
        index = self.log.append(LogEntry(self.current_term, command))
        self.match_index[self.node_id] = index
        self._broadcast_append()
        if not self.peers:
            self._advance_commit()
        return index

    # -- message handling -----------------------------------------------------------------

    def _send(self, dst: str, message: dict) -> None:
        self.transport.send(self.node_id, dst, message)

    def _on_message(self, src: str, message: dict) -> None:
        if not self.alive:
            return
        term = message.get("term", 0)
        if term > self.current_term:
            self.current_term = term
            self.voted_for = None
            self._step_down()
        handler = {
            "request_vote": self._on_request_vote,
            "request_vote_reply": self._on_request_vote_reply,
            "append_entries": self._on_append_entries,
            "append_entries_reply": self._on_append_entries_reply,
        }.get(message.get("type"))
        if handler is not None:
            handler(src, message)

    def _step_down(self) -> None:
        if self.state != FOLLOWER:
            self.state = FOLLOWER
            if self._heartbeat_timer is not None:
                self._heartbeat_timer.cancel()
                self._heartbeat_timer = None
        self._reset_election_timer()

    def _on_request_vote(self, src: str, m: dict) -> None:
        grant = False
        if m["term"] >= self.current_term:
            log_ok = self.log.up_to_date(m["last_log_index"], m["last_log_term"])
            if log_ok and self.voted_for in (None, m["candidate"]):
                grant = True
                self.voted_for = m["candidate"]
                self._reset_election_timer()
        self._send(src, {
            "type": "request_vote_reply",
            "term": self.current_term,
            "granted": grant,
        })

    def _on_request_vote_reply(self, src: str, m: dict) -> None:
        if self.state != CANDIDATE or m["term"] < self.current_term:
            return
        if m.get("granted"):
            self._votes.add(src)
            self._maybe_win()

    def _broadcast_append(self) -> None:
        for peer in self.peers:
            self._send_append(peer)

    def _send_append(self, peer: str) -> None:
        prev_index = self.next_index.get(peer, self.log.last_index + 1) - 1
        entries = self.log.entries_from(prev_index + 1)
        self._send(peer, {
            "type": "append_entries",
            "term": self.current_term,
            "leader": self.node_id,
            "prev_index": prev_index,
            "prev_term": self.log.term_at(prev_index),
            "entries": [[e.term, e.command] for e in entries],
            "leader_commit": self.commit_index,
        })

    def _on_append_entries(self, src: str, m: dict) -> None:
        success = False
        match = 0
        if m["term"] >= self.current_term:
            self.leader_id = m["leader"]
            if self.state != FOLLOWER:
                self._step_down()
            else:
                self._reset_election_timer()
            if self.log.matches(m["prev_index"], m["prev_term"]):
                entries = [LogEntry(t, c) for t, c in m["entries"]]
                self.log.merge(m["prev_index"], entries)
                success = True
                match = m["prev_index"] + len(entries)
                if m["leader_commit"] > self.commit_index:
                    self.commit_index = min(m["leader_commit"], self.log.last_index)
                    self._apply()
        self._send(src, {
            "type": "append_entries_reply",
            "term": self.current_term,
            "success": success,
            "match_index": match,
        })

    def _on_append_entries_reply(self, src: str, m: dict) -> None:
        if self.state != LEADER or m["term"] < self.current_term:
            return
        if m["success"]:
            self.match_index[src] = max(self.match_index.get(src, 0), m["match_index"])
            self.next_index[src] = self.match_index[src] + 1
            self._advance_commit()
        else:
            self.next_index[src] = max(1, self.next_index.get(src, 1) - 1)
            self._send_append(src)

    def _advance_commit(self) -> None:
        """Commit the highest index replicated on a majority (current term)."""
        cluster = len(self.peers) + 1
        for index in range(self.log.last_index, self.commit_index, -1):
            if self.log.term_at(index) != self.current_term:
                break
            replicas = 1 + sum(
                1 for peer in self.peers if self.match_index.get(peer, 0) >= index
            )
            if replicas * 2 > cluster:
                self.commit_index = index
                self._apply()
                break

    def _apply(self) -> None:
        while self.last_applied < self.commit_index:
            self.last_applied += 1
            entry = self.log.entry(self.last_applied)
            if self.apply_cb is not None:
                self.apply_cb(self.last_applied, entry.command)
