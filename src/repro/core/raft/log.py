"""Raft replicated log."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional

__all__ = ["LogEntry", "RaftLog"]


@dataclass(frozen=True)
class LogEntry:
    """One committed-or-pending log entry."""

    term: int
    command: Any


class RaftLog:
    """1-indexed append-only log with conflict truncation (Raft §5.3)."""

    def __init__(self):
        self._entries: List[LogEntry] = []

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def last_index(self) -> int:
        return len(self._entries)

    @property
    def last_term(self) -> int:
        return self._entries[-1].term if self._entries else 0

    def term_at(self, index: int) -> int:
        """Term of entry ``index``; index 0 is the sentinel with term 0."""
        if index == 0:
            return 0
        return self._entries[index - 1].term

    def entry(self, index: int) -> LogEntry:
        return self._entries[index - 1]

    def append(self, entry: LogEntry) -> int:
        self._entries.append(entry)
        return self.last_index

    def entries_from(self, index: int) -> List[LogEntry]:
        """Entries at positions >= ``index``."""
        return self._entries[index - 1:]

    def matches(self, index: int, term: int) -> bool:
        """AppendEntries consistency check for (prev_index, prev_term)."""
        if index == 0:
            return True
        if index > self.last_index:
            return False
        return self.term_at(index) == term

    def merge(self, prev_index: int, entries: List[LogEntry]) -> None:
        """Append ``entries`` after ``prev_index``, truncating conflicts."""
        for offset, entry in enumerate(entries):
            index = prev_index + 1 + offset
            if index <= self.last_index:
                if self.term_at(index) != entry.term:
                    del self._entries[index - 1:]
                    self._entries.append(entry)
                # else: already have it (idempotent)
            else:
                self._entries.append(entry)

    def up_to_date(self, other_last_index: int, other_last_term: int) -> bool:
        """Is (other_last_term, other_last_index) at least as current as us?"""
        if other_last_term != self.last_term:
            return other_last_term > self.last_term
        return other_last_index >= self.last_index
