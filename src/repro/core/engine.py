"""Engine framework: the driver event loop shared by all Oasis engines.

Each Oasis engine contributes a frontend driver (every host) and a backend
driver (device-attached hosts only), each pinned to a dedicated busy-polling
core (§3.3).  In the simulation a driver sleeps on a doorbell, then drains
all of its work sources, charging the accumulated per-item CPU costs as
virtual time before sleeping again.  This keeps event counts proportional to
work done -- the polling loop itself costs no simulation events while idle --
which is what makes 10-second failover experiments tractable.

The loop is a flat callback state machine rather than a coroutine: a parked
driver is woken by one zero-delay event per doorbell ring, each productive
drain pass schedules one timer for its CPU cost, and rings that arrive while
the driver is processing latch exactly one further wakeup.  This mirrors the
event-for-event schedule of the equivalent ``yield``-based loop (same event
count, same sequence-number allocation order) while skipping the generator
send/yield machinery on the simulator's hottest resume path.
"""

from __future__ import annotations

from heapq import heappush
from typing import Any, Optional

from ..config import OasisConfig
from ..sim.core import _NEAR_WINDOW, NSEC, Event, Signal, Simulator

__all__ = ["Driver"]


def _post_now(sim: Simulator, fn) -> None:
    """``sim.call_after(0.0, fn)``, open-coded for the wakeup path.

    Doorbell rings and park/unpark transitions are the most frequent event
    source in the whole simulator; this skips the ``call_after`` frame and
    its varargs packing while allocating (or recycling) the same pooled
    Event with the same sequence number.
    """
    pool = sim._pool
    if pool:
        event = pool.pop()
        event.time = sim.now
        event.fn = fn
        event.args = ()
        event._live = True
    else:
        event = Event(sim, sim.now, fn, ())
        event._pooled = True
    sim._live_events += 1
    event._seqno = next(sim._seq)
    sim._now_q.append(event)


class _WorkDoorbell(Signal):
    """A driver's doorbell: ``set()`` wakes the owning driver directly.

    Channels ring the doorbell through the ordinary :class:`Signal` API
    (``rx.bind(driver.work)`` then ``work.set()``), so this keeps that
    interface while routing the ring straight into the driver's state
    machine: one wakeup event when parked, one latched wakeup otherwise --
    the same delivery contract as an auto-reset signal with one waiter.
    """

    __slots__ = ("_driver",)

    def __init__(self, sim: "Simulator", driver: "Driver"):
        super().__init__(sim, auto_reset=True)
        self._driver = driver

    def set(self, value: Any = None) -> None:
        driver = self._driver
        if driver._parked:
            driver._parked = False
            # _post_now, inlined: every doorbell ring on a parked driver
            # lands here.
            sim = driver.sim
            pool = sim._pool
            if pool:
                event = pool.pop()
                event.time = sim.now
                event.fn = driver._wake_cb
                event.args = ()
                event._live = True
            else:
                event = Event(sim, sim.now, driver._wake_cb, ())
                event._pooled = True
            sim._live_events += 1
            event._seqno = next(sim._seq)
            sim._now_q.append(event)
        else:
            driver._kicked = True


class Driver:
    """Base class for frontend/backend drivers (one dedicated core each)."""

    def __init__(self, sim: Simulator, name: str, config: Optional[OasisConfig] = None):
        self.sim = sim
        self.name = name
        self.config = config or OasisConfig()
        self.work = _WorkDoorbell(sim, self)
        self.running = False
        self.busy_ns = 0.0
        self.wakeups = 0
        self._parked = False   # parked on the doorbell; the next ring wakes
        self._kicked = False   # rung while not parked: one wakeup latched

    def start(self) -> None:
        if self.running:
            return
        self.running = True
        # One zero-delay event before the driver first parks, mirroring the
        # spawn step of the coroutine formulation (event/sequence parity).
        self.sim.call_after(0.0, self._park)

    def stop(self) -> None:
        self.running = False
        self.work.set()

    def kick(self) -> None:
        """Ring this driver's doorbell."""
        self.work.set()

    def _park(self) -> None:
        """Go idle, or consume a wakeup latched while we were busy."""
        if not self.running:
            return
        if self._kicked:
            self._kicked = False
            _post_now(self.sim, self._wake_cb)
        else:
            self._parked = True

    def _wake_cb(self) -> None:
        if not self.running:
            return
        self.wakeups += 1
        self._drain_cb()

    def _drain_cb(self) -> None:
        # Keep draining until a pass handles no items, charging CPU time
        # between passes so arrivals during processing are not starved.
        # Idle busy-polling itself is *not* simulated event-by-event --
        # its (tiny, constant) CXL traffic is accounted analytically by
        # the Table 3 experiment.
        while self.running:
            items, cost_ns = self._process()
            if cost_ns > 0.0:
                self.busy_ns += cost_ns
            if items <= 0:
                break
            # sim.call_after(cost_ns * NSEC, self._drain_cb), open-coded:
            # one of these timers fires per productive drain pass.
            delay = cost_ns * NSEC
            sim = self.sim
            pool = sim._pool
            if pool:
                event = pool.pop()
                event.time = t = sim.now + delay
                event.fn = self._drain_cb
                event.args = ()
                event._live = True
            else:
                event = Event(sim, sim.now + delay, self._drain_cb, ())
                event._pooled = True
                t = event.time
            sim._live_events += 1
            seq = next(sim._seq)
            if delay == 0.0:
                event._seqno = seq
                sim._now_q.append(event)
            elif delay < _NEAR_WINDOW:
                heappush(sim._near, (t, seq, event))
            else:
                heappush(sim._far, (t, seq, event))
            return
        if self.running:
            self._park()

    def _process(self) -> tuple:
        """Drain work sources; return ``(items_handled, cpu_ns)``."""
        raise NotImplementedError
