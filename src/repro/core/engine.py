"""Engine framework: the driver event loop shared by all Oasis engines.

Each Oasis engine contributes a frontend driver (every host) and a backend
driver (device-attached hosts only), each pinned to a dedicated busy-polling
core (§3.3).  In the simulation a driver is a coroutine process that sleeps
on a doorbell :class:`~repro.sim.core.Signal`, then drains all of its work
sources, charging the accumulated per-item CPU costs as virtual time before
sleeping again.  This keeps event counts proportional to work done -- the
polling loop itself costs no simulation events while idle -- which is what
makes 10-second failover experiments tractable.
"""

from __future__ import annotations

from typing import Optional

from ..config import OasisConfig
from ..sim.core import NSEC, Signal, Simulator

__all__ = ["Driver"]


class Driver:
    """Base class for frontend/backend drivers (one dedicated core each)."""

    def __init__(self, sim: Simulator, name: str, config: Optional[OasisConfig] = None):
        self.sim = sim
        self.name = name
        self.config = config or OasisConfig()
        self.work = Signal(sim, auto_reset=True)
        self.running = False
        self._proc = None
        self.busy_ns = 0.0
        self.wakeups = 0

    def start(self) -> None:
        if self.running:
            return
        self.running = True
        self._proc = self.sim.spawn(self._loop(), name=self.name)

    def stop(self) -> None:
        self.running = False
        self.work.set()

    def kick(self) -> None:
        """Ring this driver's doorbell."""
        self.work.set()

    def _loop(self):
        while self.running:
            yield self.work
            if not self.running:
                break
            self.wakeups += 1
            # Keep draining until a pass handles no items, charging CPU time
            # between passes so arrivals during processing are not starved.
            # Idle busy-polling itself is *not* simulated event-by-event --
            # its (tiny, constant) CXL traffic is accounted analytically by
            # the Table 3 experiment.
            while self.running:
                items, cost_ns = self._process()
                if cost_ns > 0.0:
                    self.busy_ns += cost_ns
                if items <= 0:
                    break
                yield cost_ns * NSEC

    def _process(self) -> tuple:
        """Drain work sources; return ``(items_handled, cpu_ns)``."""
        raise NotImplementedError
