"""Oasis core: datapath, engines, control plane, pod wiring."""

from .arp import ArpRegistry
from .datapath import ChannelPair, DoorbellChannel, LocalChannel, SharedRegions
from .engine import Driver
from .pod import CXLPod

__all__ = [
    "CXLPod",
    "Driver",
    "SharedRegions",
    "DoorbellChannel",
    "LocalChannel",
    "ChannelPair",
    "ArpRegistry",
]
