"""External load-driver endpoints.

The paper drives all experiments from a separate Xeon host with its own NIC
(§5).  :class:`ExternalEndpoint` models that client: it attaches straight to
a switch port (no Oasis involved) with a small fixed host-stack latency, and
exposes the same frame interface as :class:`~repro.host.instance.Instance`,
so the transports in :mod:`repro.net.transport` work over either.
"""

from __future__ import annotations

from typing import Callable, List

from ..sim.core import Simulator, USEC
from .packet import Frame
from .switch import SwitchPort

__all__ = ["ExternalEndpoint"]


class ExternalEndpoint:
    """A bare-metal client with a kernel-bypass stack on its own NIC."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        mac: int,
        ip: int,
        port: SwitchPort,
        stack_latency_us: float = 0.7,
    ):
        self.sim = sim
        self.name = name
        self.mac = mac
        self.ip = ip
        self.port = port
        self.stack_latency = stack_latency_us * USEC
        self._handlers: List[Callable[[Frame], None]] = []
        self.tx_frames = 0
        self.rx_frames = 0
        port.attach(self._on_wire_rx)
        self._arp = None  # set by the pod: dst_ip -> mac resolution

    def set_arp(self, arp) -> None:
        self._arp = arp

    def send_frame(self, frame: Frame) -> None:
        frame.src_mac = self.mac
        if frame.src_ip == 0:
            frame.src_ip = self.ip
        if frame.dst_mac == 0 and self._arp is not None:
            frame.dst_mac = self._arp.lookup(frame.dst_ip)
        self.tx_frames += 1
        self.sim.call_after(self.stack_latency, self.port.receive, frame)

    def add_handler(self, handler: Callable[[Frame], None]) -> None:
        self._handlers.append(handler)

    def _on_wire_rx(self, frame: Frame) -> None:
        if frame.meta:
            flow = frame.meta.get("flow")
            if flow is not None:
                flow.stage("client.rx")
        self.rx_frames += 1
        self.sim.call_after(self.stack_latency, self._dispatch, frame)

    def _dispatch(self, frame: Frame) -> None:
        for handler in self._handlers:
            handler(frame)
