"""Network substrate: frames, learning switch, endpoints, transports."""

from .endpoint import ExternalEndpoint
from .packet import (
    BROADCAST_MAC,
    ETH_MIN_FRAME,
    ETH_MTU_FRAME,
    HEADER_SIZE,
    PROTO_TCP,
    PROTO_UDP,
    Frame,
    ip_str,
    mac_str,
    make_ip,
    make_mac,
)
from .switch import LearningSwitch, SwitchPort
from .transport import FLAG_ACK, ReliableSocket, UdpSocket

__all__ = [
    "Frame",
    "HEADER_SIZE",
    "PROTO_UDP",
    "PROTO_TCP",
    "ETH_MIN_FRAME",
    "ETH_MTU_FRAME",
    "BROADCAST_MAC",
    "mac_str",
    "ip_str",
    "make_ip",
    "make_mac",
    "LearningSwitch",
    "SwitchPort",
    "ExternalEndpoint",
    "UdpSocket",
    "ReliableSocket",
    "FLAG_ACK",
]
