"""Wire format for the simulated Ethernet fabric.

Frames carry real bytes end-to-end (instance -> CXL TX buffer -> NIC DMA ->
switch -> NIC -> CXL RX buffer -> instance), so tests can verify that payloads
survive the non-coherent datapath bit-exactly.  The header is a compact
fixed layout (not RFC-conformant, but field-for-field equivalent to
Ethernet/IPv4/UDP for everything Oasis needs: MACs for switching, the
destination IP for flow tagging, ports+seq for transports).

``wire_size`` is the *declared* on-wire size used for all timing and
bandwidth accounting; the serialized representation stores only
header + payload so that replaying hundreds of thousands of 1500 B packets
does not burn time writing padding bytes.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

__all__ = [
    "Frame",
    "HEADER_SIZE",
    "PROTO_UDP",
    "PROTO_TCP",
    "ETH_MIN_FRAME",
    "ETH_MTU_FRAME",
    "BROADCAST_MAC",
    "mac_str",
    "ip_str",
    "make_ip",
    "make_mac",
]

# dst_mac, src_mac (6 B each, packed as u64 pairs), ips, proto, ports, seq,
# ack, flags, wire_size, payload_len
_HEADER = struct.Struct("<QQIIBHHIIBHH")
HEADER_SIZE = _HEADER.size  # 40 bytes

PROTO_UDP = 17
PROTO_TCP = 6
ETH_MIN_FRAME = 64
ETH_MTU_FRAME = 1514
BROADCAST_MAC = (1 << 48) - 1


def make_mac(host_index: int, device_index: int = 0) -> int:
    """Deterministic locally administered MAC for simulated NICs."""
    return (0x02 << 40) | (host_index << 8) | device_index


def make_ip(a: int, b: int, c: int, d: int) -> int:
    return (a << 24) | (b << 16) | (c << 8) | d


def mac_str(mac: int) -> str:
    return ":".join(f"{(mac >> (8 * i)) & 0xFF:02x}" for i in reversed(range(6)))


def ip_str(ip: int) -> str:
    return ".".join(str((ip >> (8 * i)) & 0xFF) for i in reversed(range(4)))


@dataclass(slots=True)
class Frame:
    """One Ethernet frame with IPv4/transport fields flattened in."""

    dst_mac: int
    src_mac: int
    src_ip: int = 0
    dst_ip: int = 0
    proto: int = PROTO_UDP
    src_port: int = 0
    dst_port: int = 0
    seq: int = 0
    ack: int = 0
    flags: int = 0
    payload: bytes = b""
    wire_size: int = 0
    # Not serialized: simulation metadata (e.g. client-side send timestamp).
    meta: dict = field(default_factory=dict, compare=False, repr=False)

    def __post_init__(self):
        if self.wire_size <= 0:
            self.wire_size = max(ETH_MIN_FRAME, HEADER_SIZE + len(self.payload))
        if self.wire_size < HEADER_SIZE + len(self.payload):
            self.wire_size = HEADER_SIZE + len(self.payload)

    def pack(self) -> bytes:
        """Serialize to the byte image written into I/O buffers."""
        header = _HEADER.pack(
            self.dst_mac,
            self.src_mac,
            self.src_ip,
            self.dst_ip,
            self.proto,
            self.src_port,
            self.dst_port,
            self.seq,
            self.ack,
            self.flags,
            self.wire_size & 0xFFFF,
            len(self.payload),
        )
        return header + self.payload

    @classmethod
    def unpack(cls, data: bytes) -> "Frame":
        (dst_mac, src_mac, src_ip, dst_ip, proto, src_port, dst_port,
         seq, ack, flags, wire_size, payload_len) = _HEADER.unpack_from(data)
        payload = bytes(data[HEADER_SIZE:HEADER_SIZE + payload_len])
        return cls(
            dst_mac, src_mac, src_ip, dst_ip, proto, src_port, dst_port,
            seq, ack, flags, payload,
            wire_size if wire_size else max(ETH_MIN_FRAME,
                                            HEADER_SIZE + payload_len),
        )

    @property
    def packed_size(self) -> int:
        """Bytes actually stored in buffers (header + payload, no padding)."""
        return HEADER_SIZE + len(self.payload)

    def reply_template(self, **overrides) -> "Frame":
        """A frame going back to this frame's sender (addresses swapped).

        The request's flow context (if any) carries over so the reply leg is
        attributed to the same end-to-end flow record.
        """
        fields = dict(
            dst_mac=self.src_mac,
            src_mac=self.dst_mac,
            src_ip=self.dst_ip,
            dst_ip=self.src_ip,
            proto=self.proto,
            src_port=self.dst_port,
            dst_port=self.src_port,
            payload=self.payload,
            wire_size=self.wire_size,
        )
        fields.update(overrides)
        reply = Frame(**fields)
        if self.meta:
            flow = self.meta.get("flow")
            if flow is not None:
                reply.meta["flow"] = flow
            tenant = self.meta.get("tenant")
            if tenant is not None:
                # The reply leg bills against the requesting tenant's lane.
                reply.meta["tenant"] = tenant
        return reply
