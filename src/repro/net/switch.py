"""Learning Ethernet switch (the Arista 7060X stand-in from §5).

The switch provides exactly the behaviours Oasis's failover depends on
(§3.3.3):

* **MAC learning** -- the MAC-to-port table is updated from the source MAC of
  every forwarded frame, which is how the backup NIC "borrows" a failed NIC's
  MAC address;
* **per-port administrative disable** -- the paper's failure injection
  ("we disable the switch port connected to the NIC"); a disabled port drops
  frames in both directions and drops the attached device's link.

Each port models serialization at its line rate plus a fixed store-and-forward
latency, so congestion on a shared 100 Gbit port is visible in end-to-end
latency (Figure 12's multiplexing interference).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..sim.core import Simulator, USEC
from .packet import BROADCAST_MAC, Frame, mac_str

__all__ = ["LearningSwitch", "SwitchPort"]


class SwitchPort:
    """One switch port with an attached endpoint (a NIC or a load driver)."""

    def __init__(
        self,
        switch: "LearningSwitch",
        port_id: int,
        rate_bytes_per_sec: float,
        latency_s: float,
    ):
        self.switch = switch
        self.port_id = port_id
        self.rate = rate_bytes_per_sec
        self.latency = latency_s
        self.enabled = True
        self._deliver: Optional[Callable[[Frame], None]] = None
        self._link_listeners: list[Callable[[bool], None]] = []
        self._busy_until = 0.0
        self.tx_frames = 0
        self.tx_bytes = 0
        self.dropped_frames = 0

    def attach(self, deliver: Callable[[Frame], None]) -> None:
        """Register the endpoint's frame-delivery callback."""
        self._deliver = deliver

    def on_link_change(self, listener: Callable[[bool], None]) -> None:
        """Subscribe to link up/down transitions (used by NIC link monitor)."""
        self._link_listeners.append(listener)

    # -- egress: switch -> endpoint ------------------------------------------

    def transmit(self, frame: Frame) -> None:
        """Queue a frame for transmission to the attached endpoint."""
        if not self.enabled or self._deliver is None:
            self.dropped_frames += 1
            return
        sim = self.switch.sim
        if frame.meta:
            flow = frame.meta.get("flow")
            if flow is not None:
                flow.stage("switch.wire")
        start = max(sim.now, self._busy_until)
        serialize = frame.wire_size / self.rate
        self._busy_until = start + serialize
        self.tx_frames += 1
        self.tx_bytes += frame.wire_size
        sim.at(self._busy_until + self.latency, self._deliver_if_up, frame)

    def _deliver_if_up(self, frame: Frame) -> None:
        if self.enabled and self._deliver is not None:
            self._deliver(frame)
        else:
            self.dropped_frames += 1

    # -- ingress: endpoint -> switch ---------------------------------------------

    def receive(self, frame: Frame) -> None:
        """Endpoint hands a frame to the switch through this port."""
        if not self.enabled:
            self.dropped_frames += 1
            return
        self.switch.forward(frame, in_port=self.port_id)

    # -- admin -------------------------------------------------------------------

    def set_enabled(self, enabled: bool) -> None:
        if enabled == self.enabled:
            return
        self.enabled = enabled
        for listener in self._link_listeners:
            listener(enabled)

    @property
    def queue_delay_s(self) -> float:
        """Current backlog on this port, in seconds of serialization."""
        return max(0.0, self._busy_until - self.switch.sim.now)


class LearningSwitch:
    """Store-and-forward switch with a learned MAC table."""

    def __init__(
        self,
        sim: Simulator,
        port_rate_gbps: float = 100.0,
        port_latency_us: float = 0.5,
        name: str = "tor",
    ):
        self.sim = sim
        self.name = name
        self.port_rate = port_rate_gbps * 1e9 / 8.0
        self.port_latency = port_latency_us * USEC
        self.ports: Dict[int, SwitchPort] = {}
        self.mac_table: Dict[int, int] = {}
        self.flooded_frames = 0
        self.forwarded_frames = 0
        # Fault injection (repro.faults): silently drop / duplicate the next
        # N forwarded frames (a misbehaving fabric, not a disabled port).
        self.fault_dropped = 0
        self.fault_duplicated = 0
        self._drop_next = 0
        self._dup_next = 0

    def new_port(self, rate_gbps: Optional[float] = None) -> SwitchPort:
        port_id = len(self.ports)
        port = SwitchPort(
            self,
            port_id,
            (rate_gbps * 1e9 / 8.0) if rate_gbps else self.port_rate,
            self.port_latency,
        )
        self.ports[port_id] = port
        return port

    def inject_drop(self, count: int = 1) -> None:
        """Arm a fabric fault: silently drop the next ``count`` frames."""
        self._drop_next += count

    def inject_duplicate(self, count: int = 1) -> None:
        """Arm a fabric fault: deliver the next ``count`` frames twice."""
        self._dup_next += count

    def forward(self, frame: Frame, in_port: int) -> None:
        """Learn the source MAC, then forward (or flood) the frame."""
        self.mac_table[frame.src_mac] = in_port
        if self._drop_next > 0:
            self._drop_next -= 1
            self.fault_dropped += 1
            return
        copies = 1
        if self._dup_next > 0:
            self._dup_next -= 1
            self.fault_duplicated += 1
            copies = 2
        self.forwarded_frames += 1
        if frame.dst_mac != BROADCAST_MAC:
            out = self.mac_table.get(frame.dst_mac)
            if out is not None:
                if out != in_port:
                    for _ in range(copies):
                        self.ports[out].transmit(frame)
                return
        # Unknown destination or broadcast: flood.
        self.flooded_frames += 1
        for port_id, port in self.ports.items():
            if port_id != in_port:
                for _ in range(copies):
                    port.transmit(frame)

    def port_of_mac(self, mac: int) -> Optional[int]:
        return self.mac_table.get(mac)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        table = {mac_str(m): p for m, p in self.mac_table.items()}
        return f"<LearningSwitch {self.name} ports={len(self.ports)} macs={table}>"
