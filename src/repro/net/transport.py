"""Datagram and reliable transports on top of the frame interface.

:class:`UdpSocket` is a thin port-demultiplexer used by the UDP echo
workloads (Figures 10-13).

:class:`ReliableSocket` is a message-oriented reliable transport -- the
TCP stand-in for the memcached experiments (Figures 9 and 14).  It keeps the
one property that matters for the paper's failover tail: packets lost during
an interruption are retransmitted on timer expiry (RTO with exponential
backoff) and delivered *late*, so client-observed P99 latency spikes and then
recovers, exactly the Figure 14 dynamic.

Both work over anything exposing ``send_frame`` / ``add_handler`` / ``ip``:
Oasis :class:`~repro.host.instance.Instance` vNICs and bare
:class:`~repro.net.endpoint.ExternalEndpoint` clients alike.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from ..config import TransportConfig
from ..sim.core import MSEC, Simulator
from .packet import PROTO_TCP, PROTO_UDP, Frame

__all__ = ["UdpSocket", "ReliableSocket", "FLAG_ACK"]

FLAG_ACK = 0x01


class UdpSocket:
    """Unreliable datagram socket bound to a local port."""

    def __init__(self, sim: Simulator, endpoint, port: int):
        self.sim = sim
        self.endpoint = endpoint
        self.port = port
        self._on_datagram: Optional[Callable[[Frame], None]] = None
        self.sent = 0
        self.received = 0
        endpoint.add_handler(self._handle)

    def on_datagram(self, callback: Callable[[Frame], None]) -> None:
        self._on_datagram = callback

    def sendto(
        self,
        payload: bytes,
        dst_ip: int,
        dst_port: int,
        wire_size: int = 0,
        seq: int = 0,
    ) -> Frame:
        frame = Frame(
            dst_mac=0,
            src_mac=0,
            dst_ip=dst_ip,
            proto=PROTO_UDP,
            src_port=self.port,
            dst_port=dst_port,
            seq=seq,
            payload=payload,
            wire_size=wire_size,
        )
        self.sent += 1
        self.endpoint.send_frame(frame)
        return frame

    def reply(self, request: Frame, payload: Optional[bytes] = None) -> Frame:
        """Echo-style response to ``request`` (used by the echo servers)."""
        response = request.reply_template(seq=request.seq)
        if payload is not None:
            response.payload = payload
        response.dst_mac = 0
        response.src_mac = 0
        self.sent += 1
        self.endpoint.send_frame(response)
        return response

    def _handle(self, frame: Frame) -> None:
        if frame.proto != PROTO_UDP or frame.dst_port != self.port:
            return
        self.received += 1
        if self._on_datagram is not None:
            self._on_datagram(frame)


class ReliableSocket:
    """Message-oriented reliable transport with RTO-based retransmission."""

    def __init__(
        self,
        sim: Simulator,
        endpoint,
        port: int,
        config: Optional[TransportConfig] = None,
    ):
        self.sim = sim
        self.endpoint = endpoint
        self.port = port
        self.config = config or TransportConfig()
        self._next_seq = 1
        self._unacked: Dict[int, dict] = {}
        self._seen: Dict[Tuple[int, int], set] = {}
        self._on_message: Optional[Callable[[Frame], None]] = None
        self._on_give_up: Optional[Callable[[int], None]] = None
        self.sent = 0
        self.received = 0
        self.retransmits = 0
        self.gave_up = 0
        endpoint.add_handler(self._handle)

    def on_message(self, callback: Callable[[Frame], None]) -> None:
        self._on_message = callback

    def on_give_up(self, callback: Callable[[int], None]) -> None:
        """Called with the seq when a message exhausts its retries."""
        self._on_give_up = callback

    # -- sending -------------------------------------------------------------

    def send(
        self,
        payload: bytes,
        dst_ip: int,
        dst_port: int,
        wire_size: int = 0,
    ) -> int:
        """Send one reliable message; returns its sequence number."""
        seq = self._next_seq
        self._next_seq += 1
        frame = Frame(
            dst_mac=0,
            src_mac=0,
            dst_ip=dst_ip,
            proto=PROTO_TCP,
            src_port=self.port,
            dst_port=dst_port,
            seq=seq,
            payload=payload,
            wire_size=wire_size,
        )
        state = {
            "frame": frame,
            "retries": 0,
            "rto_ms": self.config.initial_rto_ms,
            "timer": None,
        }
        self._unacked[seq] = state
        self._transmit(seq)
        return seq

    def _transmit(self, seq: int) -> None:
        state = self._unacked.get(seq)
        if state is None:
            return
        frame = state["frame"]
        # Frames are mutated by MAC fill-in; resend a shallow copy so stale
        # MACs from before a failover don't stick.
        resend = Frame(
            dst_mac=0, src_mac=0,
            src_ip=frame.src_ip, dst_ip=frame.dst_ip, proto=frame.proto,
            src_port=frame.src_port, dst_port=frame.dst_port,
            seq=frame.seq, ack=frame.ack, flags=frame.flags,
            payload=frame.payload, wire_size=frame.wire_size,
        )
        self.sent += 1
        self.endpoint.send_frame(resend)
        state["timer"] = self.sim.schedule(state["rto_ms"] * MSEC, self._on_timeout, seq)

    def _on_timeout(self, seq: int) -> None:
        state = self._unacked.get(seq)
        if state is None:
            return
        state["retries"] += 1
        if state["retries"] > self.config.max_retries:
            del self._unacked[seq]
            self.gave_up += 1
            if self._on_give_up is not None:
                self._on_give_up(seq)
            return
        self.retransmits += 1
        state["rto_ms"] = min(state["rto_ms"] * self.config.rto_backoff,
                              self.config.max_rto_ms)
        self._transmit(seq)

    @property
    def inflight(self) -> int:
        return len(self._unacked)

    # -- receiving -------------------------------------------------------------

    def _handle(self, frame: Frame) -> None:
        if frame.proto != PROTO_TCP or frame.dst_port != self.port:
            return
        if frame.flags & FLAG_ACK:
            state = self._unacked.pop(frame.ack, None)
            if state is not None and state["timer"] is not None:
                state["timer"].cancel()
            return
        # Data: ack it, deduplicate, deliver.
        ack = frame.reply_template(payload=b"", flags=FLAG_ACK, ack=frame.seq,
                                   wire_size=64)
        ack.dst_mac = 0
        ack.src_mac = 0
        self.endpoint.send_frame(ack)
        peer = (frame.src_ip, frame.src_port)
        seen = self._seen.setdefault(peer, set())
        if frame.seq in seen:
            return
        seen.add(frame.seq)
        self.received += 1
        if self._on_message is not None:
            self._on_message(frame)
