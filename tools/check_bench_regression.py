#!/usr/bin/env python3
"""CI gate: fail the PR when sim events/sec regresses >20% vs the baseline.

Usage::

    python tools/check_bench_regression.py BENCH_pr10.json \
        [--baseline benchmarks/baseline_sim_speed.json] [--tolerance 0.2]

Reads the ``sim_speed`` entry that ``benchmarks/test_sim_speed.py`` records
into the benchmark dump and compares it against the committed baseline:

* ``events`` must match **exactly** -- the event count on the canonical
  seeded run is part of the replay contract and machine-independent; any
  drift means the kernel's event schedule changed and the replay suite's
  byte-identity claim needs re-verification before the baseline moves;
* ``events_per_sec`` must stay above ``(1 - tolerance)`` of the baseline
  floor (default tolerance 20%).  The floor is calibrated for the slowest
  healthy CI runner (see the note inside the baseline file), so a trip
  means a real slowdown, not machine jitter.

When the dump also carries a ``fleet_overhead`` entry (recorded by
``benchmarks/test_fleet_overhead.py``), its ``disabled_regression`` -- the
wall-clock cost a pod pays for the fleet-health pipeline *without ever
enabling it* -- must stay under ``--fleet-tolerance`` (default 2%): the
observability stack is opt-in and must be free when not opted into.

When the dump carries a ``rack_scale`` entry (recorded by
``benchmarks/test_rack_scale.py`` or ``python -m repro rack --out``), it is
gated against ``benchmarks/baseline_rack_scale.json``: the 32-host rack's
``events_per_sec`` must stay above ``(1 - tolerance)`` of the committed
floor, the group-commit ``commit_p99_ms`` (simulated time, so exact on any
machine) must stay under the ceiling, and the control plane must have
converged with an empty proposal queue.

When the dump carries an ``overload`` entry (recorded by
``benchmarks/test_overload.py`` or ``python -m repro overload --out``), it
is gated against ``benchmarks/baseline_overload.json``: the budgets-on run
must recover at least ``recovery_on_floor`` of its pre-surge goodput, the
budgets-off ablation must stay collapsed below ``recovery_off_ceiling``
(otherwise the scenario no longer demonstrates metastable failure), and
surge-window goodput must stay above ``surge_goodput_frac_floor`` of
device capacity.  All three are simulated-time ratios, so the gates are
exact -- no tolerance band.

When the dump carries a ``serve`` entry (recorded by
``benchmarks/test_serve.py`` or ``python -m repro serve --out``), it is
gated against ``benchmarks/baseline_serve.json``: the victim tenant's
noisy-neighbour ``p99_ratio`` must stay under ``p99_ratio_ceiling`` of its
solo baseline, the worst tenant's ``min_share_frac`` must stay above
``share_frac_floor`` of its weighted fair share, and both runs' per-tenant
conservation invariants must have held.  Like the overload gates these are
simulated-time ratios, enforced exactly.

A missing key in either the dump or a baseline is reported by name and
exits 2 (malformed inputs), never as a raw traceback.

Exit status: 0 on pass, 1 on regression, 2 on missing/malformed inputs.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

DEFAULT_BASELINE = (Path(__file__).resolve().parent.parent
                    / "benchmarks" / "baseline_sim_speed.json")
DEFAULT_RACK_BASELINE = (Path(__file__).resolve().parent.parent
                         / "benchmarks" / "baseline_rack_scale.json")
DEFAULT_OVERLOAD_BASELINE = (Path(__file__).resolve().parent.parent
                             / "benchmarks" / "baseline_overload.json")
DEFAULT_SERVE_BASELINE = (Path(__file__).resolve().parent.parent
                          / "benchmarks" / "baseline_serve.json")


class _MissingKey(Exception):
    """A dump or baseline lacks a key the gate needs."""


def _require(mapping, key, source):
    """Fetch ``mapping[key]``, failing with a named diagnosis (exit 2)
    instead of a bare KeyError traceback."""
    try:
        return mapping[key]
    except (KeyError, TypeError):
        raise _MissingKey(
            f"missing key {key!r} in {source} -- regenerate the dump or "
            "fix the baseline") from None


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("results", type=Path,
                        help="benchmark dump (BENCH_pr10.json)")
    parser.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE)
    parser.add_argument("--rack-baseline", type=Path,
                        default=DEFAULT_RACK_BASELINE)
    parser.add_argument("--overload-baseline", type=Path,
                        default=DEFAULT_OVERLOAD_BASELINE)
    parser.add_argument("--serve-baseline", type=Path,
                        default=DEFAULT_SERVE_BASELINE)
    parser.add_argument("--tolerance", type=float, default=0.2,
                        help="allowed fractional events/sec drop "
                             "(default 0.2 == 20%%)")
    parser.add_argument("--fleet-tolerance", type=float, default=0.02,
                        help="allowed wall-clock cost of the never-enabled "
                             "fleet-health pipeline (default 0.02 == 2%%)")
    args = parser.parse_args(argv)

    try:
        results = json.loads(args.results.read_text())
        baseline = json.loads(args.baseline.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        print(f"check_bench_regression: cannot read inputs: {exc}",
              file=sys.stderr)
        return 2

    speed = results.get("results", {}).get("sim_speed")
    if speed is None:
        print("check_bench_regression: no 'sim_speed' entry in "
              f"{args.results} -- did benchmarks/test_sim_speed.py run?",
              file=sys.stderr)
        return 2

    try:
        return _gate(args, results, baseline, speed)
    except _MissingKey as exc:
        print(f"check_bench_regression: {exc}", file=sys.stderr)
        return 2


def _gate(args, results, baseline, speed) -> int:
    failures = []

    events = int(_require(speed, "events", "the sim_speed results"))
    expected_events = int(_require(baseline, "events",
                                   str(args.baseline)))
    if events != expected_events:
        failures.append(
            f"event count changed: {events} != baseline {expected_events} "
            "(the seeded event schedule moved; re-verify replay identity "
            "before updating the baseline)")

    events_per_sec = float(_require(speed, "events_per_sec",
                                    "the sim_speed results"))
    baseline_eps = float(_require(baseline, "events_per_sec",
                                  str(args.baseline)))
    floor = baseline_eps * (1.0 - args.tolerance)
    if events_per_sec < floor:
        failures.append(
            f"events/sec regressed: {events_per_sec:,.0f} < "
            f"{floor:,.0f} ({(1.0 - args.tolerance) * 100:.0f}% of the "
            f"{baseline_eps:,.0f} baseline floor)")

    wall = float(_require(speed, "wall_per_sim_sec", "the sim_speed results"))
    print(f"sim speed: {events_per_sec:,.0f} events/s over {events:,} "
          f"events ({wall:.2f} wall-s per sim-s)")
    print(f"baseline:  {baseline_eps:,.0f} events/s "
          f"floor, tolerance {args.tolerance * 100:.0f}% -> gate at "
          f"{floor:,.0f}")

    fleet = results.get("results", {}).get("fleet_overhead")
    if fleet is not None:
        disabled = float(_require(fleet, "disabled_regression",
                                  "the fleet_overhead results"))
        print(f"fleet overhead (disabled): {disabled * 100:+.2f}% "
              f"(gate at {args.fleet_tolerance * 100:.0f}%)")
        if disabled > args.fleet_tolerance:
            failures.append(
                f"never-enabled fleet-health pipeline costs "
                f"{disabled * 100:.2f}% of echo sim throughput "
                f"(> {args.fleet_tolerance * 100:.0f}%); the pipeline must "
                "be free unless enable_fleet_telemetry() is called")

    rack = results.get("results", {}).get("rack_scale")
    if rack is not None:
        try:
            rack_baseline = json.loads(args.rack_baseline.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            print(f"check_bench_regression: cannot read rack baseline: "
                  f"{exc}", file=sys.stderr)
            return 2
        rack_src = "the rack_scale results"
        rack_eps = float(_require(rack, "events_per_sec", rack_src))
        rack_baseline_eps = float(_require(rack_baseline, "events_per_sec",
                                           str(args.rack_baseline)))
        rack_floor = rack_baseline_eps * (1.0 - args.tolerance)
        p99 = float(_require(rack, "commit_p99_ms", rack_src))
        ceiling = float(_require(rack_baseline, "commit_p99_ms_ceiling",
                                 str(args.rack_baseline)))
        converged = _require(rack, "converged", rack_src)
        pending = int(_require(rack, "pending_after", rack_src))
        print(f"rack scale: {_require(rack, 'hosts', rack_src)} hosts, "
              f"{rack_eps:,.0f} events/s "
              f"(gate at {rack_floor:,.0f}), commit p99 {p99:.3f} ms "
              f"(ceiling {ceiling:.3f}), converged={converged}")
        if rack_eps < rack_floor:
            failures.append(
                f"rack events/sec regressed: {rack_eps:,.0f} < "
                f"{rack_floor:,.0f} ({(1.0 - args.tolerance) * 100:.0f}% of "
                f"the {rack_baseline_eps:,.0f} "
                "baseline floor)")
        if p99 > ceiling:
            failures.append(
                f"rack commit p99 regressed: {p99:.3f} ms > "
                f"{ceiling:.3f} ms ceiling (sim time -- this is a real "
                "control-plane slowdown, not machine jitter)")
        if not converged or pending != 0:
            failures.append(
                "rack control plane unhealthy: converged="
                f"{converged}, pending={pending}")

    overload = results.get("results", {}).get("overload")
    if overload is not None:
        try:
            overload_baseline = json.loads(
                args.overload_baseline.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            print(f"check_bench_regression: cannot read overload baseline: "
                  f"{exc}", file=sys.stderr)
            return 2
        src = "the overload results"
        bsrc = str(args.overload_baseline)
        recovery_on = float(_require(overload, "recovery_on", src))
        recovery_off = float(_require(overload, "recovery_off", src))
        surge_frac = float(_require(overload, "surge_goodput_frac_on", src))
        on_floor = float(_require(overload_baseline, "recovery_on_floor",
                                  bsrc))
        off_ceiling = float(_require(overload_baseline,
                                     "recovery_off_ceiling", bsrc))
        surge_floor = float(_require(overload_baseline,
                                     "surge_goodput_frac_floor", bsrc))
        print(f"overload: recovery on={recovery_on:.3f} "
              f"(floor {on_floor:.2f}), off={recovery_off:.3f} "
              f"(ceiling {off_ceiling:.2f}), surge goodput "
              f"{surge_frac:.3f}x capacity (floor {surge_floor:.2f})")
        if recovery_on < on_floor:
            failures.append(
                f"goodput under overload regressed: budgets-on recovery "
                f"{recovery_on:.3f} < {on_floor:.2f} floor (the protected "
                "pod no longer recovers from the surge)")
        if recovery_off > off_ceiling:
            failures.append(
                f"overload ablation lost its teeth: budgets-off recovery "
                f"{recovery_off:.3f} > {off_ceiling:.2f} ceiling (the "
                "scenario no longer demonstrates metastable collapse)")
        if surge_frac < surge_floor:
            failures.append(
                f"surge-window goodput regressed: {surge_frac:.3f}x "
                f"capacity < {surge_floor:.2f} floor (shedding is eating "
                "useful throughput)")

    serve = results.get("results", {}).get("serve")
    if serve is not None:
        try:
            serve_baseline = json.loads(args.serve_baseline.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            print(f"check_bench_regression: cannot read serve baseline: "
                  f"{exc}", file=sys.stderr)
            return 2
        src = "the serve results"
        bsrc = str(args.serve_baseline)
        p99_ratio = float(_require(serve, "p99_ratio", src))
        share_frac = float(_require(serve, "min_share_frac", src))
        p99_ceiling = float(_require(serve_baseline, "p99_ratio_ceiling",
                                     bsrc))
        share_floor = float(_require(serve_baseline, "share_frac_floor",
                                     bsrc))
        solo_ok = _require(_require(serve, "solo", src), "invariants_ok",
                           src)
        mix_ok = _require(_require(serve, "mix", src), "invariants_ok", src)
        print(f"serve: victim p99 ratio {p99_ratio:.3f} "
              f"(ceiling {p99_ceiling:.2f}), min share frac "
              f"{share_frac:.3f} (floor {share_floor:.2f}), "
              f"invariants solo={solo_ok} mix={mix_ok}")
        if p99_ratio > p99_ceiling:
            failures.append(
                f"tenant isolation regressed: victim p99 ratio "
                f"{p99_ratio:.3f} > {p99_ceiling:.2f} ceiling (the noisy "
                "neighbour is leaking latency into the victim tenant)")
        if share_frac < share_floor:
            failures.append(
                f"weighted shares regressed: min share frac "
                f"{share_frac:.3f} < {share_floor:.2f} floor (a tenant no "
                "longer receives its weighted fair share at saturation)")
        if not solo_ok or not mix_ok:
            failures.append(
                "per-tenant conservation violated during the serve runs "
                f"(solo ok={solo_ok}, mix ok={mix_ok})")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("PASS")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
