#!/usr/bin/env python
"""Telemetry-driven load balancing (§3.3.4 + §6).

Two NICs, three instances all initially allocated to NIC 0.  Heavy traffic
makes NIC 0's 100 ms telemetry reports cross the balancer's high-water mark;
the balancer gracefully migrates instances to the idle NIC (GARP + a
dual-registration grace period, so nothing is lost in flight).

Run:  python examples/load_balancing.py
"""

import numpy as np

from repro import CXLPod, make_ip
from repro.analysis.report import render_table
from repro.core.allocator.balancer import LoadBalancer
from repro.workloads.echo import EchoClient, EchoServer

N_INSTANCES = 3


def main():
    pod = CXLPod(mode="oasis")
    h0, h1, h2 = pod.add_host(), pod.add_host(), pod.add_host()
    nic0, nic1 = pod.add_nic(h0), pod.add_nic(h1)
    # Thresholds scaled to the demo's (simulation-friendly) traffic volume:
    # three instances at ~0.24 GB/s each, all on NIC 0.
    balancer = LoadBalancer(pod.sim, pod.allocator, interval_ms=200,
                            high_water=0.02, low_water=0.012, cooldown_s=0.5)
    balancer.start()

    clients = []
    for i in range(N_INSTANCES):
        ip = make_ip(10, 0, 0, 1 + i)
        inst = pod.add_instance(h2, ip=ip, nic=nic0)   # all start on NIC 0
        EchoServer(pod.sim, inst)
        endpoint = pod.add_external_client(ip=make_ip(10, 0, 9, 1 + i))
        client = EchoClient(pod.sim, endpoint, ip, packet_size=1500,
                            rate_pps=80_000, port=20_000 + i)
        client.start(0.5)
        clients.append(client)

    before = {ip: pod.allocator.assignments[ip]
              for ip in list(pod.allocator.assignments)}
    pod.run(0.7)
    pod.stop()
    balancer.stop()

    rows = []
    for i, client in enumerate(clients):
        ip = make_ip(10, 0, 0, 1 + i)
        rows.append((
            f"instance {i}",
            before[ip],
            pod.allocator.assignments[ip],
            client.stats.received,
            client.stats.lost,
        ))
    print(render_table(
        ["", "initial NIC", "final NIC", "echoed", "lost"],
        rows,
        title=f"Load balancing: {balancer.migrations} graceful migration(s), "
              f"{pod.arp.garp_count} GARP announcement(s)",
    ))
    loads = {name: round(d.measured_load / 1e9, 2)
             for name, d in pod.allocator.devices.items()}
    print(f"\nfinal measured NIC load (GB/s, from telemetry): {loads}")
    assert balancer.migrations >= 1, "expected at least one migration"


if __name__ == "__main__":
    main()
