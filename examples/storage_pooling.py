#!/usr/bin/env python
"""Storage engine demo (§3.4): a remote pooled SSD as a block device.

An instance on host B gets a block device backed by an NVMe SSD physically
attached to host A.  I/O requests travel as 64 B NVMe-style messages over
the non-coherent CXL channels; data buffers live in shared CXL memory and
the SSD DMAs them directly -- the backend CPU never touches the data.

The demo writes a small key-value log, reads it back (verifying
bit-exactness through the non-coherent path), measures latency, then fails
the drive to show the paper's error-propagation semantics.

Run:  python examples/storage_pooling.py
"""

from repro import CXLPod, make_ip
from repro.analysis.report import render_table

SERVER_IP = make_ip(10, 0, 0, 1)
BLOCK = 4096


def main():
    pod = CXLPod(mode="oasis")
    storage_host = pod.add_host()
    compute_host = pod.add_host()
    pod.add_nic(storage_host)
    ssd = pod.add_ssd(storage_host)
    instance = pod.add_instance(compute_host, ip=SERVER_IP)
    device = pod.add_block_device(instance, ssd)
    print(f"instance on {compute_host.name} -> {ssd.name} on "
          f"{storage_host.name} (remote block device)\n")

    # Write a log of 16 records.
    records = {
        lba: f"record-{lba:04d}".encode().ljust(BLOCK, b".")
        for lba in range(16)
    }
    latencies = {}
    for lba, data in records.items():
        start = pod.sim.now
        device.write(lba, data,
                     lambda status, lba=lba, s=start:
                     latencies.setdefault(("w", lba),
                                          (status, pod.sim.now - s)))
        pod.run(0.001)

    # Read everything back and verify.
    mismatches = 0
    for lba, expected in records.items():
        start = pod.sim.now
        result = {}
        device.read(lba, 1, lambda status, data, r=result, s=start:
                    r.update(status=status, data=data,
                             latency=pod.sim.now - s))
        pod.run(0.001)
        latencies[("r", lba)] = (result["status"], result["latency"])
        if result["data"] != expected:
            mismatches += 1

    writes = [v[1] * 1e6 for k, v in latencies.items() if k[0] == "w"]
    reads = [v[1] * 1e6 for k, v in latencies.items() if k[0] == "r"]
    print(render_table(
        ["op", "count", "mean latency us", "status"],
        [
            ("write", len(writes), sum(writes) / len(writes), "all OK"),
            ("read", len(reads), sum(reads) / len(reads),
             "all OK" if mismatches == 0 else f"{mismatches} MISMATCHES"),
        ],
        title="Remote block I/O through the Oasis storage engine",
    ))
    assert mismatches == 0, "data corruption through the datapath!"

    # Failure semantics (§3.4): errors propagate, no transparent failover.
    ssd.fail()
    outcome = {}
    device.write(99, b"x" * BLOCK, lambda status: outcome.update(status=status))
    pod.run(0.001)
    print(f"\nAfter drive failure: write completed with NVMe status "
          f"{outcome['status']:#x} (I/O error surfaced to the guest, §3.4)")
    pod.stop()


if __name__ == "__main__":
    main()
