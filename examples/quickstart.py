#!/usr/bin/env python
"""Quickstart: pool a NIC across two hosts and measure the overhead.

Builds the paper's §5 testbed -- two hosts sharing a CXL memory pool, one
100 Gbit NIC -- places a container instance on the host *without* the NIC,
and runs a UDP echo load against it.  For comparison, the same workload runs
against the Junction-style baseline (instance colocated with its own NIC).

Run:  python examples/quickstart.py
"""

from repro import CXLPod, make_ip
from repro.analysis.report import render_table
from repro.workloads.echo import EchoClient, EchoServer

SERVER_IP = make_ip(10, 0, 0, 1)
CLIENT_IP = make_ip(10, 0, 9, 1)


def run_echo(mode: str) -> dict:
    """One experiment: an echo server instance driven by an external client."""
    pod = CXLPod(mode=mode)

    host_with_nic = pod.add_host()
    nic = pod.add_nic(host_with_nic)

    if mode == "oasis":
        # The instance lives on a different host and reaches the NIC through
        # shared CXL memory -- that's the whole point of the system.
        instance_host = pod.add_host()
    else:
        instance_host = host_with_nic

    instance = pod.add_instance(instance_host, ip=SERVER_IP, nic=nic)
    EchoServer(pod.sim, instance)

    client_endpoint = pod.add_external_client(ip=CLIENT_IP)
    client = EchoClient(pod.sim, client_endpoint, SERVER_IP,
                        packet_size=75, rate_pps=50_000)

    client.start(0.1)        # 100 ms of load
    pod.run(0.12)
    pod.stop()

    stats = client.stats
    return {
        "mode": mode,
        "packets": stats.received,
        "p50_us": stats.percentile_us(50),
        "p99_us": stats.percentile_us(99),
        "cxl_traffic_mb": sum(pod.cxl_traffic_by_category().values()) / 1e6,
    }


def main():
    baseline = run_echo("local")
    oasis = run_echo("oasis")
    print(render_table(
        ["setup", "packets", "RTT p50 us", "RTT p99 us", "CXL traffic MB"],
        [
            ("baseline (local NIC)", baseline["packets"], baseline["p50_us"],
             baseline["p99_us"], baseline["cxl_traffic_mb"]),
            ("Oasis (remote NIC)", oasis["packets"], oasis["p50_us"],
             oasis["p99_us"], oasis["cxl_traffic_mb"]),
        ],
        title="UDP echo through a pooled NIC (paper: Oasis adds 4-7 us)",
    ))
    overhead = oasis["p50_us"] - baseline["p50_us"]
    print(f"\nOasis overhead at P50: {overhead:.2f} us "
          f"(paper reports 4-7 us)")


if __name__ == "__main__":
    main()
