#!/usr/bin/env python
"""NIC multiplexing demo (§5.2, Figure 12): two hosts, one NIC.

Replays bursty production-like traffic (calibrated to the paper's rack A
captures) against two hosts.  Baseline: each host uses its own 100 Gbit NIC.
Multiplexed: both share host 1's NIC through Oasis.  Bursty, non-coincident
traffic means the shared NIC absorbs both loads with negligible interference
while its utilization roughly doubles.

Run:  python examples/nic_multiplexing.py        (about a minute)
"""

from dataclasses import replace

import numpy as np

from repro.analysis.report import render_table
from repro.workloads.replay import run_trace_replay
from repro.workloads.traces import RACK_A_PARAMS, generate_trace

DURATION = 0.2   # seconds of trace to replay


def main():
    traces = [
        generate_trace(replace(RACK_A_PARAMS[i], duration_s=DURATION),
                       np.random.default_rng(50 + i))
        for i in range(2)
    ]
    print(f"replaying {sum(len(t.times) for t in traces)} packets "
          f"({DURATION * 1000:.0f} ms of rack A hosts 1-2 traffic)\n")

    baseline = run_trace_replay(traces, multiplexed=False)
    multiplexed = run_trace_replay(traces, multiplexed=True)

    rows = []
    for i in range(2):
        rows.append((
            f"host {i + 1}",
            baseline.per_host[i]["p50"], multiplexed.per_host[i]["p50"],
            baseline.per_host[i]["p99"], multiplexed.per_host[i]["p99"],
        ))
    print(render_table(
        ["", "2-NIC p50 us", "shared p50 us", "2-NIC p99 us", "shared p99 us"],
        rows,
        title="Round-trip latency: dedicated NICs vs one shared NIC",
        digits=1,
    ))
    print()
    print(render_table(
        ["setup", "aggregated P99.99 utilization %", "packets lost"],
        [
            ("baseline (one NIC per host)", baseline.nic_p9999_util * 100,
             baseline.lost),
            ("multiplexed (one NIC, two hosts)",
             multiplexed.nic_p9999_util * 100, multiplexed.lost),
        ],
        title="Figure 12: utilization doubles with negligible interference "
              "(paper: 18 % -> 37 %)",
        digits=1,
    ))


if __name__ == "__main__":
    main()
