#!/usr/bin/env python
"""NIC failover demo (§3.3.3, Figure 13).

A pod with two NICs -- one serving traffic, one reserved as the pod's backup.
Halfway through a UDP echo run, the serving NIC's switch port is disabled
(the paper's failure injection).  The backend driver's link monitor detects
the failure, reports it to the pod-wide allocator, which (through its
Raft-replicated log) revokes the leases, reroutes every affected frontend to
the backup NIC, and has the backup borrow the failed NIC's MAC address so
the switch redirects inbound traffic -- all without application involvement.

Run:  python examples/nic_failover.py
"""

import numpy as np

from repro import CXLPod, make_ip
from repro.analysis.report import render_table
from repro.workloads.echo import EchoClient, EchoServer

SERVER_IP = make_ip(10, 0, 0, 1)
DURATION = 4.0
FAIL_AT = 2.002            # just after a link-monitor tick: worst-case detection


def main():
    pod = CXLPod(mode="oasis")
    h0, h1 = pod.add_host(), pod.add_host()
    primary_nic = pod.add_nic(h0)
    backup_nic = pod.add_nic(h1, is_backup=True)
    pod.enable_raft(replicas=3)          # replicate the allocator (§3.5)

    instance = pod.add_instance(h1, ip=SERVER_IP, nic=primary_nic)
    EchoServer(pod.sim, instance)
    client = pod.add_external_client(ip=make_ip(10, 0, 9, 1))
    echo = EchoClient(pod.sim, client, SERVER_IP, packet_size=75,
                      rate_pps=4000)

    echo.start(DURATION)
    pod.run(FAIL_AT)
    print(f"t={pod.sim.now:.3f}s: disabling {primary_nic.name}'s switch port")
    pod.fail_switch_port(primary_nic)
    pod.run(DURATION - FAIL_AT + 0.5)
    pod.stop()

    stats = echo.stats
    gaps = np.diff(np.asarray(stats.recv_times))
    worst = gaps.argmax()
    record = pod.frontends[h1.name].record_of(SERVER_IP)

    print()
    print(render_table(
        ["metric", "value"],
        [
            ("packets sent", stats.sent),
            ("packets lost", stats.lost),
            ("interruption (ms)", round(float(gaps[worst] * 1000), 1)),
            ("paper interruption (ms)", 38),
            ("instance now served by", record.primary.name),
            ("failed NIC's MAC now at switch port",
             pod.switch.port_of_mac(primary_nic.mac)),
            ("allocator failovers", pod.allocator.failovers_executed),
            ("raft log entries", pod.raft_nodes[0].log.last_index),
        ],
        title="Figure 13-style failover",
    ))

    timeline = stats.loss_timeline(0.1, DURATION)
    bursts = [(f"{0.1 * i:.1f}s", int(v)) for i, v in enumerate(timeline) if v]
    print()
    print(render_table(["time", "lost packets"], bursts or [("-", 0)],
                       title="Loss bursts per 100 ms bin (Figure 13a)"))


if __name__ == "__main__":
    main()
