#!/usr/bin/env python
"""Stranding study (§2.2, Figure 2): how much hardware does pooling save?

Generates an Azure-like allocation trace, packs it onto a cluster with a
first-fit scheduler, then asks: if NIC bandwidth and SSD capacity were
pooled across pods of k hosts, how many devices would the operator actually
need, and how much allocated-but-idle capacity remains stranded?

Run:  python examples/stranding_study.py
"""

import numpy as np

from repro.analysis.report import render_table
from repro.workloads.allocation import generate_allocation_trace
from repro.workloads.stranding import (
    pooled_stranding,
    schedule_trace,
    stranded_fractions,
)

N_HOSTS = 48
POD_SIZES = (1, 2, 4, 8, 16)


def main():
    rng = np.random.default_rng(7)
    trace = generate_allocation_trace(n_instances=4000, duration_s=15_000,
                                      mean_lifetime_s=3000, rng=rng)
    placed = schedule_trace(trace, N_HOSTS)
    print(f"trace: {placed}/{len(trace.instances)} instances placed on "
          f"{N_HOSTS} hosts\n")

    base = stranded_fractions(trace, N_HOSTS)
    print(render_table(
        ["resource", "stranded % (measured)", "stranded % (paper)"],
        [
            ("CPU cores", base["cores"] * 100, 5),
            ("memory", base["memory_gb"] * 100, 9),
            ("NIC bandwidth", base["nic_gbps"] * 100, 27),
            ("SSD capacity", base["ssd_tb"] * 100, 33),
        ],
        title="Baseline stranding while the cluster is loaded",
        digits=1,
    ))

    for resource, unit, label in (("nic_gbps", 100.0, "100 Gbit NICs"),
                                  ("ssd_tb", 4.0, "4 TB SSDs")):
        rows = pooled_stranding(trace, N_HOSTS, POD_SIZES, resource, unit,
                                rng=np.random.default_rng(3))
        print()
        print(render_table(
            ["pod size", "devices needed", "devices saved %", "stranded %"],
            [(r.pod_size, r.devices_needed, r.saved_fraction * 100,
              r.stranded_fraction * 100) for r in rows],
            title=f"Figure 2: pooling {label} across pods",
            digits=1,
        ))


if __name__ == "__main__":
    main()
