"""Benchmark: Table 2 -- NIC bandwidth utilization at P99.99.

Paper: per-host 0-79 %, aggregated 10 % (rack A) / 20 % (rack B).
"""

from repro.experiments import table2


def test_table2_utilization(benchmark):
    racks = benchmark.pedantic(table2.main, rounds=1, iterations=1)
    assert racks["A"]["aggregated"] < 0.2
    assert racks["B"]["aggregated"] < 0.35
