"""Benchmark: Figure 10 -- UDP echo overhead, 75 B vs 1500 B packets.

Paper: +4-7 us regardless of packet size.  Also measures the wall-clock cost
of the flow-tracing instrumentation when it is disabled (the default): the
echo cell must simulate at most 2% slower than an identical cell whose client
is not wired to the pod's flow registry at all.
"""

import os
import time

from repro.experiments import fig10
from repro.experiments.common import SERVER_IP, build_echo_pod
from repro.workloads.echo import EchoClient


def test_fig10_udp_echo(benchmark, record_result):
    results = benchmark.pedantic(fig10.main, rounds=1, iterations=1)
    deltas = []
    for size in (75, 1500):
        cell = results[size]["low"]
        deltas.append(cell["oasis"]["p50"] - cell["baseline"]["p50"])
    assert all(1.5 <= d <= 10.0 for d in deltas)
    assert abs(deltas[0] - deltas[1]) < 2.5   # size-independent
    duration_s = 0.2 * float(os.environ["OASIS_SCALE"])
    record_result("fig10", {
        "delta_p50_us_75B": deltas[0],
        "delta_p50_us_1500B": deltas[1],
        "oasis_p50_us_75B": results[75]["low"]["oasis"]["p50"],
        "throughput_pps_75B_low": (
            results[75]["low"]["oasis"]["count"] / duration_s),
    })


def _echo_wallclock(wire_flows: bool, duration_s: float = 0.05,
                    rate_pps: float = 20_000.0, reps: int = 5) -> dict:
    """Best-of-``reps`` wall-clock time for one oasis echo cell.

    ``wire_flows=True`` passes the pod's (disabled) flow registry to the
    client, exactly as ``fig10.run_echo`` now does; ``False`` leaves the
    client on the null registry -- the pre-flow-tracing configuration.
    """
    best = float("inf")
    completed = 0
    for _ in range(reps):
        pod, inst, client_ep, _ = build_echo_pod("oasis", remote=True)
        kwargs = {"flows": pod.flows} if wire_flows else {}
        client = EchoClient(pod.sim, client_ep, SERVER_IP,
                            packet_size=75, rate_pps=rate_pps,
                            metrics=pod.metrics, **kwargs)
        client.start(duration_s)
        t0 = time.perf_counter()
        pod.run(duration_s + 0.02)
        best = min(best, time.perf_counter() - t0)
        pod.stop()
        completed = int(pod.metrics.value("echo_rtt_us_count",
                                          client=client.name))
    return {"wall_s": best, "completed": completed}


def test_fig10_flow_tracing_disabled_overhead(record_result):
    """Disabled flow tracing costs < 2% of echo simulation throughput."""
    control = _echo_wallclock(wire_flows=False)
    wired = _echo_wallclock(wire_flows=True)
    assert wired["completed"] == control["completed"]
    control_tput = control["completed"] / control["wall_s"]
    wired_tput = wired["completed"] / wired["wall_s"]
    regression = 1.0 - wired_tput / control_tput
    record_result("fig10_flow_overhead", {
        "control_echoes_per_wall_s": control_tput,
        "flows_disabled_echoes_per_wall_s": wired_tput,
        "regression": regression,
    })
    assert regression < 0.02
