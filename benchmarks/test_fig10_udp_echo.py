"""Benchmark: Figure 10 -- UDP echo overhead, 75 B vs 1500 B packets.

Paper: +4-7 us regardless of packet size.
"""

from repro.experiments import fig10


def test_fig10_udp_echo(benchmark):
    results = benchmark.pedantic(fig10.main, rounds=1, iterations=1)
    deltas = []
    for size in (75, 1500):
        cell = results[size]["low"]
        deltas.append(cell["oasis"]["p50"] - cell["baseline"]["p50"])
    assert all(1.5 <= d <= 10.0 for d in deltas)
    assert abs(deltas[0] - deltas[1]) < 2.5   # size-independent
