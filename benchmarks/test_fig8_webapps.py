"""Benchmark: Figure 8 -- Oasis overhead on four web applications.

Paper: +4-7 us at P50/P90/P99 under low and moderate load.
"""

from repro.experiments import fig8


def test_fig8_webapps(benchmark):
    results = benchmark.pedantic(fig8.main, rounds=1, iterations=1)
    for app, loads in results.items():
        for load_name in ("low", "moderate"):
            cell = loads[load_name]
            delta = cell["oasis"]["p50"] - cell["baseline"]["p50"]
            assert 1.5 <= delta <= 10.0, (app, load_name, delta)
