"""Benchmark: Figure 9 -- Oasis overhead on memcached.

Paper: consistently about +4-7 us at all percentiles.
"""

from repro.experiments import fig9


def test_fig9_memcached(benchmark):
    results = benchmark.pedantic(fig9.main, rounds=1, iterations=1)
    for load_name in ("low", "moderate"):
        cell = results[load_name]
        delta = cell["oasis"]["p50"] - cell["baseline"]["p50"]
        assert 1.5 <= delta <= 10.0, (load_name, delta)
