"""Benchmark: Figure 2 -- stranded NIC/SSD resources vs pod size.

Paper: pooling in pods of 8 cuts stranded NIC bandwidth from 27 % to the low
teens and stranded SSD capacity from 33 % to single digits.
"""

from repro.experiments import fig2


def test_fig2_stranding(benchmark):
    results = benchmark.pedantic(fig2.main, rounds=1, iterations=1)
    nic = results["nic"]
    ssd = results["ssd"]
    assert nic[-1].stranded_fraction < nic[0].stranded_fraction
    assert ssd[-1].stranded_fraction < ssd[0].stranded_fraction
