"""Benchmark: Figure 3 -- bursty inbound rack traffic at 10 us granularity.

Paper: host 1 peaks near 40 Gbps with P99 < 3 % and P99.99 ~39 %.
"""

from repro.experiments import fig3


def test_fig3_trace(benchmark):
    results = benchmark.pedantic(fig3.main, rounds=1, iterations=1)
    host1 = results["hosts"][0]
    assert host1["p99_util"] < 0.05
    assert host1["p9999_util"] > 0.2
