"""Benchmark: Figure 11 -- overhead breakdown.

Paper: I/O buffers in CXL cost almost nothing; cross-host message passing is
nearly all of the overhead.  The flow-derived attribution run cross-checks
the differenced breakdown against per-stage decomposition of the same RTTs.
"""

from repro.experiments import fig11


def test_fig11_breakdown(benchmark, record_result):
    results = benchmark.pedantic(fig11.main, rounds=1, iterations=1)
    for size in (75, 1500):
        cell = results[size]["low"]
        buffers = cell["local-cxl-buffers"]["p50"] - cell["local"]["p50"]
        messaging = cell["oasis"]["p50"] - cell["local-cxl-buffers"]["p50"]
        assert buffers < 1.5
        assert messaging > buffers
    derived = results["attribution"]["derived"]
    cell = results[75]["low"]
    record_result("fig11", {
        "buffer_cost_us": (cell["local-cxl-buffers"]["p50"]
                           - cell["local"]["p50"]),
        "messaging_cost_us": (cell["oasis"]["p50"]
                              - cell["local-cxl-buffers"]["p50"]),
        "flow_messaging_cost_us": derived["messaging_cost_us"],
        "flow_channel_stage_delta_us": derived["channel_stage_delta_us"],
        "channel_share_of_messaging": derived["channel_share_of_messaging"],
    })
