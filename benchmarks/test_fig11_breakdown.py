"""Benchmark: Figure 11 -- overhead breakdown.

Paper: I/O buffers in CXL cost almost nothing; cross-host message passing is
nearly all of the overhead.
"""

from repro.experiments import fig11


def test_fig11_breakdown(benchmark):
    results = benchmark.pedantic(fig11.main, rounds=1, iterations=1)
    for size, loads in results.items():
        cell = loads["low"]
        buffers = cell["local-cxl-buffers"]["p50"] - cell["local"]["p50"]
        messaging = cell["oasis"]["p50"] - cell["local-cxl-buffers"]["p50"]
        assert buffers < 1.5
        assert messaging > buffers
