"""Benchmark-suite configuration.

Each benchmark regenerates one of the paper's tables/figures and prints the
rows the paper reports.  Simulated durations default to half scale so the
whole suite finishes in minutes; set ``OASIS_SCALE=1`` for full-scale runs
(or higher for tighter statistics).
"""

import os

os.environ.setdefault("OASIS_SCALE", "0.5")
