"""Benchmark-suite configuration.

Each benchmark regenerates one of the paper's tables/figures and prints the
rows the paper reports.  Simulated durations default to half scale so the
whole suite finishes in minutes; set ``OASIS_SCALE=1`` for full-scale runs
(or higher for tighter statistics).

Benchmarks that produce headline numbers record them through the
``record_result`` fixture; at session end everything recorded is dumped to
``BENCH_pr10.json`` (override the path with ``OASIS_BENCH_RESULTS``) so CI
can archive the figures alongside the timing data.  The dump includes the
event-kernel headline metrics (sim events/sec, wall-clock seconds per
simulated second) recorded by ``test_sim_speed.py``, the rack-scale
metrics (32-host events/sec, group-commit latency) recorded by
``test_rack_scale.py``, the overload sweep (goodput recovery with and
without retry budgets) recorded by ``test_overload.py``, and the
multi-tenant serving headline (victim P99 ratio, weighted-share floor)
recorded by ``test_serve.py``; CI compares them against
``benchmarks/baseline_sim_speed.json`` / ``baseline_rack_scale.json`` /
``baseline_overload.json`` / ``baseline_serve.json`` and fails the PR on
regression.
"""

import json
import os
from pathlib import Path

import pytest

os.environ.setdefault("OASIS_SCALE", "0.5")

RESULTS_PATH = Path(os.environ.get(
    "OASIS_BENCH_RESULTS",
    str(Path(__file__).resolve().parent.parent / "BENCH_pr10.json")))

_results = {}


@pytest.fixture
def record_result():
    """Stash one benchmark's headline figures for the session-end dump."""
    def _record(name, value):
        _results[name] = value
    return _record


def pytest_sessionfinish(session, exitstatus):
    if not _results:
        return
    payload = {
        "scale": float(os.environ.get("OASIS_SCALE", "1.0")),
        "results": _results,
    }
    RESULTS_PATH.write_text(json.dumps(payload, indent=1, sort_keys=True)
                            + "\n")
    print(f"\nbenchmark results written to {RESULTS_PATH}")
