"""Benchmark: Table 3 -- CXL link bandwidth under varying network load.

Paper: idle 0.2 GB/s; busy 75 B 2.3 GB/s; busy 1500 B 13.5 GB/s with ~89 %
of traffic being payload buffers.
"""

from repro.experiments import table3


def test_table3_cxl_bandwidth(benchmark):
    results = benchmark.pedantic(table3.main, rounds=1, iterations=1)
    assert abs(results["idle"]["total_gbps"] - 0.2) < 0.1
    row = results["busy_1500"]
    assert row["payload_gbps"] / row["total_gbps"] > 0.7
    assert 8.0 <= row["total_gbps"] <= 20.0
