"""Benchmark: Figure 12 -- trace replay, two hosts sharing one NIC.

Paper: host 1's P99 unchanged, host 2 +~1 us; aggregated P99.99 utilization
roughly doubles (18 % -> 37 %).
"""

from repro.experiments import fig12


def test_fig12_multiplexing(benchmark):
    results = benchmark.pedantic(fig12.main, rounds=1, iterations=1)
    base, mux = results["baseline"], results["multiplexed"]
    assert mux.nic_p9999_util > 1.5 * base.nic_p9999_util
