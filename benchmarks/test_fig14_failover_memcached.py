"""Benchmark: Figure 14 -- memcached P99 through a NIC failover.

Paper: P99 spikes at the failure and recovers within ~133 ms (longer than
UDP because the reliable transport delivers the retransmitted backlog late).
"""

from repro.experiments import fig14


def test_fig14_failover_memcached(benchmark):
    results = benchmark.pedantic(fig14.main, rounds=1, iterations=1)
    assert 50.0 <= results["recovery_ms"] <= 300.0
    assert results["recovery_ms"] > 38.0
    assert results["retransmits"] > 0
