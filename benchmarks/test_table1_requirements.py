"""Benchmark: Table 1 -- model device parameters vs the paper's targets."""

from repro.experiments import table1


def test_table1_requirements(benchmark):
    results = benchmark.pedantic(table1.main, rounds=1, iterations=1)
    assert results["ssd"]["bandwidth_gbs"] == 5.0
