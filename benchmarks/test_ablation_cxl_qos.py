"""Ablation: CXL link contention and QoS (§6, "QoS control for CXL bandwidth").

A colocated bandwidth-intensive use case (the paper's example: an OLAP
database scanning CXL-resident tables) shares the backend host's x8 CXL link
with Oasis's packet DMA.  Moderate loads (the 2-3 GB/s of §2.3's deployed
use cases) are harmless; an oversubscribed hog makes DMA backlog grow and
inflates datapath latency; an Intel RDT-style bandwidth cap -- §6's proposed
mitigation -- restores it.
"""

import numpy as np

from repro.analysis.report import render_table
from repro.core.pod import CXLPod
from repro.net.packet import make_ip
from repro.workloads.echo import EchoClient, EchoServer
from repro.workloads.interference import CXLBandwidthLoad

SERVER_IP = make_ip(10, 0, 0, 1)


def _echo_percentiles(hog_gbps, cap=None, duration=0.05):
    pod = CXLPod(mode="oasis")
    h0, h1 = pod.add_host(), pod.add_host()
    nic = pod.add_nic(h0)
    inst = pod.add_instance(h1, ip=SERVER_IP, nic=nic)
    EchoServer(pod.sim, inst)
    client = pod.add_external_client(ip=make_ip(10, 0, 9, 1))
    ec = EchoClient(pod.sim, client, SERVER_IP, packet_size=1500,
                    rate_pps=20_000)
    if hog_gbps:
        CXLBandwidthLoad(pod.sim, h0, hog_gbps, rdt_cap_gbps=cap).start()
    ec.start(duration)
    pod.run(duration + 0.03)
    pod.stop()
    return ec.stats.percentile_us(50), ec.stats.percentile_us(99)


def test_ablation_cxl_qos(benchmark):
    def run():
        rows = []
        results = {}
        for label, hog, cap in (
            ("no colocated load", 0.0, None),
            ("OLTP-like (2 GB/s)", 2.0, None),
            ("OLAP-like (20 GB/s)", 20.0, None),
            ("oversubscribed (40 GB/s)", 40.0, None),
            ("oversubscribed + RDT cap 15", 40.0, 15.0),
        ):
            p50, p99 = _echo_percentiles(hog, cap)
            rows.append((label, p50, p99))
            results[label] = p99
        print(render_table(
            ["colocated CXL load", "echo p50 us", "echo p99 us"], rows,
            title="Ablation: CXL link QoS (x8 link, ~29 GB/s/direction)"))
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    assert results["OLTP-like (2 GB/s)"] < results["no colocated load"] + 2.0
    assert results["oversubscribed (40 GB/s)"] > \
        results["no colocated load"] + 10.0
    assert results["oversubscribed + RDT cap 15"] < \
        results["oversubscribed (40 GB/s)"] / 2
