"""Benchmark: goodput under overload, retry budgets on vs off (PR 9).

Headline metrics for the overload-robustness PR (not a paper figure): drive
the open-loop block client through a 1.5x-capacity surge against a pooled
SSD and record the full ``python -m repro overload`` sweep -- per-bin
goodput/latency curves for both runs plus

* ``recovery_on``  -- post-surge goodput as a fraction of pre-surge goodput
  with admission control, retry budgets, breakers and brownout armed;
* ``recovery_off`` -- the same ratio for the unprotected ablation, which
  must stay collapsed (the metastable retry storm outliving the surge);
* ``surge_goodput_frac_on`` -- goodput *during* the surge as a fraction of
  device capacity (the protected pod keeps the device busy with useful
  work while shedding the excess).

All three are ratios of simulated-time quantities, so they are machine
independent and gated exactly (no tolerance band) by
``tools/check_bench_regression.py`` against ``baseline_overload.json``.
The assertions here are the same bounds, kept loose enough to hold at any
``OASIS_SCALE``.
"""

import json
from pathlib import Path

from repro.experiments.overload import run_overload

BASELINE_PATH = Path(__file__).resolve().parent / "baseline_overload.json"


def test_overload_recovery(record_result):
    result = run_overload()
    baseline = json.loads(BASELINE_PATH.read_text())

    record_result("overload", result)

    assert result["ok"]
    assert result["recovery_on"] >= baseline["recovery_on_floor"]
    assert result["recovery_off"] <= baseline["recovery_off_ceiling"]
    assert (result["surge_goodput_frac_on"]
            >= baseline["surge_goodput_frac_floor"])
    # The off-run really was an overload (not a tuned-down workload): the
    # surge pushed offered load past device capacity.
    assert result["surge_rate_iops"] > result["capacity_iops"]
