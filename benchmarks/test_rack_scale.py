"""Benchmark: rack-scale throughput under the sharded control plane.

Headline metrics for the PR-8 rack (not a paper figure): sustain the fig10
echo workload on **every** host of the ROADMAP's 32-host / 4-pool / ~100
device rack while 256 place/release pairs churn through the sharded,
batch-committed control plane, and measure

* ``events_per_sec`` -- the event kernel's wall-clock throughput with the
  whole rack hot (the PR-6 sim-speed budget at 16x the host count);
* ``commit_p50_ms`` / ``commit_p99_ms`` -- decide-to-leader-applied latency
  of replicated control commands under group commit (sim time, so the
  number is machine-independent and gated exactly);
* ``converged`` -- every Raft replica of every pool shard matches its
  shard's canonical state signature at the end of the run.

The committed floor in ``baseline_rack_scale.json`` is what CI enforces via
``tools/check_bench_regression.py``; the assertions here are looser sanity
bounds so local runs on slow machines don't flap.
"""

import json
from pathlib import Path

from repro.experiments.rack import run_rack

BASELINE_PATH = Path(__file__).resolve().parent / "baseline_rack_scale.json"


def test_rack_scale_throughput(record_result):
    result = run_rack()
    baseline = json.loads(BASELINE_PATH.read_text())

    record_result("rack_scale", result)

    # Topology: the ROADMAP's rack, not a scaled-down slice.
    assert result["hosts"] == baseline["hosts"]
    assert result["pools"] == baseline["pools"]
    assert result["devices"] >= baseline["devices_min"]

    # Control-plane health is binary: every shard's replicas converged and
    # nothing is stuck in the proposal queue.
    assert result["converged"]
    assert result["pending_after"] == 0
    assert result["commits"] > 0 and result["batches_proposed"] > 0
    # Group commit actually groups: fewer proposals than commands.
    assert result["batches_proposed"] < result["commits"]

    # Commit latency is simulated time -- machine-independent -- so the
    # ceiling is exact, not a tolerance band.
    assert result["commit_p99_ms"] <= baseline["commit_p99_ms_ceiling"]

    # Loose local sanity floor; the calibrated regression gate runs in CI
    # via tools/check_bench_regression.py against the committed floor.
    assert result["events_per_sec"] > 0.25 * baseline["events_per_sec"]
