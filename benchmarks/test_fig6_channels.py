"""Benchmark: Figure 6 -- message-channel designs over non-coherent CXL.

Paper: 3.0 / 8.6 / 87 / 87 MOp/s saturation; the Oasis design holds ~0.6 us
median latency at the 14 MOp/s target while invalidate-consumed spikes.
"""

from repro.experiments import fig6


def test_fig6_channel_designs(benchmark):
    results = benchmark.pedantic(fig6.main, rounds=1, iterations=1)
    sat = {d: r.achieved_mops for d, r in results["saturation"].items()}
    assert sat["bypass-cache"] < sat["naive-prefetch"] < sat["invalidate-consumed"]
    assert sat["invalidate-prefetched"] > 14.0
