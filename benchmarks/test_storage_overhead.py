"""Benchmark: storage engine overhead (beyond the paper's evaluation).

The paper designs the storage engine (§3.4) but does not evaluate it.  This
benchmark does: random 4 KB block I/O against a local SSD (baseline) vs the
same drive pooled over CXL (Oasis), reporting the added latency.  Expected
shape: single-digit-microsecond overhead on a ~100 us media floor -- the
same story as the network engine, an order of magnitude below the device's
own latency.
"""

import numpy as np

from repro.analysis.report import render_table
from repro.core.pod import CXLPod
from repro.net.packet import make_ip
from repro.workloads.blockio import BlockWorkload

IP = make_ip(10, 0, 0, 1)


def _run(mode: str, remote: bool, duration: float = 0.2) -> dict:
    pod = CXLPod(mode=mode)
    h0 = pod.add_host()
    h1 = pod.add_host() if remote else h0
    pod.add_nic(h0)
    ssd = pod.add_ssd(h0)
    inst = pod.add_instance(h1 if remote else h0, ip=IP)
    device = pod.add_block_device(inst, ssd)
    workload = BlockWorkload(pod.sim, device, rate_iops=20_000,
                             rng=np.random.default_rng(3))
    workload.start(duration)
    pod.run(duration + 0.05)
    pod.stop()
    return workload.stats.summary()


def test_storage_overhead(benchmark):
    def run():
        base = _run("local", remote=False)
        oasis = _run("oasis", remote=True)
        rows = []
        for op in ("read", "write"):
            rows.append((
                op, base[op]["p50"], oasis[op]["p50"],
                oasis[op]["p50"] - base[op]["p50"],
                base[op]["p99"], oasis[op]["p99"],
            ))
        print(render_table(
            ["op", "base p50 us", "oasis p50 us", "d(p50)", "base p99",
             "oasis p99"],
            rows,
            title="Storage engine overhead: local vs pooled SSD "
                  "(4 KB random I/O at 20 kIOPS)"))
        return {"base": base, "oasis": oasis}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    for op in ("read", "write"):
        delta = results["oasis"][op]["p50"] - results["base"][op]["p50"]
        assert 1.0 <= delta <= 12.0            # single-digit us over the media
        assert results["base"][op]["count"] > 500
        assert results["oasis"][op]["count"] > 500
