"""Benchmark: Figure 13 -- UDP packet loss through a NIC failover.

Paper: a single ~38 ms loss burst, then traffic resumes on the backup NIC.
"""

from repro.experiments import fig13


def test_fig13_failover_udp(benchmark, record_result):
    results = benchmark.pedantic(fig13.main, rounds=1, iterations=1)
    assert 20.0 <= results["interruption_ms"] <= 60.0
    assert results["failovers"] == 1
    record_result("fig13", {
        "interruption_ms": results["interruption_ms"],
        "failovers": results["failovers"],
    })
