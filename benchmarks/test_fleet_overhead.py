"""Benchmark: fleet-health pipeline overhead.

The pipeline is opt-in (``CXLPod.enable_fleet_telemetry``); a pod that never
opts in must pay essentially nothing for its existence.  This measures the
wall-clock cost of the disabled configuration -- fleet constructed and
subscribed, scraper never started, exactly what a pod carries after the
wiring landed -- against a pristine pod, and asserts the echo cell simulates
at most 2% slower.  The *enabled* cost (scraper ticking at 10 ms plus gauge
updates and alert evaluation) is recorded alongside for the dump but only
sanity-bounded: observability that halves sim speed would be unusable.
"""

import time

from repro.experiments.common import SERVER_IP, build_echo_pod
from repro.workloads.echo import EchoClient


def _echo_wallclock(fleet_mode: str, duration_s: float = 0.05,
                    rate_pps: float = 20_000.0, reps: int = 5) -> dict:
    """Best-of-``reps`` wall-clock for one oasis echo cell.

    ``fleet_mode``: ``"off"`` = pristine pod; ``"disabled"`` = FleetHealth
    built and subscribed to the scraper but the scraper never started (what
    every pod carries by default after construction-time wiring);
    ``"enabled"`` = ``enable_fleet_telemetry`` scraping every 10 ms.
    """
    best = float("inf")
    completed = 0
    for _ in range(reps):
        pod, inst, client_ep, _ = build_echo_pod("oasis", remote=True)
        if fleet_mode == "disabled":
            from repro.obs.fleet import FleetHealth

            fleet = FleetHealth(
                nic_bytes_per_sec=pod.config.nic.bytes_per_sec,
                ssd_bytes_per_sec=pod.config.ssd.bytes_per_sec,
                link_bytes_per_sec=pod.config.cxl.link_bytes_per_sec)
            pod.scraper.subscribe(fleet.ingest)
        elif fleet_mode == "enabled":
            pod.enable_fleet_telemetry(period_s=0.01)
        client = EchoClient(pod.sim, client_ep, SERVER_IP,
                            packet_size=75, rate_pps=rate_pps,
                            metrics=pod.metrics)
        client.start(duration_s)
        t0 = time.perf_counter()
        pod.run(duration_s + 0.02)
        best = min(best, time.perf_counter() - t0)
        pod.stop()
        completed = int(pod.metrics.value("echo_rtt_us_count",
                                          client=client.name))
    return {"wall_s": best, "completed": completed}


def test_fleet_disabled_overhead(record_result):
    """A never-enabled fleet pipeline costs < 2% of echo sim throughput."""
    control = _echo_wallclock("off")
    disabled = _echo_wallclock("disabled")
    enabled = _echo_wallclock("enabled")
    assert disabled["completed"] == control["completed"]
    assert enabled["completed"] == control["completed"]
    control_tput = control["completed"] / control["wall_s"]
    disabled_tput = disabled["completed"] / disabled["wall_s"]
    enabled_tput = enabled["completed"] / enabled["wall_s"]
    disabled_regression = 1.0 - disabled_tput / control_tput
    enabled_regression = 1.0 - enabled_tput / control_tput
    record_result("fleet_overhead", {
        "control_echoes_per_wall_s": control_tput,
        "fleet_disabled_echoes_per_wall_s": disabled_tput,
        "fleet_enabled_echoes_per_wall_s": enabled_tput,
        "disabled_regression": disabled_regression,
        "enabled_regression": enabled_regression,
    })
    assert disabled_regression < 0.02
    # Enabled observability must stay far from dominating the run.
    assert enabled_regression < 0.5
