"""Ablation benchmarks for the message-channel design choices (§3.2.2, §4).

Not in the paper's figures, but each exercises a design decision DESIGN.md
calls out: the prefetch depth (the paper picked 16), the consumed-counter
update batch (the paper picks half the ring), ring capacity, and message
size (16 B network vs 64 B storage messages).
"""

import pytest

from repro.analysis.report import render_table
from repro.channel.microbench import ChannelMicrobench

SLOTS = 2048
N = 10_000


def test_ablation_prefetch_depth(benchmark):
    """Deeper prefetch raises throughput until the window covers the
    CXL latency; depth 16 (the paper's choice) is near the knee."""

    def run():
        rows = []
        for depth in (0, 2, 4, 8, 16, 32):
            r = ChannelMicrobench("invalidate-prefetched", slots=SLOTS,
                                  prefetch_depth=depth).run(N)
            rows.append((depth, r.achieved_mops))
        print(render_table(["prefetch depth", "MOp/s"], rows,
                           title="Ablation: prefetch depth (paper picks 16)"))
        return dict(rows)

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    assert results[16] > results[0] * 2     # prefetching is the point
    assert results[16] >= results[2] * 0.9  # and 16 is at/near the knee


def test_ablation_counter_batch(benchmark):
    """Publishing the consumed counter on every message wastes writebacks;
    batching (§4: half the ring) recovers the throughput."""

    def run():
        rows = []
        for batch in (1, 16, 256, SLOTS // 2):
            r = ChannelMicrobench("invalidate-prefetched", slots=SLOTS,
                                  counter_batch=batch).run(N)
            rows.append((batch, r.achieved_mops))
        print(render_table(["counter batch", "MOp/s"], rows,
                           title="Ablation: consumed-counter update batch"))
        return dict(rows)

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    assert results[SLOTS // 2] > results[1]


def test_ablation_ring_capacity(benchmark):
    """Tiny rings throttle the sender via backpressure (counter refresh +
    retry stalls); once the ring is large enough to absorb bursts, capacity
    stops mattering.  Each point runs >= 4 ring laps for steady state."""

    def run():
        rows = []
        for slots in (64, 512, 8192):
            n = max(N, slots * 4)
            r = ChannelMicrobench("invalidate-prefetched", slots=slots).run(n)
            rows.append((slots, r.achieved_mops))
        print(render_table(["ring slots", "MOp/s"], rows,
                           title="Ablation: ring capacity (paper: 8192)"))
        return dict(rows)

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    assert results[512] > results[64]          # backpressure hurts tiny rings
    assert results[8192] >= 0.5 * results[512]


def test_ablation_message_size(benchmark):
    """64 B messages carry 4x the bytes per slot: per-message cost rises,
    which is why the network engine uses 16 B messages (§3.3)."""

    def run():
        rows = []
        for size in (16, 64):
            r = ChannelMicrobench("invalidate-prefetched", slots=SLOTS,
                                  message_size=size).run(N)
            rows.append((size, r.achieved_mops))
        print(render_table(["message bytes", "MOp/s"], rows,
                           title="Ablation: message size (16 B net / 64 B storage)"))
        return dict(rows)

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    assert results[16] > results[64]
