"""Benchmark: multi-tenant QoS serving under a noisy neighbour (PR 10).

Headline metrics for the serving PR (not a paper figure): run the full
``python -m repro serve`` scenario -- a latency-sensitive memcached-like
tenant, a diurnal web tenant and a bursty background tenant sharing one
derated SSD through per-tenant weighted-fair queueing, with the background
tenant surging to 8x its share -- and record

* ``p99_ratio``      -- the victim (mc) tenant's surge-window P99 in the
  mix as a multiple of its solo-run P99 (same seed, same RNG substreams);
* ``min_share_frac`` -- the worst tenant's surge-window goodput as a
  fraction of its weighted fair share, water-filled over measured demand;
* per-tenant goodput/shed/SLO-burn ledgers plus the WFQ and invariant
  verdicts from both runs.

Both headline numbers are ratios of simulated-time quantities, so they are
machine independent and gated exactly (no tolerance band) by
``tools/check_bench_regression.py`` against ``baseline_serve.json``.  The
assertions here are the same bounds, kept loose enough to hold at any
``OASIS_SCALE``.
"""

import json
from pathlib import Path

from repro.experiments.serve import run_serve

BASELINE_PATH = Path(__file__).resolve().parent / "baseline_serve.json"


def test_serve_isolation(record_result):
    result = run_serve()
    baseline = json.loads(BASELINE_PATH.read_text())

    record_result("serve", result)

    assert result["ok"]
    assert result["p99_ratio"] <= baseline["p99_ratio_ceiling"]
    assert result["min_share_frac"] >= baseline["share_frac_floor"]
    # Both runs kept their books: per-tenant conservation and the shed/retry
    # invariants held for the whole run.
    assert result["solo"]["invariants_ok"]
    assert result["mix"]["invariants_ok"]
    # The scenario really exercised isolation: the noisy neighbour shed
    # traffic while the victim tenants shed nothing.
    lanes = result["mix"]["frontend_tenants"]
    assert lanes["bg"]["shed"] > 0
    assert lanes["mc"]["shed"] == 0
    assert lanes["web"]["shed"] == 0
