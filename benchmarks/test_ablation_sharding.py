"""Ablation: sharded multi-channel scaling (§6, "Single-threaded datapath").

The paper's claim that "message channel throughput scales linearly with
additional channels", measured: aggregate saturation MOp/s vs shard count
(one sender/receiver core pair per shard).
"""

from repro.analysis.report import render_table
from repro.channel.sharded import sharded_saturation


def test_ablation_sharded_scaling(benchmark):
    def run():
        results = sharded_saturation(shard_counts=(1, 2, 4, 8),
                                     n_messages=8000, slots=2048)
        rows = [(k, v, v / results[1]) for k, v in results.items()]
        print(render_table(
            ["shards", "aggregate MOp/s", "speedup"], rows,
            title="Ablation: sharded channels (paper: linear scaling)"))
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    assert results[8] > 6 * results[1]    # near-linear
