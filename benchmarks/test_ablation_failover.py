"""Ablation: failover interruption vs the link-monitor interval.

The paper's 38 ms interruption is dominated by detection; faster link
monitoring shrinks it (at the cost of more control-plane work).
"""

from dataclasses import replace

from repro.analysis.report import render_table
from repro.config import OasisConfig
from repro.core.pod import CXLPod
from repro.net.packet import make_ip
from repro.workloads.echo import EchoClient, EchoServer

import numpy as np

SERVER_IP = make_ip(10, 0, 0, 1)


def _interruption_ms(monitor_ms: float) -> float:
    config = OasisConfig(
        failover=replace(OasisConfig().failover,
                         link_monitor_interval_ms=monitor_ms)
    )
    pod = CXLPod(config=config, mode="oasis")
    h0, h1 = pod.add_host(), pod.add_host()
    nic0 = pod.add_nic(h0)
    pod.add_nic(h1, is_backup=True)
    inst = pod.add_instance(h1, ip=SERVER_IP, nic=nic0)
    EchoServer(pod.sim, inst)
    client = pod.add_external_client(ip=make_ip(10, 0, 9, 1))
    ec = EchoClient(pod.sim, client, SERVER_IP, rate_pps=4000)
    ec.start(0.9)
    pod.run(0.3002)
    pod.fail_switch_port(nic0)
    pod.run(0.8)
    pod.stop()
    gaps = np.diff(np.asarray(ec.stats.recv_times))
    return float(gaps.max() * 1000)


def test_ablation_link_monitor_interval(benchmark):
    def run():
        rows = [(ms, _interruption_ms(ms)) for ms in (5.0, 25.0, 100.0)]
        print(render_table(["monitor interval ms", "interruption ms"], rows,
                           title="Ablation: failover vs link-monitor interval"))
        return dict(rows)

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    assert results[5.0] < results[100.0]
