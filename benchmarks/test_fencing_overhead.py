"""Benchmark: epoch-fencing overhead on the network datapath (§3.3.3).

Fencing adds one table lookup per TX post at the backend and a one-byte
stamp that rides inside the existing 16 B message, so steady-state
throughput must be indistinguishable from a pod with the epoch table
detached (``pod.set_fencing(False)``).  The suite asserts the fenced pod
keeps at least 98 % of the unfenced throughput.
"""

import numpy as np

from repro.analysis.report import render_table
from repro.experiments.common import SERVER_IP, build_echo_pod, scale
from repro.workloads.echo import EchoClient


def _echo_received(fencing: bool, rate_pps: float = 20000.0) -> int:
    duration = max(0.2, 0.5 * scale())
    pod, inst, client_ep, nic0 = build_echo_pod("oasis", remote=True)
    pod.set_fencing(fencing)
    echo = EchoClient(pod.sim, client_ep, SERVER_IP, packet_size=256,
                      rate_pps=rate_pps, rng=np.random.default_rng(7))
    echo.start(duration)
    pod.run(duration + 0.1)
    pod.stop()
    backend = pod.backends[nic0.name]
    assert backend.stale_accepted == 0
    if fencing:
        assert backend.fence_rejects == 0   # healthy traffic is never fenced
    return echo.stats.received


def test_fencing_throughput_overhead(benchmark, record_result):
    def run():
        on = _echo_received(fencing=True)
        off = _echo_received(fencing=False)
        rows = [("fencing on", on), ("fencing off", off),
                ("ratio", round(on / off, 4))]
        print(render_table(["configuration", "echoes received"], rows,
                           title="Epoch fencing: datapath overhead"))
        return on, off

    on, off = benchmark.pedantic(run, rounds=1, iterations=1)
    # The fencing check is one dictionary lookup on the backend CPU; it
    # must cost <2% of throughput (in the model: nothing at all).
    assert on >= 0.98 * off
    record_result("fencing_overhead", {
        "received_fenced": on, "received_unfenced": off,
        "ratio": on / off if off else None,
    })
