"""Benchmark: raw event-kernel throughput on the canonical fig10 echo cell.

Headline metrics for the simulator itself (not a paper figure): **sim
events per wall-clock second** and **wall-clock seconds per simulated
second**, measured over the same seeded echo run the replay suite pins
byte-identical (256 B packets, 20 kpps Poisson, seed 17).  The run window
is timed alone -- pod construction and report scraping are excluded -- so
the number tracks the dispatch loop and datapath hot path, nothing else.

The committed floor in ``baseline_sim_speed.json`` is what CI enforces
(>20% regression fails the PR); the assertion here is a looser sanity
bound so local runs on slow machines don't flap.

For the record: the PR-6 kernel rebuild (tiered queue, event pooling,
slotted wakeups, fused channel/cache hot paths) measured a median 1.66x
events/sec over the PR-5 kernel on this run (interleaved best-of-3 pairs),
with byte-identical seeded output.
"""

import json
import time
from pathlib import Path

from repro.config import OasisConfig
from repro.experiments.common import SERVER_IP, build_echo_pod
from repro.workloads.echo import EchoClient

BASELINE_PATH = Path(__file__).resolve().parent / "baseline_sim_speed.json"

#: Simulated seconds of echo traffic per rep; the client stops at 0.05 s
#: and the remaining 0.02 s drains in-flight frames.
SIM_SECONDS = 0.07


def _measure(reps: int = 3) -> dict:
    """Best-of-``reps`` wall clock for the canonical seeded echo window."""
    best_wall = float("inf")
    events = 0
    for _ in range(reps):
        pod, _, client_ep, _ = build_echo_pod(
            "oasis", remote=True, config=OasisConfig().with_(seed=17))
        client = EchoClient(pod.sim, client_ep, SERVER_IP, packet_size=256,
                            rate_pps=20_000.0, rng=pod.rng.get("echo-client"),
                            poisson=True, metrics=pod.metrics,
                            flows=pod.flows)
        before = pod.sim.processed_events
        t0 = time.perf_counter()
        client.start(0.05)
        pod.run(SIM_SECONDS)
        wall = time.perf_counter() - t0
        events = pod.sim.processed_events - before
        best_wall = min(best_wall, wall)
        pod.stop()
    return {
        "events": events,
        "wall_s": best_wall,
        "events_per_sec": events / best_wall,
        "wall_per_sim_sec": best_wall / SIM_SECONDS,
    }


def test_sim_event_throughput(record_result):
    measured = _measure()
    # The event count is part of the replay contract: same seed, same
    # schedule, same number of dispatched events -- on every machine.
    baseline = json.loads(BASELINE_PATH.read_text())
    assert measured["events"] == baseline["events"]

    record_result("sim_speed", {
        "events": measured["events"],
        "events_per_sec": measured["events_per_sec"],
        "wall_per_sim_sec": measured["wall_per_sim_sec"],
        "speedup_vs_pr5_kernel_median": baseline["speedup_vs_pr5_kernel"],
    })

    # Loose local sanity floor; the calibrated >20%-regression gate runs in
    # CI via tools/check_bench_regression.py against the committed floor.
    assert measured["events_per_sec"] > 0.25 * baseline["events_per_sec"]
