"""Tests for the sender/receiver ring protocol over non-coherent caches."""

import pytest

from repro.channel.designs import InvalidatePrefetchedReceiver, make_receiver
from repro.channel.protocol import ChannelSender
from repro.channel.ring import RingLayout
from repro.errors import ChannelError, ChannelFullError
from repro.mem.cache import HostCache
from repro.mem.layout import Region


def build_channel(small_pool, slots=64, message_size=16, design="invalidate-prefetched",
                  counter_batch=None):
    size = RingLayout.required_bytes(slots, message_size)
    layout = RingLayout(Region(0, size), slots, message_size)
    sender = ChannelSender(layout, HostCache(small_pool, "sender"))
    receiver = make_receiver(design, layout, HostCache(small_pool, "receiver"),
                             counter_batch=counter_batch)
    return sender, receiver


def msg(i, size=16):
    return bytes([1]) + i.to_bytes(8, "little") + bytes(size - 9)


class TestRoundtrip:
    def test_single_message(self, small_pool):
        sender, receiver = build_channel(small_pool)
        sender.send(msg(7))
        payload, _ = receiver.poll()
        assert payload == msg(7)

    def test_fifo_order(self, small_pool):
        sender, receiver = build_channel(small_pool)
        for i in range(20):
            sender.send(msg(i))
        got = []
        while True:
            payload, _ = receiver.poll()
            if payload is None:
                break
            got.append(payload)
        assert got == [msg(i) for i in range(20)]

    def test_poll_empty_returns_none(self, small_pool):
        _, receiver = build_channel(small_pool)
        payload, _ = receiver.poll()
        assert payload is None
        assert receiver.counters.empty_polls == 1

    def test_unflushed_line_not_visible(self, small_pool):
        """A message is invisible until its line is CLWB'd (visibility rule)."""
        sender, receiver = build_channel(small_pool)
        ok, _ = sender.try_send(msg(1))   # 1 of 4 slots in the line: no CLWB
        assert ok
        payload, _ = receiver.poll()
        assert payload is None
        sender.flush()
        # The receiver's empty poll invalidated the line; re-poll sees it.
        payload, _ = receiver.poll()
        assert payload == msg(1)

    def test_line_end_auto_flushes(self, small_pool):
        sender, receiver = build_channel(small_pool)
        for i in range(4):                # exactly one full line
            ok, _ = sender.try_send(msg(i))
            assert ok
        got = []
        for _ in range(4):
            payload, _ = receiver.poll()
            got.append(payload)
        assert got == [msg(i) for i in range(4)]

    def test_wrong_size_payload_rejected(self, small_pool):
        sender, _ = build_channel(small_pool)
        with pytest.raises(ChannelError):
            sender.send(b"short")

    def test_poll_batch(self, small_pool):
        sender, receiver = build_channel(small_pool)
        for i in range(10):
            sender.send(msg(i))
        payloads, _ = receiver.poll_batch(limit=100)
        assert payloads == [msg(i) for i in range(10)]


class TestRingWrap:
    def test_many_laps_preserve_order(self, small_pool):
        sender, receiver = build_channel(small_pool, slots=16, counter_batch=4)
        seq = 0
        for lap in range(5):
            for _ in range(16):
                sender.send(msg(seq))
                # The receiver may need an empty-poll-invalidate cycle to see
                # a message landing in a line it already has cached.
                payload = None
                for _ in range(5):
                    payload, _ = receiver.poll()
                    if payload is not None:
                        break
                assert payload == msg(seq)
                seq += 1

    def test_epoch_prevents_rereading_old_lap(self, small_pool):
        sender, receiver = build_channel(small_pool, slots=16, counter_batch=1)
        for i in range(16):
            sender.send(msg(i))
        while receiver.poll()[0] is not None:
            pass
        # Ring content is one lap old everywhere; nothing new to read.
        payload, _ = receiver.poll()
        assert payload is None


class TestBackpressure:
    def test_sender_blocks_when_ring_full(self, small_pool):
        sender, receiver = build_channel(small_pool, slots=16, counter_batch=8)
        for i in range(16):
            ok, _ = sender.try_send(msg(i))
            assert ok
        ok, _ = sender.try_send(msg(99))
        assert not ok
        assert sender.counters.full_stalls == 1

    def test_send_raises_when_full(self, small_pool):
        sender, _ = build_channel(small_pool, slots=16)
        for i in range(16):
            sender.try_send(msg(i))
        with pytest.raises(ChannelFullError):
            sender.send(msg(99))

    def test_counter_update_unblocks_sender(self, small_pool):
        sender, receiver = build_channel(small_pool, slots=16, counter_batch=8)
        for i in range(16):
            sender.try_send(msg(i))
        assert sender.try_send(msg(99))[0] is False
        # Receiver consumes half the ring; its counter batch publishes.
        for _ in range(8):
            payload, _ = receiver.poll()
            assert payload is not None
        ok, _ = sender.try_send(msg(99))
        assert ok
        assert sender.counters.counter_refreshes >= 1

    def test_unpublished_counter_keeps_sender_blocked(self, small_pool):
        sender, receiver = build_channel(small_pool, slots=16, counter_batch=100)
        for i in range(16):
            sender.try_send(msg(i))
        for _ in range(4):
            receiver.poll()
        # Consumed 4 but batch threshold (100) not reached: still blocked.
        ok, _ = sender.try_send(msg(99))
        assert not ok

    def test_force_publish_counter(self, small_pool):
        sender, receiver = build_channel(small_pool, slots=16, counter_batch=100)
        for i in range(16):
            sender.try_send(msg(i))
        for _ in range(4):
            receiver.poll()
        receiver.force_publish_counter()
        ok, _ = sender.try_send(msg(99))
        assert ok

    def test_counter_never_ahead_of_sender(self, small_pool):
        sender, receiver = build_channel(small_pool, slots=16, counter_batch=1)
        sender.send(msg(0))
        receiver.poll()
        sender.refresh_consumed()
        assert sender._cached_consumed <= sender.next_seq
