"""Tests for CXLPod wiring and the replicated control plane."""

import pytest

from repro.config import OasisConfig
from repro.core.pod import CXLPod
from repro.errors import ConfigError
from repro.net.packet import make_ip

SERVER_IP = make_ip(10, 0, 0, 1)


class TestWiring:
    def test_invalid_mode_rejected(self):
        with pytest.raises(ConfigError):
            CXLPod(mode="bogus")

    def test_hosts_get_unique_names_and_frontends(self):
        pod = CXLPod()
        h0, h1 = pod.add_host(), pod.add_host()
        assert h0.name != h1.name
        assert set(pod.frontends) == {h0.name, h1.name}

    def test_every_frontend_wired_to_every_backend_in_oasis_mode(self):
        pod = CXLPod(mode="oasis")
        h0 = pod.add_host()
        nic0 = pod.add_nic(h0)      # backend before second host
        h1 = pod.add_host()         # host added after the NIC
        nic1 = pod.add_nic(h1)
        for frontend in pod.frontends.values():
            assert set(frontend._links) == {nic0.name, nic1.name}

    def test_local_mode_wires_only_colocated(self):
        pod = CXLPod(mode="local")
        h0, h1 = pod.add_host(), pod.add_host()
        nic0 = pod.add_nic(h0)
        assert nic0.name in pod.frontends[h0.name]._links
        assert nic0.name not in pod.frontends[h1.name]._links

    def test_instance_auto_placement_prefers_local(self):
        pod = CXLPod(mode="oasis")
        h0, h1 = pod.add_host(), pod.add_host()
        nic0, nic1 = pod.add_nic(h0), pod.add_nic(h1)
        inst = pod.add_instance(h1, ip=SERVER_IP)
        assert pod.allocator.assignments[SERVER_IP] == nic1.name

    def test_instance_explicit_nic_override(self):
        pod = CXLPod(mode="oasis")
        h0, h1 = pod.add_host(), pod.add_host()
        nic0, nic1 = pod.add_nic(h0), pod.add_nic(h1)
        pod.add_instance(h1, ip=SERVER_IP, nic=nic0)
        assert pod.allocator.assignments[SERVER_IP] == nic0.name

    def test_remote_instance_without_local_nic(self):
        pod = CXLPod(mode="oasis")
        h0 = pod.add_host()
        h1 = pod.add_host()   # no NIC: the §2.2 "NIC-less host" case
        nic0 = pod.add_nic(h0)
        inst = pod.add_instance(h1, ip=SERVER_IP)
        assert pod.allocator.assignments[SERVER_IP] == nic0.name

    def test_arp_announced_on_registration(self):
        pod = CXLPod(mode="oasis")
        h0 = pod.add_host()
        nic = pod.add_nic(h0)
        pod.add_instance(h0, ip=SERVER_IP)
        assert pod.arp.lookup(SERVER_IP) == nic.mac

    def test_external_client_registered(self):
        pod = CXLPod()
        pod.add_host()
        client = pod.add_external_client(ip=make_ip(10, 0, 9, 5))
        assert pod.arp.lookup(client.ip) == client.mac

    def test_leases_granted_on_placement(self):
        pod = CXLPod(mode="oasis")
        h0 = pod.add_host()
        nic = pod.add_nic(h0)
        pod.add_instance(h0, ip=SERVER_IP)
        assert pod.allocator.leases.get(SERVER_IP, nic.name) is not None

    def test_run_advances_time(self):
        pod = CXLPod()
        pod.add_host()
        pod.run(0.5)
        assert pod.sim.now == pytest.approx(0.5)
        pod.stop()


class TestReplicatedAllocator:
    def test_enable_raft_elects_allocator_node(self):
        pod = CXLPod(mode="oasis")
        h0, h1 = pod.add_host(), pod.add_host()
        pod.add_nic(h0)
        pod.add_nic(h1, is_backup=True)
        pod.enable_raft(replicas=3)
        pod.run(0.5)
        # The allocator's colocated node wins (shorter election timeout).
        assert pod.raft_nodes[0].is_leader

    def test_failover_committed_through_raft(self):
        pod = CXLPod(mode="oasis")
        h0, h1 = pod.add_host(), pod.add_host()
        nic0 = pod.add_nic(h0)
        nic1 = pod.add_nic(h1, is_backup=True)
        inst = pod.add_instance(h1, ip=SERVER_IP, nic=nic0)
        pod.enable_raft(replicas=3)
        pod.run(0.5)
        log_before = pod.raft_nodes[0].log.last_index
        pod.fail_switch_port(nic0)
        pod.run(0.3)
        assert pod.allocator.failovers_executed == 1
        assert pod.raft_nodes[0].log.last_index > log_before
        # The command replicated to a majority.
        replicated = sum(
            1 for node in pod.raft_nodes
            if node.log.last_index >= pod.raft_nodes[0].log.last_index
        )
        assert replicated >= 2


class TestTrafficAccounting:
    def test_oasis_mode_accumulates_cxl_traffic(self):
        from repro.workloads.echo import EchoClient, EchoServer

        pod = CXLPod(mode="oasis")
        h0, h1 = pod.add_host(), pod.add_host()
        nic = pod.add_nic(h0)
        inst = pod.add_instance(h1, ip=SERVER_IP, nic=nic)
        EchoServer(pod.sim, inst)
        client = pod.add_external_client(ip=make_ip(10, 0, 9, 1))
        ec = EchoClient(pod.sim, client, SERVER_IP, rate_pps=5000)
        ec.start(0.01)
        pod.run(0.03)
        traffic = pod.cxl_traffic_by_category()
        assert traffic.get("payload", 0) > 0
        assert traffic.get("message", 0) > 0
        assert traffic.get("counter", 0) >= 0


class TestMultiNicPerHost:
    def test_two_nics_on_one_host_distinct(self):
        pod = CXLPod(mode="oasis")
        h0 = pod.add_host()
        nic_a = pod.add_nic(h0)
        nic_b = pod.add_nic(h0)
        assert nic_a.name != nic_b.name
        assert nic_a.mac != nic_b.mac
        assert len(pod.backends) == 2

    def test_instances_spread_across_local_nics(self):
        from repro.host.instance import ResourceSpec

        pod = CXLPod(mode="oasis")
        h0 = pod.add_host()
        nic_a = pod.add_nic(h0)
        nic_b = pod.add_nic(h0)
        spec = ResourceSpec(nic_gbps=60.0)   # more than half a NIC each
        ip1, ip2 = make_ip(10, 0, 0, 1), make_ip(10, 0, 0, 2)
        pod.add_instance(h0, ip=ip1, spec=spec)
        pod.add_instance(h0, ip=ip2, spec=spec)
        assigned = {pod.allocator.assignments[ip1],
                    pod.allocator.assignments[ip2]}
        assert assigned == {nic_a.name, nic_b.name}   # least-loaded spread
